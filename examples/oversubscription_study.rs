//! Capacity-planning study: how a workload degrades as the working
//! set outgrows device memory, under the paper's best policy pair
//! (TBNe + TBNp) versus the LRU-4KB baseline.
//!
//! This is the question a practitioner asks before buying GPUs: "how
//! much over-subscription can I tolerate before UVM paging eats my
//! speed-up?"
//!
//! Run with:
//! ```sh
//! cargo run --release -p uvm-sim --example oversubscription_study
//! ```

use uvm_core::{EvictPolicy, PrefetchPolicy};
use uvm_sim::{run_workload, RunOptions, Table};
use uvm_workloads::{Srad, Workload};

fn main() {
    let workload = Srad::default();
    let mut table = Table::new(
        "srad: slowdown vs over-subscription (relative to in-memory run)",
        &[
            "working_set_%",
            "LRU4K_ms",
            "LRU4K_slowdown",
            "TBNe+TBNp_ms",
            "TBNe+TBNp_slowdown",
        ],
    );

    let baseline = run_workload(&workload, RunOptions::default());
    let base_ms = baseline.total_ms();

    for frac in [1.0, 1.05, 1.10, 1.25, 1.50] {
        let lru = run_one(&workload, frac, EvictPolicy::LruPage, true);
        let tbn = run_one(&workload, frac, EvictPolicy::TreeBasedNeighborhood, false);
        table.row_owned(vec![
            format!("{:.0}", frac * 100.0),
            format!("{:.3}", lru.total_ms()),
            format!("{:.2}x", lru.total_ms() / base_ms),
            format!("{:.3}", tbn.total_ms()),
            format!("{:.2}x", tbn.total_ms() / base_ms),
        ]);
    }
    println!("{table}");
    println!(
        "in-memory baseline: {base_ms:.3} ms ({} far-faults)",
        baseline.far_faults
    );
}

fn run_one(
    workload: &dyn Workload,
    frac: f64,
    evict: EvictPolicy,
    disable_prefetch: bool,
) -> uvm_sim::RunResult {
    let mut opts = RunOptions::default()
        .with_prefetch(PrefetchPolicy::TreeBasedNeighborhood)
        .with_evict(evict)
        .with_memory_frac(frac);
    opts.disable_prefetch_on_oversubscription = disable_prefetch;
    run_workload(workload, opts)
}
