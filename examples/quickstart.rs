//! Quickstart: simulate one benchmark under two prefetchers and
//! compare.
//!
//! Run with:
//! ```sh
//! cargo run --release -p uvm-sim --example quickstart
//! ```

use uvm_core::PrefetchPolicy;
use uvm_sim::{run_workload, RunOptions};
use uvm_workloads::Hotspot;

fn main() {
    let workload = Hotspot::default();

    println!("hotspot, no prefetching (4 KB on-demand migration):");
    let none = run_workload(
        &workload,
        RunOptions::default().with_prefetch(PrefetchPolicy::None),
    );
    report(&none);

    println!("\nhotspot, tree-based neighborhood prefetcher (TBNp):");
    let tbn = run_workload(
        &workload,
        RunOptions::default().with_prefetch(PrefetchPolicy::TreeBasedNeighborhood),
    );
    report(&tbn);

    println!(
        "\nTBNp speed-up over on-demand paging: {:.2}x",
        tbn.speedup_vs(&none)
    );
}

fn report(r: &uvm_sim::RunResult) {
    println!("  kernel time       : {:.3} ms", r.total_ms());
    println!("  far-faults        : {}", r.far_faults);
    println!("  pages migrated    : {}", r.pages_migrated);
    println!("  of them prefetched: {}", r.pages_prefetched);
    println!("  PCI-e read bw     : {:.2} GB/s", r.read_bandwidth_gbps);
}
