//! User-directed prefetching (`cudaMemPrefetchAsync`) versus the
//! hardware prefetcher.
//!
//! The paper's Sec. 3 opens with CUDA's asynchronous user-directed
//! prefetch: a programmer who knows the working set can migrate it
//! ahead of the kernel and avoid far-faults entirely — at the cost of
//! carrying that knowledge in application code. This example runs the
//! same streaming kernel three ways:
//!
//!   1. pure on-demand paging,
//!   2. the tree-based hardware prefetcher (TBNp),
//!   3. `mem_prefetch_async` of the whole working set up front.
//!
//! Run with:
//! ```sh
//! cargo run --release -p uvm-sim --example user_directed_prefetch
//! ```

use uvm_core::{Gmmu, PrefetchPolicy, UvmConfig};
use uvm_gpu::{Access, Engine, GpuConfig, KernelSpec, ThreadBlockSpec};
use uvm_types::{Cycle, PAGE_SIZE};

const PAGES: u64 = 4096; // 16 MiB working set

fn kernel(base: uvm_types::VirtAddr) -> KernelSpec {
    let mut k = KernelSpec::new("stream");
    for tb in 0..32u64 {
        let per_tb = PAGES / 32;
        let lo = tb * per_tb;
        k.push_block(ThreadBlockSpec::from_accesses(
            (lo..lo + per_tb).map(move |p| Access::read(base.offset(PAGE_SIZE * p))),
        ));
    }
    k
}

fn run(prefetch: PrefetchPolicy, user_directed: bool) -> (f64, u64, f64) {
    let mut gmmu = Gmmu::new(UvmConfig::default().with_prefetch(prefetch));
    let base = gmmu.malloc_managed(PAGE_SIZE * PAGES);
    if user_directed {
        gmmu.mem_prefetch_async(base, PAGE_SIZE * PAGES, Cycle::ZERO);
    }
    let mut engine = Engine::new(gmmu, GpuConfig::default());
    let time = engine.run_kernel(kernel(base));
    let stats = engine.gmmu().stats();
    (
        time.as_secs() * 1e3,
        stats.far_faults,
        engine.gmmu().read_stats().average_bandwidth_gbps(),
    )
}

fn main() {
    println!("16 MiB streaming kernel, three migration strategies:\n");
    for (label, prefetch, user) in [
        ("on-demand 4KB paging      ", PrefetchPolicy::None, false),
        (
            "hardware prefetcher (TBNp)",
            PrefetchPolicy::TreeBasedNeighborhood,
            false,
        ),
        ("cudaMemPrefetchAsync-style", PrefetchPolicy::None, true),
    ] {
        let (ms, faults, bw) = run(prefetch, user);
        println!("{label}: {ms:>9.3} ms  far-faults {faults:>5}  PCI-e read {bw:>5.2} GB/s");
    }
    println!(
        "\nUser-directed prefetch eliminates far-faults entirely and moves\n\
         the data at peak bandwidth — but only because this kernel's\n\
         working set is known up front; the hardware prefetcher gets\n\
         most of the benefit with no programmer involvement (the paper's\n\
         motivation for studying it)."
    );
}
