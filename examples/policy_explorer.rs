//! Interactive policy explorer: run any benchmark under any
//! prefetcher/eviction pair and over-subscription level from the
//! command line.
//!
//! ```sh
//! cargo run --release -p uvm-sim --example policy_explorer -- \
//!     nw --prefetch TBNp --evict SLe --oversub 110
//! ```
//!
//! Benchmarks: backprop, bfs, gaussian, hotspot, nw, pathfinder, srad.
//! Policies are resolved by name (or alias) through the policy
//! registry — run with `--list-policies` for the full catalogue.
//! `--oversub` is the working set as a percentage of device memory
//! (omit for unlimited memory).

use std::process::exit;

use uvm_core::{PolicyRegistry, PolicySpec};
use uvm_sim::{run_workload, RunOptions};
use uvm_workloads::standard_suite;

fn usage() -> ! {
    let registry = PolicyRegistry::global();
    eprintln!(
        "usage: policy_explorer <benchmark> [--prefetch {}] \
         [--evict {}] [--oversub PCT] \
         [--reserve PCT] [--buffer PCT] [--list-policies]",
        registry.prefetcher_names().join("|"),
        registry.evictor_names().join("|"),
    );
    exit(2);
}

fn list_policies() -> ! {
    let registry = PolicyRegistry::global();
    println!("prefetchers:");
    for e in registry.prefetchers() {
        println!("  {:<8} {}", e.name, e.summary);
    }
    println!("evictors:");
    for e in registry.evictors() {
        println!("  {:<8} {}", e.name, e.summary);
    }
    exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list-policies") {
        list_policies();
    }
    if args.is_empty() {
        usage();
    }
    let bench_name = args[0].clone();
    let mut opts = RunOptions::default();
    let mut i = 1;
    while i < args.len() {
        let value = |i: usize| -> &str { args.get(i + 1).map(String::as_str).unwrap_or("") };
        match args[i].as_str() {
            "--prefetch" => {
                // Full spec grammar: bare names, aliases, and
                // parameterized forms like markov:depth=2.
                let spec: PolicySpec = value(i).parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                });
                opts.prefetch = PolicyRegistry::global()
                    .canonical_prefetch_spec(&spec)
                    .unwrap_or_else(|e| {
                        eprintln!("{e}");
                        usage()
                    });
                i += 2;
            }
            "--evict" => {
                let spec: PolicySpec = value(i).parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                });
                opts.evict = PolicyRegistry::global()
                    .canonical_evict_spec(&spec)
                    .unwrap_or_else(|e| {
                        eprintln!("{e}");
                        usage()
                    });
                i += 2;
            }
            "--oversub" => {
                let pct: f64 = value(i).parse().unwrap_or_else(|_| usage());
                opts.memory_frac = Some(pct / 100.0);
                i += 2;
            }
            "--reserve" => {
                let pct: f64 = value(i).parse().unwrap_or_else(|_| usage());
                opts.reserve_frac = pct / 100.0;
                i += 2;
            }
            "--buffer" => {
                let pct: f64 = value(i).parse().unwrap_or_else(|_| usage());
                opts.free_buffer_frac = pct / 100.0;
                i += 2;
            }
            _ => usage(),
        }
    }

    let suite = standard_suite();
    let Some(workload) = suite.iter().find(|w| w.name() == bench_name) else {
        eprintln!(
            "unknown benchmark {bench_name:?}; available: {}",
            suite
                .iter()
                .map(|w| w.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        exit(2);
    };

    println!(
        "running {bench_name} with prefetch={} evict={} memory={}",
        opts.prefetch,
        opts.evict,
        opts.memory_frac
            .map(|f| format!("{:.0}% over-subscribed", f * 100.0))
            .unwrap_or_else(|| "unlimited".into()),
    );
    let r = run_workload(workload.as_ref(), opts);
    println!("kernel launches    : {}", r.kernel_times.len());
    println!("total kernel time  : {:.3} ms", r.total_ms());
    println!("working set        : {}", r.footprint);
    println!("far-faults         : {}", r.far_faults);
    println!("pages migrated     : {}", r.pages_migrated);
    println!("pages prefetched   : {}", r.pages_prefetched);
    println!("pages evicted      : {}", r.pages_evicted);
    println!("pages thrashed     : {}", r.pages_thrashed);
    println!("PCI-e read bw      : {:.2} GB/s", r.read_bandwidth_gbps);
    println!("PCI-e write bw     : {:.2} GB/s", r.write_bandwidth_gbps);
    println!("4KB read transfers : {}", r.read_transfers_4k);
}
