//! Reverse-engineering the prefetcher, the way the paper did.
//!
//! The paper's authors ran micro-benchmarks on a real GTX 1080ti and
//! watched which pages nvprof reported as migrated, to uncover the
//! tree-based neighborhood prefetcher's semantics (Sec. 3.3). This
//! example replays that methodology against the simulator: it touches
//! chosen pages of a 512 KB managed allocation and prints exactly what
//! each far-fault migrated — reproducing both worked examples of the
//! paper's Fig. 2.
//!
//! Run with:
//! ```sh
//! cargo run --release -p uvm-sim --example prefetcher_probe
//! ```

use uvm_core::{Gmmu, PrefetchPolicy, UvmConfig};
use uvm_types::{Bytes, Cycle, PAGES_PER_BASIC_BLOCK};

fn probe(label: &str, touch_blocks: &[u64]) {
    println!("{label}");
    let mut gmmu =
        Gmmu::new(UvmConfig::default().with_prefetch(PrefetchPolicy::TreeBasedNeighborhood));
    let base = gmmu.malloc_managed(Bytes::kib(512));
    let mut now = Cycle::ZERO;
    for &block in touch_blocks {
        let page = base.page().add(block * PAGES_PER_BASIC_BLOCK);
        if gmmu.is_resident(page) {
            println!("  touch block {block}: already resident (prefetched earlier)");
            continue;
        }
        let res = gmmu.handle_fault(page, now);
        now = res.fault_page_ready();
        gmmu.record_access(page, false);
        let mut blocks: Vec<u64> = res
            .ready
            .iter()
            .map(|(p, _)| p.basic_block().index())
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        println!(
            "  touch block {block}: fault migrated {} pages across blocks {blocks:?}",
            res.ready.len()
        );
    }
    println!(
        "  => {} far-faults, {} pages migrated, {} prefetched\n",
        gmmu.stats().far_faults,
        gmmu.stats().pages_migrated,
        gmmu.stats().pages_prefetched
    );
}

fn main() {
    // Fig. 2(a): strided touches leave gaps; the fifth touch cascades.
    probe(
        "Fig 2(a) pattern: touch first page of blocks 1, 3, 5, 7, then 0",
        &[1, 3, 5, 7, 0],
    );
    // Fig. 2(b): the fourth touch pulls 256 KB in one go.
    probe(
        "Fig 2(b) pattern: touch first page of blocks 1, 3, 0, then 4",
        &[1, 3, 0, 4],
    );
    // Sequential touches: the prefetcher stays one step ahead.
    probe(
        "Sequential pattern: touch first page of blocks 0..8",
        &[0, 1, 2, 3, 4, 5, 6, 7],
    );
}
