//! Crash-safety suite for durable checkpoint/resume (DESIGN.md §12).
//!
//! The contract under test: a run resumed from its latest `UVMC`
//! checkpoint is **byte-identical** to the same run executed without
//! interruption, for every paper policy pair and under chaos fault
//! injection, with the GMMU invariant auditor enabled at every
//! checkpoint boundary; checkpointing switched off changes nothing;
//! damaged checkpoints are quarantined and the run restarts cold;
//! checkpoints from a foreign format revision are rejected intact.
//!
//! Byte-identity is asserted against the same committed golden
//! fixtures as `golden_fixtures.rs`, so a resume that drifts by even
//! one cycle or one fault count fails loudly.

use std::fs;
use std::path::PathBuf;

use uvm_core::{
    CheckpointError, EvictPolicy, FaultPlan, PrefetchPolicy, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
use uvm_sim::{try_run_workload, RunKey, RunOptions, RunResult, SimError};
use uvm_types::codec::ByteWriter;
use uvm_workloads::Hotspot;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "uvm-ckpt-resume-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The same smoke workload the golden fixtures pin down.
fn workload() -> Hotspot {
    Hotspot {
        rows: 512,
        iterations: 3,
        rows_per_block: 16,
    }
}

fn options(prefetch: PrefetchPolicy, evict: EvictPolicy) -> RunOptions {
    RunOptions::default()
        .with_prefetch(prefetch)
        .with_evict(evict)
        .with_memory_frac(1.10)
}

/// The golden fixtures' exact encoding (kept in lockstep with
/// `golden_fixtures.rs`).
fn encode(r: &RunResult) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"name\": \"{}\",\n", r.name));
    s.push_str(&format!(
        "  \"total_time_cycles\": {},\n",
        r.total_time.cycles()
    ));
    let kt: Vec<String> = r
        .kernel_times
        .iter()
        .map(|t| t.cycles().to_string())
        .collect();
    s.push_str(&format!(
        "  \"kernel_times_cycles\": [{}],\n",
        kt.join(", ")
    ));
    s.push_str(&format!("  \"far_faults\": {},\n", r.far_faults));
    s.push_str(&format!("  \"pages_migrated\": {},\n", r.pages_migrated));
    s.push_str(&format!(
        "  \"pages_prefetched\": {},\n",
        r.pages_prefetched
    ));
    s.push_str(&format!("  \"pages_evicted\": {},\n", r.pages_evicted));
    s.push_str(&format!("  \"pages_thrashed\": {},\n", r.pages_thrashed));
    s.push_str(&format!("  \"prefetched_used\": {},\n", r.prefetched_used));
    s.push_str(&format!(
        "  \"prefetched_wasted\": {},\n",
        r.prefetched_wasted
    ));
    s.push_str(&format!(
        "  \"clean_pages_written_back\": {},\n",
        r.clean_pages_written_back
    ));
    s.push_str(&format!(
        "  \"read_transfers_4k\": {},\n",
        r.read_transfers_4k
    ));
    s.push_str(&format!("  \"read_transfers\": {},\n", r.read_transfers));
    s.push_str(&format!("  \"read_bytes\": {},\n", r.read_bytes.bytes()));
    s.push_str(&format!("  \"write_bytes\": {}\n", r.write_bytes.bytes()));
    s.push_str("}\n");
    s
}

/// The checkpoint file `try_run_workload` uses for `(workload, opts)`:
/// the run key (durability options excluded) under the spec's dir.
fn checkpoint_file(dir: &std::path::Path, opts: &RunOptions) -> PathBuf {
    dir.join(format!("{}.uvmc", RunKey::new(&workload(), opts).to_hex()))
}

/// Resume byte-identity across every paper policy pair, with the
/// invariant auditor enabled at every checkpoint boundary.
///
/// With `every_n_kernels = 1` a *completed* 3-kernel run leaves its
/// last checkpoint at the final kernel boundary (the end-of-run
/// checkpoint is elided), so re-running the same options resumes
/// mid-run from durable state and replays only the tail — the
/// strictest resume path there is. Both the checkpointed first run
/// (checkpointing must be a strict no-op on results) and the resumed
/// re-run must match the committed golden fixture byte-for-byte.
#[test]
fn resumed_runs_match_the_committed_fixtures_for_every_policy_pair() {
    let dir = tempdir("golden");
    let w = workload();
    let mut checked = 0usize;
    for prefetch in PrefetchPolicy::ALL {
        for evict in EvictPolicy::ALL {
            let opts = options(prefetch, evict)
                .with_checkpoint(&dir, 1)
                .with_audit(true);
            let fixture = fixture_dir().join(format!("hotspot_{prefetch}_{evict}.json"));
            let committed = fs::read_to_string(&fixture)
                .unwrap_or_else(|e| panic!("missing fixture {}: {e}", fixture.display()));

            let full = try_run_workload(&w, opts.clone()).expect("checkpointed run");
            assert_eq!(
                committed,
                encode(&full),
                "{prefetch}+{evict}: checkpointing+audit changed the result"
            );
            assert!(
                checkpoint_file(&dir, &opts).exists(),
                "{prefetch}+{evict}: completed run leaves its last checkpoint"
            );

            let resumed = try_run_workload(&w, opts.clone()).expect("resumed run");
            assert_eq!(
                committed,
                encode(&resumed),
                "{prefetch}+{evict}: resume from checkpoint drifted from the fixture"
            );
            checked += 1;
        }
    }
    assert_eq!(
        checked,
        PrefetchPolicy::ALL.len() * EvictPolicy::ALL.len(),
        "every paper pair covered"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Resume byte-identity under the chaos fault-injection profile: the
/// injected stalls, duplicate faults, and jitter are part of the
/// engine image, so a resumed run must replay them identically.
#[test]
fn chaos_profile_resume_is_byte_identical() {
    let dir = tempdir("chaos");
    let w = workload();
    let plain = options(
        PrefetchPolicy::TreeBasedNeighborhood,
        EvictPolicy::TreeBasedNeighborhood,
    )
    .with_fault_plan(FaultPlan::chaos());
    let durable = plain.clone().with_checkpoint(&dir, 1).with_audit(true);

    let baseline = try_run_workload(&w, plain).expect("uninterrupted chaos run");
    let full = try_run_workload(&w, durable.clone()).expect("checkpointed chaos run");
    assert_eq!(
        encode(&baseline),
        encode(&full),
        "checkpointing under chaos changed the result"
    );
    let resumed = try_run_workload(&w, durable).expect("resumed chaos run");
    assert_eq!(
        encode(&baseline),
        encode(&resumed),
        "chaos resume drifted from the uninterrupted run"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// A damaged checkpoint is quarantined as `.uvmc.corrupt` and the run
/// silently restarts cold — same result, no error, damage preserved
/// for post-mortem.
#[test]
fn corrupt_checkpoint_is_quarantined_and_the_run_restarts_cold() {
    let dir = tempdir("corrupt");
    let w = workload();
    let opts = options(PrefetchPolicy::Random, EvictPolicy::RandomPage)
        .with_checkpoint(&dir, 1)
        .with_audit(true);

    let baseline = try_run_workload(&w, opts.clone()).expect("first run");
    let path = checkpoint_file(&dir, &opts);
    let mut bytes = fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    fs::write(&path, bytes).unwrap();

    let rerun = try_run_workload(&w, opts.clone()).expect("cold restart");
    assert_eq!(encode(&baseline), encode(&rerun));
    let mut quarantined = path.as_os_str().to_os_string();
    quarantined.push(".corrupt");
    assert!(
        PathBuf::from(quarantined).exists(),
        "damaged checkpoint quarantined for post-mortem"
    );
    // The cold restart rewrote a fresh, valid checkpoint in place.
    assert!(path.exists());
    let _ = fs::remove_dir_all(&dir);
}

/// A checkpoint from a foreign format revision is a hard, typed error
/// — not silent recomputation (the file may be from a newer build the
/// user cares about) and not quarantine (the file is not damaged).
#[test]
fn foreign_version_checkpoint_is_rejected_intact() {
    let dir = tempdir("version");
    let w = workload();
    let opts = options(
        PrefetchPolicy::SequentialLocal,
        EvictPolicy::SequentialLocal,
    )
    .with_checkpoint(&dir, 1);

    let path = checkpoint_file(&dir, &opts);
    let mut fw = ByteWriter::new();
    fw.put_raw(CHECKPOINT_MAGIC);
    fw.put_u32(CHECKPOINT_VERSION + 9);
    fw.put_u64(0);
    fw.put_u64(0);
    fw.put_bytes(b"from the future");
    fs::create_dir_all(&dir).unwrap();
    fs::write(&path, fw.into_bytes()).unwrap();

    let err = try_run_workload(&w, opts).expect_err("foreign version must not be ignored");
    assert!(
        matches!(
            &err,
            SimError::Checkpoint(CheckpointError::Version { found, .. })
                if *found == CHECKPOINT_VERSION + 9
        ),
        "expected a version rejection, got: {err}"
    );
    assert!(path.exists(), "foreign checkpoint left intact");
    let _ = fs::remove_dir_all(&dir);
}

/// Checkpointing off is a strict no-op: same results, same run
/// identity, and no files written anywhere.
#[test]
fn checkpointing_off_is_a_strict_noop() {
    let dir = tempdir("noop");
    let w = workload();
    let plain = options(PrefetchPolicy::TreeBasedNeighborhood, EvictPolicy::LruPage);
    let durable = plain
        .clone()
        .with_checkpoint(dir.join("ckpt"), 2)
        .with_audit(true);

    assert_eq!(
        RunKey::new(&w, &plain),
        RunKey::new(&w, &durable),
        "durability options must not change run identity"
    );
    let a = try_run_workload(&w, plain).expect("plain run");
    let b = try_run_workload(&w, durable).expect("durable run");
    assert_eq!(encode(&a), encode(&b));
    let _ = fs::remove_dir_all(&dir);
}
