//! Golden-fixture regression suite for the policy layer.
//!
//! One smoke-scale workload is simulated under every (paper prefetcher
//! × paper evictor) pair and the resulting driver statistics + kernel
//! times are compared *byte-for-byte* against committed JSON fixtures
//! under `tests/fixtures/`. The fixtures were generated before the
//! policies were extracted out of the `Gmmu` into the trait-based
//! policy layer, so a passing run proves the refactor preserved every
//! simulation outcome exactly — fault counts, eviction decisions,
//! transfer schedules, and timing.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```sh
//! UVM_UPDATE_GOLDEN=1 cargo test -p uvm-sim --test golden_fixtures
//! ```

use std::fs;
use std::path::PathBuf;

use uvm_core::{EvictPolicy, PrefetchPolicy};
use uvm_sim::{run_workload, RunOptions, RunResult};
use uvm_workloads::Hotspot;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

/// The smoke-scale workload the fixtures pin down. Hotspot exercises
/// iterative re-touching (LRU order churn), multi-large-page footprints
/// (hierarchical ordering, 2 MB eviction), and tree rebalancing.
fn workload() -> Hotspot {
    Hotspot {
        rows: 512,
        iterations: 3,
        rows_per_block: 16,
    }
}

/// 110 % over-subscription so every evictor actually evicts; the
/// prefetcher stays enabled (the Fig. 11 pre-eviction setup).
fn options(prefetch: PrefetchPolicy, evict: EvictPolicy) -> RunOptions {
    RunOptions::default()
        .with_prefetch(prefetch)
        .with_evict(evict)
        .with_memory_frac(1.10)
}

/// Deterministic encoding of everything the fixtures assert on:
/// the full `UvmStats` projection of the run plus per-launch and
/// total kernel times in exact cycles.
fn encode(r: &RunResult) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"name\": \"{}\",\n", r.name));
    s.push_str(&format!(
        "  \"total_time_cycles\": {},\n",
        r.total_time.cycles()
    ));
    let kt: Vec<String> = r
        .kernel_times
        .iter()
        .map(|t| t.cycles().to_string())
        .collect();
    s.push_str(&format!(
        "  \"kernel_times_cycles\": [{}],\n",
        kt.join(", ")
    ));
    s.push_str(&format!("  \"far_faults\": {},\n", r.far_faults));
    s.push_str(&format!("  \"pages_migrated\": {},\n", r.pages_migrated));
    s.push_str(&format!(
        "  \"pages_prefetched\": {},\n",
        r.pages_prefetched
    ));
    s.push_str(&format!("  \"pages_evicted\": {},\n", r.pages_evicted));
    s.push_str(&format!("  \"pages_thrashed\": {},\n", r.pages_thrashed));
    s.push_str(&format!("  \"prefetched_used\": {},\n", r.prefetched_used));
    s.push_str(&format!(
        "  \"prefetched_wasted\": {},\n",
        r.prefetched_wasted
    ));
    s.push_str(&format!(
        "  \"clean_pages_written_back\": {},\n",
        r.clean_pages_written_back
    ));
    s.push_str(&format!(
        "  \"read_transfers_4k\": {},\n",
        r.read_transfers_4k
    ));
    s.push_str(&format!("  \"read_transfers\": {},\n", r.read_transfers));
    s.push_str(&format!("  \"read_bytes\": {},\n", r.read_bytes.bytes()));
    s.push_str(&format!("  \"write_bytes\": {}\n", r.write_bytes.bytes()));
    s.push_str("}\n");
    s
}

#[test]
fn golden_fixtures_match_for_every_paper_policy_pair() {
    let update = std::env::var("UVM_UPDATE_GOLDEN").is_ok();
    let dir = fixture_dir();
    if update {
        fs::create_dir_all(&dir).expect("create fixture dir");
    }
    let w = workload();
    let mut checked = 0usize;
    for prefetch in PrefetchPolicy::ALL {
        for evict in EvictPolicy::ALL {
            let r = run_workload(&w, options(prefetch, evict));
            let encoded = encode(&r);
            let path = dir.join(format!("hotspot_{prefetch}_{evict}.json"));
            if update {
                fs::write(&path, &encoded).expect("write fixture");
            } else {
                let committed = fs::read_to_string(&path).unwrap_or_else(|e| {
                    panic!(
                        "missing fixture {} ({e}); run with UVM_UPDATE_GOLDEN=1 \
                         to generate",
                        path.display()
                    )
                });
                assert_eq!(
                    committed,
                    encoded,
                    "{prefetch}+{evict}: simulation output drifted from the \
                     committed fixture {}",
                    path.display()
                );
            }
            checked += 1;
        }
    }
    assert_eq!(
        checked,
        PrefetchPolicy::ALL.len() * EvictPolicy::ALL.len(),
        "every paper pair covered"
    );
}
