//! End-to-end integration tests: every benchmark runs to completion
//! through the full stack (workload → engine → GMMU → interconnect)
//! under representative configurations, and the collected statistics
//! are mutually consistent.

use uvm_core::{EvictPolicy, PrefetchPolicy};
use uvm_sim::experiments::{suite, Scale};
use uvm_sim::{measure_footprint, run_workload, RunOptions, RunResult};
use uvm_types::{Bytes, PAGE_SIZE};

/// Statistics must obey conservation laws regardless of configuration.
fn check_consistency(r: &RunResult) {
    let name = &r.name;
    assert!(r.total_ms() > 0.0, "{name}: zero kernel time");
    assert!(!r.kernel_times.is_empty(), "{name}: no kernels ran");
    assert!(r.far_faults > 0, "{name}: no far-faults at cold start");
    assert!(
        r.far_faults <= r.pages_migrated,
        "{name}: each distinct fault migrates at least its own page"
    );
    assert!(
        r.pages_prefetched <= r.pages_migrated,
        "{name}: prefetched pages are a subset of migrations"
    );
    assert!(
        r.pages_thrashed <= r.pages_migrated,
        "{name}: thrashed pages are re-migrations"
    );
    // Byte conservation: every migrated page crossed the read channel
    // exactly once, every evicted page the write channel once.
    assert_eq!(
        r.read_bytes,
        PAGE_SIZE * r.pages_migrated,
        "{name}: read bytes vs migrated pages"
    );
    assert_eq!(
        r.write_bytes,
        PAGE_SIZE * r.pages_evicted,
        "{name}: write bytes vs evicted pages"
    );
    // Residency fits the budget.
    if let Some(capacity) = r.capacity {
        let resident = r.pages_migrated - r.pages_evicted;
        assert!(
            resident * PAGE_SIZE.bytes() <= capacity.bytes(),
            "{name}: resident pages exceed the device budget"
        );
        assert!(r.pages_evicted > 0, "{name}: over-subscription must evict");
    } else {
        assert_eq!(r.pages_evicted, 0, "{name}: nothing evicts with no budget");
    }
    // Bandwidth is within the calibrated PCI-e envelope.
    assert!(
        r.read_bandwidth_gbps >= 3.2 && r.read_bandwidth_gbps <= 11.3,
        "{name}: read bandwidth {} outside Table 1 envelope",
        r.read_bandwidth_gbps
    );
}

#[test]
fn every_benchmark_runs_in_memory() {
    for w in suite(Scale::Smoke) {
        let r = run_workload(w.as_ref(), RunOptions::default());
        check_consistency(&r);
        // With unlimited memory the whole working set migrates exactly
        // once; prefetch may additionally pull the rounded-up tree
        // tails (< one 2 MB large page per allocation).
        let requested_pages = r.footprint.pages_ceil();
        assert!(
            r.pages_migrated >= requested_pages,
            "{}: every requested page migrates",
            w.name()
        );
        assert!(
            r.pages_migrated <= requested_pages + 8 * 512,
            "{}: no page migrates twice in-memory",
            w.name()
        );
    }
}

#[test]
fn every_benchmark_runs_under_every_policy_combo() {
    let combos = [
        (PrefetchPolicy::None, EvictPolicy::LruPage, true),
        (PrefetchPolicy::Random, EvictPolicy::RandomPage, false),
        (
            PrefetchPolicy::SequentialLocal,
            EvictPolicy::SequentialLocal,
            false,
        ),
        (
            PrefetchPolicy::TreeBasedNeighborhood,
            EvictPolicy::TreeBasedNeighborhood,
            false,
        ),
        (
            PrefetchPolicy::TreeBasedNeighborhood,
            EvictPolicy::LruLargePage,
            false,
        ),
    ];
    for w in suite(Scale::Smoke) {
        for (prefetch, evict, disable) in combos {
            let mut opts = RunOptions::default()
                .with_prefetch(prefetch)
                .with_evict(evict)
                .with_memory_frac(1.10);
            opts.disable_prefetch_on_oversubscription = disable;
            let r = run_workload(w.as_ref(), opts);
            check_consistency(&r);
        }
    }
}

#[test]
fn free_page_buffer_and_reservation_configs_run() {
    for w in suite(Scale::Smoke) {
        let mut opts = RunOptions::default()
            .with_prefetch(PrefetchPolicy::TreeBasedNeighborhood)
            .with_evict(EvictPolicy::LruPage)
            .with_memory_frac(1.10);
        opts.free_buffer_frac = 0.10;
        opts.disable_prefetch_on_oversubscription = true;
        check_consistency(&run_workload(w.as_ref(), opts));

        let mut opts = RunOptions::default()
            .with_prefetch(PrefetchPolicy::TreeBasedNeighborhood)
            .with_evict(EvictPolicy::TreeBasedNeighborhood)
            .with_memory_frac(1.10);
        opts.reserve_frac = 0.10;
        check_consistency(&run_workload(w.as_ref(), opts));
    }
}

#[test]
fn runs_are_deterministic() {
    for w in suite(Scale::Smoke) {
        let opts = || {
            RunOptions::default()
                .with_prefetch(PrefetchPolicy::Random)
                .with_evict(EvictPolicy::RandomPage)
                .with_memory_frac(1.10)
        };
        let a = run_workload(w.as_ref(), opts());
        let b = run_workload(w.as_ref(), opts());
        assert_eq!(a.total_time, b.total_time, "{}", w.name());
        assert_eq!(a.far_faults, b.far_faults, "{}", w.name());
        assert_eq!(a.pages_evicted, b.pages_evicted, "{}", w.name());
    }
}

#[test]
fn footprint_measurement_matches_run() {
    for w in suite(Scale::Smoke) {
        let fp = measure_footprint(w.as_ref());
        let r = run_workload(w.as_ref(), RunOptions::default());
        assert_eq!(fp, r.footprint, "{}", w.name());
        assert!(fp > Bytes::ZERO);
    }
}

#[test]
fn deeper_oversubscription_is_never_faster_for_reuse_benchmarks() {
    for w in suite(Scale::Smoke) {
        // Streaming benchmarks are allowed to be flat; reuse benchmarks
        // must degrade. Either way, time must not *improve* with less
        // memory (beyond 2% tolerance for policy noise).
        let t110 = run_workload(
            w.as_ref(),
            RunOptions::default()
                .with_evict(EvictPolicy::TreeBasedNeighborhood)
                .with_memory_frac(1.10),
        );
        let t150 = run_workload(
            w.as_ref(),
            RunOptions::default()
                .with_evict(EvictPolicy::TreeBasedNeighborhood)
                .with_memory_frac(1.50),
        );
        assert!(
            t150.total_ms() >= 0.90 * t110.total_ms(),
            "{}: 150% ({:.3} ms) much faster than 110% ({:.3} ms)",
            w.name(),
            t150.total_ms(),
            t110.total_ms()
        );
    }
}

#[test]
fn trace_capture_works_across_full_runs() {
    let w = &suite(Scale::Smoke)[4]; // nw
    assert_eq!(w.name(), "nw");
    let r = run_workload(
        w.as_ref(),
        RunOptions {
            trace: true,
            ..RunOptions::default()
        },
    );
    assert_eq!(r.traces.len(), r.kernel_times.len());
    let total: usize = r.traces.iter().map(Vec::len).sum();
    assert!(total > 0, "traces must contain accesses");
    // Cycles within one kernel's trace never exceed the run end.
    for trace in &r.traces {
        for ev in trace {
            assert!(ev.cycle.index() <= r.total_time.cycles() + 1_000_000);
        }
    }
}
