//! Randomized integration tests: randomized workloads, policies, and
//! memory budgets must never violate the simulator's conservation
//! laws, and the fault count must stay bounded by the access count
//! (the invariant that rules out eviction/refault livelock).

use uvm_core::{EvictPolicy, PrefetchPolicy};
use uvm_gpu::{Access, Engine, GpuConfig, KernelSpec, ThreadBlockSpec};
use uvm_sim::{run_workload, RunOptions};
use uvm_types::rng::{Rng, SmallRng};
use uvm_types::{Bytes, VirtAddr, PAGE_SIZE};
use uvm_workloads::Workload;

/// A randomized synthetic workload: a few kernels of a few thread
/// blocks, each touching pages drawn from a seeded pattern.
#[derive(Clone, Debug)]
struct RandomWorkload {
    pages: u64,
    kernels: usize,
    blocks: usize,
    accesses_per_block: usize,
    seed: u64,
}

impl Workload for RandomWorkload {
    fn name(&self) -> &'static str {
        "random-workload"
    }

    fn build(&self, malloc: &mut dyn FnMut(Bytes) -> VirtAddr) -> Vec<KernelSpec> {
        let base = malloc(PAGE_SIZE * self.pages);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        (0..self.kernels)
            .map(|k| {
                let mut kernel = KernelSpec::new(format!("rand{k}"));
                for _ in 0..self.blocks {
                    let accesses: Vec<Access> = (0..self.accesses_per_block)
                        .map(|_| {
                            let page = rng.gen_range(0..self.pages);
                            let addr = base.offset(PAGE_SIZE * page);
                            if rng.gen_bool(0.3) {
                                Access::write(addr)
                            } else {
                                Access::read(addr)
                            }
                        })
                        .collect();
                    kernel.push_block(ThreadBlockSpec::from_accesses(accesses));
                }
                kernel
            })
            .collect()
    }
}

const PREFETCHES: [PrefetchPolicy; 4] = [
    PrefetchPolicy::None,
    PrefetchPolicy::Random,
    PrefetchPolicy::SequentialLocal,
    PrefetchPolicy::TreeBasedNeighborhood,
];

const EVICTS: [EvictPolicy; 5] = [
    EvictPolicy::LruPage,
    EvictPolicy::RandomPage,
    EvictPolicy::SequentialLocal,
    EvictPolicy::TreeBasedNeighborhood,
    EvictPolicy::LruLargePage,
];

/// Any (workload, policy pair, budget) combination satisfies the
/// conservation laws and terminates with bounded faults.
#[test]
fn randomized_runs_conserve_pages() {
    let mut rng = SmallRng::seed_from_u64(0xcc1);
    for _ in 0..24 {
        let pages = rng.gen_range(64u64..1024);
        let kernels = rng.gen_range(1usize..4);
        let blocks = rng.gen_range(1usize..12);
        let accesses = rng.gen_range(4usize..64);
        let seed = rng.next_u64();
        let prefetch = PREFETCHES[rng.gen_range(0usize..PREFETCHES.len())];
        let evict = EVICTS[rng.gen_range(0usize..EVICTS.len())];
        let frac = [None, Some(1.05), Some(1.25), Some(2.0)][rng.gen_range(0usize..4)];
        let reserve = [0.0, 0.1][rng.gen_range(0usize..2)];

        let w = RandomWorkload {
            pages,
            kernels,
            blocks,
            accesses_per_block: accesses,
            seed,
        };
        let total_accesses = (kernels * blocks * accesses) as u64;
        let mut opts = RunOptions::default()
            .with_prefetch(prefetch)
            .with_evict(evict);
        opts.memory_frac = frac;
        opts.reserve_frac = reserve;
        let r = run_workload(&w, opts);

        // Conservation: bytes moved match pages moved.
        assert_eq!(r.read_bytes, PAGE_SIZE * r.pages_migrated);
        assert_eq!(r.write_bytes, PAGE_SIZE * r.pages_evicted);
        assert!(r.pages_evicted <= r.pages_migrated);
        assert!(r.pages_prefetched <= r.pages_migrated);
        assert!(r.pages_thrashed <= r.pages_migrated);
        // Residency never exceeds the budget.
        if let Some(cap) = r.capacity {
            let resident = r.pages_migrated - r.pages_evicted;
            assert!(resident * PAGE_SIZE.bytes() <= cap.bytes());
        }
        // Liveness: every distinct fault completes at least one access,
        // so faults can never exceed the total access count.
        assert!(
            r.far_faults <= total_accesses,
            "faults {} must be bounded by accesses {}",
            r.far_faults,
            total_accesses
        );
        // Time is positive and finite.
        assert!(r.total_ms() > 0.0);
    }
}

/// Determinism: identical configurations produce identical runs,
/// regardless of policy randomness (seeded RNG).
#[test]
fn randomized_runs_are_deterministic() {
    let mut rng = SmallRng::seed_from_u64(0xcc2);
    for _ in 0..16 {
        let pages = rng.gen_range(64u64..512);
        let seed = rng.next_u64();
        let prefetch = PREFETCHES[rng.gen_range(0usize..PREFETCHES.len())];
        let evict = EVICTS[rng.gen_range(0usize..EVICTS.len())];
        let w = RandomWorkload {
            pages,
            kernels: 2,
            blocks: 4,
            accesses_per_block: 16,
            seed,
        };
        let opts = || {
            let mut o = RunOptions::default()
                .with_prefetch(prefetch)
                .with_evict(evict);
            o.memory_frac = Some(1.10);
            o
        };
        let a = run_workload(&w, opts());
        let b = run_workload(&w, opts());
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.far_faults, b.far_faults);
        assert_eq!(a.pages_evicted, b.pages_evicted);
        assert_eq!(a.pages_thrashed, b.pages_thrashed);
    }
}

/// Direct engine-level property: page residency reported by the GMMU
/// always matches what a sweep of accesses observes (no phantom TLB
/// state after evictions).
#[test]
fn tlb_shootdown_keeps_engine_and_gmmu_consistent() {
    use uvm_core::{Gmmu, UvmConfig};
    let cfg = UvmConfig::default()
        .with_capacity(Bytes::kib(256)) // 64 frames
        .with_prefetch(PrefetchPolicy::SequentialLocal)
        .with_evict(EvictPolicy::SequentialLocal);
    let mut gmmu = Gmmu::new(cfg);
    let base = gmmu.malloc_managed(Bytes::mib(1));
    let mut engine = Engine::new(gmmu, GpuConfig::default());
    // Three sweeps over 256 pages through a 64-frame budget: massive
    // eviction churn. The engine must never observe stale residency.
    for sweep in 0..3 {
        let k =
            KernelSpec::new(format!("sweep{sweep}")).with_block(ThreadBlockSpec::from_accesses(
                (0..256).map(move |i| Access::read(base.offset(PAGE_SIZE * i))),
            ));
        engine.run_kernel(k);
    }
    let stats = engine.gmmu().stats();
    assert!(stats.pages_evicted > 0);
    assert!(stats.far_faults <= 3 * 256);
    assert_eq!(
        engine.gmmu().resident_pages(),
        engine.gmmu().capacity_frames()
    );
}
