//! Property-based integration tests: randomized workloads, policies,
//! and memory budgets must never violate the simulator's conservation
//! laws, and the fault count must stay bounded by the access count
//! (the invariant that rules out eviction/refault livelock).

use proptest::prelude::*;

use uvm_core::{EvictPolicy, PrefetchPolicy};
use uvm_gpu::{Access, Engine, GpuConfig, KernelSpec, ThreadBlockSpec};
use uvm_sim::{run_workload, RunOptions};
use uvm_types::{Bytes, VirtAddr, PAGE_SIZE};
use uvm_workloads::Workload;

/// A randomized synthetic workload: a few kernels of a few thread
/// blocks, each touching pages drawn from a seeded pattern.
#[derive(Clone, Debug)]
struct RandomWorkload {
    pages: u64,
    kernels: usize,
    blocks: usize,
    accesses_per_block: usize,
    seed: u64,
}

impl Workload for RandomWorkload {
    fn name(&self) -> &'static str {
        "random-workload"
    }

    fn build(&self, malloc: &mut dyn FnMut(Bytes) -> VirtAddr) -> Vec<KernelSpec> {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let base = malloc(PAGE_SIZE * self.pages);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        (0..self.kernels)
            .map(|k| {
                let mut kernel = KernelSpec::new(format!("rand{k}"));
                for _ in 0..self.blocks {
                    let accesses: Vec<Access> = (0..self.accesses_per_block)
                        .map(|_| {
                            let page = rng.gen_range(0..self.pages);
                            let addr = base.offset(PAGE_SIZE * page);
                            if rng.gen_bool(0.3) {
                                Access::write(addr)
                            } else {
                                Access::read(addr)
                            }
                        })
                        .collect();
                    kernel.push_block(ThreadBlockSpec::from_accesses(accesses));
                }
                kernel
            })
            .collect()
    }
}

fn prefetch_strategy() -> impl Strategy<Value = PrefetchPolicy> {
    prop_oneof![
        Just(PrefetchPolicy::None),
        Just(PrefetchPolicy::Random),
        Just(PrefetchPolicy::SequentialLocal),
        Just(PrefetchPolicy::TreeBasedNeighborhood),
    ]
}

fn evict_strategy() -> impl Strategy<Value = EvictPolicy> {
    prop_oneof![
        Just(EvictPolicy::LruPage),
        Just(EvictPolicy::RandomPage),
        Just(EvictPolicy::SequentialLocal),
        Just(EvictPolicy::TreeBasedNeighborhood),
        Just(EvictPolicy::LruLargePage),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Any (workload, policy pair, budget) combination satisfies the
    /// conservation laws and terminates with bounded faults.
    #[test]
    fn randomized_runs_conserve_pages(
        pages in 64u64..1024,
        kernels in 1usize..4,
        blocks in 1usize..12,
        accesses in 4usize..64,
        seed in any::<u64>(),
        prefetch in prefetch_strategy(),
        evict in evict_strategy(),
        frac in prop_oneof![Just(None), Just(Some(1.05)), Just(Some(1.25)), Just(Some(2.0))],
        reserve in prop_oneof![Just(0.0), Just(0.1)],
    ) {
        let w = RandomWorkload { pages, kernels, blocks, accesses_per_block: accesses, seed };
        let total_accesses = (kernels * blocks * accesses) as u64;
        let mut opts = RunOptions::default()
            .with_prefetch(prefetch)
            .with_evict(evict);
        opts.memory_frac = frac;
        opts.reserve_frac = reserve;
        let r = run_workload(&w, opts);

        // Conservation: bytes moved match pages moved.
        prop_assert_eq!(r.read_bytes, PAGE_SIZE * r.pages_migrated);
        prop_assert_eq!(r.write_bytes, PAGE_SIZE * r.pages_evicted);
        prop_assert!(r.pages_evicted <= r.pages_migrated);
        prop_assert!(r.pages_prefetched <= r.pages_migrated);
        prop_assert!(r.pages_thrashed <= r.pages_migrated);
        // Residency never exceeds the budget.
        if let Some(cap) = r.capacity {
            let resident = r.pages_migrated - r.pages_evicted;
            prop_assert!(resident * PAGE_SIZE.bytes() <= cap.bytes());
        }
        // Liveness: every distinct fault completes at least one access,
        // so faults can never exceed the total access count.
        prop_assert!(
            r.far_faults <= total_accesses,
            "faults {} must be bounded by accesses {}",
            r.far_faults, total_accesses
        );
        // Time is positive and finite.
        prop_assert!(r.total_ms() > 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// Determinism: identical configurations produce identical runs,
    /// regardless of policy randomness (seeded RNG).
    #[test]
    fn randomized_runs_are_deterministic(
        pages in 64u64..512,
        seed in any::<u64>(),
        prefetch in prefetch_strategy(),
        evict in evict_strategy(),
    ) {
        let w = RandomWorkload { pages, kernels: 2, blocks: 4, accesses_per_block: 16, seed };
        let opts = || {
            let mut o = RunOptions::default().with_prefetch(prefetch).with_evict(evict);
            o.memory_frac = Some(1.10);
            o
        };
        let a = run_workload(&w, opts());
        let b = run_workload(&w, opts());
        prop_assert_eq!(a.total_time, b.total_time);
        prop_assert_eq!(a.far_faults, b.far_faults);
        prop_assert_eq!(a.pages_evicted, b.pages_evicted);
        prop_assert_eq!(a.pages_thrashed, b.pages_thrashed);
    }
}

/// Direct engine-level property: page residency reported by the GMMU
/// always matches what a sweep of accesses observes (no phantom TLB
/// state after evictions).
#[test]
fn tlb_shootdown_keeps_engine_and_gmmu_consistent() {
    use uvm_core::{Gmmu, UvmConfig};
    let cfg = UvmConfig::default()
        .with_capacity(Bytes::kib(256)) // 64 frames
        .with_prefetch(PrefetchPolicy::SequentialLocal)
        .with_evict(EvictPolicy::SequentialLocal);
    let mut gmmu = Gmmu::new(cfg);
    let base = gmmu.malloc_managed(Bytes::mib(1));
    let mut engine = Engine::new(gmmu, GpuConfig::default());
    // Three sweeps over 256 pages through a 64-frame budget: massive
    // eviction churn. The engine must never observe stale residency.
    for sweep in 0..3 {
        let k = KernelSpec::new(format!("sweep{sweep}")).with_block(
            ThreadBlockSpec::from_accesses(
                (0..256).map(move |i| Access::read(base.offset(PAGE_SIZE * i))),
            ),
        );
        engine.run_kernel(k);
    }
    let stats = engine.gmmu().stats();
    assert!(stats.pages_evicted > 0);
    assert!(stats.far_faults <= 3 * 256);
    assert_eq!(
        engine.gmmu().resident_pages(),
        engine.gmmu().capacity_frames()
    );
}
