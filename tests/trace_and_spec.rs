//! Integration tests for the `PolicySpec` API and the `UVMT` trace
//! subsystem (DESIGN.md §10).
//!
//! Four guarantees are pinned here, at the whole-simulator level
//! rather than per-crate:
//!
//! * every policy in the registry — bare, aliased, and parameterized —
//!   round-trips through the `name:key=val,...` string grammar and
//!   canonicalization;
//! * a trace exported by a real run decodes back to the run's
//!   metadata and a well-formed record stream, and corruption anywhere
//!   in the file is detected;
//! * turning trace export *on* does not perturb the simulation: the
//!   exporting run produces the exact statistics of the plain run
//!   (which `golden_fixtures.rs` in turn pins byte-for-byte to the
//!   committed fixtures);
//! * the history-based `markov` prefetcher is deterministic across
//!   executor worker counts — `--jobs 1` and `--jobs 8` must be
//!   bit-for-bit interchangeable.

use std::path::PathBuf;

use uvm_core::trace::decode_trace;
use uvm_core::{EvictPolicy, PolicyRegistry, PolicySpec, PrefetchPolicy};
use uvm_sim::{run_workload, Executor, RunOptions, RunResult};
use uvm_workloads::Hotspot;

/// The golden-fixture workload (see `golden_fixtures.rs`): small
/// enough to simulate in milliseconds, rich enough to evict and
/// prefetch under 110 % over-subscription.
fn workload() -> Hotspot {
    Hotspot {
        rows: 512,
        iterations: 3,
        rows_per_block: 16,
    }
}

/// A scratch directory under the target-adjacent temp dir, cleaned on
/// entry so reruns never see stale files.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("uvm-trace-spec-tests").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn every_registered_policy_spec_round_trips() {
    let reg = PolicyRegistry::builtin();

    let roundtrip = |spec: &PolicySpec| {
        let reparsed: PolicySpec = spec.to_string().parse().unwrap_or_else(|e| {
            panic!("{spec} failed to reparse: {e}");
        });
        assert_eq!(&reparsed, spec, "Display/FromStr round-trip for {spec}");
    };

    for e in reg.prefetchers() {
        // Bare canonical name.
        let bare = PolicySpec::new(e.name);
        roundtrip(&bare);
        assert_eq!(reg.canonical_prefetch_spec(&bare).unwrap(), bare);
        // Every alias canonicalizes to the same name.
        for alias in e.aliases {
            let got = reg
                .canonical_prefetch_spec(&PolicySpec::new(*alias))
                .unwrap_or_else(|err| panic!("alias {alias}: {err}"));
            assert_eq!(got.name(), e.name, "alias {alias}");
        }
        // Every declared parameter is accepted and survives the
        // string grammar (values are validated at build time, not
        // canonicalization time, so a placeholder works for all).
        for p in e.params {
            let spec = PolicySpec::new(e.name).with_param(p.key, "7");
            roundtrip(&spec);
            let got = reg
                .canonical_prefetch_spec(&spec)
                .unwrap_or_else(|err| panic!("{spec}: {err}"));
            assert_eq!(got.param(p.key), Some("7"));
        }
    }

    for e in reg.evictors() {
        let bare = PolicySpec::new(e.name);
        roundtrip(&bare);
        assert_eq!(reg.canonical_evict_spec(&bare).unwrap(), bare);
        for alias in e.aliases {
            let got = reg
                .canonical_evict_spec(&PolicySpec::new(*alias))
                .unwrap_or_else(|err| panic!("alias {alias}: {err}"));
            assert_eq!(got.name(), e.name, "alias {alias}");
        }
        for p in e.params {
            let spec = PolicySpec::new(e.name).with_param(p.key, "7");
            roundtrip(&spec);
            let got = reg
                .canonical_evict_spec(&spec)
                .unwrap_or_else(|err| panic!("{spec}: {err}"));
            assert_eq!(got.param(p.key), Some("7"));
        }
    }
}

#[test]
fn exported_trace_round_trips_and_detects_corruption() {
    let dir = scratch("roundtrip");
    let path = dir.join("hotspot.uvmt");
    let r = run_workload(
        &workload(),
        RunOptions::default()
            .with_prefetch(PrefetchPolicy::None)
            .with_memory_frac(1.10)
            .with_trace_export(&path),
    );

    let bytes = std::fs::read(&path).expect("exported trace exists");
    let (meta, records) = decode_trace(&bytes).expect("exported trace decodes");
    assert_eq!(meta.workload, "hotspot");
    assert_eq!(meta.prefetch, "none");
    assert!(
        records.len() as u64 >= r.far_faults,
        "trace carries at least one record per far-fault ({} < {})",
        records.len(),
        r.far_faults
    );
    assert!(
        records.windows(2).all(|w| w[0].cycle <= w[1].cycle),
        "record cycles are non-decreasing"
    );

    // Corruption anywhere — header, varint stream, or tail — fails
    // the checksum (or the structural decode) rather than yielding
    // silently wrong records.
    for pos in [8, bytes.len() / 2, bytes.len() - 1] {
        let mut bad = bytes.clone();
        bad[pos] ^= 0xff;
        assert!(
            decode_trace(&bad).is_err(),
            "flipped byte at {pos} must not decode"
        );
    }
    let truncated = &bytes[..bytes.len() - 7];
    assert!(
        decode_trace(truncated).is_err(),
        "truncated trace must not decode"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_export_does_not_perturb_the_simulation() {
    // The golden-fixture configuration, with and without export. The
    // plain run is pinned byte-for-byte by `golden_fixtures.rs`, so
    // equality here proves the exporting run matches the committed
    // fixtures too.
    let dir = scratch("guard");
    let opts = RunOptions::default()
        .with_prefetch(PrefetchPolicy::TreeBasedNeighborhood)
        .with_evict(EvictPolicy::LruPage)
        .with_memory_frac(1.10);
    let plain = run_workload(&workload(), opts.clone());
    let exported = run_workload(&workload(), opts.with_trace_export(dir.join("guard.uvmt")));

    let stats = |r: &RunResult| {
        (
            r.total_time.cycles(),
            r.kernel_times
                .iter()
                .map(|t| t.cycles())
                .collect::<Vec<_>>(),
            r.far_faults,
            r.pages_migrated,
            r.pages_prefetched,
            r.pages_evicted,
            r.pages_thrashed,
            r.read_bytes.bytes(),
            r.write_bytes.bytes(),
        )
    };
    assert_eq!(stats(&plain), stats(&exported));
    assert!(
        dir.join("guard.uvmt").exists(),
        "export still wrote the file"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn markov_runs_are_identical_across_worker_counts() {
    let w = workload();
    let specs = [
        PolicySpec::new("markov"),
        PolicySpec::new("markov").with_param("depth", "1"),
    ];
    let fracs = [1.10, 1.25];

    let run_all = |jobs: usize| -> Vec<(u64, u64, Vec<u64>)> {
        let exec = Executor::new(jobs);
        let mut plan = exec.plan();
        for spec in &specs {
            for &frac in &fracs {
                plan.submit(
                    &w,
                    RunOptions::default()
                        .with_prefetch(spec)
                        .with_evict(EvictPolicy::LruPage)
                        .with_memory_frac(frac),
                );
            }
        }
        plan.execute()
            .iter()
            .map(|r| {
                (
                    r.far_faults,
                    r.pages_prefetched,
                    r.kernel_times.iter().map(|t| t.cycles()).collect(),
                )
            })
            .collect()
    };

    assert_eq!(run_all(1), run_all(8), "--jobs 1 and --jobs 8 diverged");
}
