//! Golden-fixture suite for the Mosaic-style huge-page policy pair.
//!
//! The smoke-scale hotspot workload is simulated under MOSp/MOSe —
//! cold, warmed (forked from the shared TBNp+LRU-4KB warm-up the
//! sweep executor uses), and cross-paired with the paper policies —
//! and the resulting statistics, including the huge-page mechanism
//! counters (coalesces, splinters, allocator splits/merges), are
//! compared byte-for-byte against committed JSON fixtures under
//! `tests/fixtures/`. A passing run pins the whole promote/demote
//! pipeline: contiguous placement, coalesce timing, splinter-before-
//! evict, and the huge-TLB fast path.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```sh
//! UVM_UPDATE_GOLDEN=1 cargo test -p uvm-sim --test huge_page_fixtures
//! ```

use std::fs;
use std::path::PathBuf;

use uvm_core::{EvictPolicy, PrefetchPolicy};
use uvm_sim::{run_workload, RunOptions, RunResult, Warmup};
use uvm_workloads::Hotspot;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

/// Same smoke-scale workload as the paper-policy golden fixtures:
/// iterative re-touching over a multi-large-page footprint, so the
/// coalescer sees fully-resident 2 MB spans and eviction pressure
/// forces splinters.
fn workload() -> Hotspot {
    Hotspot {
        rows: 512,
        iterations: 3,
        rows_per_block: 16,
    }
}

/// The cells this suite pins: the Mosaic pair cold and warmed, plus
/// each Mosaic policy cross-paired with its paper counterpart (those
/// exercise coalescing-without-splintering and vice versa).
fn cells() -> [(&'static str, PrefetchPolicy, EvictPolicy, Option<Warmup>); 4] {
    [
        (
            "cold",
            PrefetchPolicy::MosaicCoalesce,
            EvictPolicy::MosaicSplinter,
            None,
        ),
        (
            "warmed",
            PrefetchPolicy::MosaicCoalesce,
            EvictPolicy::MosaicSplinter,
            Some(Warmup::default()),
        ),
        (
            "cold",
            PrefetchPolicy::MosaicCoalesce,
            EvictPolicy::TreeBasedNeighborhood,
            None,
        ),
        (
            "cold",
            PrefetchPolicy::TreeBasedNeighborhood,
            EvictPolicy::MosaicSplinter,
            None,
        ),
    ]
}

/// The paper-fixture encoding extended with the access denominator
/// and every huge-page mechanism counter.
fn encode(r: &RunResult) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"name\": \"{}\",\n", r.name));
    s.push_str(&format!(
        "  \"total_time_cycles\": {},\n",
        r.total_time.cycles()
    ));
    let kt: Vec<String> = r
        .kernel_times
        .iter()
        .map(|t| t.cycles().to_string())
        .collect();
    s.push_str(&format!(
        "  \"kernel_times_cycles\": [{}],\n",
        kt.join(", ")
    ));
    s.push_str(&format!("  \"accesses\": {},\n", r.accesses));
    s.push_str(&format!("  \"far_faults\": {},\n", r.far_faults));
    s.push_str(&format!("  \"pages_migrated\": {},\n", r.pages_migrated));
    s.push_str(&format!(
        "  \"pages_prefetched\": {},\n",
        r.pages_prefetched
    ));
    s.push_str(&format!("  \"pages_evicted\": {},\n", r.pages_evicted));
    s.push_str(&format!("  \"pages_thrashed\": {},\n", r.pages_thrashed));
    s.push_str(&format!("  \"prefetched_used\": {},\n", r.prefetched_used));
    s.push_str(&format!(
        "  \"prefetched_wasted\": {},\n",
        r.prefetched_wasted
    ));
    s.push_str(&format!(
        "  \"clean_pages_written_back\": {},\n",
        r.clean_pages_written_back
    ));
    s.push_str(&format!(
        "  \"read_transfers_4k\": {},\n",
        r.read_transfers_4k
    ));
    s.push_str(&format!("  \"read_transfers\": {},\n", r.read_transfers));
    s.push_str(&format!("  \"read_bytes\": {},\n", r.read_bytes.bytes()));
    s.push_str(&format!("  \"write_bytes\": {},\n", r.write_bytes.bytes()));
    let hp = &r.huge_pages;
    s.push_str(&format!("  \"hp_coalesces\": {},\n", hp.coalesces));
    s.push_str(&format!("  \"hp_splinters\": {},\n", hp.splinters));
    s.push_str(&format!(
        "  \"hp_forced_splinters\": {},\n",
        hp.forced_splinters
    ));
    s.push_str(&format!("  \"hp_alloc_splits\": {},\n", hp.alloc_splits));
    s.push_str(&format!("  \"hp_alloc_merges\": {},\n", hp.alloc_merges));
    s.push_str(&format!(
        "  \"hp_regions_reserved\": {},\n",
        hp.regions_reserved
    ));
    s.push_str(&format!("  \"hp_region_steals\": {}\n", hp.region_steals));
    s.push_str("}\n");
    s
}

#[test]
fn huge_page_fixtures_match() {
    let update = std::env::var("UVM_UPDATE_GOLDEN").is_ok();
    let dir = fixture_dir();
    if update {
        fs::create_dir_all(&dir).expect("create fixture dir");
    }
    let w = workload();
    for (label, prefetch, evict, warmup) in cells() {
        let mut opts = RunOptions::default()
            .with_prefetch(prefetch)
            .with_evict(evict)
            .with_memory_frac(1.10);
        if let Some(warmup) = warmup {
            opts = opts.with_warmup(warmup);
        }
        let r = run_workload(&w, opts);
        // Liveness: the cold Mosaic pair must actually promote.
        // Warmed runs inherit the warm-up's fragmented frame pool
        // (scattered LRU-4KB holes, no free 2 MB region at capacity),
        // so zero coalesces there is the *correct* physical outcome —
        // exactly the fragmentation argument for allocator cooperation
        // from first touch; DESIGN.md §9 discusses the asymmetry.
        if label == "cold"
            && prefetch == PrefetchPolicy::MosaicCoalesce
            && evict == EvictPolicy::MosaicSplinter
        {
            assert!(
                r.huge_pages.coalesces > 0,
                "{label}: MOSp+MOSe never promoted a huge page — the \
                 mechanism is dead and the fixture would pin a no-op"
            );
        }
        let encoded = encode(&r);
        let path = dir.join(format!("hotspot_huge_{prefetch}_{evict}_{label}.json"));
        if update {
            fs::write(&path, &encoded).expect("write fixture");
        } else {
            let committed = fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing fixture {} ({e}); run with UVM_UPDATE_GOLDEN=1 \
                     to generate",
                    path.display()
                )
            });
            assert_eq!(
                committed,
                encoded,
                "{prefetch}+{evict} ({label}): simulation output drifted \
                 from the committed fixture {}",
                path.display()
            );
        }
    }
}

/// The huge-page counters stay exactly zero for every paper policy
/// pair: the mechanism must be unobservable unless a Mosaic policy is
/// selected (this is what keeps the 20 paper fixtures byte-identical).
#[test]
fn paper_policies_never_touch_the_huge_page_machinery() {
    let w = workload();
    for prefetch in [PrefetchPolicy::None, PrefetchPolicy::TreeBasedNeighborhood] {
        for evict in [EvictPolicy::LruPage, EvictPolicy::LruLargePage] {
            let r = run_workload(
                &w,
                RunOptions::default()
                    .with_prefetch(prefetch)
                    .with_evict(evict)
                    .with_memory_frac(1.10),
            );
            assert!(
                r.huge_pages.is_clean(),
                "{prefetch}+{evict}: huge-page counters moved: {:?}",
                r.huge_pages
            );
        }
    }
}
