//! SIGKILL crash-recovery: a sweep killed mid-flight resumes
//! byte-identically (DESIGN.md §12).
//!
//! The test re-invokes its own test binary as a child process running
//! the same sweep (spill cache + write-ahead journal + per-run
//! checkpoints), waits until the first member's result has been
//! durably spilled, and SIGKILLs the child — no destructors, no
//! flushing, the honest crash. The parent then replays the sweep with
//! [`Plan::resume`] against the same directories and asserts that
//!
//! * the sweep completes, with journal-vouched members served from the
//!   spill cache (`recovered`) and interrupted members restarted
//!   (`resumed`);
//! * every result is byte-identical to a clean, never-crashed
//!   reference sweep.

use std::fs;
use std::path::Path;
use std::process::Command;
use std::time::{Duration, Instant};

use uvm_core::{EvictPolicy, PrefetchPolicy};
use uvm_sim::{Executor, RunOptions};
use uvm_workloads::Hotspot;

const DIR_ENV: &str = "UVM_KILL_RESUME_DIR";

fn workload() -> Hotspot {
    Hotspot {
        rows: 512,
        iterations: 3,
        rows_per_block: 16,
    }
}

/// The sweep both the child and the resuming parent submit: four
/// distinct policy pairs at 110 % over-subscription.
fn members() -> Vec<(PrefetchPolicy, EvictPolicy)> {
    vec![
        (PrefetchPolicy::None, EvictPolicy::LruPage),
        (PrefetchPolicy::Random, EvictPolicy::RandomPage),
        (
            PrefetchPolicy::SequentialLocal,
            EvictPolicy::SequentialLocal,
        ),
        (
            PrefetchPolicy::TreeBasedNeighborhood,
            EvictPolicy::TreeBasedNeighborhood,
        ),
    ]
}

fn options(dir: &Path, prefetch: PrefetchPolicy, evict: EvictPolicy) -> RunOptions {
    RunOptions::default()
        .with_prefetch(prefetch)
        .with_evict(evict)
        .with_memory_frac(1.10)
        .with_checkpoint(dir.join("ckpt"), 1)
}

fn sweep_executor(dir: &Path) -> Executor {
    Executor::new(1)
        .with_spill_dir(dir.join("cache"))
        .with_journal(dir.join("sweep.journal"))
}

/// Child role: run the whole sweep sequentially; the parent SIGKILLs
/// us somewhere in the middle.
fn child(dir: &Path) {
    let exec = sweep_executor(dir);
    let w = workload();
    let mut plan = exec.plan();
    for (p, e) in members() {
        plan.submit(&w, options(dir, p, e));
    }
    let _ = plan.try_execute();
}

fn spilled_entries(cache: &Path) -> usize {
    fs::read_dir(cache).map_or(0, |d| {
        d.filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .count()
    })
}

#[test]
fn killed_sweep_resumes_byte_identically() {
    // The same test function serves as the child's entry point,
    // selected by the directory handed down through the environment.
    if let Some(dir) = std::env::var_os(DIR_ENV) {
        child(Path::new(&dir));
        return;
    }

    let dir = std::env::temp_dir().join(format!("uvm-kill-resume-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();

    // Phase 1: spawn the sweep as a child process and SIGKILL it as
    // soon as its first member has been durably spilled.
    let exe = std::env::current_exe().unwrap();
    let mut kid = Command::new(&exe)
        .arg("--exact")
        .arg("killed_sweep_resumes_byte_identically")
        .arg("--nocapture")
        .env(DIR_ENV, &dir)
        .spawn()
        .expect("spawn child sweep");
    let cache = dir.join("cache");
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        if spilled_entries(&cache) >= 1 {
            break;
        }
        if let Some(status) = kid.try_wait().unwrap() {
            panic!("child sweep exited before producing a spill entry: {status}");
        }
        assert!(
            Instant::now() < deadline,
            "child sweep produced no spill entry within the deadline"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    kid.kill().expect("SIGKILL the child sweep");
    kid.wait().unwrap();
    assert!(
        dir.join("sweep.journal").exists(),
        "the write-ahead journal survived the kill"
    );

    // Phase 2: resume the identical sweep against the same
    // directories. Journal-vouched members come from the spill cache;
    // interrupted members restart (from their checkpoints when one
    // was written before the kill).
    let exec = sweep_executor(&dir);
    let w = workload();
    let mut plan = exec.plan();
    for (p, e) in members() {
        plan.submit(&w, options(&dir, p, e));
    }
    let report = plan.resume();
    assert!(
        report.is_complete(),
        "resumed sweep completes: {:?}",
        report.failures
    );
    assert!(
        report.recovered >= 1,
        "at least the member spilled before the kill is recovered"
    );
    assert!(
        report.resumed >= 1,
        "the journal attributed at least one interrupted member"
    );

    // Phase 3: byte-identity against a sweep that never crashed —
    // cold runs without checkpointing, spilling, or journaling.
    let reference = Executor::new(1);
    for ((p, e), resumed) in members().into_iter().zip(&report.results) {
        let plain = RunOptions::default()
            .with_prefetch(p)
            .with_evict(e)
            .with_memory_frac(1.10);
        let clean = reference.run_one(&w, plain);
        let resumed = resumed.as_ref().expect("complete report has every result");
        assert_eq!(
            format!("{clean:?}"),
            format!("{resumed:?}"),
            "{p}+{e}: resumed sweep drifted from the uninterrupted reference"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}
