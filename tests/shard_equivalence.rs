//! Equivalence suite for the sharded engine (DESIGN.md §13).
//!
//! The contract under test: `RunOptions::with_engine_threads(n)` — the
//! SM-sharded executor with deterministic epoch barriers — produces
//! **byte-identical** results to the serial event loop at every width,
//! for every fixture configuration the golden suites pin down
//! (4 paper prefetchers × 5 paper evictors, plus the 4 Mosaic
//! huge-page cells), under chaos fault injection with the invariant
//! auditor enabled, through the forced multi-worker speculation/
//! rollback executor, and across checkpoint/resume with the width
//! changed mid-lineage. Every sharded case runs twice so a hidden
//! dependence on residual process state would also fail loudly.
//!
//! Identity is asserted on the full `Debug` projection of
//! [`RunResult`] — every counter, every per-launch kernel time, the
//! huge-page mechanism stats, and the fault-injection tallies.

use std::fs;
use std::path::PathBuf;

use uvm_core::{EvictPolicy, FaultPlan, PrefetchPolicy};
use uvm_sim::{run_workload, RunOptions, RunResult, Warmup};
use uvm_workloads::Hotspot;

/// The widths the suite sweeps against the serial baseline: the
/// explicit serial width, even/odd shard counts, and one above the
/// host's core count.
const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// The same smoke workload the golden fixtures pin down.
fn workload() -> Hotspot {
    Hotspot {
        rows: 512,
        iterations: 3,
        rows_per_block: 16,
    }
}

fn options(prefetch: PrefetchPolicy, evict: EvictPolicy) -> RunOptions {
    RunOptions::default()
        .with_prefetch(prefetch)
        .with_evict(evict)
        .with_memory_frac(1.10)
}

/// Everything a run reports, rendered for byte comparison.
fn observe(r: &RunResult) -> String {
    format!("{r:?}")
}

/// Asserts `opts` at every sharded width — each width twice — against
/// the serial result, labelling failures with `tag`.
fn assert_width_invariant(tag: &str, opts: &RunOptions) {
    let serial = observe(&run_workload(&workload(), opts.clone()));
    for width in WIDTHS {
        for rep in 1..=2 {
            let sharded = observe(&run_workload(
                &workload(),
                opts.clone().with_engine_threads(width),
            ));
            assert_eq!(
                serial, sharded,
                "{tag}: width {width} (repeat {rep}) diverged from serial"
            );
        }
    }
}

#[test]
fn every_paper_policy_pair_is_width_invariant() {
    for prefetch in PrefetchPolicy::ALL {
        for evict in EvictPolicy::ALL {
            assert_width_invariant(&format!("{prefetch}+{evict}"), &options(prefetch, evict));
        }
    }
}

#[test]
fn every_huge_page_cell_is_width_invariant() {
    // The four Mosaic cells of `huge_page_fixtures.rs`: the pair cold
    // and warmed, plus each cross-pairing with its paper counterpart.
    let cells: [(PrefetchPolicy, EvictPolicy, Option<Warmup>); 4] = [
        (
            PrefetchPolicy::MosaicCoalesce,
            EvictPolicy::MosaicSplinter,
            None,
        ),
        (
            PrefetchPolicy::MosaicCoalesce,
            EvictPolicy::MosaicSplinter,
            Some(Warmup::default()),
        ),
        (
            PrefetchPolicy::MosaicCoalesce,
            EvictPolicy::TreeBasedNeighborhood,
            None,
        ),
        (
            PrefetchPolicy::TreeBasedNeighborhood,
            EvictPolicy::MosaicSplinter,
            None,
        ),
    ];
    for (prefetch, evict, warmup) in cells {
        let mut opts = options(prefetch, evict);
        let tag = match warmup {
            Some(w) => {
                opts = opts.with_warmup(w);
                format!("{prefetch}+{evict} warmed")
            }
            None => format!("{prefetch}+{evict} cold"),
        };
        assert_width_invariant(&tag, &opts);
    }
}

#[test]
fn chaos_injection_with_audit_is_width_invariant() {
    // Chaos fault injection draws from the GMMU's RNG streams at every
    // serviced fault, so one out-of-order fault anywhere diverges the
    // whole tail; the auditor cross-checks TLB/directory invariants at
    // every kernel boundary on top.
    let opts = options(PrefetchPolicy::TreeBasedNeighborhood, EvictPolicy::LruPage)
        .with_fault_plan(FaultPlan::chaos().with_seed(0xfa11))
        .with_audit(true);
    assert_width_invariant("chaos+audit", &opts);
}

#[test]
fn forced_threaded_executor_is_width_invariant() {
    // `UVM_ENGINE_OS_THREADS` forces the journaled multi-worker epoch
    // executor (speculation, rollback, frontier-capped commits) even
    // on a single-CPU host. The serial baseline inside the helper is
    // unaffected: width 1 never consults the executor. Concurrent
    // tests in this binary at most also take the threaded executor,
    // which is result-inert by the very contract under test.
    std::env::set_var("UVM_ENGINE_OS_THREADS", "3");
    let opts = options(
        PrefetchPolicy::SequentialLocal,
        EvictPolicy::SequentialLocal,
    );
    assert_width_invariant("forced-threaded", &opts);
    std::env::remove_var("UVM_ENGINE_OS_THREADS");
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "uvm-shard-equiv-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn checkpoint_resume_survives_a_width_change() {
    // Checkpoints are only taken at kernel boundaries — exactly the
    // sharded engine's barrier-quiescent points — and the width is not
    // part of a run's identity, so a lineage may change width at every
    // resume and still replay byte-identically.
    let opts =
        options(PrefetchPolicy::TreeBasedNeighborhood, EvictPolicy::LruPage).with_audit(true);
    let reference = observe(&run_workload(&workload(), opts.clone()));

    let dir = tempdir("width-change");
    // Full sharded run laying down checkpoints at every boundary.
    let first = run_workload(
        &workload(),
        opts.clone().with_engine_threads(4).with_checkpoint(&dir, 1),
    );
    assert_eq!(reference, observe(&first), "checkpointed sharded run");
    // Each subsequent run resumes from the latest surviving checkpoint
    // (the last mid-run boundary) and finishes at a *different* width.
    for width in [1, 8, 2] {
        let resumed = run_workload(
            &workload(),
            opts.clone()
                .with_engine_threads(width)
                .with_checkpoint(&dir, 1),
        );
        assert_eq!(
            reference,
            observe(&resumed),
            "resume at width {width} diverged"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}
