//! Fork-equivalence differential suite for sweep prefix forking.
//!
//! The whole snapshot/fork optimisation rests on one invariant: a run
//! resumed from a forked warm-up snapshot is **byte-identical** to the
//! same run simulated cold (warm-up in place, no snapshot). This suite
//! asserts that invariant over the same workload and policy grid the
//! golden fixtures pin down, plus the `chaos` fault-injection profile,
//! and checks that a snapshot shares no mutable state with its forks.
//!
//! The cold path swaps policies *in place* while the forked path
//! deep-clones the engine first, so equality here genuinely exercises
//! the clone: a policy, TLB, queue, or channel field that cloned
//! shallowly (or not at all) would desynchronise the tails.

use uvm_core::{EvictPolicy, FaultPlan, PrefetchPolicy};
use uvm_sim::{resume_run, run_workload, simulate_prefix, Executor, RunOptions, RunResult, Warmup};
use uvm_workloads::Hotspot;

/// The golden-fixture workload: iterative re-touching, multi-large-page
/// footprint, eviction under 110 % over-subscription.
fn workload() -> Hotspot {
    Hotspot {
        rows: 512,
        iterations: 3,
        rows_per_block: 16,
    }
}

fn options(prefetch: PrefetchPolicy, evict: EvictPolicy) -> RunOptions {
    RunOptions::default()
        .with_prefetch(prefetch)
        .with_evict(evict)
        .with_memory_frac(1.10)
        .with_warmup(Warmup::default())
}

/// Byte-exact rendering of every `RunResult` field (floats included:
/// `Debug` prints the shortest round-trippable form, so equal strings
/// mean equal bit patterns for all practical outputs).
fn encode(r: &RunResult) -> String {
    format!("{r:#?}")
}

#[test]
fn forked_tails_match_cold_runs_for_every_paper_policy_pair() {
    let w = workload();
    // One shared prefix serves the whole 4×5 grid: the warm-up pair is
    // fixed, only the tail policies vary.
    let prefix = simulate_prefix(&w, &options(PrefetchPolicy::None, EvictPolicy::LruPage));
    assert_eq!(prefix.warm_launches(), 1);
    assert!(prefix.tail_launches() >= 1);

    let mut checked = 0usize;
    for prefetch in PrefetchPolicy::ALL {
        for evict in EvictPolicy::ALL {
            let opts = options(prefetch, evict);
            let cold = run_workload(&w, opts.clone());
            let forked = resume_run(&prefix, &opts);
            assert_eq!(
                encode(&cold),
                encode(&forked),
                "{prefetch}+{evict}: forked tail diverged from the cold run"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, PrefetchPolicy::ALL.len() * EvictPolicy::ALL.len());
}

#[test]
fn forked_tails_match_cold_runs_under_chaos_fault_injection() {
    let w = workload();
    let chaos = |prefetch, evict| {
        options(prefetch, evict).with_fault_plan(FaultPlan::chaos().with_seed(0xfa11))
    };
    let prefix = simulate_prefix(&w, &chaos(PrefetchPolicy::None, EvictPolicy::LruPage));
    for (prefetch, evict) in [
        (PrefetchPolicy::None, EvictPolicy::LruPage),
        (
            PrefetchPolicy::TreeBasedNeighborhood,
            EvictPolicy::RandomPage,
        ),
        (PrefetchPolicy::Random, EvictPolicy::LruLargePage),
    ] {
        let opts = chaos(prefetch, evict);
        let cold = run_workload(&w, opts.clone());
        let forked = resume_run(&prefix, &opts);
        assert_eq!(
            encode(&cold),
            encode(&forked),
            "{prefetch}+{evict}: chaos run diverged after forking"
        );
    }
}

#[test]
fn forks_share_no_mutable_state_with_the_snapshot_or_each_other() {
    let w = workload();
    let opts_a = options(PrefetchPolicy::None, EvictPolicy::RandomPage);
    let opts_b = options(PrefetchPolicy::TreeBasedNeighborhood, EvictPolicy::LruPage);

    let prefix = simulate_prefix(&w, &opts_a);
    let first_a = resume_run(&prefix, &opts_a);
    // A second fork with different tail policies diverges on its own…
    let first_b = resume_run(&prefix, &opts_b);
    assert_ne!(
        encode(&first_a),
        encode(&first_b),
        "different tail policies should produce different runs"
    );
    // …and neither fork wrote anything back into the prefix: replaying
    // each fork gives the exact same bytes as the first time.
    let second_a = resume_run(&prefix, &opts_a);
    let second_b = resume_run(&prefix, &opts_b);
    assert_eq!(encode(&first_a), encode(&second_a));
    assert_eq!(encode(&first_b), encode(&second_b));

    // Dropping the prefix leaves completed results fully owned.
    drop(prefix);
    assert_eq!(first_a.kernel_times.len(), second_a.kernel_times.len());
}

#[test]
fn executor_prefix_forking_matches_the_unforked_executor() {
    let w = workload();
    let run_grid = |exec: &Executor| {
        let mut plan = exec.plan();
        for prefetch in PrefetchPolicy::ALL {
            for evict in EvictPolicy::ALL {
                plan.submit(&w, options(prefetch, evict));
            }
        }
        plan.execute()
    };

    let forked_exec = Executor::new(4);
    let forked = run_grid(&forked_exec);
    assert_eq!(forked_exec.prefixes_simulated(), 1);

    let cold_exec = Executor::new(4).with_prefix_forking(false);
    let cold = run_grid(&cold_exec);
    assert_eq!(cold_exec.prefixes_simulated(), 0);

    for (f, c) in forked.iter().zip(&cold) {
        assert_eq!(encode(f), encode(c));
    }
}
