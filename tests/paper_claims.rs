//! Qualitative reproduction tests: the paper's headline claims must
//! hold, in direction and rough magnitude, on the smoke-scale suite.
//!
//! Each test regenerates (part of) a figure and asserts the ordering
//! the paper reports. Absolute numbers differ from the paper — our
//! substrate is a simulator, not a GTX 1080ti — but who wins, and by
//! roughly what factor, must match.

use std::sync::OnceLock;

use uvm_sim::experiments::{
    eviction_isolation, lru_reservation, oversubscription_sweep, policy_combinations,
    prefetcher_sweep, suite, table1, tbn_oversubscription_sensitivity, tbne_vs_2mb, Scale,
};
use uvm_sim::Executor;

/// One executor shared by every test in this binary: figures that
/// project the same runs (3/4/5, 9/10, ...) are simulated once.
fn exec() -> &'static Executor {
    static EXEC: OnceLock<Executor> = OnceLock::new();
    EXEC.get_or_init(|| Executor::new(2))
}

const BENCHMARKS: [&str; 7] = [
    "backprop",
    "bfs",
    "gaussian",
    "hotspot",
    "nw",
    "pathfinder",
    "srad",
];
const STREAMING: [&str; 2] = ["backprop", "pathfinder"];

fn is_streaming(b: &str) -> bool {
    STREAMING.contains(&b)
}

/// Table 1: the interconnect model reproduces the measured bandwidths.
#[test]
fn table1_bandwidths_match_the_paper() {
    let t = table1();
    for (kb, gbps) in [
        ("4", 3.2219),
        ("16", 6.4437),
        ("64", 8.4771),
        ("256", 10.508),
        ("1024", 11.223),
    ] {
        let got = t.value(kb, "bandwidth_gbps").unwrap();
        assert!((got - gbps).abs() < 1e-3, "{kb} KB: {got} vs {gbps}");
    }
}

/// Figs. 3-5 (Sec. 4.1): every prefetcher beats on-demand paging;
/// TBNp is the best or tied-best; far-faults drop in the order
/// none > Rp > SLp > TBNp; bandwidth rises in the same order.
#[test]
fn prefetchers_beat_on_demand_paging_and_tbnp_wins() {
    let sweep = prefetcher_sweep(exec(), Scale::Smoke);
    for b in BENCHMARKS {
        let time = |p| sweep.time.value(b, p).unwrap();
        let faults = |p| sweep.faults.value(b, p).unwrap();
        let bw = |p| sweep.bandwidth.value(b, p).unwrap();

        // Fig. 3: all prefetchers improve; TBNp at least ~4x vs none.
        assert!(time("Rp") < time("none"), "{b}: Rp must beat none");
        assert!(time("SLp") < time("Rp"), "{b}: SLp must beat Rp");
        assert!(
            time("TBNp") * 4.0 < time("none"),
            "{b}: TBNp must be >4x faster than on-demand"
        );
        // TBNp is best or within 10% of SLp (srad's streaming phase
        // leaves them nearly tied).
        assert!(time("TBNp") < time("SLp") * 1.10, "{b}: TBNp ~best");

        // Fig. 5: far-fault ordering is strict.
        assert!(faults("Rp") < faults("none"), "{b}: Rp fault count");
        assert!(faults("SLp") < faults("Rp"), "{b}: SLp fault count");
        assert!(faults("TBNp") < faults("SLp"), "{b}: TBNp fault count");

        // Fig. 4: 4 KB-only migration pins bandwidth at Table 1's 4 KB
        // row; block prefetchers climb toward the large-transfer rows.
        assert!((bw("none") - 3.2219).abs() < 0.01, "{b}: none bw");
        assert!((bw("Rp") - 3.2219).abs() < 0.01, "{b}: Rp bw");
        assert!(bw("SLp") > 7.0, "{b}: SLp bw");
        assert!(bw("TBNp") > bw("SLp"), "{b}: TBNp bw highest");
    }
}

/// Fig. 6 (Sec. 4.2): even a small over-subscription degrades reuse
/// benchmarks drastically; streaming benchmarks are insensitive to the
/// over-subscription *percentage*; the free-page buffer does not help
/// (and clearly hurts nw).
#[test]
fn oversubscription_hurts_and_free_page_buffer_does_not_help() {
    let sweep = oversubscription_sweep(exec(), Scale::Smoke);
    for b in BENCHMARKS {
        let t = |col| sweep.time.value(b, col).unwrap();
        if is_streaming(b) {
            // Insensitive across over-subscription percentages.
            assert!(
                t("125%") < 2.0 * t("105%"),
                "{b}: streaming stays flat across oversubscription"
            );
        } else {
            assert!(
                t("105%") > 1.4 * t("100%"),
                "{b}: small over-subscription already hurts"
            );
            assert!(t("125%") > t("105%") * 0.9, "{b}: more pressure, more pain");
        }
        // The free-page buffer never helps much (within 15%), and the
        // bigger buffer is never better than the smaller one by much.
        assert!(
            t("110%+buf10") > 0.85 * t("110%"),
            "{b}: buffer must not look like a win"
        );
    }
    // The paper's sharpest case: nw with a buffer is far worse.
    let t = |col| sweep.time.value("nw", col).unwrap();
    assert!(t("110%+buf10") > 2.0 * t("110%"), "nw: buffer disaster");

    // Fig. 7: 4 KB transfers explode under over-subscription.
    for b in BENCHMARKS {
        let x = |col| sweep.transfers_4k.value(b, col).unwrap();
        assert!(
            x("110%") > 2.0 * x("100%"),
            "{b}: 4KB transfers must jump once the prefetcher is disabled"
        );
    }
}

/// Figs. 9-10 (Sec. 7.1): contrary to popular belief, random eviction
/// beats LRU for iterative benchmarks with reuse; streaming benchmarks
/// do not care.
#[test]
fn random_eviction_beats_lru_for_reuse_benchmarks() {
    let iso = eviction_isolation(exec(), Scale::Smoke);
    for b in ["bfs", "hotspot", "nw", "srad"] {
        let lru = iso.time.value(b, "LRU").unwrap();
        let random = iso.time.value(b, "Random").unwrap();
        assert!(random < lru, "{b}: random ({random}) must beat LRU ({lru})");
    }
    for b in STREAMING {
        let lru = iso.time.value(b, "LRU").unwrap();
        let random = iso.time.value(b, "Random").unwrap();
        assert!(
            (random - lru).abs() < 0.25 * lru,
            "{b}: streaming is insensitive to the eviction policy"
        );
    }
    // Fig. 10: kernel time correlates with pages evicted for the
    // starkest case.
    let lru_ev = iso.evicted.value("nw", "LRU").unwrap();
    let rnd_ev = iso.evicted.value("nw", "Random").unwrap();
    assert!(rnd_ev < lru_ev, "nw: random evicts fewer pages");
}

/// Fig. 11 (Sec. 7.2): the locality-aware pre-eviction + prefetcher
/// combinations drastically outperform LRU-4KB with no prefetching;
/// nw is the exception that prefers SLe+SLp over TBNe+TBNp.
#[test]
fn pre_eviction_prefetcher_combos_win() {
    let t = policy_combinations(exec(), Scale::Smoke);
    let mut tbn_speedups = Vec::new();
    for b in BENCHMARKS {
        let baseline = t.value(b, "LRU4K+none").unwrap();
        let sle = t.value(b, "SLe+SLp").unwrap();
        let tbne = t.value(b, "TBNe+TBNp").unwrap();
        assert!(sle < baseline, "{b}: SLe+SLp must beat the baseline");
        // Known smoke-scale deviation: srad's tiny (8-leaf) trees with
        // whole-working-set cyclic sweeps are adversarial for TBNe's
        // cascade; at paper scale TBNe beats the baseline there too
        // (see EXPERIMENTS.md).
        if b != "srad" {
            assert!(tbne < baseline, "{b}: TBNe+TBNp must beat the baseline");
            tbn_speedups.push(baseline / tbne);
        }
    }
    // Paper: 93% average improvement; we assert a >50% geometric mean.
    let geomean =
        (tbn_speedups.iter().map(|s| s.ln()).sum::<f64>() / tbn_speedups.len() as f64).exp();
    assert!(geomean > 1.5, "TBNe+TBNp geomean speedup {geomean:.2}x");

    // The nw exception (Sec. 7.2): sparse-but-localized reuse prefers
    // the smaller SLe granularity.
    let nw_sle = t.value("nw", "SLe+SLp").unwrap();
    let nw_tbne = t.value("nw", "TBNe+TBNp").unwrap();
    assert!(nw_sle < nw_tbne, "nw must prefer SLe+SLp");
}

/// Fig. 13 (Sec. 7.3): streaming benchmarks are insensitive to the
/// over-subscription percentage under TBNe+TBNp; nw degrades by an
/// order of magnitude.
#[test]
fn tbn_combo_scales_with_oversubscription() {
    let t = tbn_oversubscription_sensitivity(exec(), Scale::Smoke);
    for b in STREAMING {
        let t100 = t.value(b, "100%").unwrap();
        let t150 = t.value(b, "150%").unwrap();
        assert!(t150 < 1.5 * t100, "{b}: streaming stays flat");
    }
    let nw100 = t.value("nw", "100%").unwrap();
    let nw150 = t.value("nw", "150%").unwrap();
    assert!(
        nw150 > 10.0 * nw100,
        "nw: order-of-magnitude degradation at 150% ({nw100} -> {nw150})"
    );
    // Monotone (within noise) for the reuse benchmarks.
    for b in ["bfs", "nw"] {
        let t105 = t.value(b, "105%").unwrap();
        let t150 = t.value(b, "150%").unwrap();
        assert!(t150 > t105, "{b}: more over-subscription, more time");
    }
}

/// Fig. 14 (Sec. 7.4): reserving 10% of the LRU list helps iterative
/// benchmarks with cross-launch reuse (hotspot), leaves streaming
/// benchmarks unchanged, and a larger reservation can hurt.
#[test]
fn lru_reservation_helps_iterative_reuse() {
    let t = lru_reservation(exec(), Scale::Smoke);
    for b in STREAMING {
        let t0 = t.value(b, "0%").unwrap();
        let t10 = t.value(b, "10%").unwrap();
        assert!(
            (t10 - t0).abs() < 0.15 * t0,
            "{b}: streaming unaffected by reservation"
        );
    }
    // hotspot and gaussian improve with 10% reservation.
    for b in ["hotspot", "gaussian"] {
        let t0 = t.value(b, "0%").unwrap();
        let t10 = t.value(b, "10%").unwrap();
        assert!(t10 < t0, "{b}: 10% reservation must help ({t0} -> {t10})");
    }
    // Higher reservation percentages hurt some benchmarks (the paper's
    // "with higher percentage of reservation, it hurts").
    let hurt = BENCHMARKS.iter().filter(|b| {
        let t10 = t.value(b, "10%").unwrap();
        let t20 = t.value(b, "20%").unwrap();
        t20 > 1.10 * t10
    });
    assert!(hurt.count() >= 2, "20% reservation must hurt somewhere");
}

/// Figs. 15-16 (Sec. 7.5): the adaptive TBNe granularity beats static
/// 2 MB eviction — never worse, and dramatically better where 2 MB
/// eviction thrashes repetitive launches.
#[test]
fn tbne_beats_static_2mb_eviction() {
    let cmp = tbne_vs_2mb(exec(), Scale::Smoke);
    let mut speedups = Vec::new();
    for b in BENCHMARKS {
        if b == "srad" {
            continue; // smoke-scale srad deviation, see EXPERIMENTS.md
        }
        let tbne = cmp.time.value(b, "TBNe").unwrap();
        let lp = cmp.time.value(b, "LRU-2MB").unwrap();
        assert!(tbne < 1.10 * lp, "{b}: TBNe must not lose to 2MB eviction");
        speedups.push(lp / tbne);
    }
    // The paper reports up to 52% improvement; our sharpest cases
    // (hotspot, srad, nw — repetitive launches) exceed 3x.
    assert!(
        speedups.iter().cloned().fold(0.0, f64::max) > 3.0,
        "2MB eviction must thrash some repetitive benchmark"
    );

    // Fig. 16: streaming benchmarks never thrash; TBNe thrashes no
    // more than 2MB eviction at 110%.
    for b in STREAMING {
        assert_eq!(cmp.thrash.value(b, "TBNe@110%").unwrap(), 0.0, "{b}");
        assert_eq!(cmp.thrash.value(b, "2MB@110%").unwrap(), 0.0, "{b}");
    }
    for b in ["bfs", "gaussian", "hotspot", "nw"] {
        let tbne = cmp.thrash.value(b, "TBNe@110%").unwrap();
        let lp = cmp.thrash.value(b, "2MB@110%").unwrap();
        assert!(tbne <= lp, "{b}: TBNe thrash {tbne} vs 2MB {lp}");
    }
}

/// Sanity: the smoke suite really contains the paper's benchmarks.
#[test]
fn smoke_suite_is_the_paper_suite() {
    let names: Vec<&str> = suite(Scale::Smoke).iter().map(|w| w.name()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, BENCHMARKS);
}

/// Sec. 7: the pattern analysis classifies each benchmark the way the
/// paper describes it (nw's page-per-row synthetic is dense per
/// launch; its sparse-localized character shows in the Fig. 12 scatter
/// instead — see EXPERIMENTS.md).
#[test]
fn access_patterns_classify_as_the_paper_describes() {
    let t = uvm_sim::experiments::pattern_analysis(exec(), Scale::Smoke);
    let class = |b: &str| {
        let row = t.find_row(b).unwrap();
        row.last().unwrap().clone()
    };
    for b in STREAMING {
        assert_eq!(class(b), "streaming", "{b}");
    }
    for b in ["gaussian", "hotspot", "srad"] {
        assert_eq!(class(b), "iterative-dense", "{b}");
    }
    assert_eq!(class("bfs"), "random");
    // Streaming benchmarks touch each page once; nw re-touches its
    // pages ~48 times across the 63 diagonals.
    assert_eq!(t.value("backprop", "touches_per_page"), Some(1.0));
    assert!(t.value("nw", "touches_per_page").unwrap() > 20.0);
}
