//! Randomized-property tests for the page table, TLB, MSHRs, and
//! frame allocator, driven by seeded `SmallRng` case loops.

use std::collections::HashSet;

use uvm_mem::{
    FrameAllocator, Mshr, PageTable, ReferenceTlb, RegisterOutcome, ShootdownDirectory, Tlb,
    TlbLookup,
};
use uvm_types::rng::{Rng, SmallRng};
use uvm_types::PageId;

const CASES: usize = 128;

/// The page table's valid count always equals the number of distinct
/// valid pages after an arbitrary operation sequence.
#[test]
fn page_table_count_is_exact() {
    let mut rng = SmallRng::seed_from_u64(0x3e31);
    for _ in 0..CASES {
        let mut pt = PageTable::new();
        let mut model: HashSet<u64> = HashSet::new();
        let n = rng.gen_range(0usize..200);
        for _ in 0..n {
            let page = rng.gen_range(0u64..64);
            let p = PageId::new(page);
            if rng.gen_bool(0.5) {
                pt.validate(p);
                model.insert(page);
            } else {
                pt.invalidate(p);
                model.remove(&page);
            }
        }
        assert_eq!(pt.valid_pages(), model.len() as u64);
        let mut listed: Vec<u64> = pt.iter_valid().map(|p| p.index()).collect();
        listed.sort_unstable();
        let mut expect: Vec<u64> = model.into_iter().collect();
        expect.sort_unstable();
        assert_eq!(listed, expect);
    }
}

/// TLB capacity is never exceeded and a fill is always observable
/// until `capacity` distinct other pages are filled.
#[test]
fn tlb_respects_capacity() {
    let mut rng = SmallRng::seed_from_u64(0x3e32);
    for _ in 0..CASES {
        let cap = rng.gen_range(1usize..32);
        let mut tlb = Tlb::new(cap);
        let n = rng.gen_range(0usize..200);
        let mut last = None;
        for _ in 0..n {
            let f = rng.gen_range(0u64..64);
            tlb.fill(PageId::new(f));
            last = Some(f);
            assert!(tlb.len() <= cap);
        }
        // The most recently filled page always hits.
        if let Some(last) = last {
            assert_eq!(tlb.lookup(PageId::new(last)), TlbLookup::Hit);
        }
    }
}

/// TLB hit/miss counters account for every lookup.
#[test]
fn tlb_counters_account_for_all_lookups() {
    let mut rng = SmallRng::seed_from_u64(0x3e33);
    for _ in 0..CASES {
        let mut tlb = Tlb::new(4);
        let n = rng.gen_range(1usize..100);
        for _ in 0..n {
            let p = rng.gen_range(0u64..16);
            if tlb.lookup(PageId::new(p)) == TlbLookup::Miss {
                tlb.fill(PageId::new(p));
            }
        }
        let (hits, misses) = tlb.hit_miss();
        assert_eq!(hits + misses, n as u64);
    }
}

/// Differential: the hash-indexed [`Tlb`] agrees with the `VecDeque`
/// [`ReferenceTlb`] — same hit/miss verdicts, same fill victims, same
/// invalidate outcomes, same counters — over arbitrary operation
/// sequences. This is the contract that makes the O(1) structure a
/// drop-in replacement inside the engine.
#[test]
fn tlb_matches_reference_implementation() {
    let mut rng = SmallRng::seed_from_u64(0x3e36);
    for _ in 0..CASES {
        let cap = rng.gen_range(1usize..48);
        let mut fast = Tlb::new(cap);
        let mut reference = ReferenceTlb::new(cap);
        let n = rng.gen_range(0usize..300);
        for step in 0..n {
            let p = PageId::new(rng.gen_range(0u64..96));
            match rng.gen_range(0u32..3) {
                0 => {
                    assert_eq!(
                        fast.lookup(p),
                        reference.lookup(p),
                        "lookup({p}) diverged at step {step} (cap {cap})"
                    );
                }
                1 => {
                    // fill_after_miss is only legal right after a miss;
                    // exercise it there, plain fill otherwise.
                    if fast.lookup(p) == TlbLookup::Miss {
                        reference.lookup(p);
                        assert_eq!(
                            fast.fill_after_miss(p, 0),
                            reference.fill(p),
                            "fill victim for {p} diverged at step {step} (cap {cap})"
                        );
                    } else {
                        reference.lookup(p);
                        fast.fill(p);
                        reference.fill(p);
                    }
                }
                _ => {
                    assert_eq!(
                        fast.invalidate(p),
                        reference.invalidate(p),
                        "invalidate({p}) diverged at step {step} (cap {cap})"
                    );
                }
            }
            assert_eq!(fast.len(), reference.len());
        }
        assert_eq!(fast.hit_miss(), reference.hit_miss());
    }
}

/// The generation shootdown protocol (bump + drain holders, stamped
/// lookups/fills) is observationally identical to the reference TLB
/// under an eager invalidate broadcast: same hits, same misses, same
/// victims, across multiple TLB units.
#[test]
fn generation_shootdown_matches_eager_broadcast() {
    let mut rng = SmallRng::seed_from_u64(0x3e37);
    for _ in 0..CASES {
        let units = rng.gen_range(1usize..6);
        let cap = rng.gen_range(1usize..16);
        let mut fast: Vec<Tlb> = (0..units).map(|_| Tlb::new(cap)).collect();
        let mut reference: Vec<ReferenceTlb> = (0..units).map(|_| ReferenceTlb::new(cap)).collect();
        let mut dir = ShootdownDirectory::new(units);
        let n = rng.gen_range(0usize..300);
        for step in 0..n {
            let p = PageId::new(rng.gen_range(0u64..48));
            let u = rng.gen_range(0usize..units);
            if rng.gen_bool(0.2) {
                // Page eviction: directory bump + targeted drain vs
                // invalidate broadcast over every unit.
                dir.bump(p);
                let tlbs = &mut fast;
                dir.drain_holders(p, |unit| {
                    tlbs[unit].invalidate(p);
                });
                for r in &mut reference {
                    r.invalidate(p);
                }
            } else {
                // Engine access flow on unit `u`: stamped lookup, then
                // a no-reprobe fill on a miss.
                let generation = dir.generation(p);
                let verdict = fast[u].lookup_gen(p, generation);
                assert_eq!(
                    verdict,
                    reference[u].lookup(p),
                    "unit {u} lookup({p}) diverged at step {step}"
                );
                if verdict == TlbLookup::Miss {
                    let victim = fast[u].fill_after_miss(p, generation);
                    if let Some(v) = victim {
                        dir.note_drop(v, u);
                    }
                    dir.note_fill(p, u);
                    assert_eq!(
                        victim,
                        reference[u].fill(p),
                        "unit {u} fill victim for {p} diverged at step {step}"
                    );
                }
            }
        }
        for (f, r) in fast.iter().zip(&reference) {
            assert_eq!(f.hit_miss(), r.hit_miss());
            assert_eq!(f.len(), r.len());
        }
    }
}

/// MSHR merge semantics: every waiter is returned exactly once, on the
/// completion of the page it registered for.
#[test]
fn mshr_returns_every_waiter_once() {
    let mut rng = SmallRng::seed_from_u64(0x3e34);
    for _ in 0..CASES {
        let mut mshr: Mshr<u32> = Mshr::new();
        let mut expected: std::collections::HashMap<u64, Vec<u32>> = Default::default();
        let n = rng.gen_range(0usize..100);
        for _ in 0..n {
            let page = rng.gen_range(0u64..16);
            let waiter = rng.gen_range(0u32..1000);
            let outcome = mshr.register(PageId::new(page), waiter);
            let entry = expected.entry(page).or_default();
            if entry.is_empty() {
                assert_eq!(outcome, RegisterOutcome::NewFault);
            } else {
                assert_eq!(outcome, RegisterOutcome::Merged);
            }
            entry.push(waiter);
        }
        let (total, merged) = mshr.fault_counts();
        assert_eq!(total - merged, expected.len() as u64);
        for (page, waiters) in expected {
            assert_eq!(mshr.complete(PageId::new(page)), waiters);
        }
        assert!(mshr.is_empty());
    }
}

/// Frame conservation: used + free == capacity at every step, and no
/// frame is handed out twice while allocated.
#[test]
fn frames_conserve() {
    let mut rng = SmallRng::seed_from_u64(0x3e35);
    for _ in 0..CASES {
        let capacity = rng.gen_range(1u64..64);
        let mut fa = FrameAllocator::with_frames(capacity);
        let mut held = Vec::new();
        let mut outstanding = HashSet::new();
        let n = rng.gen_range(0usize..200);
        for _ in 0..n {
            if rng.gen_bool(0.5) {
                if let Some(f) = fa.allocate() {
                    assert!(outstanding.insert(f), "double allocation of {f:?}");
                    held.push(f);
                } else {
                    assert!(fa.is_full());
                }
            } else if let Some(f) = held.pop() {
                outstanding.remove(&f);
                fa.free(f).unwrap();
            }
            assert_eq!(fa.used_frames() + fa.free_frames(), capacity);
            assert_eq!(fa.used_frames(), held.len() as u64);
        }
    }
}
