//! Randomized-property tests for the page table, TLB, MSHRs, and
//! frame allocator, driven by seeded `SmallRng` case loops.

use std::collections::HashSet;

use uvm_mem::{FrameAllocator, Mshr, PageTable, RegisterOutcome, Tlb, TlbLookup};
use uvm_types::rng::{Rng, SmallRng};
use uvm_types::PageId;

const CASES: usize = 128;

/// The page table's valid count always equals the number of distinct
/// valid pages after an arbitrary operation sequence.
#[test]
fn page_table_count_is_exact() {
    let mut rng = SmallRng::seed_from_u64(0x3e31);
    for _ in 0..CASES {
        let mut pt = PageTable::new();
        let mut model: HashSet<u64> = HashSet::new();
        let n = rng.gen_range(0usize..200);
        for _ in 0..n {
            let page = rng.gen_range(0u64..64);
            let p = PageId::new(page);
            if rng.gen_bool(0.5) {
                pt.validate(p);
                model.insert(page);
            } else {
                pt.invalidate(p);
                model.remove(&page);
            }
        }
        assert_eq!(pt.valid_pages(), model.len() as u64);
        let mut listed: Vec<u64> = pt.iter_valid().map(|p| p.index()).collect();
        listed.sort_unstable();
        let mut expect: Vec<u64> = model.into_iter().collect();
        expect.sort_unstable();
        assert_eq!(listed, expect);
    }
}

/// TLB capacity is never exceeded and a fill is always observable
/// until `capacity` distinct other pages are filled.
#[test]
fn tlb_respects_capacity() {
    let mut rng = SmallRng::seed_from_u64(0x3e32);
    for _ in 0..CASES {
        let cap = rng.gen_range(1usize..32);
        let mut tlb = Tlb::new(cap);
        let n = rng.gen_range(0usize..200);
        let mut last = None;
        for _ in 0..n {
            let f = rng.gen_range(0u64..64);
            tlb.fill(PageId::new(f));
            last = Some(f);
            assert!(tlb.len() <= cap);
        }
        // The most recently filled page always hits.
        if let Some(last) = last {
            assert_eq!(tlb.lookup(PageId::new(last)), TlbLookup::Hit);
        }
    }
}

/// TLB hit/miss counters account for every lookup.
#[test]
fn tlb_counters_account_for_all_lookups() {
    let mut rng = SmallRng::seed_from_u64(0x3e33);
    for _ in 0..CASES {
        let mut tlb = Tlb::new(4);
        let n = rng.gen_range(1usize..100);
        for _ in 0..n {
            let p = rng.gen_range(0u64..16);
            if tlb.lookup(PageId::new(p)) == TlbLookup::Miss {
                tlb.fill(PageId::new(p));
            }
        }
        let (hits, misses) = tlb.hit_miss();
        assert_eq!(hits + misses, n as u64);
    }
}

/// MSHR merge semantics: every waiter is returned exactly once, on the
/// completion of the page it registered for.
#[test]
fn mshr_returns_every_waiter_once() {
    let mut rng = SmallRng::seed_from_u64(0x3e34);
    for _ in 0..CASES {
        let mut mshr: Mshr<u32> = Mshr::new();
        let mut expected: std::collections::HashMap<u64, Vec<u32>> = Default::default();
        let n = rng.gen_range(0usize..100);
        for _ in 0..n {
            let page = rng.gen_range(0u64..16);
            let waiter = rng.gen_range(0u32..1000);
            let outcome = mshr.register(PageId::new(page), waiter);
            let entry = expected.entry(page).or_default();
            if entry.is_empty() {
                assert_eq!(outcome, RegisterOutcome::NewFault);
            } else {
                assert_eq!(outcome, RegisterOutcome::Merged);
            }
            entry.push(waiter);
        }
        let (total, merged) = mshr.fault_counts();
        assert_eq!(total - merged, expected.len() as u64);
        for (page, waiters) in expected {
            assert_eq!(mshr.complete(PageId::new(page)), waiters);
        }
        assert!(mshr.is_empty());
    }
}

/// Frame conservation: used + free == capacity at every step, and no
/// frame is handed out twice while allocated.
#[test]
fn frames_conserve() {
    let mut rng = SmallRng::seed_from_u64(0x3e35);
    for _ in 0..CASES {
        let capacity = rng.gen_range(1u64..64);
        let mut fa = FrameAllocator::with_frames(capacity);
        let mut held = Vec::new();
        let mut outstanding = HashSet::new();
        let n = rng.gen_range(0usize..200);
        for _ in 0..n {
            if rng.gen_bool(0.5) {
                if let Some(f) = fa.allocate() {
                    assert!(outstanding.insert(f), "double allocation of {f:?}");
                    held.push(f);
                } else {
                    assert!(fa.is_full());
                }
            } else if let Some(f) = held.pop() {
                outstanding.remove(&f);
                fa.free(f).unwrap();
            }
            assert_eq!(fa.used_frames() + fa.free_frames(), capacity);
            assert_eq!(fa.used_frames(), held.len() as u64);
        }
    }
}
