//! Property-based tests for the page table, TLB, MSHRs, and frame
//! allocator.

use proptest::prelude::*;
use std::collections::HashSet;

use uvm_mem::{FrameAllocator, Mshr, PageTable, RegisterOutcome, Tlb, TlbLookup};
use uvm_types::PageId;

proptest! {
    /// The page table's valid count always equals the number of
    /// distinct valid pages after an arbitrary operation sequence.
    #[test]
    fn page_table_count_is_exact(ops in prop::collection::vec((0u64..64, any::<bool>()), 0..200)) {
        let mut pt = PageTable::new();
        let mut model: HashSet<u64> = HashSet::new();
        for (page, validate) in ops {
            let p = PageId::new(page);
            if validate {
                pt.validate(p);
                model.insert(page);
            } else {
                pt.invalidate(p);
                model.remove(&page);
            }
        }
        prop_assert_eq!(pt.valid_pages(), model.len() as u64);
        let mut listed: Vec<u64> = pt.iter_valid().map(|p| p.index()).collect();
        listed.sort_unstable();
        let mut expect: Vec<u64> = model.into_iter().collect();
        expect.sort_unstable();
        prop_assert_eq!(listed, expect);
    }

    /// TLB capacity is never exceeded and a fill is always observable
    /// until `capacity` distinct other pages are filled.
    #[test]
    fn tlb_respects_capacity(cap in 1usize..32, fills in prop::collection::vec(0u64..64, 0..200)) {
        let mut tlb = Tlb::new(cap);
        for f in &fills {
            tlb.fill(PageId::new(*f));
            prop_assert!(tlb.len() <= cap);
        }
        // The most recently filled page always hits.
        if let Some(&last) = fills.last() {
            prop_assert_eq!(tlb.lookup(PageId::new(last)), TlbLookup::Hit);
        }
    }

    /// TLB hit/miss counters account for every lookup.
    #[test]
    fn tlb_counters_account_for_all_lookups(lookups in prop::collection::vec(0u64..16, 1..100)) {
        let mut tlb = Tlb::new(4);
        for &p in &lookups {
            if tlb.lookup(PageId::new(p)) == TlbLookup::Miss {
                tlb.fill(PageId::new(p));
            }
        }
        let (hits, misses) = tlb.hit_miss();
        prop_assert_eq!(hits + misses, lookups.len() as u64);
    }

    /// MSHR merge semantics: every waiter is returned exactly once, on
    /// the completion of the page it registered for.
    #[test]
    fn mshr_returns_every_waiter_once(regs in prop::collection::vec((0u64..16, 0u32..1000), 0..100)) {
        let mut mshr: Mshr<u32> = Mshr::new();
        let mut expected: std::collections::HashMap<u64, Vec<u32>> = Default::default();
        for (page, waiter) in regs {
            let outcome = mshr.register(PageId::new(page), waiter);
            let entry = expected.entry(page).or_default();
            if entry.is_empty() {
                prop_assert_eq!(outcome, RegisterOutcome::NewFault);
            } else {
                prop_assert_eq!(outcome, RegisterOutcome::Merged);
            }
            entry.push(waiter);
        }
        let (total, merged) = mshr.fault_counts();
        prop_assert_eq!(total - merged, expected.len() as u64);
        for (page, waiters) in expected {
            prop_assert_eq!(mshr.complete(PageId::new(page)), waiters);
        }
        prop_assert!(mshr.is_empty());
    }

    /// Frame conservation: used + free == capacity at every step, and
    /// no frame is handed out twice while allocated.
    #[test]
    fn frames_conserve(capacity in 1u64..64, ops in prop::collection::vec(any::<bool>(), 0..200)) {
        let mut fa = FrameAllocator::with_frames(capacity);
        let mut held = Vec::new();
        let mut outstanding = HashSet::new();
        for alloc in ops {
            if alloc {
                if let Some(f) = fa.allocate() {
                    prop_assert!(outstanding.insert(f), "double allocation of {f:?}");
                    held.push(f);
                } else {
                    prop_assert!(fa.is_full());
                }
            } else if let Some(f) = held.pop() {
                outstanding.remove(&f);
                fa.free(f);
            }
            prop_assert_eq!(fa.used_frames() + fa.free_frames(), capacity);
            prop_assert_eq!(fa.used_frames(), held.len() as u64);
        }
    }
}
