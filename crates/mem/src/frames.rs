//! Device-memory frame allocator under a strict capacity budget.
//!
//! The paper's over-subscription experiments fix the working set and
//! shrink the device-memory capacity parameter (Sec. 7.3); this
//! allocator is where that budget is enforced. Frames are 4 KB, the
//! page/migration granularity.
//!
//! # Contiguity-preserving buddy structure
//!
//! [`FrameAllocator`] is a buddy-style allocator over power-of-two
//! *orders* from a single 4 KB frame (order 0) up to a 2 MB large page
//! (order [`MAX_FRAME_ORDER`] = 9, 512 frames). The huge-page policy
//! family needs physically contiguous, aligned 2 MB frame ranges
//! before the GMMU may coalesce a large page into one huge mapping
//! ("Mosaic"); the allocator supplies that contiguity two ways:
//!
//! - **Hard block allocation** ([`allocate_block`](FrameAllocator::allocate_block) /
//!   [`free_block`](FrameAllocator::free_block)): classic buddy
//!   split/merge with counters in [`FrameAllocStats`]. Frees at order
//!   ≥ 1 eagerly merge with a free buddy; single-frame frees stay on
//!   the legacy LIFO list and never merge (see below).
//! - **Soft region reservation** ([`reserve_region`](FrameAllocator::reserve_region)):
//!   on first touch of a large page's range the GMMU soft-reserves a
//!   512-frame aligned region. Reserved frames still count as free and
//!   remain *stealable* by ordinary single-frame demand (a
//!   fragmentation event, counted in
//!   [`FrameAllocStats::region_steals`]), but as long as nothing
//!   steals them, [`allocate_in_region`](FrameAllocator::allocate_in_region)
//!   places each page at `base + offset`, making the fully-resident
//!   large page contiguous by construction.
//!
//! # Legacy compatibility invariant
//!
//! The single-frame demand path is *byte-identical* to the flat
//! free-list allocator this type replaced: `allocate()` pops the
//! order-0 free list LIFO, else takes the next frontier frame;
//! `free()` pushes onto that list. Higher-order free lists and regions
//! only come into play when block/region APIs are exercised — which
//! only the huge-page policies do — so every pre-existing policy sees
//! the exact frame sequence it always has. `ReferenceFrameAllocator`
//! preserves the old implementation verbatim and a differential test
//! pins the equivalence, which is what makes the 20 golden fixtures
//! provably safe across this refactor.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use uvm_types::{Bytes, LARGE_PAGE_ORDER, PAGE_SIZE};

/// Highest buddy order: 2^9 frames = 512 × 4 KB = one 2 MB large page.
pub const MAX_FRAME_ORDER: u32 = LARGE_PAGE_ORDER;

/// Frames per soft-reserved region (one 2 MB large page).
const REGION_FRAMES: u64 = 1 << MAX_FRAME_ORDER;

/// Identifier of a 4 KB physical frame in device memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(u64);

/// An invalid [`FrameAllocator::free`] request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Nothing is allocated: freeing anything would double-free.
    NothingAllocated,
    /// The frame index was never handed out by this allocator.
    NeverAllocated(FrameId),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::NothingAllocated => {
                write!(f, "free with no frames allocated")
            }
            FrameError::NeverAllocated(frame) => {
                write!(f, "free of never-allocated frame {}", frame.index())
            }
        }
    }
}

impl Error for FrameError {}

impl FrameId {
    /// The raw frame index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Rebuilds a frame id from a raw index. Exists solely so
    /// checkpoint restore can re-materialize page→frame tables; new
    /// frames must still come from a [`FrameAllocator`].
    pub const fn from_index(index: u64) -> Self {
        FrameId(index)
    }
}

/// Split/merge/fragmentation counters for the buddy allocator.
///
/// All four stay zero unless the block or region APIs are exercised,
/// i.e. unless a huge-page policy is active.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameAllocStats {
    /// Buddy blocks split into two halves (one count per level).
    pub splits: u64,
    /// Buddy pairs merged back into their parent (one count per level;
    /// a released fully-free region re-entering the order-9 list also
    /// counts one merge).
    pub merges: u64,
    /// Soft 2 MB regions reserved.
    pub regions_reserved: u64,
    /// Fragmentation events: frames stolen out of a soft-reserved
    /// region by ordinary single-frame demand.
    pub region_steals: u64,
}

/// Per-frame occupancy of one soft-reserved 512-frame region.
#[derive(Clone, Debug)]
struct Region {
    /// Bit set = frame free (bit `k` of word `k / 64` is offset `k`).
    free_mask: [u64; (REGION_FRAMES / 64) as usize],
    free_count: u16,
}

impl Region {
    fn all_free() -> Self {
        Region {
            free_mask: [u64::MAX; (REGION_FRAMES / 64) as usize],
            free_count: REGION_FRAMES as u16,
        }
    }

    fn is_free(&self, offset: u64) -> bool {
        self.free_mask[(offset / 64) as usize] >> (offset % 64) & 1 == 1
    }

    fn set_used(&mut self, offset: u64) {
        debug_assert!(self.is_free(offset), "double allocate in region");
        self.free_mask[(offset / 64) as usize] &= !(1u64 << (offset % 64));
        self.free_count -= 1;
    }

    fn set_free(&mut self, offset: u64) {
        debug_assert!(!self.is_free(offset), "double free in region");
        self.free_mask[(offset / 64) as usize] |= 1u64 << (offset % 64);
        self.free_count += 1;
    }

    /// Highest free offset, if any. Stealing from the top keeps the low
    /// prefix of the region contiguous for as long as possible.
    fn highest_free(&self) -> Option<u64> {
        for (w, &mask) in self.free_mask.iter().enumerate().rev() {
            if mask != 0 {
                return Some(w as u64 * 64 + (63 - mask.leading_zeros() as u64));
            }
        }
        None
    }

    fn free_offsets(&self) -> impl Iterator<Item = u64> + '_ {
        (0..REGION_FRAMES).filter(|&off| self.is_free(off))
    }
}

/// A fixed-capacity, contiguity-preserving allocator of 4 KB
/// device-memory frames (see the module docs for the buddy/region
/// structure and the legacy-compatibility invariant).
///
/// # Examples
///
/// ```
/// use uvm_mem::FrameAllocator;
/// use uvm_types::Bytes;
///
/// let mut frames = FrameAllocator::new(Bytes::kib(8)); // two frames
/// let a = frames.allocate().unwrap();
/// let _b = frames.allocate().unwrap();
/// assert!(frames.allocate().is_none()); // budget exhausted
/// frames.free(a).unwrap();
/// assert!(frames.allocate().is_some());
/// ```
#[derive(Clone, Debug)]
pub struct FrameAllocator {
    capacity: u64,
    /// Order-0 free list, LIFO — the legacy demand path.
    free_list: Vec<FrameId>,
    /// Free aligned blocks per order 1..=MAX_FRAME_ORDER (index 0 is
    /// unused; order-0 frames live on `free_list`).
    free_blocks: Vec<Vec<u64>>,
    next_unused: u64,
    in_use: u64,
    /// Soft-reserved regions keyed by 512-aligned base frame. BTreeMap
    /// so the steal fallback scans deterministically.
    regions: BTreeMap<u64, Region>,
    stats: FrameAllocStats,
}

impl FrameAllocator {
    /// Creates an allocator managing `capacity` bytes of device memory
    /// (truncated down to whole 4 KB frames).
    pub fn new(capacity: Bytes) -> Self {
        Self::with_frames(capacity.bytes() / PAGE_SIZE.bytes())
    }

    /// Creates an allocator managing exactly `frames` frames.
    pub fn with_frames(frames: u64) -> Self {
        FrameAllocator {
            capacity: frames,
            free_list: Vec::new(),
            free_blocks: vec![Vec::new(); MAX_FRAME_ORDER as usize + 1],
            next_unused: 0,
            in_use: 0,
            regions: BTreeMap::new(),
            stats: FrameAllocStats::default(),
        }
    }

    /// Allocates one frame, or `None` if the budget is exhausted.
    ///
    /// Source precedence: the order-0 LIFO list, then the frontier
    /// (exactly the legacy allocator), then splitting a free buddy
    /// block, then stealing from a soft-reserved region. The last two
    /// sources only exist when huge-page APIs were exercised, so
    /// `free_frames() > 0` always implies success.
    pub fn allocate(&mut self) -> Option<FrameId> {
        let frame = if let Some(f) = self.free_list.pop() {
            f
        } else if self.next_unused < self.capacity {
            let f = FrameId(self.next_unused);
            self.next_unused += 1;
            f
        } else if let Some(f) = self.allocate_by_split() {
            f
        } else {
            self.steal_from_region()?
        };
        self.in_use += 1;
        Some(frame)
    }

    /// Returns `frame` to the free pool: back into its soft-reserved
    /// region if it has one (re-enabling contiguous placement there),
    /// else onto the legacy order-0 LIFO list.
    ///
    /// # Errors
    ///
    /// Fails (leaving the allocator untouched) if no frames are
    /// currently allocated (double-free of the whole pool) or if
    /// `frame` was never handed out.
    pub fn free(&mut self, frame: FrameId) -> Result<(), FrameError> {
        if self.in_use == 0 {
            return Err(FrameError::NothingAllocated);
        }
        if frame.0 >= self.next_unused {
            return Err(FrameError::NeverAllocated(frame));
        }
        self.in_use -= 1;
        let base = frame.0 & !(REGION_FRAMES - 1);
        if let Some(region) = self.regions.get_mut(&base) {
            region.set_free(frame.0 - base);
        } else {
            self.free_list.push(frame);
        }
        Ok(())
    }

    /// Soft-reserves a 512-frame, 2 MB-aligned region and returns its
    /// base frame index, or `None` if no aligned region fits.
    ///
    /// The region's frames stay *free* (they are not allocated by this
    /// call): [`allocate_in_region`](Self::allocate_in_region) claims
    /// them one page at a time, and plain [`allocate`](Self::allocate)
    /// may steal them as a last resort. Prefers a recycled whole free
    /// order-9 block, then carves from the frontier (frames skipped by
    /// alignment go to the order-0 free list).
    pub fn reserve_region(&mut self) -> Option<u64> {
        let base = if let Some(base) = self.free_blocks[MAX_FRAME_ORDER as usize].pop() {
            base
        } else {
            let base = self.next_unused.next_multiple_of(REGION_FRAMES);
            if base + REGION_FRAMES > self.capacity {
                return None;
            }
            for skipped in self.next_unused..base {
                self.free_list.push(FrameId(skipped));
            }
            self.next_unused = base + REGION_FRAMES;
            base
        };
        self.regions.insert(base, Region::all_free());
        self.stats.regions_reserved += 1;
        Some(base)
    }

    /// Allocates the frame at `base + offset` inside a soft-reserved
    /// region, or `None` if there is no such region or the slot was
    /// already taken (stolen or placed earlier).
    pub fn allocate_in_region(&mut self, base: u64, offset: u64) -> Option<FrameId> {
        debug_assert!(offset < REGION_FRAMES);
        let region = self.regions.get_mut(&base)?;
        if !region.is_free(offset) {
            return None;
        }
        region.set_used(offset);
        self.in_use += 1;
        Some(FrameId(base + offset))
    }

    /// Drops the soft reservation at `base`. A fully-free region merges
    /// back into the order-9 block list (reusable by the next
    /// [`reserve_region`](Self::reserve_region)); a partially-stolen one
    /// spills its remaining free frames onto the order-0 list.
    pub fn release_region(&mut self, base: u64) {
        let Some(region) = self.regions.remove(&base) else {
            return;
        };
        if u64::from(region.free_count) == REGION_FRAMES {
            self.free_blocks[MAX_FRAME_ORDER as usize].push(base);
            self.stats.merges += 1;
        } else {
            for off in region.free_offsets() {
                self.free_list.push(FrameId(base + off));
            }
        }
    }

    /// `true` if a soft reservation exists at `base`.
    pub fn is_region_reserved(&self, base: u64) -> bool {
        self.regions.contains_key(&base)
    }

    /// Hard-allocates an aligned block of `2^order` contiguous frames
    /// and returns its base frame.
    ///
    /// Tries an exact-order free block, then splits the smallest larger
    /// free block down (counting one split per level), then carves an
    /// aligned block from the frontier. Does *not* assemble scattered
    /// singles: contiguity that fragmentation destroyed cannot be
    /// conjured back.
    pub fn allocate_block(&mut self, order: u32) -> Option<FrameId> {
        assert!(order <= MAX_FRAME_ORDER, "order {order} out of range");
        if order == 0 {
            return self.allocate();
        }
        let len = 1u64 << order;
        let base = if let Some(base) = self.free_blocks[order as usize].pop() {
            base
        } else if let Some(base) = self.split_down_to(order) {
            base
        } else {
            let base = self.next_unused.next_multiple_of(len);
            if base + len > self.capacity {
                return None;
            }
            for skipped in self.next_unused..base {
                self.free_list.push(FrameId(skipped));
            }
            self.next_unused = base + len;
            base
        };
        self.in_use += len;
        Some(FrameId(base))
    }

    /// Frees a block previously returned by
    /// [`allocate_block`](Self::allocate_block), eagerly merging with
    /// free buddies back up the order ladder (one merge counted per
    /// level). Order-0 frees go through the legacy lazy path and never
    /// merge.
    ///
    /// # Errors
    ///
    /// Same contract as [`free`](Self::free), applied to the whole
    /// block; `base` must be aligned to the block size.
    pub fn free_block(&mut self, base: FrameId, order: u32) -> Result<(), FrameError> {
        assert!(order <= MAX_FRAME_ORDER, "order {order} out of range");
        if order == 0 {
            return self.free(base);
        }
        let len = 1u64 << order;
        assert!(base.0.is_multiple_of(len), "unaligned block free");
        if self.in_use < len {
            return Err(FrameError::NothingAllocated);
        }
        if base.0 + len > self.next_unused {
            return Err(FrameError::NeverAllocated(base));
        }
        self.in_use -= len;
        let mut base = base.0;
        let mut order = order;
        while order < MAX_FRAME_ORDER {
            let buddy = base ^ (1u64 << order);
            let list = &mut self.free_blocks[order as usize];
            let Some(pos) = list.iter().position(|&b| b == buddy) else {
                break;
            };
            list.swap_remove(pos);
            base = base.min(buddy);
            order += 1;
            self.stats.merges += 1;
        }
        self.free_blocks[order as usize].push(base);
        Ok(())
    }

    /// Number of free blocks held at each order (`[0]` is the order-0
    /// free list; frontier and region frames are not counted). The
    /// split/merge property tests round-trip against this.
    pub fn free_order_histogram(&self) -> [u64; MAX_FRAME_ORDER as usize + 1] {
        let mut histogram = [0u64; MAX_FRAME_ORDER as usize + 1];
        histogram[0] = self.free_list.len() as u64;
        for (order, list) in self.free_blocks.iter().enumerate().skip(1) {
            histogram[order] = list.len() as u64;
        }
        histogram
    }

    /// Split/merge/fragmentation counters.
    pub fn stats(&self) -> &FrameAllocStats {
        &self.stats
    }

    /// Total frame budget.
    pub fn capacity_frames(&self) -> u64 {
        self.capacity
    }

    /// Frames currently allocated.
    pub fn used_frames(&self) -> u64 {
        self.in_use
    }

    /// Frames still available (wherever they live: free lists, the
    /// frontier, buddy blocks, or unclaimed region slots).
    pub fn free_frames(&self) -> u64 {
        self.capacity - self.in_use
    }

    /// `true` when no frame is available.
    pub fn is_full(&self) -> bool {
        self.in_use == self.capacity
    }

    /// Fraction of the budget in use, in `0.0..=1.0` (0 if budget is 0).
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.in_use as f64 / self.capacity as f64
        }
    }

    /// Takes one frame by splitting the smallest free buddy block.
    fn allocate_by_split(&mut self) -> Option<FrameId> {
        let from = (1..=MAX_FRAME_ORDER).find(|&o| !self.free_blocks[o as usize].is_empty())?;
        let base = self.free_blocks[from as usize].pop().expect("checked");
        let mut order = from;
        while order > 1 {
            order -= 1;
            self.free_blocks[order as usize].push(base + (1 << order));
            self.stats.splits += 1;
        }
        self.free_list.push(FrameId(base + 1));
        self.stats.splits += 1;
        Some(FrameId(base))
    }

    /// Splits the smallest free block of order > `target` down to
    /// `target`, returning the block base.
    fn split_down_to(&mut self, target: u32) -> Option<u64> {
        let from =
            (target + 1..=MAX_FRAME_ORDER).find(|&o| !self.free_blocks[o as usize].is_empty())?;
        let base = self.free_blocks[from as usize].pop().expect("checked");
        let mut order = from;
        while order > target {
            order -= 1;
            self.free_blocks[order as usize].push(base + (1 << order));
            self.stats.splits += 1;
        }
        Some(base)
    }

    /// Serializes the complete allocator state for a checkpoint. The
    /// order-0 free list and per-order block lists are written in their
    /// exact LIFO order — `allocate()` pops from the back, so list
    /// order is schedule-observable and must round-trip verbatim.
    pub fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        w.put_u64(self.capacity);
        w.put_usize(self.free_list.len());
        for f in &self.free_list {
            w.put_u64(f.0);
        }
        w.put_usize(self.free_blocks.len());
        for list in &self.free_blocks {
            w.put_usize(list.len());
            for &base in list {
                w.put_u64(base);
            }
        }
        w.put_u64(self.next_unused);
        w.put_u64(self.in_use);
        w.put_usize(self.regions.len());
        for (&base, region) in &self.regions {
            w.put_u64(base);
            for &word in &region.free_mask {
                w.put_u64(word);
            }
            w.put_u64(u64::from(region.free_count));
        }
        w.put_u64(self.stats.splits);
        w.put_u64(self.stats.merges);
        w.put_u64(self.stats.regions_reserved);
        w.put_u64(self.stats.region_steals);
    }

    /// Rebuilds an allocator from a [`save_state`](Self::save_state)
    /// image.
    pub fn load_state(
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<Self, uvm_types::codec::CodecError> {
        use uvm_types::codec::CodecError;
        let capacity = r.get_u64()?;
        let n = r.get_usize()?;
        let mut free_list = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            free_list.push(FrameId(r.get_u64()?));
        }
        let orders = r.get_usize()?;
        if orders != MAX_FRAME_ORDER as usize + 1 {
            return Err(CodecError::BadTag {
                what: "frame-order count",
                value: orders as u64,
            });
        }
        let mut free_blocks = Vec::with_capacity(orders);
        for _ in 0..orders {
            let n = r.get_usize()?;
            let mut list = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                list.push(r.get_u64()?);
            }
            free_blocks.push(list);
        }
        let next_unused = r.get_u64()?;
        let in_use = r.get_u64()?;
        let n = r.get_usize()?;
        let mut regions = BTreeMap::new();
        for _ in 0..n {
            let base = r.get_u64()?;
            let mut free_mask = [0u64; (REGION_FRAMES / 64) as usize];
            for word in &mut free_mask {
                *word = r.get_u64()?;
            }
            let free_count = r.get_u64()?;
            let counted: u32 = free_mask.iter().map(|w| w.count_ones()).sum();
            if free_count != u64::from(counted) || free_count > REGION_FRAMES {
                return Err(CodecError::BadTag {
                    what: "region free count",
                    value: free_count,
                });
            }
            regions.insert(
                base,
                Region {
                    free_mask,
                    free_count: free_count as u16,
                },
            );
        }
        let stats = FrameAllocStats {
            splits: r.get_u64()?,
            merges: r.get_u64()?,
            regions_reserved: r.get_u64()?,
            region_steals: r.get_u64()?,
        };
        Ok(FrameAllocator {
            capacity,
            free_list,
            free_blocks,
            next_unused,
            in_use,
            regions,
            stats,
        })
    }

    /// Last-resort single-frame source: steal the highest free slot of
    /// the lowest soft-reserved region (a fragmentation event).
    fn steal_from_region(&mut self) -> Option<FrameId> {
        for (&base, region) in self.regions.iter_mut() {
            if let Some(off) = region.highest_free() {
                region.set_used(off);
                self.stats.region_steals += 1;
                return Some(FrameId(base + off));
            }
        }
        None
    }
}

/// The flat free-list allocator this crate shipped before the buddy
/// refactor, kept verbatim as the differential-test oracle: the buddy
/// allocator's single-frame path must hand out the exact same frame
/// sequence (that equivalence is what keeps the 20 golden fixtures
/// byte-identical).
#[derive(Clone, Debug)]
pub struct ReferenceFrameAllocator {
    capacity: u64,
    free_list: Vec<FrameId>,
    next_unused: u64,
    in_use: u64,
}

impl ReferenceFrameAllocator {
    /// Creates a reference allocator managing exactly `frames` frames.
    pub fn with_frames(frames: u64) -> Self {
        ReferenceFrameAllocator {
            capacity: frames,
            free_list: Vec::new(),
            next_unused: 0,
            in_use: 0,
        }
    }

    /// Allocates one frame, or `None` if the budget is exhausted.
    pub fn allocate(&mut self) -> Option<FrameId> {
        let frame = if let Some(f) = self.free_list.pop() {
            f
        } else if self.next_unused < self.capacity {
            let f = FrameId(self.next_unused);
            self.next_unused += 1;
            f
        } else {
            return None;
        };
        self.in_use += 1;
        Some(frame)
    }

    /// Returns `frame` to the free pool.
    pub fn free(&mut self, frame: FrameId) -> Result<(), FrameError> {
        if self.in_use == 0 {
            return Err(FrameError::NothingAllocated);
        }
        if frame.0 >= self.next_unused {
            return Err(FrameError::NeverAllocated(frame));
        }
        self.in_use -= 1;
        self.free_list.push(frame);
        Ok(())
    }

    /// Frames still available.
    pub fn free_frames(&self) -> u64 {
        self.capacity - self.in_use
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_from_bytes_truncates() {
        let a = FrameAllocator::new(Bytes::new(4096 * 3 + 100));
        assert_eq!(a.capacity_frames(), 3);
    }

    #[test]
    fn allocate_until_full() {
        let mut a = FrameAllocator::with_frames(2);
        assert!(a.allocate().is_some());
        assert!(!a.is_full());
        assert!(a.allocate().is_some());
        assert!(a.is_full());
        assert!(a.allocate().is_none());
        assert_eq!(a.used_frames(), 2);
        assert_eq!(a.free_frames(), 0);
    }

    #[test]
    fn free_recycles_frames() {
        let mut a = FrameAllocator::with_frames(1);
        let f = a.allocate().unwrap();
        a.free(f).unwrap();
        assert_eq!(a.used_frames(), 0);
        let g = a.allocate().unwrap();
        assert_eq!(f, g, "recycled frame is reused");
    }

    #[test]
    fn distinct_frames_are_distinct() {
        let mut a = FrameAllocator::with_frames(3);
        let f1 = a.allocate().unwrap();
        let f2 = a.allocate().unwrap();
        let f3 = a.allocate().unwrap();
        assert_ne!(f1, f2);
        assert_ne!(f2, f3);
        assert_ne!(f1, f3);
    }

    #[test]
    fn occupancy_fraction() {
        let mut a = FrameAllocator::with_frames(4);
        assert_eq!(a.occupancy(), 0.0);
        a.allocate();
        a.allocate();
        assert!((a.occupancy() - 0.5).abs() < 1e-12);
        assert_eq!(FrameAllocator::with_frames(0).occupancy(), 0.0);
    }

    #[test]
    fn free_without_allocation_errors() {
        let mut a = FrameAllocator::with_frames(1);
        let f = {
            let mut other = FrameAllocator::with_frames(1);
            other.allocate().unwrap()
        };
        assert_eq!(a.free(f), Err(FrameError::NothingAllocated));
        // The failed free left the allocator untouched.
        assert_eq!(a.used_frames(), 0);
        assert!(a.allocate().is_some());
    }

    #[test]
    fn free_of_unissued_frame_errors() {
        let mut a = FrameAllocator::with_frames(8);
        let f = a.allocate().unwrap();
        // Index 5 was never handed out.
        let err = a.free(FrameId(5)).unwrap_err();
        assert_eq!(err, FrameError::NeverAllocated(FrameId(5)));
        assert!(err.to_string().contains("never-allocated frame 5"));
        assert_eq!(a.used_frames(), 1);
        a.free(f).unwrap();
    }

    // --- buddy blocks ---

    #[test]
    fn block_allocation_is_aligned_and_counted() {
        let mut a = FrameAllocator::with_frames(REGION_FRAMES * 2);
        let b = a.allocate_block(MAX_FRAME_ORDER).unwrap();
        assert_eq!(b.index() % REGION_FRAMES, 0);
        assert_eq!(a.used_frames(), REGION_FRAMES);
        let c = a.allocate_block(4).unwrap();
        assert_eq!(c.index() % 16, 0);
        assert_eq!(a.used_frames(), REGION_FRAMES + 16);
        a.free_block(c, 4).unwrap();
        a.free_block(b, MAX_FRAME_ORDER).unwrap();
        assert_eq!(a.used_frames(), 0);
    }

    #[test]
    fn split_then_merge_restores_block() {
        let mut a = FrameAllocator::with_frames(REGION_FRAMES);
        // Exhaust the frontier into one order-9 block, then free it.
        let whole = a.allocate_block(MAX_FRAME_ORDER).unwrap();
        a.free_block(whole, MAX_FRAME_ORDER).unwrap();
        let before = a.free_order_histogram();
        assert_eq!(before[MAX_FRAME_ORDER as usize], 1);

        // Splitting an order-4 block out of it takes one split per level.
        let blk = a.allocate_block(4).unwrap();
        assert_eq!(a.stats().splits, (MAX_FRAME_ORDER - 4) as u64);
        // Freeing merges all the way back up.
        a.free_block(blk, 4).unwrap();
        assert_eq!(a.stats().merges, (MAX_FRAME_ORDER - 4) as u64);
        assert_eq!(a.free_order_histogram(), before);
    }

    #[test]
    fn order_zero_block_calls_use_legacy_path() {
        let mut a = FrameAllocator::with_frames(4);
        let f = a.allocate_block(0).unwrap();
        assert_eq!(f.index(), 0);
        a.free_block(f, 0).unwrap();
        assert_eq!(a.free_order_histogram()[0], 1);
        assert_eq!(a.stats().splits + a.stats().merges, 0);
    }

    // --- soft regions ---

    #[test]
    fn region_placement_is_contiguous() {
        let mut a = FrameAllocator::with_frames(REGION_FRAMES * 2);
        let base = a.reserve_region().unwrap();
        assert_eq!(base % REGION_FRAMES, 0);
        // Reservation allocates nothing by itself.
        assert_eq!(a.used_frames(), 0);
        for off in 0..8 {
            let f = a.allocate_in_region(base, off).unwrap();
            assert_eq!(f.index(), base + off);
        }
        // Double placement of an offset fails.
        assert!(a.allocate_in_region(base, 3).is_none());
        assert_eq!(a.used_frames(), 8);
    }

    #[test]
    fn region_frames_are_stealable_and_frees_return_to_region() {
        // One region spanning the whole budget: plain demand must be
        // able to steal every slot rather than deadlock.
        let mut a = FrameAllocator::with_frames(REGION_FRAMES);
        let base = a.reserve_region().unwrap();
        let stolen = a.allocate().unwrap();
        assert_eq!(stolen.index(), base + REGION_FRAMES - 1, "steals the top");
        assert_eq!(a.stats().region_steals, 1);
        for _ in 1..REGION_FRAMES {
            assert!(a.allocate().is_some());
        }
        assert!(a.is_full());
        assert!(a.allocate().is_none());
        // Freeing a region frame re-opens its exact slot.
        a.free(stolen).unwrap();
        assert_eq!(
            a.allocate_in_region(base, REGION_FRAMES - 1),
            Some(stolen),
            "freed region frame is placeable again"
        );
    }

    #[test]
    fn released_whole_region_is_reusable() {
        let mut a = FrameAllocator::with_frames(REGION_FRAMES);
        let base = a.reserve_region().unwrap();
        assert!(a.reserve_region().is_none(), "no second region fits");
        a.release_region(base);
        assert!(!a.is_region_reserved(base));
        assert_eq!(a.stats().merges, 1);
        assert_eq!(a.reserve_region(), Some(base), "whole region recycled");
    }

    #[test]
    fn released_fragmented_region_spills_to_free_list() {
        let mut a = FrameAllocator::with_frames(REGION_FRAMES);
        let base = a.reserve_region().unwrap();
        let f = a.allocate_in_region(base, 7).unwrap();
        a.release_region(base);
        // 511 free frames moved to the order-0 list; the in-use one
        // frees through the legacy path now that the region is gone.
        assert_eq!(a.free_order_histogram()[0], REGION_FRAMES - 1);
        a.free(f).unwrap();
        assert_eq!(a.free_frames(), REGION_FRAMES);
    }

    // --- property tests ---

    /// Tiny deterministic PRNG so the property tests need no deps.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    #[test]
    fn split_merge_round_trip_restores_free_order_histogram() {
        let mut a = FrameAllocator::with_frames(REGION_FRAMES * 8);
        // Move the whole budget out of the frontier into order-9 blocks.
        let wholes: Vec<_> = (0..8)
            .map(|_| a.allocate_block(MAX_FRAME_ORDER).unwrap())
            .collect();
        for b in wholes {
            a.free_block(b, MAX_FRAME_ORDER).unwrap();
        }
        let initial = a.free_order_histogram();

        let mut rng = Lcg(0x5eed);
        let mut live: Vec<(FrameId, u32)> = Vec::new();
        for _ in 0..2_000 {
            // Orders 1..=9 only: order-0 frees are deliberately lazy
            // and would not merge back.
            let order = 1 + (rng.next() % MAX_FRAME_ORDER as u64) as u32;
            if rng.next().is_multiple_of(2) || live.is_empty() {
                if let Some(b) = a.allocate_block(order) {
                    live.push((b, order));
                }
            } else {
                let (b, o) = live.swap_remove((rng.next() % live.len() as u64) as usize);
                a.free_block(b, o).unwrap();
            }
        }
        for (b, o) in live.drain(..) {
            a.free_block(b, o).unwrap();
        }
        assert_eq!(a.free_order_histogram(), initial);
        assert!(a.stats().splits > 0 && a.stats().merges > 0);
    }

    #[test]
    fn churn_never_hands_out_overlapping_frames() {
        use std::collections::HashSet;

        let mut a = FrameAllocator::with_frames(REGION_FRAMES * 4);
        let mut rng = Lcg(0xfeed);
        let mut live: HashSet<u64> = HashSet::new();
        let mut singles: Vec<FrameId> = Vec::new();
        let mut blocks: Vec<(FrameId, u32)> = Vec::new();
        let mut regions: Vec<u64> = Vec::new();

        let claim = |live: &mut HashSet<u64>, base: u64, len: u64| {
            for f in base..base + len {
                assert!(live.insert(f), "frame {f} handed out twice");
            }
        };

        for _ in 0..20_000 {
            match rng.next() % 10 {
                0..=3 => {
                    if let Some(f) = a.allocate() {
                        claim(&mut live, f.index(), 1);
                        singles.push(f);
                    }
                }
                4..=5 => {
                    if let Some(&f) = singles.last() {
                        singles.pop();
                        a.free(f).unwrap();
                        live.remove(&f.index());
                    }
                }
                6 => {
                    let order = 1 + (rng.next() % 6) as u32;
                    if let Some(b) = a.allocate_block(order) {
                        claim(&mut live, b.index(), 1 << order);
                        blocks.push((b, order));
                    }
                }
                7 => {
                    if !blocks.is_empty() {
                        let (b, o) =
                            blocks.swap_remove((rng.next() % blocks.len() as u64) as usize);
                        a.free_block(b, o).unwrap();
                        for f in b.index()..b.index() + (1 << o) {
                            live.remove(&f);
                        }
                    }
                }
                8 => {
                    if regions.len() < 3 {
                        if let Some(base) = a.reserve_region() {
                            regions.push(base);
                        }
                    }
                }
                _ => {
                    if let Some(&base) = regions.last() {
                        let off = rng.next() % REGION_FRAMES;
                        if let Some(f) = a.allocate_in_region(base, off) {
                            claim(&mut live, f.index(), 1);
                            singles.push(f);
                        }
                    }
                }
            }
            assert_eq!(
                a.free_frames(),
                a.capacity_frames() - live.len() as u64,
                "free-frame accounting drifted"
            );
        }
    }

    #[test]
    fn differential_single_frame_path_matches_reference() {
        // The legacy demand path (allocate/free only) must reproduce
        // the reference allocator's frame sequence exactly — this is
        // the invariant that keeps the 20 golden fixtures byte-stable.
        let mut buddy = FrameAllocator::with_frames(257);
        let mut reference = ReferenceFrameAllocator::with_frames(257);
        let mut rng = Lcg(0xdead);
        let mut live: Vec<FrameId> = Vec::new();
        for step in 0..50_000 {
            // Bias toward allocation so the budget saturates and the
            // exhausted path is exercised too.
            if rng.next() % 5 < 3 || live.is_empty() {
                let (b, r) = (buddy.allocate(), reference.allocate());
                assert_eq!(b, r, "allocation diverged at step {step}");
                if let Some(f) = b {
                    live.push(f);
                }
            } else {
                let f = live.swap_remove((rng.next() % live.len() as u64) as usize);
                assert_eq!(buddy.free(f), reference.free(f));
            }
            assert_eq!(buddy.free_frames(), reference.free_frames());
        }
    }
}
