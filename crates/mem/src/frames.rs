//! Device-memory frame allocator under a strict capacity budget.
//!
//! The paper's over-subscription experiments fix the working set and
//! shrink the device-memory capacity parameter (Sec. 7.3); this
//! allocator is where that budget is enforced. Frames are 4 KB, the
//! page/migration granularity.

use std::error::Error;
use std::fmt;

use uvm_types::{Bytes, PAGE_SIZE};

/// Identifier of a 4 KB physical frame in device memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(u64);

/// An invalid [`FrameAllocator::free`] request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Nothing is allocated: freeing anything would double-free.
    NothingAllocated,
    /// The frame index was never handed out by this allocator.
    NeverAllocated(FrameId),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::NothingAllocated => {
                write!(f, "free with no frames allocated")
            }
            FrameError::NeverAllocated(frame) => {
                write!(f, "free of never-allocated frame {}", frame.index())
            }
        }
    }
}

impl Error for FrameError {}

impl FrameId {
    /// The raw frame index.
    pub const fn index(self) -> u64 {
        self.0
    }
}

/// A fixed-capacity allocator of 4 KB device-memory frames.
///
/// # Examples
///
/// ```
/// use uvm_mem::FrameAllocator;
/// use uvm_types::Bytes;
///
/// let mut frames = FrameAllocator::new(Bytes::kib(8)); // two frames
/// let a = frames.allocate().unwrap();
/// let _b = frames.allocate().unwrap();
/// assert!(frames.allocate().is_none()); // budget exhausted
/// frames.free(a).unwrap();
/// assert!(frames.allocate().is_some());
/// ```
#[derive(Clone, Debug)]
pub struct FrameAllocator {
    capacity: u64,
    free_list: Vec<FrameId>,
    next_unused: u64,
    in_use: u64,
}

impl FrameAllocator {
    /// Creates an allocator managing `capacity` bytes of device memory
    /// (truncated down to whole 4 KB frames).
    pub fn new(capacity: Bytes) -> Self {
        FrameAllocator {
            capacity: capacity.bytes() / PAGE_SIZE.bytes(),
            free_list: Vec::new(),
            next_unused: 0,
            in_use: 0,
        }
    }

    /// Creates an allocator managing exactly `frames` frames.
    pub fn with_frames(frames: u64) -> Self {
        FrameAllocator {
            capacity: frames,
            free_list: Vec::new(),
            next_unused: 0,
            in_use: 0,
        }
    }

    /// Allocates one frame, or `None` if the budget is exhausted.
    pub fn allocate(&mut self) -> Option<FrameId> {
        let frame = if let Some(f) = self.free_list.pop() {
            f
        } else if self.next_unused < self.capacity {
            let f = FrameId(self.next_unused);
            self.next_unused += 1;
            f
        } else {
            return None;
        };
        self.in_use += 1;
        Some(frame)
    }

    /// Returns `frame` to the free pool.
    ///
    /// # Errors
    ///
    /// Fails (leaving the allocator untouched) if no frames are
    /// currently allocated (double-free of the whole pool) or if
    /// `frame` was never handed out.
    pub fn free(&mut self, frame: FrameId) -> Result<(), FrameError> {
        if self.in_use == 0 {
            return Err(FrameError::NothingAllocated);
        }
        if frame.0 >= self.next_unused {
            return Err(FrameError::NeverAllocated(frame));
        }
        self.in_use -= 1;
        self.free_list.push(frame);
        Ok(())
    }

    /// Total frame budget.
    pub fn capacity_frames(&self) -> u64 {
        self.capacity
    }

    /// Frames currently allocated.
    pub fn used_frames(&self) -> u64 {
        self.in_use
    }

    /// Frames still available.
    pub fn free_frames(&self) -> u64 {
        self.capacity - self.in_use
    }

    /// `true` when no frame is available.
    pub fn is_full(&self) -> bool {
        self.in_use == self.capacity
    }

    /// Fraction of the budget in use, in `0.0..=1.0` (0 if budget is 0).
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.in_use as f64 / self.capacity as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_from_bytes_truncates() {
        let a = FrameAllocator::new(Bytes::new(4096 * 3 + 100));
        assert_eq!(a.capacity_frames(), 3);
    }

    #[test]
    fn allocate_until_full() {
        let mut a = FrameAllocator::with_frames(2);
        assert!(a.allocate().is_some());
        assert!(!a.is_full());
        assert!(a.allocate().is_some());
        assert!(a.is_full());
        assert!(a.allocate().is_none());
        assert_eq!(a.used_frames(), 2);
        assert_eq!(a.free_frames(), 0);
    }

    #[test]
    fn free_recycles_frames() {
        let mut a = FrameAllocator::with_frames(1);
        let f = a.allocate().unwrap();
        a.free(f).unwrap();
        assert_eq!(a.used_frames(), 0);
        let g = a.allocate().unwrap();
        assert_eq!(f, g, "recycled frame is reused");
    }

    #[test]
    fn distinct_frames_are_distinct() {
        let mut a = FrameAllocator::with_frames(3);
        let f1 = a.allocate().unwrap();
        let f2 = a.allocate().unwrap();
        let f3 = a.allocate().unwrap();
        assert_ne!(f1, f2);
        assert_ne!(f2, f3);
        assert_ne!(f1, f3);
    }

    #[test]
    fn occupancy_fraction() {
        let mut a = FrameAllocator::with_frames(4);
        assert_eq!(a.occupancy(), 0.0);
        a.allocate();
        a.allocate();
        assert!((a.occupancy() - 0.5).abs() < 1e-12);
        assert_eq!(FrameAllocator::with_frames(0).occupancy(), 0.0);
    }

    #[test]
    fn free_without_allocation_errors() {
        let mut a = FrameAllocator::with_frames(1);
        let f = {
            let mut other = FrameAllocator::with_frames(1);
            other.allocate().unwrap()
        };
        assert_eq!(a.free(f), Err(FrameError::NothingAllocated));
        // The failed free left the allocator untouched.
        assert_eq!(a.used_frames(), 0);
        assert!(a.allocate().is_some());
    }

    #[test]
    fn free_of_unissued_frame_errors() {
        let mut a = FrameAllocator::with_frames(8);
        let f = a.allocate().unwrap();
        // Index 5 was never handed out.
        let err = a.free(FrameId(5)).unwrap_err();
        assert_eq!(err, FrameError::NeverAllocated(FrameId(5)));
        assert!(err.to_string().contains("never-allocated frame 5"));
        assert_eq!(a.used_frames(), 1);
        a.free(f).unwrap();
    }
}
