//! Generation-stamped TLB shootdown directory.
//!
//! Evicting a page must invalidate its cached translation in every
//! SM's TLB. The naive broadcast probes all `num_units` TLBs per
//! evicted page — at paper scale (28 SMs, 64-entry TLBs) that was an
//! O(num_units x capacity) sweep on every eviction. The directory
//! replaces it with two O(1)-per-holder mechanisms:
//!
//! * a **generation counter per page**: [`bump`](ShootdownDirectory::bump)
//!   increments it on eviction, and a TLB entry only hits while its
//!   fill-time stamp matches ([`Tlb::lookup_gen`](crate::Tlb::lookup_gen)),
//!   so a stale translation can never be observed — even if its slot
//!   were still occupied; and
//! * a **holder bitmask per page**, maintained by
//!   [`note_fill`](ShootdownDirectory::note_fill) /
//!   [`note_drop`](ShootdownDirectory::note_drop), so
//!   [`drain_holders`](ShootdownDirectory::drain_holders) visits only
//!   the TLBs that actually cache the page (usually 0–2) to reclaim
//!   their slots eagerly. Eager reclamation keeps LRU occupancy
//!   identical to a broadcast — a stale entry never lingers to displace
//!   a live one — which is what makes the directory a drop-in,
//!   schedule-identical replacement.
//!
//! Tables grow lazily with the highest page index seen; the simulator's
//! 2 MB-aligned bump allocator keeps page indices dense, so the tables
//! stay proportional to the working set.

use uvm_types::PageId;

/// Per-page generation counters plus holder bitmasks for targeted TLB
/// shootdown across up to 64 units.
#[derive(Clone, Debug)]
pub struct ShootdownDirectory {
    /// Current generation of each page; pages beyond the table are at
    /// generation 0.
    generations: Vec<u32>,
    /// One bit per (page, unit): set while the unit's TLB caches the
    /// page. `words` u64 words per page.
    holders: Vec<u64>,
    /// Holder words per page.
    words: usize,
    num_units: usize,
}

impl ShootdownDirectory {
    /// A directory tracking `num_units` TLBs.
    ///
    /// # Panics
    ///
    /// Panics if `num_units` is zero.
    pub fn new(num_units: usize) -> Self {
        assert!(num_units > 0, "directory needs at least one unit");
        ShootdownDirectory {
            generations: Vec::new(),
            holders: Vec::new(),
            words: num_units.div_ceil(64),
            num_units,
        }
    }

    /// Number of TLB units tracked.
    pub fn num_units(&self) -> usize {
        self.num_units
    }

    /// The page's current generation (0 until first bumped).
    #[inline]
    pub fn generation(&self, page: PageId) -> u32 {
        let i = page.index() as usize;
        self.generations.get(i).copied().unwrap_or(0)
    }

    /// Invalidates every outstanding translation of `page` by moving it
    /// to a new generation. Pair with
    /// [`drain_holders`](Self::drain_holders) to also reclaim the
    /// holders' slots eagerly.
    pub fn bump(&mut self, page: PageId) {
        let i = page.index() as usize;
        self.grow_to(i);
        self.generations[i] += 1;
    }

    /// Records that `unit`'s TLB now caches a translation of `page`.
    #[inline]
    pub fn note_fill(&mut self, page: PageId, unit: usize) {
        debug_assert!(unit < self.num_units);
        let i = page.index() as usize;
        self.grow_to(i);
        self.holders[i * self.words + unit / 64] |= 1 << (unit % 64);
    }

    /// Records that `unit`'s TLB no longer caches `page` (its entry was
    /// evicted by the TLB's own LRU replacement or invalidated).
    #[inline]
    pub fn note_drop(&mut self, page: PageId, unit: usize) {
        debug_assert!(unit < self.num_units);
        let i = page.index() as usize;
        if let Some(word) = self.holders.get_mut(i * self.words + unit / 64) {
            *word &= !(1 << (unit % 64));
        }
    }

    /// Calls `f` for every unit currently holding `page`, clearing the
    /// holder set. O(words + holders), independent of TLB capacity and
    /// of units that never cached the page.
    pub fn drain_holders(&mut self, page: PageId, mut f: impl FnMut(usize)) {
        let i = page.index() as usize;
        let base = i * self.words;
        if base >= self.holders.len() {
            return;
        }
        // Fast path: up to 64 units fit one word (the paper-scale 28-SM
        // config), so skip the word loop's bounds checks entirely.
        if self.words == 1 {
            let mut word = std::mem::take(&mut self.holders[base]);
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                f(bit);
            }
            return;
        }
        for w in 0..self.words {
            let mut word = std::mem::take(&mut self.holders[base + w]);
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                f(w * 64 + bit);
            }
        }
    }

    /// Iterates every `(page, unit)` pair with a set holder bit, in
    /// page order — the auditor's full read-only view of the holder
    /// table.
    pub fn iter_holders(&self) -> impl Iterator<Item = (PageId, usize)> + '_ {
        (0..self.generations.len()).flat_map(move |i| {
            let page = PageId::new(i as u64);
            self.holders_of(page).into_iter().map(move |u| (page, u))
        })
    }

    /// The units currently recorded as holding `page`, without
    /// draining them — the auditor's read-only view.
    pub fn holders_of(&self, page: PageId) -> Vec<usize> {
        let i = page.index() as usize;
        let base = i * self.words;
        let mut units = Vec::new();
        if base >= self.holders.len() {
            return units;
        }
        for w in 0..self.words {
            let mut word = self.holders[base + w];
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                units.push(w * 64 + bit);
            }
        }
        units
    }

    /// Serializes the directory for a checkpoint: the dense generation
    /// and holder tables verbatim (table *length* is growth history,
    /// which `generation()` reads through, so it round-trips exactly).
    pub fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        w.put_usize(self.num_units);
        w.put_usize(self.generations.len());
        for &g in &self.generations {
            w.put_u32(g);
        }
        for &word in &self.holders {
            w.put_u64(word);
        }
    }

    /// Rebuilds a directory from a [`save_state`](Self::save_state)
    /// image.
    pub fn load_state(
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<Self, uvm_types::codec::CodecError> {
        let num_units = r.get_usize()?;
        if num_units == 0 {
            return Err(uvm_types::codec::CodecError::BadTag {
                what: "shootdown units",
                value: 0,
            });
        }
        let words = num_units.div_ceil(64);
        let pages = r.get_usize()?;
        let mut generations = Vec::with_capacity(pages.min(1 << 24));
        for _ in 0..pages {
            generations.push(r.get_u32()?);
        }
        let mut holders = Vec::with_capacity((pages * words).min(1 << 24));
        for _ in 0..pages * words {
            holders.push(r.get_u64()?);
        }
        Ok(ShootdownDirectory {
            generations,
            holders,
            words,
            num_units,
        })
    }

    /// Grows the tables to cover page index `i`.
    fn grow_to(&mut self, i: usize) {
        if i >= self.generations.len() {
            self.generations.resize(i + 1, 0);
            self.holders.resize((i + 1) * self.words, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_starts_at_zero_and_bumps() {
        let mut dir = ShootdownDirectory::new(4);
        let p = PageId::new(10);
        assert_eq!(dir.generation(p), 0);
        dir.bump(p);
        assert_eq!(dir.generation(p), 1);
        dir.bump(p);
        assert_eq!(dir.generation(p), 2);
        // Other pages are unaffected, including never-seen ones.
        assert_eq!(dir.generation(PageId::new(9)), 0);
        assert_eq!(dir.generation(PageId::new(1_000_000)), 0);
    }

    #[test]
    fn drain_visits_exactly_the_holders() {
        let mut dir = ShootdownDirectory::new(28);
        let p = PageId::new(3);
        dir.note_fill(p, 0);
        dir.note_fill(p, 7);
        dir.note_fill(p, 27);
        dir.note_drop(p, 7);
        let mut seen = Vec::new();
        dir.drain_holders(p, |u| seen.push(u));
        assert_eq!(seen, vec![0, 27]);
        // Drained: a second pass finds nothing.
        let mut again = Vec::new();
        dir.drain_holders(p, |u| again.push(u));
        assert!(again.is_empty());
    }

    #[test]
    fn drain_on_untracked_page_is_a_noop() {
        let mut dir = ShootdownDirectory::new(2);
        let mut seen = Vec::new();
        dir.drain_holders(PageId::new(99), |u| seen.push(u));
        assert!(seen.is_empty());
    }

    #[test]
    fn holders_work_beyond_one_word() {
        let mut dir = ShootdownDirectory::new(64);
        let p = PageId::new(0);
        dir.note_fill(p, 0);
        dir.note_fill(p, 63);
        let mut seen = Vec::new();
        dir.drain_holders(p, |u| seen.push(u));
        assert_eq!(seen, vec![0, 63]);
    }
}
