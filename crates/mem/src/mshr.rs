//! Far-fault Miss Status Handling Registers.
//!
//! When the GMMU discovers a page with no valid PTE, the far-fault is
//! registered in the MSHRs (step 3 of Fig. 1). Subsequent faults to the
//! same page — from other warps or other SMs — merge into the existing
//! entry instead of triggering a second migration. When the migration
//! completes, every merged waiter is notified and its access replayed.

use std::collections::HashMap;

use uvm_types::PageId;

/// Outcome of registering a far-fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegisterOutcome {
    /// First fault on this page: a migration must be scheduled.
    NewFault,
    /// The page already has an outstanding fault; the waiter was merged.
    Merged,
}

/// Far-fault MSHR file, generic over the waiter token `W` (the GPU
/// engine uses warp identifiers).
///
/// # Examples
///
/// ```
/// use uvm_mem::{Mshr, RegisterOutcome};
/// use uvm_types::PageId;
///
/// let mut mshr: Mshr<&str> = Mshr::new();
/// assert_eq!(mshr.register(PageId::new(0), "warp-a"), RegisterOutcome::NewFault);
/// assert_eq!(mshr.register(PageId::new(0), "warp-b"), RegisterOutcome::Merged);
/// assert_eq!(mshr.complete(PageId::new(0)), vec!["warp-a", "warp-b"]);
/// assert!(mshr.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct Mshr<W> {
    pending: HashMap<PageId, Vec<W>>,
    total_faults: u64,
    merged_faults: u64,
}

impl<W> Default for Mshr<W> {
    fn default() -> Self {
        Mshr {
            pending: HashMap::new(),
            total_faults: 0,
            merged_faults: 0,
        }
    }
}

impl<W> Mshr<W> {
    /// Creates an empty MSHR file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a far-fault on `page` by `waiter`.
    pub fn register(&mut self, page: PageId, waiter: W) -> RegisterOutcome {
        self.total_faults += 1;
        match self.pending.entry(page) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().push(waiter);
                self.merged_faults += 1;
                RegisterOutcome::Merged
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(vec![waiter]);
                RegisterOutcome::NewFault
            }
        }
    }

    /// `true` if `page` has an outstanding fault.
    pub fn is_pending(&self, page: PageId) -> bool {
        self.pending.contains_key(&page)
    }

    /// Completes the migration of `page`, returning all merged waiters
    /// in registration order. Returns an empty vector if the page had
    /// no outstanding fault.
    pub fn complete(&mut self, page: PageId) -> Vec<W> {
        self.pending.remove(&page).unwrap_or_default()
    }

    /// Pages with outstanding faults (arbitrary order).
    pub fn pending_pages(&self) -> impl Iterator<Item = PageId> + '_ {
        self.pending.keys().copied()
    }

    /// Number of pages with outstanding faults.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` if no faults are outstanding.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Lifetime fault counts: `(total registered, merged duplicates)`.
    /// `total - merged` is the number of distinct migrations requested —
    /// the far-fault count Fig. 5 plots.
    pub fn fault_counts(&self) -> (u64, u64) {
        (self.total_faults, self.merged_faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fault_is_new() {
        let mut m: Mshr<u32> = Mshr::new();
        assert_eq!(m.register(PageId::new(1), 10), RegisterOutcome::NewFault);
        assert!(m.is_pending(PageId::new(1)));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn duplicates_merge_and_wake_in_order() {
        let mut m: Mshr<u32> = Mshr::new();
        m.register(PageId::new(1), 10);
        assert_eq!(m.register(PageId::new(1), 11), RegisterOutcome::Merged);
        assert_eq!(m.register(PageId::new(1), 12), RegisterOutcome::Merged);
        assert_eq!(m.complete(PageId::new(1)), vec![10, 11, 12]);
        assert!(!m.is_pending(PageId::new(1)));
        assert!(m.is_empty());
    }

    #[test]
    fn complete_without_fault_is_empty() {
        let mut m: Mshr<u32> = Mshr::new();
        assert!(m.complete(PageId::new(9)).is_empty());
    }

    #[test]
    fn independent_pages_tracked_separately() {
        let mut m: Mshr<u32> = Mshr::new();
        m.register(PageId::new(1), 10);
        m.register(PageId::new(2), 20);
        let mut pages: Vec<_> = m.pending_pages().map(|p| p.index()).collect();
        pages.sort_unstable();
        assert_eq!(pages, vec![1, 2]);
        assert_eq!(m.complete(PageId::new(2)), vec![20]);
        assert!(m.is_pending(PageId::new(1)));
    }

    #[test]
    fn fault_counts_track_distinct_migrations() {
        let mut m: Mshr<u32> = Mshr::new();
        m.register(PageId::new(1), 10);
        m.register(PageId::new(1), 11);
        m.register(PageId::new(2), 12);
        let (total, merged) = m.fault_counts();
        assert_eq!(total, 3);
        assert_eq!(merged, 1);
        assert_eq!(total - merged, 2); // two distinct migrations
    }

    #[test]
    fn refault_after_completion_is_new() {
        let mut m: Mshr<u32> = Mshr::new();
        m.register(PageId::new(1), 10);
        m.complete(PageId::new(1));
        assert_eq!(m.register(PageId::new(1), 11), RegisterOutcome::NewFault);
    }
}
