//! Multi-level radix page-table walk cost model.
//!
//! The paper charges a flat 100 cycles per walk (Table 2), following
//! its references on GPU address translation (Gandhi et al.'s nested
//! walks, Ausavarungnirun et al.'s multi-threaded walkers). This
//! module provides the detailed alternative: a 4-level, 512-ary radix
//! walk with a page-walk cache over the upper levels, so walks that
//! stay within a cached subtree touch fewer levels. The engine uses
//! the flat constant by default; the radix model is available for
//! sensitivity studies.

use std::collections::VecDeque;

use uvm_types::{Duration, PageId};

/// Bits of page index consumed per radix level (512-ary, as in x86-64
/// long mode and NVIDIA's 49-bit UVM space).
const BITS_PER_LEVEL: u32 = 9;

/// A 4-level radix page-walk cost model with a page-walk cache.
///
/// # Examples
///
/// ```
/// use uvm_mem::RadixWalkModel;
/// use uvm_types::{Duration, PageId};
///
/// let mut walker = RadixWalkModel::new(Duration::from_cycles(25), 16);
/// // Cold walk: all four levels.
/// assert_eq!(walker.walk(PageId::new(0)).cycles(), 100);
/// // A neighbouring page reuses the cached upper levels: one level.
/// assert_eq!(walker.walk(PageId::new(1)).cycles(), 25);
/// ```
#[derive(Clone, Debug)]
pub struct RadixWalkModel {
    per_level: Duration,
    levels: u32,
    /// Cached upper-level entries as `(level, index prefix)`, LRU
    /// order (front = oldest). Level 0 is the leaf PTE level and is
    /// never cached here (that is the TLB's job).
    cache: VecDeque<(u32, u64)>,
    capacity: usize,
    walks: u64,
    levels_touched: u64,
}

impl RadixWalkModel {
    /// Creates a 4-level walker costing `per_level` per level touched,
    /// with a page-walk cache of `cache_entries` upper-level entries.
    ///
    /// # Panics
    ///
    /// Panics if `cache_entries` is zero.
    pub fn new(per_level: Duration, cache_entries: usize) -> Self {
        assert!(cache_entries > 0, "walk cache needs at least one entry");
        RadixWalkModel {
            per_level,
            levels: 4,
            cache: VecDeque::with_capacity(cache_entries),
            capacity: cache_entries,
            walks: 0,
            levels_touched: 0,
        }
    }

    /// Walks the table for `page`, returning the latency: one
    /// `per_level` per level below the deepest cached upper-level
    /// entry (minimum one — the leaf PTE is always read).
    pub fn walk(&mut self, page: PageId) -> Duration {
        self.walks += 1;
        // Find the deepest cached ancestor. Level l (1..levels) covers
        // the prefix page >> (l * BITS_PER_LEVEL).
        let mut levels_to_walk = self.levels;
        for level in 1..self.levels {
            let prefix = page.index() >> (level * BITS_PER_LEVEL);
            if self.lookup(level, prefix) {
                levels_to_walk = level;
                break;
            }
        }
        // Install the upper-level entries touched by this walk.
        for level in 1..self.levels {
            self.insert(level, page.index() >> (level * BITS_PER_LEVEL));
        }
        self.levels_touched += u64::from(levels_to_walk);
        Duration::from_cycles(self.per_level.cycles() * u64::from(levels_to_walk))
    }

    fn lookup(&mut self, level: u32, prefix: u64) -> bool {
        if let Some(pos) = self.cache.iter().position(|&e| e == (level, prefix)) {
            let hit = self.cache.remove(pos).expect("position exists");
            self.cache.push_back(hit);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, level: u32, prefix: u64) {
        if let Some(pos) = self.cache.iter().position(|&e| e == (level, prefix)) {
            self.cache.remove(pos);
        } else if self.cache.len() == self.capacity {
            self.cache.pop_front();
        }
        self.cache.push_back((level, prefix));
    }

    /// Serializes the walker for a checkpoint: configuration, the
    /// walk cache in LRU order, and the lifetime counters.
    pub fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        w.put_u64(self.per_level.cycles());
        w.put_u32(self.levels);
        w.put_usize(self.capacity);
        w.put_usize(self.cache.len());
        for &(level, prefix) in &self.cache {
            w.put_u32(level);
            w.put_u64(prefix);
        }
        w.put_u64(self.walks);
        w.put_u64(self.levels_touched);
    }

    /// Rebuilds a walker from a [`save_state`](Self::save_state) image.
    pub fn load_state(
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<Self, uvm_types::codec::CodecError> {
        let per_level = Duration::from_cycles(r.get_u64()?);
        let levels = r.get_u32()?;
        let capacity = r.get_usize()?;
        if capacity == 0 {
            return Err(uvm_types::codec::CodecError::BadTag {
                what: "walk cache capacity",
                value: 0,
            });
        }
        let n = r.get_usize()?;
        if n > capacity {
            return Err(uvm_types::codec::CodecError::BadTag {
                what: "walk cache entries",
                value: n as u64,
            });
        }
        let mut cache = VecDeque::with_capacity(capacity);
        for _ in 0..n {
            let level = r.get_u32()?;
            let prefix = r.get_u64()?;
            cache.push_back((level, prefix));
        }
        let walks = r.get_u64()?;
        let levels_touched = r.get_u64()?;
        Ok(RadixWalkModel {
            per_level,
            levels,
            cache,
            capacity,
            walks,
            levels_touched,
        })
    }

    /// Mean levels touched per walk over the model's lifetime
    /// (4.0 = every walk cold, 1.0 = perfect upper-level caching).
    pub fn mean_levels_per_walk(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.levels_touched as f64 / self.walks as f64
        }
    }

    /// Number of walks performed.
    pub fn walks(&self) -> u64 {
        self.walks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walker() -> RadixWalkModel {
        RadixWalkModel::new(Duration::from_cycles(25), 8)
    }

    #[test]
    fn cold_walk_touches_all_levels() {
        let mut w = walker();
        assert_eq!(w.walk(PageId::new(12345)).cycles(), 100);
        assert_eq!(w.walks(), 1);
        assert_eq!(w.mean_levels_per_walk(), 4.0);
    }

    #[test]
    fn warm_walk_within_a_leaf_table_touches_one_level() {
        let mut w = walker();
        w.walk(PageId::new(0));
        // Pages 0..512 share the level-1 table.
        assert_eq!(w.walk(PageId::new(511)).cycles(), 25);
        assert_eq!(w.walk(PageId::new(1)).cycles(), 25);
    }

    #[test]
    fn crossing_a_leaf_table_walks_two_levels() {
        let mut w = walker();
        w.walk(PageId::new(0));
        // Page 512 shares levels 2..3 but needs a new level-1 entry.
        assert_eq!(w.walk(PageId::new(512)).cycles(), 50);
    }

    #[test]
    fn crossing_the_whole_tree_recolds() {
        let mut w = walker();
        w.walk(PageId::new(0));
        // A page beyond the level-3 span shares nothing.
        let far = PageId::new(1 << 27);
        assert_eq!(w.walk(far).cycles(), 100);
    }

    #[test]
    fn cache_evicts_lru() {
        let mut w = RadixWalkModel::new(Duration::from_cycles(25), 3);
        w.walk(PageId::new(0)); // installs 3 entries (levels 1..3)
                                // A far page evicts all three (cache capacity 3).
        w.walk(PageId::new(1 << 27));
        // The original region is cold again.
        assert_eq!(w.walk(PageId::new(0)).cycles(), 100);
    }

    #[test]
    fn statistics_accumulate() {
        let mut w = walker();
        w.walk(PageId::new(0));
        w.walk(PageId::new(1));
        assert_eq!(w.walks(), 2);
        assert!((w.mean_levels_per_walk() - 2.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_cache_rejected() {
        let _ = RadixWalkModel::new(Duration::from_cycles(25), 0);
    }
}
