//! The GPU page table: per-4KB-page valid/dirty/accessed flags.

use uvm_types::PageId;

/// Flags of one page-table entry.
///
/// `valid` means the page is resident in device memory. `accessed` and
/// `dirty` are set by warp reads/writes; the pre-eviction design-choice
/// discussion in Sec. 5.3 distinguishes pages that are merely valid
/// (brought in by the prefetcher, never touched) from accessed ones.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct PteFlags {
    /// Page is resident in device memory.
    pub valid: bool,
    /// Page has been read or written by a warp since migration.
    pub accessed: bool,
    /// Page has been written and must be written back on eviction.
    pub dirty: bool,
}

/// Packed PTE bit: page is resident.
const B_VALID: u8 = 1;
/// Packed PTE bit: page was read or written since migration.
const B_ACCESSED: u8 = 2;
/// Packed PTE bit: page was written since migration.
const B_DIRTY: u8 = 4;

/// The GPU page table.
///
/// Entries are created lazily: a page with no entry is simply invalid
/// (the first touch of a `cudaMallocManaged` allocation has no PTE at
/// all — paper Sec. 2.2). Validation and invalidation keep a running
/// count of resident pages so capacity checks are O(1).
///
/// The table is a dense byte-per-page array of packed flags, grown to
/// the highest page index validated. The simulator's 2 MB-aligned bump
/// allocator keeps page indices dense, so the array stays proportional
/// to the address-space footprint — and `is_valid`, which the engine
/// consults on every TLB miss and the prefetch planner on every
/// candidate page, becomes a single indexed load instead of a hash
/// probe.
///
/// # Examples
///
/// ```
/// use uvm_mem::PageTable;
/// use uvm_types::PageId;
///
/// let mut pt = PageTable::new();
/// let p = PageId::new(3);
/// assert!(!pt.is_valid(p));
/// pt.validate(p);
/// pt.mark_access(p, true);
/// assert!(pt.flags(p).dirty);
/// assert_eq!(pt.valid_pages(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PageTable {
    /// Packed `B_*` flag bits per page index; pages beyond the array
    /// have no PTE.
    bits: Vec<u8>,
    valid_count: u64,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` if `page` is resident (valid flag set).
    #[inline]
    pub fn is_valid(&self, page: PageId) -> bool {
        self.bits
            .get(page.index() as usize)
            .is_some_and(|&b| b & B_VALID != 0)
    }

    /// The flags of `page` (all-false if no PTE exists).
    #[inline]
    pub fn flags(&self, page: PageId) -> PteFlags {
        let b = self.bits.get(page.index() as usize).copied().unwrap_or(0);
        PteFlags {
            valid: b & B_VALID != 0,
            accessed: b & B_ACCESSED != 0,
            dirty: b & B_DIRTY != 0,
        }
    }

    /// Marks `page` resident, creating the PTE if needed. Migration
    /// clears the accessed/dirty history of any stale entry.
    ///
    /// Returns `true` if the page was previously invalid.
    pub fn validate(&mut self, page: PageId) -> bool {
        let i = page.index() as usize;
        if i >= self.bits.len() {
            self.bits.resize(i + 1, 0);
        }
        let was_invalid = self.bits[i] & B_VALID == 0;
        self.bits[i] = B_VALID;
        if was_invalid {
            self.valid_count += 1;
        }
        was_invalid
    }

    /// Marks `page` not resident, returning the flags it had.
    ///
    /// The entry is retained (invalid), mirroring a cleared valid bit.
    pub fn invalidate(&mut self, page: PageId) -> PteFlags {
        match self.bits.get_mut(page.index() as usize) {
            Some(b) if *b & B_VALID != 0 => {
                let old = PteFlags {
                    valid: true,
                    accessed: *b & B_ACCESSED != 0,
                    dirty: *b & B_DIRTY != 0,
                };
                *b = 0;
                self.valid_count -= 1;
                old
            }
            _ => PteFlags::default(),
        }
    }

    /// Records a warp access to a resident page; `write` also sets the
    /// dirty flag.
    ///
    /// # Panics
    ///
    /// Panics if `page` is not valid — the GMMU must fault first.
    #[inline]
    pub fn mark_access(&mut self, page: PageId, write: bool) {
        let b = self
            .bits
            .get_mut(page.index() as usize)
            .filter(|b| **b & B_VALID != 0)
            .expect("access to non-resident page must fault");
        *b |= B_ACCESSED | if write { B_DIRTY } else { 0 };
    }

    /// Number of resident pages.
    pub fn valid_pages(&self) -> u64 {
        self.valid_count
    }

    /// Iterates over resident pages (ascending page order).
    pub fn iter_valid(&self) -> impl Iterator<Item = PageId> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b & B_VALID != 0)
            .map(|(i, _)| PageId::new(i as u64))
    }

    /// Serializes the table for a checkpoint. Only valid entries are
    /// written (an invalid PTE is indistinguishable from a missing
    /// one — `invalidate` resets every flag), sorted by page index so
    /// the encoding is canonical regardless of table growth history.
    pub fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        w.put_usize(self.valid_count as usize);
        for (i, &b) in self.bits.iter().enumerate() {
            if b & B_VALID != 0 {
                w.put_u64(i as u64);
                w.put_u8(u8::from(b & B_ACCESSED != 0) | (u8::from(b & B_DIRTY != 0) << 1));
            }
        }
    }

    /// Rebuilds a table from a [`save_state`](Self::save_state) image.
    pub fn load_state(
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<Self, uvm_types::codec::CodecError> {
        let n = r.get_usize()?;
        let mut pt = PageTable::new();
        for _ in 0..n {
            let page = PageId::new(r.get_u64()?);
            let bits = r.get_u8()?;
            if bits > 0b11 {
                return Err(uvm_types::codec::CodecError::BadTag {
                    what: "pte flags",
                    value: u64::from(bits),
                });
            }
            pt.validate(page);
            let i = page.index() as usize;
            pt.bits[i] |= ((bits & 1) * B_ACCESSED) | (((bits >> 1) & 1) * B_DIRTY);
        }
        Ok(pt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_start_invalid() {
        let pt = PageTable::new();
        assert!(!pt.is_valid(PageId::new(0)));
        assert_eq!(pt.flags(PageId::new(0)), PteFlags::default());
        assert_eq!(pt.valid_pages(), 0);
    }

    #[test]
    fn validate_sets_valid_and_counts() {
        let mut pt = PageTable::new();
        assert!(pt.validate(PageId::new(1)));
        assert!(pt.is_valid(PageId::new(1)));
        assert_eq!(pt.valid_pages(), 1);
        // Re-validating a resident page is a no-op for the count.
        assert!(!pt.validate(PageId::new(1)));
        assert_eq!(pt.valid_pages(), 1);
    }

    #[test]
    fn migration_clears_history() {
        let mut pt = PageTable::new();
        pt.validate(PageId::new(1));
        pt.mark_access(PageId::new(1), true);
        pt.invalidate(PageId::new(1));
        pt.validate(PageId::new(1));
        let f = pt.flags(PageId::new(1));
        assert!(f.valid && !f.accessed && !f.dirty);
    }

    #[test]
    fn access_sets_flags() {
        let mut pt = PageTable::new();
        pt.validate(PageId::new(2));
        pt.mark_access(PageId::new(2), false);
        assert!(pt.flags(PageId::new(2)).accessed);
        assert!(!pt.flags(PageId::new(2)).dirty);
        pt.mark_access(PageId::new(2), true);
        assert!(pt.flags(PageId::new(2)).dirty);
        // A later read does not clear dirtiness.
        pt.mark_access(PageId::new(2), false);
        assert!(pt.flags(PageId::new(2)).dirty);
    }

    #[test]
    #[should_panic(expected = "must fault")]
    fn access_to_invalid_page_panics() {
        let mut pt = PageTable::new();
        pt.mark_access(PageId::new(3), false);
    }

    #[test]
    fn invalidate_returns_old_flags() {
        let mut pt = PageTable::new();
        pt.validate(PageId::new(4));
        pt.mark_access(PageId::new(4), true);
        let old = pt.invalidate(PageId::new(4));
        assert!(old.valid && old.accessed && old.dirty);
        assert!(!pt.is_valid(PageId::new(4)));
        assert_eq!(pt.valid_pages(), 0);
        // Invalidating an already-invalid page is a no-op.
        let old = pt.invalidate(PageId::new(4));
        assert_eq!(old, PteFlags::default());
        assert_eq!(pt.valid_pages(), 0);
    }

    #[test]
    fn iter_valid_lists_resident_pages() {
        let mut pt = PageTable::new();
        for i in 0..5 {
            pt.validate(PageId::new(i));
        }
        pt.invalidate(PageId::new(2));
        let mut pages: Vec<_> = pt.iter_valid().map(|p| p.index()).collect();
        pages.sort_unstable();
        assert_eq!(pages, vec![0, 1, 3, 4]);
    }
}
