//! Per-SM translation lookaside buffer.
//!
//! The paper models a fully associative TLB with single-cycle lookup
//! (Sec. 6.1, after Pichai et al.); misses are relayed to the GMMU for
//! a page-table walk. Architecturally the model is LRU-replaced and
//! fully associative; the *implementation* here is a hash-indexed
//! intrusive LRU list, so `lookup`, `fill`, and `invalidate` are all
//! O(1) instead of the O(capacity) scans of a naive recency array.
//!
//! Two API layers share the same structure:
//!
//! * the plain [`lookup`](Tlb::lookup) / [`fill`](Tlb::fill) /
//!   [`invalidate`](Tlb::invalidate) surface, for standalone use, and
//! * the generation-stamped [`lookup_gen`](Tlb::lookup_gen) /
//!   [`fill_after_miss`](Tlb::fill_after_miss) surface the engine's
//!   shootdown protocol uses (see
//!   [`ShootdownDirectory`](crate::ShootdownDirectory)): each entry
//!   records the page generation it translated, and a lookup only hits
//!   when the stamp still matches the current generation — so a page
//!   eviction invalidates every SM's cached translation by bumping one
//!   counter, and a stale entry can never be observed as a hit even
//!   before its slot is reclaimed.
//!
//! [`ReferenceTlb`] preserves the previous `VecDeque` implementation
//! as an executable specification for differential tests and
//! head-to-head microbenches.

use std::collections::HashMap;

use uvm_types::hash::FxBuildHasher;
use uvm_types::{LargePageId, PageId};

/// Result of a TLB lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbLookup {
    /// Translation cached; access proceeds without a walk.
    Hit,
    /// Translation absent; the access is relayed to the GMMU.
    Miss,
}

/// The precise inverse record of one mutating TLB operation, produced
/// by the `*_logged` variants and consumed by [`Tlb::undo`].
///
/// The sharded engine executes events speculatively between barriers
/// and must be able to rewind a TLB to its exact pre-event state when
/// a cross-shard serialization point (a far-fault) lands earlier in
/// the canonical order. Every observable of the TLB — recency order,
/// entry set, generation stamps, hit/miss counters, the huge side
/// table — is restored exactly; slot indices and free-list order are
/// implementation details no lookup can observe (they are not even
/// serialized by [`Tlb::save_state`]), and the inverses below restore
/// those too, so undo is literal, not merely observational.
#[derive(Clone, Copy, Debug)]
pub enum TlbOp {
    /// A [`lookup_gen`](Tlb::lookup_gen) hit: the slot moved to the
    /// MRU end; `prev`/`next` are its list neighbours beforehand.
    LookupHit {
        /// Slot that was touched.
        slot: u32,
        /// Its previous-neighbour slot before the touch (`NIL` = LRU).
        prev: u32,
        /// Its next-neighbour slot before the touch (`NIL` = MRU).
        next: u32,
    },
    /// A [`lookup_gen`](Tlb::lookup_gen) miss that reclaimed a stale
    /// entry: the slot was unlinked, freed, and unindexed (its stored
    /// page/generation were left in place).
    LookupStale {
        /// The page whose stale entry was reclaimed.
        page: PageId,
        /// The reclaimed slot.
        slot: u32,
        /// Its previous-neighbour slot before the unlink.
        prev: u32,
        /// Its next-neighbour slot before the unlink.
        next: u32,
    },
    /// A [`lookup_gen`](Tlb::lookup_gen) miss on an absent page: only
    /// the miss counter moved.
    LookupAbsent,
    /// A fill that evicted the LRU victim and reused its slot.
    FillEvict {
        /// The newly installed page.
        page: PageId,
        /// The evicted page (previous occupant of `slot`).
        victim: PageId,
        /// The victim's generation stamp.
        victim_generation: u32,
        /// The reused slot (was the LRU).
        slot: u32,
        /// The victim's next-neighbour before the unlink (it had no
        /// previous neighbour: it was the LRU end).
        next: u32,
    },
    /// A fill that reused a free-list slot.
    FillFree {
        /// The newly installed page.
        page: PageId,
        /// The slot popped from the free list.
        slot: u32,
    },
    /// A fill that grew the slot slab.
    FillGrow {
        /// The newly installed page (in the last slab slot).
        page: PageId,
    },
    /// A [`lookup_huge`](Tlb::lookup_huge) hit: only the hit counter
    /// moved.
    HugeHit,
    /// A [`lookup_huge`](Tlb::lookup_huge) that reclaimed a stale
    /// huge entry.
    HugeStale {
        /// The large page whose entry was reclaimed.
        lp: LargePageId,
        /// The reclaimed (stale) epoch stamp.
        stamp: u64,
    },
    /// A [`lookup_huge`](Tlb::lookup_huge) on an absent large page:
    /// nothing moved.
    HugeAbsent,
    /// A [`fill_huge`](Tlb::fill_huge): the previous stamp (if any)
    /// was overwritten.
    FillHuge {
        /// The filled large page.
        lp: LargePageId,
        /// The stamp it held before, `None` if absent.
        prev: Option<u64>,
    },
}

/// Index sentinel: no slot.
const NIL: u32 = u32::MAX;

/// One cached translation, threaded on the intrusive recency list.
#[derive(Clone, Copy, Debug)]
struct Slot {
    page: PageId,
    /// Page generation at fill time; a lookup hit requires this to
    /// still equal the page's current generation.
    generation: u32,
    prev: u32,
    next: u32,
}

/// A fully associative, LRU-replaced TLB with O(1) lookup, fill, and
/// invalidate (hash index + intrusive doubly-linked recency list).
///
/// # Examples
///
/// ```
/// use uvm_mem::{Tlb, TlbLookup};
/// use uvm_types::PageId;
///
/// let mut tlb = Tlb::new(2);
/// assert_eq!(tlb.lookup(PageId::new(1)), TlbLookup::Miss);
/// tlb.fill(PageId::new(1));
/// assert_eq!(tlb.lookup(PageId::new(1)), TlbLookup::Hit);
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    /// page → slot index.
    index: HashMap<PageId, u32, FxBuildHasher>,
    slots: Vec<Slot>,
    /// Recycled slot indices.
    free: Vec<u32>,
    /// Least recently used slot (eviction side), `NIL` when empty.
    lru: u32,
    /// Most recently used slot, `NIL` when empty.
    mru: u32,
    capacity: usize,
    hits: u64,
    misses: u64,
    /// Huge-page side table: one entry translates a whole 2 MB large
    /// page (the coalesced-mapping payoff — 512 pages, one slot).
    /// Modeled as a separate structure, like the dedicated large-page
    /// TLBs on real GPUs, so it does not contend with 4 KB entries for
    /// `capacity`; it holds at most one entry per huge-mapped large
    /// page. Entries are stamped with the GMMU's per-large-page
    /// mapping epoch, so a splinter invalidates every SM's entry by
    /// bumping one counter (the same trick `lookup_gen` plays with the
    /// [`ShootdownDirectory`](crate::ShootdownDirectory)).
    huge: HashMap<LargePageId, u64, FxBuildHasher>,
}

impl Tlb {
    /// Creates an empty TLB holding at most `capacity` translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be non-zero");
        Tlb {
            index: HashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default()),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            lru: NIL,
            mru: NIL,
            capacity,
            hits: 0,
            misses: 0,
            huge: HashMap::default(),
        }
    }

    /// Looks up `page`, updating recency on a hit. Equivalent to
    /// [`lookup_gen`](Self::lookup_gen) at generation 0 (the
    /// generation every [`fill`](Self::fill) stamps).
    pub fn lookup(&mut self, page: PageId) -> TlbLookup {
        self.lookup_gen(page, 0)
    }

    /// Looks up `page` against its current generation, updating
    /// recency on a hit.
    ///
    /// An entry whose stamp no longer matches `generation` was shot
    /// down by a [`ShootdownDirectory::bump`] and is *never* observable
    /// as a hit: it counts as a miss, and its slot is reclaimed on the
    /// spot. (Under the engine's protocol the directory reclaims
    /// holder slots eagerly, so this lazy path is a second line of
    /// defence that also serves users who skip holder tracking.)
    ///
    /// [`ShootdownDirectory::bump`]: crate::ShootdownDirectory::bump
    pub fn lookup_gen(&mut self, page: PageId, generation: u32) -> TlbLookup {
        match self.index.get(&page) {
            Some(&slot) => {
                if self.slots[slot as usize].generation == generation {
                    self.touch(slot);
                    self.hits += 1;
                    TlbLookup::Hit
                } else {
                    // Stale translation: logically absent since the
                    // generation bump.
                    self.index.remove(&page);
                    self.unlink(slot);
                    self.free.push(slot);
                    self.misses += 1;
                    TlbLookup::Miss
                }
            }
            None => {
                self.misses += 1;
                TlbLookup::Miss
            }
        }
    }

    /// Installs a translation for `page`, evicting the LRU entry if the
    /// TLB is full. Filling an already-present page refreshes recency.
    /// Equivalent to [`fill_gen`](Self::fill_gen) at generation 0.
    pub fn fill(&mut self, page: PageId) {
        let _ = self.fill_gen(page, 0);
    }

    /// Installs a translation for `page` stamped with `generation`,
    /// evicting the LRU entry if the TLB is full; returns the evicted
    /// page, if any. Filling an already-present page refreshes recency
    /// and re-stamps it.
    pub fn fill_gen(&mut self, page: PageId, generation: u32) -> Option<PageId> {
        if let Some(&slot) = self.index.get(&page) {
            self.slots[slot as usize].generation = generation;
            self.touch(slot);
            return None;
        }
        self.insert_new(page, generation)
    }

    /// Fast-path fill for the access flow where [`lookup_gen`]
    /// (or [`lookup`](Self::lookup)) just missed on `page`: skips the
    /// present-entry probe `fill` pays, inserting directly. Returns
    /// the page evicted to make room, if any.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `page` is already cached — callers
    /// must only use this immediately after a miss on `page`.
    ///
    /// [`lookup_gen`]: Self::lookup_gen
    pub fn fill_after_miss(&mut self, page: PageId, generation: u32) -> Option<PageId> {
        debug_assert!(
            !self.index.contains_key(&page),
            "fill_after_miss({page}) but the page is cached; use fill"
        );
        self.insert_new(page, generation)
    }

    /// Removes the translation for `page` if present, returning whether
    /// an entry was removed (the eager per-TLB shootdown a page
    /// eviction performs; with a [`ShootdownDirectory`] only the actual
    /// holder TLBs are visited).
    ///
    /// [`ShootdownDirectory`]: crate::ShootdownDirectory
    pub fn invalidate(&mut self, page: PageId) -> bool {
        match self.index.remove(&page) {
            Some(slot) => {
                self.unlink(slot);
                self.free.push(slot);
                true
            }
            None => false,
        }
    }

    /// Looks up a huge-page translation for `lp` at the GMMU's current
    /// mapping epoch. A hit covers every 4 KB page of the large page
    /// and counts once in the hit counter. A stale entry (epoch moved
    /// on: the mapping was splintered, possibly re-coalesced) is
    /// reclaimed on the spot and does *not* count a miss — the engine
    /// falls through to the 4 KB [`lookup_gen`](Self::lookup_gen),
    /// which does.
    pub fn lookup_huge(&mut self, lp: LargePageId, generation: u64) -> bool {
        match self.huge.get(&lp) {
            Some(&stamp) if stamp == generation => {
                self.hits += 1;
                true
            }
            Some(_) => {
                self.huge.remove(&lp);
                false
            }
            None => false,
        }
    }

    /// Installs (or re-stamps) the huge-page translation for `lp`.
    pub fn fill_huge(&mut self, lp: LargePageId, generation: u64) {
        self.huge.insert(lp, generation);
    }

    /// Removes the huge-page translation for `lp` if present (eager
    /// shootdown; epoch bumps make this optional).
    pub fn invalidate_huge(&mut self, lp: LargePageId) -> bool {
        self.huge.remove(&lp).is_some()
    }

    /// [`lookup_gen`](Self::lookup_gen) that also returns the inverse
    /// record for [`undo`](Self::undo).
    pub fn lookup_gen_logged(&mut self, page: PageId, generation: u32) -> (TlbLookup, TlbOp) {
        match self.index.get(&page) {
            Some(&slot) => {
                let Slot { prev, next, .. } = self.slots[slot as usize];
                if self.slots[slot as usize].generation == generation {
                    self.touch(slot);
                    self.hits += 1;
                    (TlbLookup::Hit, TlbOp::LookupHit { slot, prev, next })
                } else {
                    self.index.remove(&page);
                    self.unlink(slot);
                    self.free.push(slot);
                    self.misses += 1;
                    (
                        TlbLookup::Miss,
                        TlbOp::LookupStale {
                            page,
                            slot,
                            prev,
                            next,
                        },
                    )
                }
            }
            None => {
                self.misses += 1;
                (TlbLookup::Miss, TlbOp::LookupAbsent)
            }
        }
    }

    /// [`lookup_huge`](Self::lookup_huge) that also returns the
    /// inverse record for [`undo`](Self::undo).
    pub fn lookup_huge_logged(&mut self, lp: LargePageId, generation: u64) -> (bool, TlbOp) {
        match self.huge.get(&lp) {
            Some(&stamp) if stamp == generation => {
                self.hits += 1;
                (true, TlbOp::HugeHit)
            }
            Some(&stamp) => {
                self.huge.remove(&lp);
                (false, TlbOp::HugeStale { lp, stamp })
            }
            None => (false, TlbOp::HugeAbsent),
        }
    }

    /// [`fill_huge`](Self::fill_huge) that also returns the inverse
    /// record for [`undo`](Self::undo).
    pub fn fill_huge_logged(&mut self, lp: LargePageId, generation: u64) -> TlbOp {
        let prev = self.huge.insert(lp, generation);
        TlbOp::FillHuge { lp, prev }
    }

    /// [`fill_after_miss`](Self::fill_after_miss) that also returns
    /// the inverse record for [`undo`](Self::undo).
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `page` is already cached.
    pub fn fill_after_miss_logged(
        &mut self,
        page: PageId,
        generation: u32,
    ) -> (Option<PageId>, TlbOp) {
        debug_assert!(
            !self.index.contains_key(&page),
            "fill_after_miss_logged({page}) but the page is cached; use fill"
        );
        if self.index.len() == self.capacity {
            let slot = self.lru;
            let Slot {
                page: victim,
                generation: victim_generation,
                next,
                ..
            } = self.slots[slot as usize];
            self.index.remove(&victim);
            self.unlink(slot);
            let s = &mut self.slots[slot as usize];
            s.page = page;
            s.generation = generation;
            self.push_mru(slot);
            self.index.insert(page, slot);
            (
                Some(victim),
                TlbOp::FillEvict {
                    page,
                    victim,
                    victim_generation,
                    slot,
                    next,
                },
            )
        } else if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            s.page = page;
            s.generation = generation;
            self.push_mru(slot);
            self.index.insert(page, slot);
            (None, TlbOp::FillFree { page, slot })
        } else {
            self.slots.push(Slot {
                page,
                generation,
                prev: NIL,
                next: NIL,
            });
            let slot = (self.slots.len() - 1) as u32;
            self.push_mru(slot);
            self.index.insert(page, slot);
            (None, TlbOp::FillGrow { page })
        }
    }

    /// Reverts one logged operation. Ops must be undone in exact
    /// reverse order of application; the TLB is then restored
    /// *literally* — recency list, slot layout, free-list order,
    /// counters, and huge table all match the pre-op state, so
    /// subsequent behavior is bit-for-bit what it would have been had
    /// the reverted ops never run.
    pub fn undo(&mut self, op: TlbOp) {
        match op {
            TlbOp::LookupHit { slot, prev, next } => {
                self.hits -= 1;
                self.unlink(slot);
                self.insert_between(slot, prev, next);
            }
            TlbOp::LookupStale {
                page,
                slot,
                prev,
                next,
            } => {
                self.misses -= 1;
                let freed = self.free.pop();
                debug_assert_eq!(freed, Some(slot), "undo out of order");
                self.insert_between(slot, prev, next);
                self.index.insert(page, slot);
            }
            TlbOp::LookupAbsent => {
                self.misses -= 1;
            }
            TlbOp::FillEvict {
                page,
                victim,
                victim_generation,
                slot,
                next,
            } => {
                self.index.remove(&page);
                self.unlink(slot);
                let s = &mut self.slots[slot as usize];
                s.page = victim;
                s.generation = victim_generation;
                // The victim sat at the LRU end (prev = NIL).
                self.insert_between(slot, NIL, next);
                self.index.insert(victim, slot);
            }
            TlbOp::FillFree { page, slot } => {
                self.index.remove(&page);
                self.unlink(slot);
                self.free.push(slot);
            }
            TlbOp::FillGrow { page } => {
                self.index.remove(&page);
                let slot = (self.slots.len() - 1) as u32;
                self.unlink(slot);
                self.slots.pop();
            }
            TlbOp::HugeHit => {
                self.hits -= 1;
            }
            TlbOp::HugeStale { lp, stamp } => {
                self.huge.insert(lp, stamp);
            }
            TlbOp::HugeAbsent => {}
            TlbOp::FillHuge { lp, prev } => match prev {
                Some(stamp) => {
                    self.huge.insert(lp, stamp);
                }
                None => {
                    self.huge.remove(&lp);
                }
            },
        }
    }

    /// Current number of cached huge-page translations (stale entries
    /// included until a lookup reclaims them).
    pub fn huge_len(&self) -> usize {
        self.huge.len()
    }

    /// Current number of cached translations (stale-but-unreclaimed
    /// entries included, until a lookup or fill recycles them).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` if no translations are cached.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Lifetime (hit, miss) counts. The counters survive
    /// [`invalidate`](Self::invalidate) and generation bumps: they
    /// accumulate over every lookup the TLB ever served, regardless of
    /// how entries were later removed.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Serializes the TLB for a checkpoint: capacity, the live entries
    /// in LRU→MRU order with their generation stamps, the lifetime
    /// counters, and the huge-page side table (sorted by large page).
    ///
    /// Slot indices and the free list are *not* recorded — they are
    /// implementation details no lookup can observe. Restore replays
    /// the entries through [`fill_gen`](Self::fill_gen) in recency
    /// order, which reproduces the observable state exactly.
    pub fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        w.put_usize(self.capacity);
        w.put_usize(self.index.len());
        let mut slot = self.lru;
        while slot != NIL {
            let s = &self.slots[slot as usize];
            w.put_u64(s.page.index());
            w.put_u32(s.generation);
            slot = s.next;
        }
        w.put_u64(self.hits);
        w.put_u64(self.misses);
        let mut huge: Vec<(LargePageId, u64)> = self.huge.iter().map(|(&l, &e)| (l, e)).collect();
        huge.sort_unstable_by_key(|(l, _)| *l);
        w.put_usize(huge.len());
        for (lp, epoch) in huge {
            w.put_u64(lp.index());
            w.put_u64(epoch);
        }
    }

    /// Rebuilds a TLB from a [`save_state`](Self::save_state) image.
    pub fn load_state(
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<Self, uvm_types::codec::CodecError> {
        let capacity = r.get_usize()?;
        if capacity == 0 {
            return Err(uvm_types::codec::CodecError::BadTag {
                what: "tlb capacity",
                value: 0,
            });
        }
        let mut tlb = Tlb::new(capacity);
        let n = r.get_usize()?;
        if n > capacity {
            return Err(uvm_types::codec::CodecError::BadTag {
                what: "tlb entry count",
                value: n as u64,
            });
        }
        for _ in 0..n {
            let page = PageId::new(r.get_u64()?);
            let generation = r.get_u32()?;
            tlb.fill_gen(page, generation);
        }
        tlb.hits = r.get_u64()?;
        tlb.misses = r.get_u64()?;
        let n = r.get_usize()?;
        for _ in 0..n {
            let lp = LargePageId::new(r.get_u64()?);
            let epoch = r.get_u64()?;
            tlb.huge.insert(lp, epoch);
        }
        Ok(tlb)
    }

    /// Iterates the cached 4 KB translations in LRU→MRU order as
    /// `(page, generation)` — the auditor's view of what each SM still
    /// holds.
    pub fn iter_entries(&self) -> impl Iterator<Item = (PageId, u32)> + '_ {
        let mut slot = self.lru;
        std::iter::from_fn(move || {
            if slot == NIL {
                return None;
            }
            let s = &self.slots[slot as usize];
            slot = s.next;
            Some((s.page, s.generation))
        })
    }

    /// Iterates the cached huge-page translations (arbitrary order) as
    /// `(large page, epoch stamp)`.
    pub fn iter_huge(&self) -> impl Iterator<Item = (LargePageId, u64)> + '_ {
        self.huge.iter().map(|(&l, &e)| (l, e))
    }

    /// Inserts a page known to be absent, evicting the LRU entry when
    /// at capacity.
    fn insert_new(&mut self, page: PageId, generation: u32) -> Option<PageId> {
        let (slot, victim) = if self.index.len() == self.capacity {
            let slot = self.lru;
            let victim = self.slots[slot as usize].page;
            self.index.remove(&victim);
            self.unlink(slot);
            (slot, Some(victim))
        } else if let Some(slot) = self.free.pop() {
            (slot, None)
        } else {
            self.slots.push(Slot {
                page,
                generation,
                prev: NIL,
                next: NIL,
            });
            ((self.slots.len() - 1) as u32, None)
        };
        let s = &mut self.slots[slot as usize];
        s.page = page;
        s.generation = generation;
        self.push_mru(slot);
        self.index.insert(page, slot);
        victim
    }

    /// Moves `slot` to the MRU end of the recency list.
    fn touch(&mut self, slot: u32) {
        if self.mru == slot {
            return;
        }
        self.unlink(slot);
        self.push_mru(slot);
    }

    /// Detaches `slot` from the recency list.
    fn unlink(&mut self, slot: u32) {
        let Slot { prev, next, .. } = self.slots[slot as usize];
        if prev == NIL {
            self.lru = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.mru = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
    }

    /// Re-links a detached `slot` between `prev` and `next` (either
    /// may be `NIL` for the LRU/MRU end) — the undo counterpart of
    /// [`unlink`](Self::unlink).
    fn insert_between(&mut self, slot: u32, prev: u32, next: u32) {
        self.slots[slot as usize].prev = prev;
        self.slots[slot as usize].next = next;
        if prev == NIL {
            self.lru = slot;
        } else {
            self.slots[prev as usize].next = slot;
        }
        if next == NIL {
            self.mru = slot;
        } else {
            self.slots[next as usize].prev = slot;
        }
    }

    /// Appends a detached `slot` at the MRU end.
    fn push_mru(&mut self, slot: u32) {
        self.slots[slot as usize].prev = self.mru;
        self.slots[slot as usize].next = NIL;
        if self.mru == NIL {
            self.lru = slot;
        } else {
            self.slots[self.mru as usize].next = slot;
        }
        self.mru = slot;
    }
}

/// The previous `VecDeque`-backed TLB: O(capacity) on every operation,
/// kept as the executable specification the O(1) [`Tlb`] is
/// differential-tested (and benchmarked) against.
#[derive(Clone, Debug)]
pub struct ReferenceTlb {
    /// Entries in LRU order: front = least recently used.
    entries: std::collections::VecDeque<PageId>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl ReferenceTlb {
    /// Creates an empty reference TLB holding at most `capacity`
    /// translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be non-zero");
        ReferenceTlb {
            entries: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `page`, updating recency on a hit.
    pub fn lookup(&mut self, page: PageId) -> TlbLookup {
        if let Some(pos) = self.entries.iter().position(|&p| p == page) {
            let hit = self.entries.remove(pos).expect("position exists");
            self.entries.push_back(hit);
            self.hits += 1;
            TlbLookup::Hit
        } else {
            self.misses += 1;
            TlbLookup::Miss
        }
    }

    /// Installs a translation for `page`, evicting the LRU entry if
    /// full; returns the evicted page, if any.
    pub fn fill(&mut self, page: PageId) -> Option<PageId> {
        let mut victim = None;
        if let Some(pos) = self.entries.iter().position(|&p| p == page) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            victim = self.entries.pop_front();
        }
        self.entries.push_back(page);
        victim
    }

    /// Removes the translation for `page` if present, returning whether
    /// an entry was removed.
    pub fn invalidate(&mut self, page: PageId) -> bool {
        if let Some(pos) = self.entries.iter().position(|&p| p == page) {
            self.entries.remove(pos);
            true
        } else {
            false
        }
    }

    /// Current number of cached translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no translations are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime (hit, miss) counts.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut tlb = Tlb::new(4);
        assert_eq!(tlb.lookup(PageId::new(9)), TlbLookup::Miss);
        tlb.fill(PageId::new(9));
        assert_eq!(tlb.lookup(PageId::new(9)), TlbLookup::Hit);
        assert_eq!(tlb.hit_miss(), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut tlb = Tlb::new(2);
        tlb.fill(PageId::new(1));
        tlb.fill(PageId::new(2));
        // Touch 1 so 2 becomes LRU.
        assert_eq!(tlb.lookup(PageId::new(1)), TlbLookup::Hit);
        tlb.fill(PageId::new(3)); // evicts 2
        assert_eq!(tlb.lookup(PageId::new(2)), TlbLookup::Miss);
        assert_eq!(tlb.lookup(PageId::new(1)), TlbLookup::Hit);
        assert_eq!(tlb.lookup(PageId::new(3)), TlbLookup::Hit);
    }

    #[test]
    fn refill_refreshes_instead_of_duplicating() {
        let mut tlb = Tlb::new(2);
        tlb.fill(PageId::new(1));
        tlb.fill(PageId::new(1));
        assert_eq!(tlb.len(), 1);
        tlb.fill(PageId::new(2));
        tlb.fill(PageId::new(1)); // refresh, not insert
        tlb.fill(PageId::new(3)); // evicts 2 (LRU), not 1
        assert_eq!(tlb.lookup(PageId::new(1)), TlbLookup::Hit);
        assert_eq!(tlb.lookup(PageId::new(2)), TlbLookup::Miss);
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut tlb = Tlb::new(4);
        tlb.fill(PageId::new(5));
        assert!(tlb.invalidate(PageId::new(5)));
        assert_eq!(tlb.lookup(PageId::new(5)), TlbLookup::Miss);
        assert!(tlb.is_empty());
        // Invalidating an absent page is a no-op.
        assert!(!tlb.invalidate(PageId::new(6)));
    }

    #[test]
    fn invalidated_slot_frees_capacity() {
        let mut tlb = Tlb::new(2);
        tlb.fill(PageId::new(1));
        tlb.fill(PageId::new(2));
        tlb.invalidate(PageId::new(1));
        // The freed slot means this fill must NOT evict page 2.
        tlb.fill(PageId::new(3));
        assert_eq!(tlb.lookup(PageId::new(2)), TlbLookup::Hit);
        assert_eq!(tlb.lookup(PageId::new(3)), TlbLookup::Hit);
    }

    #[test]
    fn stale_generation_is_never_a_hit() {
        let mut tlb = Tlb::new(4);
        tlb.fill_gen(PageId::new(7), 0);
        assert_eq!(tlb.lookup_gen(PageId::new(7), 0), TlbLookup::Hit);
        // The page's generation moves on (a shootdown bump): the stale
        // stamp misses and the slot is reclaimed.
        assert_eq!(tlb.lookup_gen(PageId::new(7), 1), TlbLookup::Miss);
        assert!(tlb.is_empty());
        // Refilled at the new generation, it hits again.
        tlb.fill_after_miss(PageId::new(7), 1);
        assert_eq!(tlb.lookup_gen(PageId::new(7), 1), TlbLookup::Hit);
    }

    #[test]
    fn fill_after_miss_reports_victim() {
        let mut tlb = Tlb::new(2);
        assert_eq!(tlb.fill_after_miss(PageId::new(1), 0), None);
        assert_eq!(tlb.fill_after_miss(PageId::new(2), 0), None);
        assert_eq!(tlb.fill_after_miss(PageId::new(3), 0), Some(PageId::new(1)));
        assert_eq!(tlb.lookup(PageId::new(1)), TlbLookup::Miss);
    }

    #[test]
    fn counters_survive_invalidation() {
        let mut tlb = Tlb::new(4);
        tlb.fill(PageId::new(1));
        tlb.lookup(PageId::new(1));
        tlb.invalidate(PageId::new(1));
        assert_eq!(tlb.hit_miss(), (1, 0), "invalidate keeps counters");
        tlb.lookup(PageId::new(1));
        assert_eq!(tlb.hit_miss(), (1, 1));
    }

    #[test]
    fn reference_tlb_matches_basic_flow() {
        let mut tlb = ReferenceTlb::new(2);
        assert_eq!(tlb.lookup(PageId::new(1)), TlbLookup::Miss);
        assert_eq!(tlb.fill(PageId::new(1)), None);
        assert_eq!(tlb.fill(PageId::new(2)), None);
        assert_eq!(tlb.lookup(PageId::new(1)), TlbLookup::Hit);
        assert_eq!(tlb.fill(PageId::new(3)), Some(PageId::new(2)));
        assert!(tlb.invalidate(PageId::new(3)));
        assert_eq!(tlb.len(), 1);
        assert_eq!(tlb.hit_miss(), (1, 1));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = Tlb::new(0);
    }

    #[test]
    fn huge_entries_hit_until_epoch_moves() {
        let mut tlb = Tlb::new(2);
        let lp = LargePageId::new(3);
        assert!(!tlb.lookup_huge(lp, 1));
        tlb.fill_huge(lp, 1);
        assert!(tlb.lookup_huge(lp, 1));
        assert_eq!(tlb.huge_len(), 1);
        // Splinter: the GMMU bumps the epoch; the stale entry never
        // hits and is reclaimed lazily without counting a miss.
        let (hits, misses) = tlb.hit_miss();
        assert!(!tlb.lookup_huge(lp, 2));
        assert_eq!(tlb.huge_len(), 0);
        assert_eq!(tlb.hit_miss(), (hits, misses));
        // Re-coalesce at the new epoch.
        tlb.fill_huge(lp, 3);
        assert!(tlb.lookup_huge(lp, 3));
    }

    /// Serialized bytes plus counters: everything `save_state` pins.
    fn observe(tlb: &Tlb) -> Vec<u8> {
        let mut w = uvm_types::codec::ByteWriter::new();
        tlb.save_state(&mut w);
        w.into_bytes()
    }

    /// Differential undo test: run a random mix of logged operations
    /// (lookups across generations, small and huge fills) against a
    /// TLB with history, undo them in reverse, and require the state
    /// to be *literally* restored — same serialized bytes, and same
    /// bytes again after a further shared op sequence as a pristine
    /// clone (which checks unobservable slot/free-list layout too,
    /// since future evictions depend on it).
    #[test]
    fn logged_ops_undo_to_identical_state() {
        use uvm_types::rng::{Rng, SmallRng};
        let mut rng = SmallRng::seed_from_u64(0x7e5bca11);
        let mut tlb = Tlb::new(8);
        // Build up history: fills, hits, shootdown-style generation
        // bumps, huge entries, invalidations.
        let mut generation = [0u32; 32];
        for step in 0u64..200 {
            let page = PageId::new(rng.next_below(32));
            let g = generation[page.index() as usize];
            match rng.next_below(5) {
                0 => {
                    if tlb.lookup_gen(page, g) == TlbLookup::Miss {
                        tlb.fill_after_miss(page, g);
                    }
                }
                1 => {
                    let _ = tlb.lookup_gen(page, g);
                }
                2 => {
                    generation[page.index() as usize] += 1;
                    tlb.invalidate(page);
                }
                3 => {
                    tlb.fill_huge(LargePageId::new(rng.next_below(4)), step / 50);
                }
                _ => {
                    let _ = tlb.lookup_huge(LargePageId::new(rng.next_below(4)), step / 50);
                }
            }
        }
        let pristine = tlb.clone();
        let before = observe(&tlb);

        // Speculative phase: logged ops only.
        let mut ops = Vec::new();
        for step in 0u64..300 {
            let page = PageId::new(rng.next_below(32));
            let g = generation[page.index() as usize];
            match rng.next_below(4) {
                0 | 1 => {
                    let (res, op) = tlb.lookup_gen_logged(page, g);
                    ops.push(op);
                    if res == TlbLookup::Miss {
                        let (_, op) = tlb.fill_after_miss_logged(page, g);
                        ops.push(op);
                    }
                }
                2 => {
                    let (_, op) =
                        tlb.lookup_huge_logged(LargePageId::new(rng.next_below(4)), step / 40);
                    ops.push(op);
                }
                _ => {
                    ops.push(tlb.fill_huge_logged(LargePageId::new(rng.next_below(4)), step / 40));
                }
            }
        }
        assert_ne!(observe(&tlb), before, "ops should have moved state");

        // Rollback.
        for op in ops.into_iter().rev() {
            tlb.undo(op);
        }
        assert_eq!(observe(&tlb), before, "undo must restore state");

        // Literal restoration: identical future behavior, including
        // eviction choices that hinge on slot/free-list internals.
        let mut undone = tlb;
        let mut fresh = pristine;
        for _ in 0..200 {
            let page = PageId::new(rng.next_below(32));
            let g = generation[page.index() as usize];
            if undone.lookup_gen(page, g) == TlbLookup::Miss {
                let a = undone.fill_after_miss(page, g);
                let b = match fresh.lookup_gen(page, g) {
                    TlbLookup::Miss => fresh.fill_after_miss(page, g),
                    TlbLookup::Hit => panic!("divergent lookup result"),
                };
                assert_eq!(a, b, "divergent eviction victim");
            } else {
                assert_eq!(fresh.lookup_gen(page, g), TlbLookup::Hit);
            }
        }
        assert_eq!(observe(&undone), observe(&fresh));
    }

    #[test]
    fn huge_entries_do_not_contend_with_small_slots() {
        let mut tlb = Tlb::new(1);
        tlb.fill(PageId::new(9));
        tlb.fill_huge(LargePageId::new(0), 1);
        assert_eq!(tlb.lookup(PageId::new(9)), TlbLookup::Hit);
        assert!(tlb.lookup_huge(LargePageId::new(0), 1));
        assert!(tlb.invalidate_huge(LargePageId::new(0)));
        assert!(!tlb.lookup_huge(LargePageId::new(0), 1));
    }
}
