//! Per-SM translation lookaside buffer.
//!
//! The paper models a fully associative TLB with single-cycle lookup
//! (Sec. 6.1, after Pichai et al.); misses are relayed to the GMMU for
//! a page-table walk. We keep an LRU-replaced fully associative array.

use std::collections::VecDeque;

use uvm_types::PageId;

/// Result of a TLB lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbLookup {
    /// Translation cached; access proceeds without a walk.
    Hit,
    /// Translation absent; the access is relayed to the GMMU.
    Miss,
}

/// A fully associative, LRU-replaced TLB.
///
/// # Examples
///
/// ```
/// use uvm_mem::{Tlb, TlbLookup};
/// use uvm_types::PageId;
///
/// let mut tlb = Tlb::new(2);
/// assert_eq!(tlb.lookup(PageId::new(1)), TlbLookup::Miss);
/// tlb.fill(PageId::new(1));
/// assert_eq!(tlb.lookup(PageId::new(1)), TlbLookup::Hit);
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    /// Entries in LRU order: front = least recently used.
    entries: VecDeque<PageId>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB holding at most `capacity` translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be non-zero");
        Tlb {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `page`, updating recency on a hit.
    pub fn lookup(&mut self, page: PageId) -> TlbLookup {
        if let Some(pos) = self.entries.iter().position(|&p| p == page) {
            let hit = self.entries.remove(pos).expect("position exists");
            self.entries.push_back(hit);
            self.hits += 1;
            TlbLookup::Hit
        } else {
            self.misses += 1;
            TlbLookup::Miss
        }
    }

    /// Installs a translation for `page`, evicting the LRU entry if the
    /// TLB is full. Filling an already-present page refreshes recency.
    pub fn fill(&mut self, page: PageId) {
        if let Some(pos) = self.entries.iter().position(|&p| p == page) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(page);
    }

    /// Removes the translation for `page` if present (the shootdown a
    /// page eviction performs on every SM's TLB).
    pub fn invalidate(&mut self, page: PageId) {
        if let Some(pos) = self.entries.iter().position(|&p| p == page) {
            self.entries.remove(pos);
        }
    }

    /// Current number of cached translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no translations are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime (hit, miss) counts.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut tlb = Tlb::new(4);
        assert_eq!(tlb.lookup(PageId::new(9)), TlbLookup::Miss);
        tlb.fill(PageId::new(9));
        assert_eq!(tlb.lookup(PageId::new(9)), TlbLookup::Hit);
        assert_eq!(tlb.hit_miss(), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut tlb = Tlb::new(2);
        tlb.fill(PageId::new(1));
        tlb.fill(PageId::new(2));
        // Touch 1 so 2 becomes LRU.
        assert_eq!(tlb.lookup(PageId::new(1)), TlbLookup::Hit);
        tlb.fill(PageId::new(3)); // evicts 2
        assert_eq!(tlb.lookup(PageId::new(2)), TlbLookup::Miss);
        assert_eq!(tlb.lookup(PageId::new(1)), TlbLookup::Hit);
        assert_eq!(tlb.lookup(PageId::new(3)), TlbLookup::Hit);
    }

    #[test]
    fn refill_refreshes_instead_of_duplicating() {
        let mut tlb = Tlb::new(2);
        tlb.fill(PageId::new(1));
        tlb.fill(PageId::new(1));
        assert_eq!(tlb.len(), 1);
        tlb.fill(PageId::new(2));
        tlb.fill(PageId::new(1)); // refresh, not insert
        tlb.fill(PageId::new(3)); // evicts 2 (LRU), not 1
        assert_eq!(tlb.lookup(PageId::new(1)), TlbLookup::Hit);
        assert_eq!(tlb.lookup(PageId::new(2)), TlbLookup::Miss);
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut tlb = Tlb::new(4);
        tlb.fill(PageId::new(5));
        tlb.invalidate(PageId::new(5));
        assert_eq!(tlb.lookup(PageId::new(5)), TlbLookup::Miss);
        assert!(tlb.is_empty());
        // Invalidating an absent page is a no-op.
        tlb.invalidate(PageId::new(6));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = Tlb::new(0);
    }
}
