//! GPU memory-system structures for the UVM simulator.
//!
//! This crate provides the hardware state the GMMU manipulates when it
//! resolves a far-fault (Fig. 1 of the paper):
//!
//! * the GPU [`PageTable`] with per-page valid/dirty/accessed flags,
//! * per-SM [`Tlb`]s (fully associative, LRU, single-cycle lookup as in
//!   the paper's simplifying assumption) and the
//!   [`ShootdownDirectory`] that invalidates their entries in
//!   O(holders) when a page is evicted,
//! * the far-fault [`Mshr`]s in which outstanding faults are registered
//!   and duplicate faults to the same page are merged,
//! * a [`FrameAllocator`] enforcing the strict device-memory budget.
//!
//! # Examples
//!
//! ```
//! use uvm_mem::{Mshr, RegisterOutcome};
//! use uvm_types::PageId;
//!
//! let mut mshr: Mshr<u32> = Mshr::new();
//! assert_eq!(mshr.register(PageId::new(7), 1), RegisterOutcome::NewFault);
//! assert_eq!(mshr.register(PageId::new(7), 2), RegisterOutcome::Merged);
//! assert_eq!(mshr.complete(PageId::new(7)), vec![1, 2]);
//! ```

mod frames;
mod mshr;
mod page_table;
mod shootdown;
mod tlb;
mod walk;

pub use frames::{
    FrameAllocStats, FrameAllocator, FrameError, FrameId, ReferenceFrameAllocator, MAX_FRAME_ORDER,
};
pub use mshr::{Mshr, RegisterOutcome};
pub use page_table::{PageTable, PteFlags};
pub use shootdown::ShootdownDirectory;
pub use tlb::{ReferenceTlb, Tlb, TlbLookup, TlbOp};
pub use walk::RadixWalkModel;
