//! Wall-clock benchmarks of the per-figure experiment runners.
//!
//! Each bench regenerates one table/figure at [`Scale::Smoke`] so that
//! `cargo bench` finishes in minutes; the `src/bin/figN` binaries run
//! the same experiments at paper scale and emit the CSV series.
//!
//! Every iteration builds a *fresh* executor (no spill directory):
//! the number measured is the full simulation cost of the runner, not
//! a cache hit. The `dedup/fig3_fig4_fig5_...` case shares one
//! executor across three figure projections — its time against three
//! separate `prefetcher_sweep` runs is the dedup win.

use std::hint::black_box;

use uvm_bench::harness::Bench;
use uvm_sim::experiments::{self, Scale};
use uvm_sim::Executor;

fn main() {
    let b = Bench::from_args();

    b.bench("table1_pcie_bandwidth", || {
        black_box(experiments::table1());
    });
    b.bench("fig2_tbnp_walkthrough", || {
        black_box(experiments::fig2_walkthrough());
    });
    b.bench("fig8_tbne_walkthrough", || {
        black_box(experiments::fig8_walkthrough());
    });

    b.bench("prefetcher_sweep/fig3_fig4_fig5", || {
        black_box(experiments::prefetcher_sweep(
            &Executor::new(1),
            Scale::Smoke,
        ));
    });
    b.bench("oversubscription/fig6_fig7", || {
        black_box(experiments::oversubscription_sweep(
            &Executor::new(1),
            Scale::Smoke,
        ));
    });
    b.bench("eviction_isolation/fig9_fig10", || {
        black_box(experiments::eviction_isolation(
            &Executor::new(1),
            Scale::Smoke,
        ));
    });
    b.bench("policy_combos/fig11", || {
        black_box(experiments::policy_combinations(
            &Executor::new(1),
            Scale::Smoke,
        ));
    });
    b.bench("nw_trace/fig12", || {
        black_box(experiments::nw_trace(
            &Executor::new(1),
            Scale::Smoke,
            &[3, 7],
        ));
    });
    b.bench("oversub_sensitivity/fig13", || {
        black_box(experiments::tbn_oversubscription_sensitivity(
            &Executor::new(1),
            Scale::Smoke,
        ));
    });
    b.bench("lru_reservation/fig14", || {
        black_box(experiments::lru_reservation(
            &Executor::new(1),
            Scale::Smoke,
        ));
    });
    b.bench("tbne_vs_2mb/fig15_fig16", || {
        black_box(experiments::tbne_vs_2mb(&Executor::new(1), Scale::Smoke));
    });

    // The multi-figure path: Figs. 3/4/5, 9/10, and 11 share runs
    // through one executor. Compare against the sum of the individual
    // cases above to see the deduplication win.
    b.bench("dedup/fig3_fig4_fig5_fig9_fig10_fig11_shared", || {
        let exec = Executor::new(1);
        black_box(experiments::prefetcher_sweep(&exec, Scale::Smoke));
        black_box(experiments::eviction_isolation(&exec, Scale::Smoke));
        black_box(experiments::policy_combinations(&exec, Scale::Smoke));
    });
}
