//! Criterion wrappers around the per-figure experiment runners.
//!
//! Each bench regenerates one table/figure at [`Scale::Smoke`] so that
//! `cargo bench` finishes in minutes; the `src/bin/figN` binaries run
//! the same experiments at paper scale and emit the CSV series.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use uvm_sim::experiments::{self, Scale};

fn cfg(c: &mut Criterion) -> &mut Criterion {
    c
}

fn bench_table1(c: &mut Criterion) {
    cfg(c).bench_function("table1_pcie_bandwidth", |b| {
        b.iter(|| black_box(experiments::table1()))
    });
}

fn bench_fig2_fig8(c: &mut Criterion) {
    c.bench_function("fig2_tbnp_walkthrough", |b| {
        b.iter(|| black_box(experiments::fig2_walkthrough()))
    });
    c.bench_function("fig8_tbne_walkthrough", |b| {
        b.iter(|| black_box(experiments::fig8_walkthrough()))
    });
}

fn bench_fig3_4_5(c: &mut Criterion) {
    let mut g = c.benchmark_group("prefetcher_sweep");
    g.sample_size(10);
    g.bench_function("fig3_fig4_fig5", |b| {
        b.iter(|| black_box(experiments::prefetcher_sweep(Scale::Smoke)))
    });
    g.finish();
}

fn bench_fig6_7(c: &mut Criterion) {
    let mut g = c.benchmark_group("oversubscription");
    g.sample_size(10);
    g.bench_function("fig6_fig7", |b| {
        b.iter(|| black_box(experiments::oversubscription_sweep(Scale::Smoke)))
    });
    g.finish();
}

fn bench_fig9_10(c: &mut Criterion) {
    let mut g = c.benchmark_group("eviction_isolation");
    g.sample_size(10);
    g.bench_function("fig9_fig10", |b| {
        b.iter(|| black_box(experiments::eviction_isolation(Scale::Smoke)))
    });
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_combos");
    g.sample_size(10);
    g.bench_function("fig11", |b| {
        b.iter(|| black_box(experiments::policy_combinations(Scale::Smoke)))
    });
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("nw_trace");
    g.sample_size(10);
    g.bench_function("fig12", |b| {
        b.iter(|| black_box(experiments::nw_trace(Scale::Smoke, &[3, 7])))
    });
    g.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let mut g = c.benchmark_group("oversub_sensitivity");
    g.sample_size(10);
    g.bench_function("fig13", |b| {
        b.iter(|| {
            black_box(experiments::tbn_oversubscription_sensitivity(Scale::Smoke))
        })
    });
    g.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru_reservation");
    g.sample_size(10);
    g.bench_function("fig14", |b| {
        b.iter(|| black_box(experiments::lru_reservation(Scale::Smoke)))
    });
    g.finish();
}

fn bench_fig15_16(c: &mut Criterion) {
    let mut g = c.benchmark_group("tbne_vs_2mb");
    g.sample_size(10);
    g.bench_function("fig15_fig16", |b| {
        b.iter(|| black_box(experiments::tbne_vs_2mb(Scale::Smoke)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig2_fig8,
    bench_fig3_4_5,
    bench_fig6_7,
    bench_fig9_10,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_fig15_16
);
criterion_main!(benches);
