//! Micro-benchmarks of the engine's per-run hot path: per-SM TLB
//! lookup/fill/invalidate, the eviction shootdown broadcast, the event
//! queue, and the fig5-style end-to-end single-run path.
//!
//! Run with `cargo bench -p uvm-bench --bench engine_hotpath`; set
//! `UVM_BENCH_JSON=BENCH_engine.json` to also emit the JSON report the
//! CI `perf-smoke` job tracks.

use std::hint::black_box;

use uvm_bench::harness::Bench;
use uvm_core::{EvictPolicy, PrefetchPolicy};
use uvm_mem::{ReferenceTlb, ShootdownDirectory, Tlb};
use uvm_sim::{run_workload, RunOptions};
use uvm_types::PageId;
use uvm_workloads::Hotspot;

/// Paper Table 2 scale: 28 SMs, 64-entry fully associative TLBs.
const NUM_SMS: usize = 28;
const TLB_ENTRIES: usize = 64;

/// 4096 pseudo-random resident pages (xorshift), for scattered-hit
/// patterns.
fn hit_pattern() -> Vec<PageId> {
    let mut state = 0x9e37_79b9u64;
    (0..4096)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            PageId::new(state % TLB_ENTRIES as u64)
        })
        .collect()
}

fn full_tlb() -> Tlb {
    let mut tlb = Tlb::new(TLB_ENTRIES);
    for i in 0..TLB_ENTRIES as u64 {
        tlb.fill(PageId::new(i));
    }
    tlb
}

fn full_reference_tlb() -> ReferenceTlb {
    let mut tlb = ReferenceTlb::new(TLB_ENTRIES);
    for i in 0..TLB_ENTRIES as u64 {
        tlb.fill(PageId::new(i));
    }
    tlb
}

fn bench_tlb(b: &Bench) {
    // Hit path, in recency order: each hit lands at the LRU front —
    // the scan's best case.
    let mut tlb = full_tlb();
    let mut i = 0u64;
    b.bench("tlb/lookup_hit_64_mru_order", || {
        let hit = tlb.lookup(PageId::new(i % TLB_ENTRIES as u64));
        i += 1;
        black_box(hit);
    });

    // Hit path, scattered: pseudo-random touches land all over the
    // recency list (the average case of real kernels, ~capacity/2
    // scanned). The pattern table is precomputed so both TLB
    // representations pay the same driver overhead.
    let mut tlb = full_tlb();
    let pattern = hit_pattern();
    let mut i = 0usize;
    b.bench("tlb/lookup_hit_64_scattered", || {
        let hit = tlb.lookup(pattern[i % pattern.len()]);
        i += 1;
        black_box(hit);
    });

    // Miss path: probe pages that are never resident.
    let mut tlb = full_tlb();
    let mut i = 0u64;
    b.bench("tlb/lookup_miss_64", || {
        let miss = tlb.lookup(PageId::new(1000 + (i % 1024)));
        i += 1;
        black_box(miss);
    });

    // Fill at capacity: every fill evicts the LRU entry.
    let mut tlb = full_tlb();
    let mut i = 0u64;
    b.bench("tlb/fill_evict_64", || {
        tlb.fill(PageId::new(100 + (i % 1024)));
        i += 1;
    });

    // Shootdown steady state with a *representative* holder density.
    // SM `s` caches the 64-page window starting at page 32*s, so every
    // interior page is held by exactly two SMs — matching the ~0-2
    // holders per evicted page the engine actually sees (each SM's
    // 64-entry TLB covers a sliver of a multi-thousand-page working
    // set; the previous setup filled the *same* 64 pages into all 28
    // TLBs and therefore timed a 14-holder drain that never occurs in
    // a run).
    let windowed_tlbs = || -> Vec<Tlb> {
        (0..NUM_SMS)
            .map(|s| {
                let mut tlb = Tlb::new(TLB_ENTRIES);
                for p in 0..TLB_ENTRIES as u64 {
                    tlb.fill(PageId::new(32 * s as u64 + p));
                }
                tlb
            })
            .collect()
    };
    // Interior pages (two holders): [64, 32 * NUM_SMS).
    let span = 32 * NUM_SMS as u64 - 64;
    let holders_of = |page: u64| [page / 32 - 1, page / 32];

    // The shootdown broadcast the engine used to perform per evicted
    // page: one invalidate against each of the 28 SM TLBs (26 of them
    // cheap misses), then the true holders refill so state stays in a
    // steady cycle.
    let mut tlbs = windowed_tlbs();
    let mut i = 0u64;
    b.bench("tlb/shootdown_broadcast_28sms", || {
        let page = 64 + i % span;
        for tlb in &mut tlbs {
            tlb.invalidate(PageId::new(page));
        }
        for s in holders_of(page) {
            tlbs[s as usize].fill(PageId::new(page));
        }
        i += 1;
    });

    // What the engine does now: generation bump + targeted drain over
    // the holder set (same steady state — two SMs hold the page).
    let mut tlbs = windowed_tlbs();
    let mut dir = ShootdownDirectory::new(NUM_SMS);
    for (s, _) in tlbs.iter().enumerate() {
        for p in 0..TLB_ENTRIES as u64 {
            dir.note_fill(PageId::new(32 * s as u64 + p), s);
        }
    }
    let mut i = 0u64;
    b.bench("tlb/shootdown_directory_28sms", || {
        let page = 64 + i % span;
        dir.bump(PageId::new(page));
        dir.drain_holders(PageId::new(page), |s| {
            tlbs[s].invalidate(PageId::new(page));
        });
        for s in holders_of(page) {
            tlbs[s as usize].fill(PageId::new(page));
            dir.note_fill(PageId::new(page), s as usize);
        }
        i += 1;
    });
}

/// The previous `VecDeque` TLB on the same patterns, for head-to-head
/// before/after numbers in one run.
fn bench_reference_tlb(b: &Bench) {
    let mut tlb = full_reference_tlb();
    let pattern = hit_pattern();
    let mut i = 0usize;
    b.bench("tlb_ref/lookup_hit_64_scattered", || {
        let hit = tlb.lookup(pattern[i % pattern.len()]);
        i += 1;
        black_box(hit);
    });

    let mut tlb = full_reference_tlb();
    let mut i = 0u64;
    b.bench("tlb_ref/lookup_miss_64", || {
        let miss = tlb.lookup(PageId::new(1000 + (i % 1024)));
        i += 1;
        black_box(miss);
    });

    let mut tlb = full_reference_tlb();
    let mut i = 0u64;
    b.bench("tlb_ref/fill_evict_64", || {
        tlb.fill(PageId::new(100 + (i % 1024)));
        i += 1;
    });

    // Same windowed two-holder steady state as `tlb/shootdown_*`, so
    // the reference row stays head-to-head comparable.
    let mut tlbs: Vec<ReferenceTlb> = (0..NUM_SMS)
        .map(|s| {
            let mut tlb = ReferenceTlb::new(TLB_ENTRIES);
            for p in 0..TLB_ENTRIES as u64 {
                tlb.fill(PageId::new(32 * s as u64 + p));
            }
            tlb
        })
        .collect();
    let span = 32 * NUM_SMS as u64 - 64;
    let mut i = 0u64;
    b.bench("tlb_ref/shootdown_broadcast_28sms", || {
        let page = 64 + i % span;
        for tlb in &mut tlbs {
            tlb.invalidate(PageId::new(page));
        }
        for s in [page / 32 - 1, page / 32] {
            tlbs[s as usize].fill(PageId::new(page));
        }
        i += 1;
    });
}

/// The engine's event-queue churn pattern: a near-monotone stream of
/// (cycle, seq) events — mostly short hops (TLB-hit latency), a few
/// long fault-latency hops — pushed and popped through the priority
/// structure. Models ~224 in-flight warp events (28 SMs x 8 blocks).
fn bench_queue(b: &Bench) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    use uvm_gpu::EventQueue;
    use uvm_types::Cycle;

    const WARPS: u64 = 224;
    b.bench("queue/binaryheap_churn_224warps", || {
        let mut q: BinaryHeap<Reverse<(Cycle, u64, usize)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for w in 0..WARPS {
            q.push(Reverse((Cycle::ZERO, seq, w as usize)));
            seq += 1;
        }
        let mut popped = 0u64;
        while let Some(Reverse((t, _, w))) = q.pop() {
            popped += 1;
            if popped >= 20_000 {
                break;
            }
            // 1-in-64 events take the far-fault hop, the rest the
            // TLB-hit hop — the engine's actual latency mix.
            let hop = if popped.is_multiple_of(64) {
                66_645
            } else {
                321
            };
            q.push(Reverse((Cycle::new(t.index() + hop), seq, w)));
            seq += 1;
        }
        black_box(popped);
    });

    // Same churn through the calendar queue the engine uses now.
    b.bench("queue/calendar_churn_224warps", || {
        let mut q: EventQueue<usize> = EventQueue::new();
        for w in 0..WARPS {
            q.push(Cycle::ZERO, w as usize);
        }
        let mut popped = 0u64;
        while let Some((t, w)) = q.pop() {
            popped += 1;
            if popped >= 20_000 {
                break;
            }
            let hop = if popped.is_multiple_of(64) {
                66_645
            } else {
                321
            };
            q.push(Cycle::new(t.index() + hop), w);
        }
        black_box(popped);
    });
}

/// The evictor sampling path: the resident set under migration/
/// eviction churn with random victim draws — the random evictor's
/// steady state at over-subscription. Compares the bitmap-backed
/// [`IndexedPageSet`] against a `HashMap`-position reference (the
/// pre-bitset layout) on identical operation streams.
fn bench_resident_set(b: &Bench) {
    use std::collections::HashMap;
    use uvm_core::IndexedPageSet;
    use uvm_types::rng::{Rng, SmallRng};

    /// 64 Ki resident pages (a 256 MB device at 4 KB), then churn:
    /// per step evict one random victim and admit one fresh page,
    /// drawing `samples` candidate victims per step like the
    /// max-pin retry loop does.
    const RESIDENT: u64 = 64 * 1024;
    const STEPS: u64 = 4 * 1024;
    const DRAWS: usize = 4;

    b.bench("resident/indexed_churn_sample_64k", || {
        let mut set = IndexedPageSet::default();
        for p in 0..RESIDENT {
            set.insert(PageId::new(p));
        }
        let mut rng = SmallRng::seed_from_u64(0x5eed);
        for next in RESIDENT..RESIDENT + STEPS {
            let mut victim = set.sample(&mut rng).expect("set is never empty");
            for _ in 1..DRAWS {
                victim = set.sample(&mut rng).expect("set is never empty");
            }
            set.remove(victim);
            set.insert(PageId::new(next));
        }
        black_box(set.len());
    });

    // The historical layout: Vec of items + HashMap page→position.
    b.bench("resident/hashmap_churn_sample_64k", || {
        let mut items: Vec<PageId> = Vec::new();
        let mut pos: HashMap<PageId, usize> = HashMap::new();
        let insert = |items: &mut Vec<PageId>, pos: &mut HashMap<PageId, usize>, p: PageId| {
            if pos.contains_key(&p) {
                return;
            }
            pos.insert(p, items.len());
            items.push(p);
        };
        let remove = |items: &mut Vec<PageId>, pos: &mut HashMap<PageId, usize>, p: PageId| {
            let Some(i) = pos.remove(&p) else { return };
            let last = items.pop().expect("non-empty");
            if i < items.len() {
                items[i] = last;
                pos.insert(last, i);
            }
        };
        for p in 0..RESIDENT {
            insert(&mut items, &mut pos, PageId::new(p));
        }
        let mut rng = SmallRng::seed_from_u64(0x5eed);
        for next in RESIDENT..RESIDENT + STEPS {
            let mut victim = items[rng.gen_range(0..items.len())];
            for _ in 1..DRAWS {
                victim = items[rng.gen_range(0..items.len())];
            }
            remove(&mut items, &mut pos, victim);
            insert(&mut items, &mut pos, PageId::new(next));
        }
        black_box(items.len());
    });
}

/// End-to-end single-run path (the floor under every figure binary):
/// the golden-fixture hotspot workload at 110 % over-subscription.
fn bench_single_run(b: &Bench) {
    let w = Hotspot {
        rows: 512,
        iterations: 3,
        rows_per_block: 16,
    };
    let opts = || {
        RunOptions::default()
            .with_prefetch(PrefetchPolicy::TreeBasedNeighborhood)
            .with_evict(EvictPolicy::LruPage)
            .with_memory_frac(1.10)
    };
    b.bench("engine/single_run_hotspot_tbnp_lru4k", || {
        black_box(run_workload(&w, opts()));
    });

    let opts_slp = || {
        RunOptions::default()
            .with_prefetch(PrefetchPolicy::SequentialLocal)
            .with_evict(EvictPolicy::SequentialLocal)
            .with_memory_frac(1.10)
    };
    b.bench("engine/single_run_hotspot_slp_sle", || {
        black_box(run_workload(&w, opts_slp()));
    });

    // The same runs through the sharded executor (DESIGN.md §13) at
    // fixed widths, so the serial rows above stay head-to-head
    // comparable with the barrier-synchronized schedule. The result is
    // byte-identical by contract (`tests/shard_equivalence.rs`); these
    // rows track the *cost* of that contract.
    b.bench("engine/sharded_run_hotspot_tbnp_lru4k_2t", || {
        black_box(run_workload(&w, opts().with_engine_threads(2)));
    });
    b.bench("engine/sharded_run_hotspot_tbnp_lru4k_4t", || {
        black_box(run_workload(&w, opts().with_engine_threads(4)));
    });
    b.bench("engine/sharded_run_hotspot_slp_sle_4t", || {
        black_box(run_workload(&w, opts_slp().with_engine_threads(4)));
    });
}

fn main() {
    let b = Bench::from_args();
    bench_tlb(&b);
    bench_reference_tlb(&b);
    bench_queue(&b);
    bench_resident_set(&b);
    bench_single_run(&b);
    b.write_json_from_env("engine_hotpath")
        .expect("write bench JSON report");
}
