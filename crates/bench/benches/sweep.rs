//! Sweep-level benchmark of prefix forking: the warmed figs. 3/4/5
//! policy grid measured cold (every point re-simulates its warm-up in
//! place) versus forked (the shared warm-up simulates once, tails fork
//! from the snapshot).
//!
//! Both cases run at `jobs = 1`, so the wall-clock ratio is the work
//! ratio rather than an artifact of core count: a 20-point grid on a
//! 12-launch workload with a 10-launch warm-up does `20 × 12 = 240`
//! launch-units cold but only `10 + 20 × 2 = 50` forked — about 4.8×
//! less simulation, which the `sweep_grid_speedup` line reports as
//! actually measured.
//!
//! Run with `cargo bench -p uvm-bench --bench sweep`; set
//! `UVM_BENCH_JSON=BENCH_sweep.json` to emit the JSON report the CI
//! `perf-smoke` job uploads.

use std::hint::black_box;

use uvm_bench::harness::Bench;
use uvm_sim::experiments::warmed_policy_grid;
use uvm_sim::{Executor, Warmup};
use uvm_workloads::Hotspot;

/// The golden-fixture workload deepened to 12 iterative launches so a
/// warm-up prefix dominates each run.
fn workload() -> Hotspot {
    Hotspot {
        rows: 512,
        iterations: 12,
        rows_per_block: 16,
    }
}

/// Ten warm-up launches under the paper-default policies; the grid
/// point's own pair gets the remaining two launches.
fn warmup() -> Warmup {
    Warmup {
        kernels: 10,
        ..Warmup::default()
    }
}

fn run_grid(forking: bool) {
    // A fresh executor per call: no memoization or spill cache, so
    // every iteration simulates the full grid.
    let exec = Executor::new(1).with_prefix_forking(forking);
    let sweep = warmed_policy_grid(&exec, &workload(), warmup());
    black_box(&sweep);
    if forking {
        assert_eq!(exec.prefixes_simulated(), 1, "grid shares one prefix");
    } else {
        assert_eq!(exec.prefixes_simulated(), 0, "baseline must not fork");
    }
    assert_eq!(exec.runs_executed(), 20, "full policy grid simulated");
}

fn main() {
    let b = Bench::from_args();

    let cold = b.bench("sweep_grid_cold_jobs1", || run_grid(false));
    let forked = b.bench("sweep_grid_forked_jobs1", || run_grid(true));

    if let (Some(cold), Some(forked)) = (cold, forked) {
        b.record("sweep_grid_speedup_x", cold / forked);
    }

    b.write_json_from_env("sweep").expect("write bench JSON");
}
