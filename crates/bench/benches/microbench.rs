//! Criterion micro-benchmarks of the core mechanisms: tree balancing,
//! LRU bookkeeping, the PCI-e cost model, and end-to-end fault
//! servicing through the GMMU.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use uvm_core::{AllocTree, EvictPolicy, Gmmu, HierarchicalLru, LruQueue, PrefetchPolicy, UvmConfig};
use uvm_interconnect::PcieModel;
use uvm_types::{BasicBlockId, Bytes, Cycle, PageId, TreeExtent};

fn bench_tree(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree");
    let extent = TreeExtent {
        first_block: BasicBlockId::new(0),
        num_blocks: 32,
    };

    g.bench_function("plan_prefetch_half_full_2mb", |b| {
        let mut tree = AllocTree::new(extent);
        for i in 0..16 {
            tree.fill_block(BasicBlockId::new(i));
        }
        b.iter(|| black_box(&tree).plan_prefetch(black_box(BasicBlockId::new(16))));
    });

    g.bench_function("plan_eviction_half_full_2mb", |b| {
        let mut tree = AllocTree::new(extent);
        for i in 0..16 {
            tree.fill_block(BasicBlockId::new(i));
        }
        b.iter(|| black_box(&tree).plan_eviction(black_box(BasicBlockId::new(0))));
    });

    g.bench_function("fill_clear_block", |b| {
        let mut tree = AllocTree::new(extent);
        b.iter(|| {
            tree.fill_block(BasicBlockId::new(7));
            tree.clear_block(BasicBlockId::new(7));
        });
    });
    g.finish();
}

fn bench_lru(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru");

    g.bench_function("queue_touch_10k", |b| {
        let mut q = LruQueue::new();
        for i in 0..10_000u64 {
            q.touch(PageId::new(i));
        }
        let mut i = 0u64;
        b.iter(|| {
            q.touch(PageId::new(i % 10_000));
            i += 1;
        });
    });

    g.bench_function("hier_validate_access_candidate", |b| {
        b.iter_batched(
            HierarchicalLru::new,
            |mut h| {
                for i in 0..512u64 {
                    h.on_validate(PageId::new(i));
                }
                h.on_access(PageId::new(5));
                black_box(h.candidate(0, |_| true))
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_pcie(c: &mut Criterion) {
    let model = PcieModel::pascal_x16();
    c.bench_function("pcie_transfer_time", |b| {
        b.iter(|| {
            for kb in [4u64, 16, 64, 256, 1024] {
                black_box(model.transfer_time(Bytes::kib(kb)));
            }
        });
    });
}

fn bench_gmmu(c: &mut Criterion) {
    let mut g = c.benchmark_group("gmmu");
    g.bench_function("fault_tbnp_no_budget", |b| {
        b.iter_batched(
            || {
                let mut gmmu = Gmmu::new(
                    UvmConfig::default().with_prefetch(PrefetchPolicy::TreeBasedNeighborhood),
                );
                let base = gmmu.malloc_managed(Bytes::mib(8));
                (gmmu, base)
            },
            |(mut gmmu, base)| {
                let mut now = Cycle::ZERO;
                for block in 0..64u64 {
                    let page = base.page().add(block * 16);
                    if !gmmu.is_resident(page) {
                        let res = gmmu.handle_fault(page, now);
                        now = res.fault_page_ready();
                    }
                    gmmu.record_access(page, false);
                }
                black_box(gmmu.stats().pages_migrated)
            },
            BatchSize::SmallInput,
        );
    });

    g.bench_function("fault_with_tbne_eviction", |b| {
        b.iter_batched(
            || {
                let mut gmmu = Gmmu::new(
                    UvmConfig::default()
                        .with_capacity(Bytes::mib(2))
                        .with_prefetch(PrefetchPolicy::TreeBasedNeighborhood)
                        .with_evict(EvictPolicy::TreeBasedNeighborhood),
                );
                let base = gmmu.malloc_managed(Bytes::mib(4));
                (gmmu, base)
            },
            |(mut gmmu, base)| {
                let mut now = Cycle::ZERO;
                for block in 0..64u64 {
                    let page = base.page().add(block * 16);
                    if !gmmu.is_resident(page) {
                        let res = gmmu.handle_fault(page, now);
                        now = res.fault_page_ready();
                    }
                    gmmu.record_access(page, false);
                }
                black_box(gmmu.stats().pages_evicted)
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_tree, bench_lru, bench_pcie, bench_gmmu);
criterion_main!(benches);
