//! Micro-benchmarks of the core mechanisms: tree balancing, LRU
//! bookkeeping, the PCI-e cost model, the GMMU frame-lookup hot path,
//! the buddy frame allocator's split/merge and region cycles, and
//! end-to-end fault servicing through the GMMU.
//!
//! Run with `cargo bench -p uvm-bench --bench microbench`; an optional
//! bare argument filters cases by substring. Set
//! `UVM_BENCH_JSON=BENCH_engine.json` to fold the results into the
//! committed report next to `engine_hotpath`'s (the harness merges
//! by case name rather than overwriting).

use std::hint::black_box;

use uvm_bench::harness::Bench;
use uvm_core::{
    AllocTree, EvictPolicy, Gmmu, HierarchicalLru, LruQueue, PrefetchPolicy, UvmConfig,
};
use uvm_interconnect::PcieModel;
use uvm_types::{BasicBlockId, Bytes, Cycle, PageId, TreeExtent, PAGE_SIZE};

fn bench_tree(b: &Bench) {
    let extent = TreeExtent {
        first_block: BasicBlockId::new(0),
        num_blocks: 32,
    };

    let mut tree = AllocTree::new(extent);
    for i in 0..16 {
        tree.fill_block(BasicBlockId::new(i));
    }
    b.bench("tree/plan_prefetch_half_full_2mb", || {
        black_box(black_box(&tree).plan_prefetch(black_box(BasicBlockId::new(16))));
    });
    b.bench("tree/plan_eviction_half_full_2mb", || {
        black_box(black_box(&tree).plan_eviction(black_box(BasicBlockId::new(0))));
    });

    let mut tree = AllocTree::new(extent);
    b.bench("tree/fill_clear_block", || {
        tree.fill_block(BasicBlockId::new(7));
        tree.clear_block(BasicBlockId::new(7));
    });
}

fn bench_lru(b: &Bench) {
    let mut q = LruQueue::new();
    for i in 0..10_000u64 {
        q.touch(PageId::new(i));
    }
    let mut i = 0u64;
    b.bench("lru/queue_touch_10k", || {
        q.touch(PageId::new(i % 10_000));
        i += 1;
    });

    // Steady state: a prebuilt residency of 4 large pages (2048 pages,
    // 128 blocks). Each iteration replaces one page, touches another,
    // and re-picks a candidate past a 20%-style reservation — the
    // TBN-family per-eviction pattern. (The previous version rebuilt
    // the whole 512-page hierarchy inside the timed closure, so it
    // measured bulk construction, not the per-eviction cost.)
    let mut h = HierarchicalLru::new();
    for i in 0..2048u64 {
        h.on_validate(PageId::new(i));
    }
    let mut i = 0u64;
    b.bench("lru/hier_validate_access_candidate", || {
        h.on_invalidate_page(PageId::new(i % 2048));
        h.on_validate(PageId::new(i % 2048));
        h.on_access(PageId::new((i * 7) % 2048));
        i += 1;
        black_box(h.candidate(409, |_| true));
    });
}

fn bench_pcie(b: &Bench) {
    let model = PcieModel::pascal_x16();
    b.bench("pcie_transfer_time", || {
        for kb in [4u64, 16, 64, 256, 1024] {
            black_box(model.transfer_time(Bytes::kib(kb)));
        }
    });
}

/// The per-access hot path the dense page-indexed tables optimise:
/// every simulated GPU memory access funnels through `is_resident`
/// (frame table probe) and `record_access` (ready-time + first-touch
/// bookkeeping). All pages are resident, so this isolates the lookup
/// cost from migration.
fn bench_gmmu_lookup(b: &Bench) {
    let mut gmmu =
        Gmmu::new(UvmConfig::default().with_prefetch(PrefetchPolicy::TreeBasedNeighborhood));
    let base = gmmu.malloc_managed(Bytes::mib(16));
    let pages = Bytes::mib(16).pages_ceil();
    let mut now = Cycle::ZERO;
    for block in 0..pages / 16 {
        let page = base.page().add(block * 16);
        if !gmmu.is_resident(page) {
            let res = gmmu.handle_fault(page, now);
            now = res.fault_page_ready();
        }
    }
    b.bench("gmmu/frame_lookup_4k_resident_pages", || {
        let mut resident = 0u64;
        for i in 0..pages {
            let page = base.page().add(i);
            if gmmu.is_resident(page) {
                resident += 1;
            }
            gmmu.record_access(page, false);
        }
        black_box(resident);
    });
}

/// Head-to-head of the two frame-table representations: the dense
/// page-indexed `DensePageMap` now used by the GMMU versus the
/// `HashMap` it replaced, probing the same 4096-page resident set in
/// the same order.
fn bench_frame_table_repr(b: &Bench) {
    use std::collections::HashMap;
    use uvm_core::DensePageMap;
    use uvm_mem::{FrameAllocator, FrameId};

    let pages = 4096u64;
    let mut frames = FrameAllocator::new(PAGE_SIZE * pages);
    let mut dense: DensePageMap<FrameId> = DensePageMap::new();
    let mut map: HashMap<PageId, FrameId> = HashMap::new();
    for i in 0..pages {
        let f = frames.allocate().expect("within budget");
        dense.insert(PageId::new(i), f);
        map.insert(PageId::new(i), f);
    }
    b.bench("frame_table/dense_probe_4k", || {
        let mut hits = 0u64;
        for i in 0..2 * pages {
            if dense.get(PageId::new(i)).is_some() {
                hits += 1;
            }
        }
        black_box(hits);
    });
    b.bench("frame_table/hashmap_probe_4k", || {
        let mut hits = 0u64;
        for i in 0..2 * pages {
            if map.contains_key(&PageId::new(i)) {
                hits += 1;
            }
        }
        black_box(hits);
    });
}

/// The buddy frame allocator's contiguity machinery (DESIGN.md §9):
/// the legacy single-frame path every non-Mosaic policy stays on, the
/// order-4 split/merge cycle, and the 2 MB region reserve → carve →
/// release cycle backing MOSp's contiguous placement.
fn bench_frame_alloc(b: &Bench) {
    use uvm_mem::{FrameAllocator, ReferenceFrameAllocator};
    use uvm_types::BASIC_BLOCK_ORDER;

    const FRAMES: u64 = 4096; // eight 2 MB regions

    // Steady-state single-frame churn: LIFO pop + push, the hot path
    // shared with the reference allocator it must stay equivalent to.
    let mut alloc = FrameAllocator::with_frames(FRAMES);
    b.bench("frames/alloc_free_single", || {
        let f = alloc.allocate().expect("within budget");
        alloc.free(f).expect("just allocated");
    });
    let mut reference = ReferenceFrameAllocator::with_frames(FRAMES);
    b.bench("frames/alloc_free_single_reference", || {
        let f = reference.allocate().expect("within budget");
        reference.free(f).expect("just allocated");
    });

    // Split/merge cycle: carving a 64 KB block out of a free 2 MB
    // buddy splits five levels down; freeing it merges five levels
    // back up, restoring the order-9 block for the next iteration.
    let mut alloc = FrameAllocator::with_frames(FRAMES);
    let base = alloc.reserve_region().expect("capacity for a region");
    alloc.release_region(base); // park a free order-9 block
    b.bench("frames/split_merge_64k_of_2mb", || {
        let block = alloc
            .allocate_block(BASIC_BLOCK_ORDER)
            .expect("order-9 block is free");
        alloc
            .free_block(block, BASIC_BLOCK_ORDER)
            .expect("just allocated");
    });

    // MOSp's placement cycle: soft-reserve a 2 MB region, carve all
    // 512 frames page-by-page, free them back into the region mask,
    // and release (a fully-free release recycles the order-9 block).
    let mut alloc = FrameAllocator::with_frames(FRAMES);
    let mut held = Vec::with_capacity(512);
    b.bench("frames/region_reserve_carve_release_2mb", || {
        let base = alloc.reserve_region().expect("capacity for a region");
        for off in 0..512u64 {
            held.push(alloc.allocate_in_region(base, off).expect("slot is free"));
        }
        for f in held.drain(..) {
            alloc.free(f).expect("just allocated");
        }
        alloc.release_region(base);
    });
}

fn bench_gmmu_faults(b: &Bench) {
    b.bench("gmmu/fault_tbnp_no_budget", || {
        let mut gmmu =
            Gmmu::new(UvmConfig::default().with_prefetch(PrefetchPolicy::TreeBasedNeighborhood));
        let base = gmmu.malloc_managed(Bytes::mib(8));
        let mut now = Cycle::ZERO;
        for block in 0..64u64 {
            let page = base.page().add(block * 16);
            if !gmmu.is_resident(page) {
                let res = gmmu.handle_fault(page, now);
                now = res.fault_page_ready();
            }
            gmmu.record_access(page, false);
        }
        black_box(gmmu.stats().pages_migrated);
    });

    b.bench("gmmu/fault_with_tbne_eviction", || {
        let mut gmmu = Gmmu::new(
            UvmConfig::default()
                .with_capacity(Bytes::mib(2))
                .with_prefetch(PrefetchPolicy::TreeBasedNeighborhood)
                .with_evict(EvictPolicy::TreeBasedNeighborhood),
        );
        let base = gmmu.malloc_managed(Bytes::mib(4));
        let mut now = Cycle::ZERO;
        for block in 0..64u64 {
            let page = base.page().add(block * 16);
            if !gmmu.is_resident(page) {
                let res = gmmu.handle_fault(page, now);
                now = res.fault_page_ready();
            }
            gmmu.record_access(page, false);
        }
        black_box(gmmu.stats().pages_evicted);
    });
}

fn main() {
    let b = Bench::from_args();
    bench_tree(&b);
    bench_lru(&b);
    bench_pcie(&b);
    bench_gmmu_lookup(&b);
    bench_frame_table_repr(&b);
    bench_frame_alloc(&b);
    bench_gmmu_faults(&b);
    b.write_json_from_env("microbench")
        .expect("write bench JSON report");
}
