//! CI smoke test: the full `all_experiments --smoke --jobs 2` sequence
//! runs end to end, writes every expected CSV, and a re-run resumes
//! from the spill cache with byte-identical output.

use uvm_bench::{run_all, Config};
use uvm_sim::experiments::Scale;

const EXPECTED_CSVS: [&str; 19] = [
    "table1",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig9",
    "fig10",
    "fig11",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "pattern_report",
    "ablation_prefetch_granularity",
    "ablation_fault_lanes",
    "ablation_prefetch_accuracy",
    "ablation_writeback",
    "ablation_fault_injection",
];

#[test]
fn all_experiments_smoke_runs_and_resumes() {
    // `run_all` writes relative to the current directory; isolate in a
    // temp dir (this is the only test in this binary, so the global
    // chdir cannot race another test thread).
    let tmp = std::env::temp_dir().join(format!("uvm-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    let old = std::env::current_dir().unwrap();
    std::env::set_current_dir(&tmp).unwrap();

    let cfg = Config {
        scale: Scale::Smoke,
        jobs: 2,
        ..Config::default()
    };
    run_all(&cfg).expect("smoke sweep completes");

    let read_all = || -> Vec<(String, String)> {
        EXPECTED_CSVS
            .iter()
            .map(|name| {
                let path = format!("results/{name}.csv");
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("missing {path}: {e}"));
                assert!(text.lines().count() > 1, "{path} has no data rows");
                (path, text)
            })
            .collect()
    };
    let first = read_all();
    assert!(
        std::fs::read_dir("results/cache").unwrap().count() > 0,
        "spill cache must be populated"
    );

    // Second invocation: resumes from results/cache/, identical CSVs.
    run_all(&cfg).expect("resumed sweep completes");
    let second = read_all();
    assert_eq!(first, second, "resumed run must be byte-identical");

    std::env::set_current_dir(old).unwrap();
    let _ = std::fs::remove_dir_all(&tmp);
}
