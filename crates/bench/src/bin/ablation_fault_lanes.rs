//! Ablation: sensitivity to the number of concurrent fault-handling
//! lanes (the host runtime's fault-buffer drain concurrency).
fn main() -> std::process::ExitCode {
    let cfg = uvm_bench::config_from_args();
    let t =
        uvm_sim::experiments::fault_lanes_ablation(&cfg.executor(), cfg.scale, &[1, 2, 4, 8, 16]);
    uvm_bench::finish(uvm_bench::emit("ablation_fault_lanes", &t))
}
