//! Ablation: sensitivity to the number of concurrent fault-handling
//! lanes (the host runtime's fault-buffer drain concurrency).
fn main() {
    let t = uvm_sim::experiments::fault_lanes_ablation(
        uvm_bench::scale_from_args(),
        &[1, 2, 4, 8, 16],
    );
    uvm_bench::emit("ablation_fault_lanes", &t);
}
