//! Regenerates Fig. 7: number of 4 KB page transfers for the Fig. 6 sweep.
fn main() {
    let sweep = uvm_sim::experiments::oversubscription_sweep(uvm_bench::scale_from_args());
    uvm_bench::emit("fig7", &sweep.transfers_4k);
}
