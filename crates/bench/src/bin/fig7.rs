//! Regenerates Fig. 7: number of 4 KB page transfers for the Fig. 6 sweep.
fn main() -> std::process::ExitCode {
    let cfg = uvm_bench::config_from_args();
    let sweep = uvm_sim::experiments::oversubscription_sweep(&cfg.executor(), cfg.scale);
    uvm_bench::finish(uvm_bench::emit("fig7", &sweep.transfers_4k))
}
