//! Ablation: prefetch accuracy under over-subscription — how many
//! prefetched pages are actually used before eviction (Sec. 5's
//! "unused prefetched pages"), and the clean-page write-back overhead
//! of bulk eviction (Sec. 5.1).
fn main() {
    let t = uvm_sim::experiments::prefetch_accuracy_ablation(uvm_bench::scale_from_args());
    uvm_bench::emit("ablation_prefetch_accuracy", &t);
}
