//! Ablation: prefetch accuracy under over-subscription — how many
//! prefetched pages are actually used before eviction (Sec. 5's
//! "unused prefetched pages"), and the clean-page write-back overhead
//! of bulk eviction (Sec. 5.1).
fn main() -> std::process::ExitCode {
    let cfg = uvm_bench::config_from_args();
    let t = uvm_sim::experiments::prefetch_accuracy_ablation(&cfg.executor(), cfg.scale);
    uvm_bench::finish(uvm_bench::emit("ablation_prefetch_accuracy", &t))
}
