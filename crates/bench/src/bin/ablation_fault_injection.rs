//! Ablation: fault sensitivity of the Fig. 11 prefetcher × evictor
//! combinations under the deterministic fault-injection layer.
//!
//! ```sh
//! cargo run --release -p uvm-bench --bin ablation_fault_injection -- \
//!     --smoke --fault-profile chaos --fault-seed 42
//! ```
//!
//! Each combination runs once clean and once under the requested
//! profile (`none`, `pcie-flaky`, `latency-jitter`, `migration-storm`,
//! `pressure`, `chaos`; default chaos); the table reports each pair's
//! slowdown and per-category injection counters. The same seed always
//! reproduces the same table.

use uvm_core::FaultPlan;

fn main() -> std::process::ExitCode {
    let cfg = uvm_bench::config_from_args();
    let plan = cfg.resolved_fault_plan(FaultPlan::chaos());
    let t = uvm_sim::experiments::fault_injection_ablation(&cfg.executor(), cfg.scale, plan);
    uvm_bench::finish(uvm_bench::emit("ablation_fault_injection", &t))
}
