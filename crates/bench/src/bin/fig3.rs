//! Regenerates Fig. 3: kernel time per prefetcher, no over-subscription.
fn main() {
    let sweep = uvm_sim::experiments::prefetcher_sweep(uvm_bench::scale_from_args());
    uvm_bench::emit("fig3", &sweep.time);
}
