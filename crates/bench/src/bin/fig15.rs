//! Regenerates Fig. 15: TBNe vs static 2 MB LRU eviction (110%).
fn main() {
    let cmp = uvm_sim::experiments::tbne_vs_2mb(uvm_bench::scale_from_args());
    uvm_bench::emit("fig15", &cmp.time);
}
