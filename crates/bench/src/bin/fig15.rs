//! Regenerates Fig. 15: TBNe vs static 2 MB LRU eviction (110%).
fn main() -> std::process::ExitCode {
    let cfg = uvm_bench::config_from_args();
    let cmp = uvm_sim::experiments::tbne_vs_2mb(&cfg.executor(), cfg.scale);
    uvm_bench::finish(uvm_bench::emit("fig15", &cmp.time))
}
