//! Regenerates Fig. 13: TBNe+TBNp sensitivity to over-subscription %.
fn main() {
    let t = uvm_sim::experiments::tbn_oversubscription_sensitivity(uvm_bench::scale_from_args());
    uvm_bench::emit("fig13", &t);
}
