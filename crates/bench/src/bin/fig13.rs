//! Regenerates Fig. 13: TBNe+TBNp sensitivity to over-subscription %.
fn main() -> std::process::ExitCode {
    let cfg = uvm_bench::config_from_args();
    let t = uvm_sim::experiments::tbn_oversubscription_sensitivity(&cfg.executor(), cfg.scale);
    uvm_bench::finish(uvm_bench::emit("fig13", &t))
}
