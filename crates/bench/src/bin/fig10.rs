//! Regenerates Fig. 10: total pages evicted for the Fig. 9 runs.
fn main() -> std::process::ExitCode {
    let cfg = uvm_bench::config_from_args();
    let iso = uvm_sim::experiments::eviction_isolation(&cfg.executor(), cfg.scale);
    uvm_bench::finish(uvm_bench::emit("fig10", &iso.evicted))
}
