//! Regenerates Fig. 10: total pages evicted for the Fig. 9 runs.
fn main() {
    let iso = uvm_sim::experiments::eviction_isolation(uvm_bench::scale_from_args());
    uvm_bench::emit("fig10", &iso.evicted);
}
