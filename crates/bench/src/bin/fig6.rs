//! Regenerates Fig. 6: sensitivity to over-subscription % and
//! free-page buffer (TBNp until capacity, then 4 KB on-demand; LRU-4KB).
fn main() -> std::process::ExitCode {
    let cfg = uvm_bench::config_from_args();
    let sweep = uvm_sim::experiments::oversubscription_sweep(&cfg.executor(), cfg.scale);
    uvm_bench::finish(uvm_bench::emit("fig6", &sweep.time))
}
