//! Regenerates Fig. 6: sensitivity to over-subscription % and
//! free-page buffer (TBNp until capacity, then 4 KB on-demand; LRU-4KB).
fn main() {
    let sweep = uvm_sim::experiments::oversubscription_sweep(uvm_bench::scale_from_args());
    uvm_bench::emit("fig6", &sweep.time);
}
