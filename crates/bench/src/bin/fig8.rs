//! Replays the paper's Fig. 8 TBNe worked example step by step.
fn main() {
    print!("{}", uvm_sim::experiments::fig8_walkthrough());
}
