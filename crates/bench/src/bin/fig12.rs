//! Regenerates Fig. 12: nw page-access scatter at kernel launches 60 and 70.
fn main() -> std::process::ExitCode {
    let cfg = uvm_bench::config_from_args();
    let traces = uvm_sim::experiments::nw_trace(&cfg.executor(), cfg.scale, &[60, 70]);
    let mut outcome = Ok(());
    for (launch, table) in traces {
        println!(
            "# launch {launch}: {} accesses (cycle, page) — plot as a scatter",
            table.num_rows()
        );
        let wrote = uvm_bench::write_csv(&format!("fig12_launch{launch}"), &table);
        if outcome.is_ok() {
            outcome = wrote;
        }
    }
    uvm_bench::finish(outcome)
}
