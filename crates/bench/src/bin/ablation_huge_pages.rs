//! Huge-page policy ablation: the Mosaic-style coalescing pair
//! (MOSp + MOSe) against the paper's best combination (TBNp + TBNe)
//! and static 2 MB LRU eviction, swept over over-subscription levels
//! in steady state (every cell forks from a shared warm-up snapshot).
//!
//! ```sh
//! cargo run --release -p uvm-bench --bin ablation_huge_pages -- --smoke
//! cargo run --release -p uvm-bench --bin ablation_huge_pages -- \
//!     --smoke --oversub 1.25
//! ```
//!
//! Reports far-faults per kilo-access (the Mosaic headline metric),
//! kernel time, and the huge-page mechanism counters (coalesces,
//! splinters, allocator splits/merges) for the MOSp+MOSe cells.
//! Without `--oversub` the sweep covers
//! [`HUGE_PAGE_OVERSUB`](uvm_sim::experiments::HUGE_PAGE_OVERSUB).

use uvm_bench::{config_from_args, emit};
use uvm_sim::experiments::{huge_page_ablation, HUGE_PAGE_OVERSUB};
use uvm_sim::Warmup;

fn main() -> std::process::ExitCode {
    let cfg = config_from_args();
    let oversubs: Vec<f64> = match cfg.oversub {
        Some(frac) => vec![frac],
        None => HUGE_PAGE_OVERSUB.to_vec(),
    };
    let t = huge_page_ablation(&cfg.executor(), cfg.scale, Warmup::default(), &oversubs);
    uvm_bench::finish(
        emit("ablation_huge_pages_faults_per_kilo", &t.faults_per_kilo)
            .and_then(|()| emit("ablation_huge_pages_time", &t.time))
            .and_then(|()| emit("ablation_huge_pages_activity", &t.activity)),
    )
}
