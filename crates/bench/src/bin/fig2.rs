//! Replays the paper's Fig. 2 TBNp worked examples step by step.
fn main() {
    print!("{}", uvm_sim::experiments::fig2_walkthrough());
}
