//! History-based prefetcher ablation: the full export → train →
//! evaluate loop in one binary.
//!
//! Phase A exports one no-prefetch `UVMT` trace per benchmark (under
//! `--trace-out`, default `results/traces/`) and trains a `learned`
//! table from each (under `results/trained/`). Phase B runs the
//! warmed head-to-head: NOp, SLp, TBNp, the online `markov`
//! delta-correlator, and `learned:table=<benchmark>.tbl` across
//! over-subscription levels, all over LRU-4KB eviction so the
//! prefetcher is the only variable.
//!
//! ```sh
//! cargo run --release -p uvm-bench --bin ablation_history_prefetch -- --smoke
//! cargo run --release -p uvm-bench --bin ablation_history_prefetch -- \
//!     --smoke --oversub 1.25 --trace-out results/traces
//! ```
//!
//! Existing trace files are reused (delete them to re-export); the
//! trained tables are always rebuilt from the traces on disk.

use std::path::PathBuf;
use std::process::ExitCode;

use uvm_bench::{config_from_args, emit, finish, BenchError};
use uvm_core::trace::decode_trace;
use uvm_core::{train_table, PolicySpec, PrefetchPolicy};
use uvm_sim::experiments::{history_prefetch_ablation, suite, HISTORY_PREFETCH_OVERSUB};
use uvm_sim::{run_workload, RunOptions, Warmup};

/// Context depth and prediction degree of the trained tables.
const TRAIN_DEPTH: usize = 2;
const TRAIN_DEGREE: usize = 16;
/// Over-subscription the training traces are collected at when no
/// `--oversub` override is given: capacity pressure puts eviction
/// refaults into the training stream.
const TRAIN_OVERSUB: f64 = 1.10;

fn main() -> ExitCode {
    finish(run())
}

fn run() -> Result<(), BenchError> {
    let cfg = config_from_args();
    let trace_dir = cfg
        .trace_out
        .clone()
        .unwrap_or_else(|| PathBuf::from("results/traces"));
    let trained_dir = PathBuf::from("results/trained");

    // Phase A: per-benchmark no-prefetch trace + trained table. The
    // export runs bypass the executor's spill cache on purpose — the
    // trace file on disk is the product, and a cache hit would skip
    // writing it.
    let mut learned: Vec<(String, PolicySpec)> = Vec::new();
    for w in suite(cfg.scale) {
        let trace_path = trace_dir.join(format!("{}.uvmt", w.name()));
        if !trace_path.exists() {
            run_workload(
                w.as_ref(),
                RunOptions::default()
                    .with_prefetch(PrefetchPolicy::None)
                    .with_memory_frac(cfg.oversub.unwrap_or(TRAIN_OVERSUB))
                    .with_trace_export(&trace_path),
            );
            eprintln!("wrote {}", trace_path.display());
        }
        let bytes = std::fs::read(&trace_path).map_err(|source| BenchError::Io {
            path: trace_path.clone(),
            source,
        })?;
        let (_, records) = decode_trace(&bytes)
            .map_err(|e| BenchError::Artifact(format!("decoding {}: {e}", trace_path.display())))?;
        let table = train_table(&records, TRAIN_DEPTH, TRAIN_DEGREE);
        let table_path = trained_dir.join(format!("{}.tbl", w.name()));
        table.save(&table_path).map_err(|source| BenchError::Io {
            path: table_path.clone(),
            source,
        })?;
        eprintln!(
            "trained {} ({} contexts from {} trace records)",
            table_path.display(),
            table.len(),
            records.len()
        );
        learned.push((
            w.name().to_string(),
            PolicySpec::new("learned").with_param("table", table_path.display().to_string()),
        ));
    }

    // Phase B: warmed head-to-head across over-subscription.
    let oversubs: Vec<f64> = match cfg.oversub {
        Some(frac) => vec![frac],
        None => HISTORY_PREFETCH_OVERSUB.to_vec(),
    };
    let learned_for = |name: &str| -> PolicySpec {
        learned
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.clone())
            .expect("phase A trained every suite benchmark")
    };
    let hp = history_prefetch_ablation(
        &cfg.executor(),
        cfg.scale,
        Warmup::default(),
        &oversubs,
        &learned_for,
    );
    emit(
        "ablation_history_prefetch_faults_per_kilo",
        &hp.faults_per_kilo,
    )?;
    emit("ablation_history_prefetch_time", &hp.time)
}
