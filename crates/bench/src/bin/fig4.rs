//! Regenerates Fig. 4: average PCI-e read bandwidth per prefetcher.
fn main() -> std::process::ExitCode {
    let cfg = uvm_bench::config_from_args();
    let sweep = uvm_sim::experiments::prefetcher_sweep(&cfg.executor(), cfg.scale);
    uvm_bench::finish(uvm_bench::emit("fig4", &sweep.bandwidth))
}
