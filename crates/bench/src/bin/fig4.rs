//! Regenerates Fig. 4: average PCI-e read bandwidth per prefetcher.
fn main() {
    let sweep = uvm_sim::experiments::prefetcher_sweep(uvm_bench::scale_from_args());
    uvm_bench::emit("fig4", &sweep.bandwidth);
}
