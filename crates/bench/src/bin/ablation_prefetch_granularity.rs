//! Ablation: SLp (64 KB block-aligned) vs the Zheng et al. 512 KB
//! sequential prefetcher vs TBNp, with no memory budget (Sec. 3.2's
//! design-choice discussion).
fn main() {
    let t = uvm_sim::experiments::prefetch_granularity_ablation(uvm_bench::scale_from_args());
    uvm_bench::emit("ablation_prefetch_granularity", &t);
}
