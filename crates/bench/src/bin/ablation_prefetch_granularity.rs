//! Ablation: SLp (64 KB block-aligned) vs the Zheng et al. 512 KB
//! sequential prefetcher vs TBNp, with no memory budget (Sec. 3.2's
//! design-choice discussion).
fn main() -> std::process::ExitCode {
    let cfg = uvm_bench::config_from_args();
    let t = uvm_sim::experiments::prefetch_granularity_ablation(&cfg.executor(), cfg.scale);
    uvm_bench::finish(uvm_bench::emit("ablation_prefetch_granularity", &t))
}
