//! Offline trainer for the `learned` prefetcher: turns an exported
//! `UVMT` trace into a `UVML` prediction table (DESIGN.md §10).
//!
//! ```sh
//! cargo run --release -p uvm-bench --bin fig11 -- --trace-out results/traces
//! cargo run --release -p uvm-bench --bin train_prefetcher -- \
//!     results/traces/nw.uvmt --out results/trained/nw.tbl --depth 2
//! cargo run --release -p uvm-bench --bin ablation_policy_pair -- \
//!     --prefetch learned:table=results/trained/nw.tbl --evict SLe
//! ```
//!
//! Training keys on the trace's far-fault records only: the table maps
//! a window of the last `--depth` fault-page deltas to the most
//! frequent next deltas (up to `--degree` of them), ranked by count.

use std::path::PathBuf;
use std::process::exit;

use uvm_core::trace::decode_trace;
use uvm_core::train_table;

const USAGE: &str = "usage: train_prefetcher TRACE.uvmt --out TABLE.tbl \
                     [--depth N] [--degree N]\n\
                     Trains a `learned` prefetcher table (UVML) from an \
                     exported UVMT trace;\nevaluate it with \
                     --prefetch learned:table=TABLE.tbl";

fn usage() -> ! {
    eprintln!("{USAGE}");
    exit(2);
}

/// Accepts `--flag VALUE` and `--flag=VALUE`; advances `i` past the
/// consumed value.
fn take(args: &[String], i: &mut usize, flag: &str) -> Option<String> {
    if let Some(v) = args[*i].strip_prefix(&format!("{flag}=")) {
        return Some(v.to_string());
    }
    if args[*i] == flag {
        *i += 1;
        return Some(args.get(*i).cloned().unwrap_or_else(|| usage()));
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut depth = 2usize;
    let mut degree = 16usize;
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = take(&args, &mut i, "--out") {
            out = Some(PathBuf::from(v));
        } else if let Some(v) = take(&args, &mut i, "--depth") {
            depth = v.parse().unwrap_or_else(|_| usage());
        } else if let Some(v) = take(&args, &mut i, "--degree") {
            degree = v.parse().unwrap_or_else(|_| usage());
        } else if args[i] == "--help" {
            println!("{USAGE}");
            exit(0);
        } else if args[i].starts_with('-') || trace.is_some() {
            usage();
        } else {
            trace = Some(PathBuf::from(&args[i]));
        }
        i += 1;
    }
    let (Some(trace), Some(out)) = (trace, out) else {
        usage();
    };
    if depth == 0 || degree == 0 {
        usage();
    }

    let bytes = std::fs::read(&trace).unwrap_or_else(|e| {
        eprintln!("error: reading {}: {e}", trace.display());
        exit(1);
    });
    let (meta, records) = decode_trace(&bytes).unwrap_or_else(|e| {
        eprintln!("error: decoding {}: {e}", trace.display());
        exit(1);
    });
    let table = train_table(&records, depth, degree);
    table.save(&out).unwrap_or_else(|e| {
        eprintln!("error: writing {}: {e}", out.display());
        exit(1);
    });
    println!(
        "trained {} from {} ({} records; workload {}, {} + {}, seed {}): \
         {} contexts at depth {depth}, degree {degree}",
        out.display(),
        trace.display(),
        records.len(),
        meta.workload,
        meta.prefetch,
        meta.evict,
        meta.seed,
        table.len(),
    );
    println!("evaluate with: --prefetch learned:table={}", out.display());
}
