//! Regenerates Fig. 9: LRU vs Random 4 KB eviction in isolation (110%).
fn main() -> std::process::ExitCode {
    let cfg = uvm_bench::config_from_args();
    let iso = uvm_sim::experiments::eviction_isolation(&cfg.executor(), cfg.scale);
    uvm_bench::finish(uvm_bench::emit("fig9", &iso.time))
}
