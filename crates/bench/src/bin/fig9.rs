//! Regenerates Fig. 9: LRU vs Random 4 KB eviction in isolation (110%).
fn main() {
    let iso = uvm_sim::experiments::eviction_isolation(uvm_bench::scale_from_args());
    uvm_bench::emit("fig9", &iso.time);
}
