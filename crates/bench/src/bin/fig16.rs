//! Regenerates Fig. 16: pages thrashed, TBNe vs 2 MB eviction (110/125%).
fn main() {
    let cmp = uvm_sim::experiments::tbne_vs_2mb(uvm_bench::scale_from_args());
    uvm_bench::emit("fig16", &cmp.thrash);
}
