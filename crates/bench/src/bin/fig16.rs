//! Regenerates Fig. 16: pages thrashed, TBNe vs 2 MB eviction (110/125%).
fn main() -> std::process::ExitCode {
    let cfg = uvm_bench::config_from_args();
    let cmp = uvm_sim::experiments::tbne_vs_2mb(&cfg.executor(), cfg.scale);
    uvm_bench::finish(uvm_bench::emit("fig16", &cmp.thrash))
}
