//! Regenerates the paper's Sec. 7 access-pattern characterisation:
//! per-benchmark footprint, reuse, sequentiality, and pattern class.
fn main() -> std::process::ExitCode {
    let cfg = uvm_bench::config_from_args();
    let t = uvm_sim::experiments::pattern_analysis(&cfg.executor(), cfg.scale);
    uvm_bench::finish(uvm_bench::emit("pattern_report", &t))
}
