//! Regenerates the paper's Sec. 7 access-pattern characterisation:
//! per-benchmark footprint, reuse, sequentiality, and pattern class.
fn main() {
    let t = uvm_sim::experiments::pattern_analysis(uvm_bench::scale_from_args());
    uvm_bench::emit("pattern_report", &t);
}
