//! Regenerates Fig. 11: the four prefetcher x pre-eviction combos (110%).
fn main() -> std::process::ExitCode {
    let cfg = uvm_bench::config_from_args();
    let t = uvm_sim::experiments::policy_combinations(&cfg.executor(), cfg.scale);
    uvm_bench::finish(uvm_bench::emit("fig11", &t))
}
