//! Regenerates Fig. 11: the four prefetcher x pre-eviction combos (110%).
fn main() {
    let t = uvm_sim::experiments::policy_combinations(uvm_bench::scale_from_args());
    uvm_bench::emit("fig11", &t);
}
