//! Ablation of Sec. 5.1's design choice: bulk-unit write-back (whole
//! 64 KB groups, clean pages included) versus dirty-only write-back.
fn main() {
    let t = uvm_sim::experiments::writeback_ablation(uvm_bench::scale_from_args());
    uvm_bench::emit("ablation_writeback", &t);
}
