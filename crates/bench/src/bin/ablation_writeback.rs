//! Ablation of Sec. 5.1's design choice: bulk-unit write-back (whole
//! 64 KB groups, clean pages included) versus dirty-only write-back.
fn main() -> std::process::ExitCode {
    let cfg = uvm_bench::config_from_args();
    let t = uvm_sim::experiments::writeback_ablation(&cfg.executor(), cfg.scale);
    uvm_bench::finish(uvm_bench::emit("ablation_writeback", &t))
}
