//! Regenerates Fig. 5: total far-faults per prefetcher.
fn main() {
    let sweep = uvm_sim::experiments::prefetcher_sweep(uvm_bench::scale_from_args());
    uvm_bench::emit("fig5", &sweep.faults);
}
