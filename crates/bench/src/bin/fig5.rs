//! Regenerates Fig. 5: total far-faults per prefetcher.
fn main() -> std::process::ExitCode {
    let cfg = uvm_bench::config_from_args();
    let sweep = uvm_sim::experiments::prefetcher_sweep(&cfg.executor(), cfg.scale);
    uvm_bench::finish(uvm_bench::emit("fig5", &sweep.faults))
}
