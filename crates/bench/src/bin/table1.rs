//! Regenerates Table 1: PCI-e read bandwidth vs transfer size.
fn main() -> std::process::ExitCode {
    uvm_bench::finish(uvm_bench::emit("table1", &uvm_sim::experiments::table1()))
}
