//! Regenerates Fig. 14: reserving 0/10/20% of the LRU list from eviction.
fn main() -> std::process::ExitCode {
    let cfg = uvm_bench::config_from_args();
    let t = uvm_sim::experiments::lru_reservation(&cfg.executor(), cfg.scale);
    uvm_bench::finish(uvm_bench::emit("fig14", &t))
}
