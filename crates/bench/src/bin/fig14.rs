//! Regenerates Fig. 14: reserving 0/10/20% of the LRU list from eviction.
fn main() {
    let t = uvm_sim::experiments::lru_reservation(uvm_bench::scale_from_args());
    uvm_bench::emit("fig14", &t);
}
