//! Runs every table/figure regenerator in sequence, writing all CSVs
//! under `results/`. Equivalent to running table1 + fig2..fig16, but
//! with one shared executor: runs required by several figures are
//! simulated once and spilled under `results/cache/` for resumption.
fn main() -> std::process::ExitCode {
    uvm_bench::finish(uvm_bench::run_all(&uvm_bench::config_from_args()))
}
