//! Runs every table/figure regenerator in sequence, writing all CSVs
//! under `results/`. Equivalent to running table1 + fig2..fig16.
fn main() {
    use uvm_sim::experiments as exp;
    let scale = uvm_bench::scale_from_args();

    uvm_bench::emit("table1", &exp::table1());
    print!("{}", exp::fig2_walkthrough());

    let sweep = exp::prefetcher_sweep(scale);
    uvm_bench::emit("fig3", &sweep.time);
    uvm_bench::emit("fig4", &sweep.bandwidth);
    uvm_bench::emit("fig5", &sweep.faults);

    let os = exp::oversubscription_sweep(scale);
    uvm_bench::emit("fig6", &os.time);
    uvm_bench::emit("fig7", &os.transfers_4k);

    print!("{}", exp::fig8_walkthrough());

    let iso = exp::eviction_isolation(scale);
    uvm_bench::emit("fig9", &iso.time);
    uvm_bench::emit("fig10", &iso.evicted);

    uvm_bench::emit("fig11", &exp::policy_combinations(scale));

    for (launch, table) in exp::nw_trace(scale, &[60, 70]) {
        uvm_bench::write_csv(&format!("fig12_launch{launch}"), &table);
    }

    uvm_bench::emit("fig13", &exp::tbn_oversubscription_sensitivity(scale));
    uvm_bench::emit("fig14", &exp::lru_reservation(scale));

    let cmp = exp::tbne_vs_2mb(scale);
    uvm_bench::emit("fig15", &cmp.time);
    uvm_bench::emit("fig16", &cmp.thrash);

    // Sec. 7 analysis and the design-choice ablations.
    uvm_bench::emit("pattern_report", &exp::pattern_analysis(scale));
    uvm_bench::emit(
        "ablation_prefetch_granularity",
        &exp::prefetch_granularity_ablation(scale),
    );
    uvm_bench::emit(
        "ablation_fault_lanes",
        &exp::fault_lanes_ablation(scale, &[1, 2, 4, 8, 16]),
    );
    uvm_bench::emit(
        "ablation_prefetch_accuracy",
        &exp::prefetch_accuracy_ablation(scale),
    );
    uvm_bench::emit("ablation_writeback", &exp::writeback_ablation(scale));
}
