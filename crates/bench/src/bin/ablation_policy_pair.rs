//! Registry ablation: run the benchmark suite under an arbitrary
//! prefetcher × evictor pair named on the command line, next to the
//! driver baseline (none + LRU-4KB) and the paper's TBNp + TBNe.
//!
//! ```sh
//! cargo run --release -p uvm-bench --bin ablation_policy_pair -- --list-policies
//! cargo run --release -p uvm-bench --bin ablation_policy_pair -- \
//!     --smoke --prefetch S256p --evict AFe
//! cargo run --release -p uvm-bench --bin ablation_policy_pair -- \
//!     --smoke --prefetch markov:depth=2 --evict AFe
//! ```
//!
//! Defaults to the two out-of-core policies (the 256 KB-stride
//! prefetcher and the access-frequency evictor) that exist purely as
//! registry entries: this binary proves a policy is selectable by name
//! — including parameterized specs like `markov:depth=2` — without the
//! driver knowing it.

use uvm_bench::{config_from_args, emit};
use uvm_core::PolicySpec;
use uvm_sim::experiments::policy_pair;

fn main() -> std::process::ExitCode {
    let cfg = config_from_args();
    let prefetch = cfg
        .prefetch
        .clone()
        .unwrap_or_else(|| PolicySpec::new("S256p"));
    let evict = cfg.evict.clone().unwrap_or_else(|| PolicySpec::new("AFe"));
    let frac = cfg.oversub.unwrap_or(1.10);
    let table = policy_pair(&cfg.executor(), cfg.scale, &prefetch, &evict, frac);
    // CSV names must stay filesystem-safe: spec strings may carry
    // `:`/`=`/`,`; keep only the policy names.
    uvm_bench::finish(emit(
        &format!("ablation_policy_pair_{}_{}", prefetch.name(), evict.name()),
        &table,
    ))
}
