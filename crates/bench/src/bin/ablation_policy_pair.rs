//! Registry ablation: run the benchmark suite under an arbitrary
//! prefetcher × evictor pair named on the command line, next to the
//! driver baseline (none + LRU-4KB) and the paper's TBNp + TBNe.
//!
//! ```sh
//! cargo run --release -p uvm-bench --bin ablation_policy_pair -- --list-policies
//! cargo run --release -p uvm-bench --bin ablation_policy_pair -- \
//!     --smoke --prefetch S256p --evict AFe
//! ```
//!
//! Defaults to the two out-of-core policies (the 256 KB-stride
//! prefetcher and the access-frequency evictor) that exist purely as
//! registry entries: this binary proves a policy is selectable by name
//! without the driver knowing it.

use uvm_bench::{config_from_args, emit};
use uvm_core::{EvictPolicy, PrefetchPolicy};
use uvm_sim::experiments::policy_pair;

fn main() -> std::process::ExitCode {
    let cfg = config_from_args();
    let prefetch = cfg.prefetch.unwrap_or(PrefetchPolicy::Stride256K);
    let evict = cfg.evict.unwrap_or(EvictPolicy::AccessFrequency);
    let frac = cfg.oversub.unwrap_or(1.10);
    let table = policy_pair(&cfg.executor(), cfg.scale, prefetch, evict, frac);
    uvm_bench::finish(emit(
        &format!("ablation_policy_pair_{prefetch}_{evict}"),
        &table,
    ))
}
