//! Minimal benchmark harness for the `benches/` targets.
//!
//! The workspace builds fully offline, so there is no criterion; this
//! harness covers what the bench targets need: warmup, auto-calibrated
//! batch sizes, best-of-three sampling, ns/iter reporting, and
//! substring filtering (`cargo bench -- <filter>`). Unlike criterion's
//! `iter_batched`, per-iteration setup is timed along with the body —
//! the bench closures here keep setup either hoisted or cheap.

use std::time::{Duration, Instant};

/// Target wall-clock time per timed batch.
const BATCH_TARGET: Duration = Duration::from_millis(100);
/// Functions slower than this are timed one call at a time.
const HEAVY: Duration = Duration::from_millis(200);
const SAMPLES: u32 = 3;

/// A benchmark runner: construct once per bench target, call
/// [`bench`](Self::bench) per case.
pub struct Bench {
    filter: Option<String>,
}

impl Bench {
    /// Reads the name filter from the command line. Flags (anything
    /// starting with `-`, e.g. the `--bench` cargo passes) are
    /// ignored; the first bare argument filters cases by substring.
    pub fn from_args() -> Self {
        Bench {
            filter: std::env::args().skip(1).find(|a| !a.starts_with('-')),
        }
    }

    /// Times `f`, printing `<name>  <ns>/iter`. Returns the best
    /// per-iteration time in nanoseconds (`None` if filtered out).
    pub fn bench<F: FnMut()>(&self, name: &str, mut f: F) -> Option<f64> {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return None;
            }
        }

        let t0 = Instant::now();
        f();
        let first = t0.elapsed();

        let ns = if first >= HEAVY {
            // Heavy case: best of single calls, warmup call included.
            let mut best = first;
            for _ in 0..SAMPLES - 1 {
                let t = Instant::now();
                f();
                best = best.min(t.elapsed());
            }
            best.as_nanos() as f64
        } else {
            // Refine the per-iteration estimate, then time batches.
            let mut iters = 1u64;
            let warm = Instant::now();
            while warm.elapsed() < Duration::from_millis(20) {
                f();
                iters += 1;
            }
            let per = (first + warm.elapsed()).as_nanos() as f64 / iters as f64;
            let n = ((BATCH_TARGET.as_nanos() as f64 / per.max(1.0)) as u64).clamp(1, 10_000_000);
            let mut best = f64::INFINITY;
            for _ in 0..SAMPLES {
                let t = Instant::now();
                for _ in 0..n {
                    f();
                }
                best = best.min(t.elapsed().as_nanos() as f64 / n as f64);
            }
            best
        };

        println!("{name:<48} {:>15} ns/iter", group_digits(ns.round() as u64));
        Some(ns)
    }
}

fn group_digits(v: u64) -> String {
    let digits = v.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_are_grouped() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1000), "1,000");
        assert_eq!(group_digits(1234567), "1,234,567");
    }

    #[test]
    fn bench_runs_and_reports() {
        let b = Bench { filter: None };
        let mut count = 0u64;
        let ns = b.bench("harness_selftest", || count += 1);
        assert!(ns.is_some_and(|ns| ns >= 0.0));
        assert!(count > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let b = Bench {
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        assert!(b.bench("something_else", || ran = true).is_none());
        assert!(!ran);
    }
}
