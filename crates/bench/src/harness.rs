//! Minimal benchmark harness for the `benches/` targets.
//!
//! The workspace builds fully offline, so there is no criterion; this
//! harness covers what the bench targets need: warmup, auto-calibrated
//! batch sizes, best-of-three sampling, ns/iter reporting, and
//! substring filtering (`cargo bench -- <filter>`). Unlike criterion's
//! `iter_batched`, per-iteration setup is timed along with the body —
//! the bench closures here keep setup either hoisted or cheap.

use std::cell::RefCell;
use std::io::Write;
use std::path::Path;
use std::time::{Duration, Instant};

/// Target wall-clock time per timed batch.
const BATCH_TARGET: Duration = Duration::from_millis(100);
/// Functions slower than this are timed one call at a time.
const HEAVY: Duration = Duration::from_millis(200);
const SAMPLES: u32 = 3;

/// A benchmark runner: construct once per bench target, call
/// [`bench`](Self::bench) per case.
pub struct Bench {
    filter: Option<String>,
    /// Every `(name, best ns/iter)` measured so far, for JSON export.
    results: RefCell<Vec<(String, f64)>>,
}

impl Bench {
    /// Reads the name filter from the command line. Flags (anything
    /// starting with `-`, e.g. the `--bench` cargo passes) are
    /// ignored; the first bare argument filters cases by substring.
    pub fn from_args() -> Self {
        Bench {
            filter: std::env::args().skip(1).find(|a| !a.starts_with('-')),
            results: RefCell::new(Vec::new()),
        }
    }

    /// Times `f`, printing `<name>  <ns>/iter`. Returns the best
    /// per-iteration time in nanoseconds (`None` if filtered out).
    pub fn bench<F: FnMut()>(&self, name: &str, mut f: F) -> Option<f64> {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return None;
            }
        }

        let t0 = Instant::now();
        f();
        let first = t0.elapsed();

        let ns = if first >= HEAVY {
            // Heavy case: best of single calls, warmup call included.
            let mut best = first;
            for _ in 0..SAMPLES - 1 {
                let t = Instant::now();
                f();
                best = best.min(t.elapsed());
            }
            best.as_nanos() as f64
        } else {
            // Refine the per-iteration estimate, then time batches.
            let mut iters = 1u64;
            let warm = Instant::now();
            while warm.elapsed() < Duration::from_millis(20) {
                f();
                iters += 1;
            }
            let per = (first + warm.elapsed()).as_nanos() as f64 / iters as f64;
            let n = ((BATCH_TARGET.as_nanos() as f64 / per.max(1.0)) as u64).clamp(1, 10_000_000);
            let mut best = f64::INFINITY;
            for _ in 0..SAMPLES {
                let t = Instant::now();
                for _ in 0..n {
                    f();
                }
                best = best.min(t.elapsed().as_nanos() as f64 / n as f64);
            }
            best
        };

        println!("{name:<48} {:>15} ns/iter", group_digits(ns.round() as u64));
        self.results.borrow_mut().push((name.to_string(), ns));
        Some(ns)
    }

    /// Records a pre-computed value under `name`, printed and exported
    /// like a measured case. Bench targets use this for derived
    /// metrics — e.g. the sweep bench's cold/forked speedup ratio —
    /// so the JSON artifact carries them alongside raw timings.
    pub fn record(&self, name: &str, value: f64) {
        println!("{name:<48} {value:>15.2}");
        self.results.borrow_mut().push((name.to_string(), value));
    }

    /// Writes every result measured so far as a JSON report (the CI
    /// `perf-smoke` trend artifact). If the `UVM_BENCH_JSON` environment
    /// variable is set, [`write_json_from_env`](Self::write_json_from_env)
    /// routes the report there.
    ///
    /// If `path` already holds a report, the new results are *merged*
    /// into it: entries re-measured this run are updated in place,
    /// entries from earlier runs (including other suites) are kept, and
    /// the `suite` field accumulates every contributing suite joined
    /// with `+`. This is how several bench targets fold into one
    /// artifact — e.g. `microbench`'s allocator cases ride along in
    /// `BENCH_engine.json` next to `engine_hotpath`'s without either
    /// target rewriting the other's numbers.
    pub fn write_json(&self, suite: &str, path: &Path) -> std::io::Result<()> {
        let mut suites: Vec<String> = Vec::new();
        let mut merged: Vec<(String, f64)> = Vec::new();
        if let Ok(existing) = std::fs::read_to_string(path) {
            if let Some((old_suites, entries)) = parse_report(&existing) {
                suites = old_suites;
                merged = entries;
            }
        }
        for s in suite.split('+') {
            if !suites.iter().any(|x| x == s) {
                suites.push(s.to_string());
            }
        }
        for (name, ns) in self.results.borrow().iter() {
            match merged.iter_mut().find(|(n, _)| n == name) {
                Some(slot) => slot.1 = *ns,
                None => merged.push((name.clone(), *ns)),
            }
        }

        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{{")?;
        writeln!(f, "  \"suite\": \"{}\",", suites.join("+"))?;
        writeln!(f, "  \"results\": [")?;
        for (i, (name, ns)) in merged.iter().enumerate() {
            let comma = if i + 1 < merged.len() { "," } else { "" };
            writeln!(
                f,
                "    {{\"name\": \"{name}\", \"ns_per_iter\": {:.1}}}{comma}",
                ns
            )?;
        }
        writeln!(f, "  ]")?;
        writeln!(f, "}}")
    }

    /// Writes the JSON report to `$UVM_BENCH_JSON` when that variable
    /// is set; a silent no-op otherwise (plain `cargo bench` runs).
    pub fn write_json_from_env(&self, suite: &str) -> std::io::Result<()> {
        match std::env::var_os("UVM_BENCH_JSON") {
            Some(path) => self.write_json(suite, Path::new(&path)),
            None => Ok(()),
        }
    }
}

/// Suite names (`+`-separated in the file) plus `(name, ns_per_iter)`
/// entries of an existing report.
type ParsedReport = (Vec<String>, Vec<(String, f64)>);

/// Parses a report this harness previously wrote. Returns `None`
/// for anything that is not a harness report (the caller then starts
/// fresh rather than merging).
fn parse_report(text: &str) -> Option<ParsedReport> {
    let suite = text.split("\"suite\": \"").nth(1)?.split('"').next()?;
    let suites = suite.split('+').map(str::to_string).collect();
    let mut entries = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"name\": \"") else {
            continue;
        };
        let (name, rest) = rest.split_once('"')?;
        let value = rest
            .split("\"ns_per_iter\":")
            .nth(1)?
            .trim()
            .trim_end_matches([',', '}', ' ']);
        entries.push((name.to_string(), value.parse().ok()?));
    }
    Some((suites, entries))
}

fn group_digits(v: u64) -> String {
    let digits = v.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_are_grouped() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1000), "1,000");
        assert_eq!(group_digits(1234567), "1,234,567");
    }

    fn bench_with_filter(filter: Option<String>) -> Bench {
        Bench {
            filter,
            results: RefCell::new(Vec::new()),
        }
    }

    #[test]
    fn bench_runs_and_reports() {
        let b = bench_with_filter(None);
        let mut count = 0u64;
        let ns = b.bench("harness_selftest", || count += 1);
        assert!(ns.is_some_and(|ns| ns >= 0.0));
        assert!(count > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let b = bench_with_filter(Some("nomatch".into()));
        let mut ran = false;
        assert!(b.bench("something_else", || ran = true).is_none());
        assert!(!ran);
    }

    #[test]
    fn json_reports_merge_across_suites() {
        let path =
            std::env::temp_dir().join(format!("uvm_bench_merge_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let a = bench_with_filter(None);
        a.record("shared_case", 10.0);
        a.record("only_a", 1.0);
        a.write_json("suite_a", &path).expect("write first report");

        let b = bench_with_filter(None);
        b.record("shared_case", 20.0);
        b.record("only_b", 2.0);
        b.write_json("suite_b", &path).expect("merge second report");

        let report = std::fs::read_to_string(&path).expect("read report");
        let _ = std::fs::remove_file(&path);
        assert!(report.contains("\"suite\": \"suite_a+suite_b\""));
        // Kept, updated in place, and appended respectively.
        assert!(report.contains("\"name\": \"only_a\", \"ns_per_iter\": 1.0"));
        assert!(report.contains("\"name\": \"shared_case\", \"ns_per_iter\": 20.0"));
        assert!(report.contains("\"name\": \"only_b\", \"ns_per_iter\": 2.0"));
        // The shared case was not duplicated.
        assert_eq!(report.matches("shared_case").count(), 1);
        let (suites, entries) = parse_report(&report).expect("round-trips");
        assert_eq!(suites, vec!["suite_a", "suite_b"]);
        assert_eq!(entries.len(), 3);
    }

    #[test]
    fn json_report_round_trips() {
        let b = bench_with_filter(None);
        b.bench("case_a", || {
            std::hint::black_box(1 + 1);
        });
        let path = std::env::temp_dir().join("uvm_bench_selftest.json");
        b.write_json("selftest", &path).expect("write report");
        let report = std::fs::read_to_string(&path).expect("read report");
        let _ = std::fs::remove_file(&path);
        assert!(report.contains("\"suite\": \"selftest\""));
        assert!(report.contains("\"name\": \"case_a\""));
        assert!(report.contains("ns_per_iter"));
    }
}
