//! Shared plumbing for the table/figure regenerator binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper: it runs the corresponding experiment from
//! [`uvm_sim::experiments`], prints the series to stdout, and writes a
//! CSV under `results/`. Run any of them as
//!
//! ```sh
//! cargo run --release -p uvm-bench --bin fig11            # paper scale
//! cargo run --release -p uvm-bench --bin fig11 -- --smoke # tiny smoke run
//! cargo run --release -p uvm-bench --bin all_experiments -- --jobs 4
//! ```
//!
//! Every binary shares one [`Executor`] per invocation (built by
//! [`Config::executor`]): identical runs required by several figures
//! are simulated once, `--jobs N` sets the simulation worker-pool
//! width, and completed results are spilled as JSON under
//! `results/cache/` so re-invocations resume instead of re-simulating.
//! Delete `results/cache/` to force fresh runs.
//!
//! The shared command line is described by one declarative [`FlagSpec`]
//! table: each entry names the flag, its value shape, and its help
//! line, and a single loop accepts both `--flag VALUE` and
//! `--flag=VALUE` spellings. `--help` renders the same table.

pub mod harness;

use std::error::Error;
use std::fmt;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use uvm_core::{FaultPlan, ParamSpec, PolicyRegistry, PolicySpec};
use uvm_sim::experiments::Scale;
use uvm_sim::{Executor, Table};

/// Relative directory the executor spills completed run results into.
pub const CACHE_DIR: &str = "results/cache";

/// A fallible step of a regenerator binary; rendered by [`finish`]
/// into the process exit code.
#[derive(Debug)]
pub enum BenchError {
    /// A filesystem write under `results/` failed.
    Io {
        /// The path that could not be written.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// One or more simulation runs failed after their retry budget;
    /// the executor's failure report has the details.
    Sweep(String),
    /// A trace or trained-table artifact under `results/` could not
    /// be decoded.
    Artifact(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Io { path, source } => {
                write!(f, "could not write {}: {source}", path.display())
            }
            BenchError::Sweep(msg) => write!(f, "sweep incomplete: {msg}"),
            BenchError::Artifact(msg) => write!(f, "bad artifact: {msg}"),
        }
    }
}

impl Error for BenchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BenchError::Io { source, .. } => Some(source),
            BenchError::Sweep(_) | BenchError::Artifact(_) => None,
        }
    }
}

/// Renders a binary's outcome as its exit code, printing the error to
/// stderr on failure.
pub fn finish(outcome: Result<(), BenchError>) -> ExitCode {
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Common binary configuration parsed from the command line.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Experiment scale (`--smoke` / `--paper`).
    pub scale: Scale,
    /// Worker-pool width (`--jobs N`); 0 means auto-detect.
    pub jobs: usize,
    /// Prefetcher override (`--prefetch SPEC`), canonicalized through
    /// the policy registry (aliases renamed, parameter keys checked).
    /// Binaries that sweep policies ignore it.
    pub prefetch: Option<PolicySpec>,
    /// Evictor override (`--evict SPEC`), canonicalized through the
    /// policy registry. Binaries that sweep policies ignore it.
    pub evict: Option<PolicySpec>,
    /// Trace-export directory (`--trace-out DIR`); binaries that
    /// support it write one `.uvmt` file per run under this directory.
    pub trace_out: Option<PathBuf>,
    /// Fault-injection profile (`--fault-profile NAME`); `None` means
    /// the binary's default (usually [`FaultPlan::none`]).
    pub fault_plan: Option<FaultPlan>,
    /// Fault-injection seed override (`--fault-seed N`).
    pub fault_seed: Option<u64>,
    /// Over-subscription ratio override (`--oversub RATIO`), the
    /// footprint : device-memory ratio (1.10 = 110 %). `None` means
    /// the binary's default level(s). Validated against
    /// [`OVERSUB_RANGE`] at parse time.
    pub oversub: Option<f64>,
    /// Checkpoint directory (`--checkpoint-dir DIR`): every run writes
    /// durable `.uvmc` checkpoints under this directory at kernel
    /// boundaries and resumes from them after a crash. Off by default.
    pub checkpoint_dir: Option<PathBuf>,
    /// Kernel launches between checkpoints (`--checkpoint-every N`,
    /// default 1); only meaningful with `--checkpoint-dir`.
    pub checkpoint_every: usize,
    /// Run the GMMU invariant auditor at every checkpoint boundary
    /// (`--audit`); equivalent to `UVM_AUDIT=1`.
    pub audit: bool,
    /// Engine sharded-execution width (`--engine-threads N`): `None`
    /// leaves the simulator serial, `Some(0)` sizes to the host, and
    /// `Some(n)` runs every kernel across `n` SM shards. Results are
    /// byte-identical at every width.
    pub engine_threads: Option<usize>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: Scale::Paper,
            jobs: 0,
            prefetch: None,
            evict: None,
            trace_out: None,
            fault_plan: None,
            fault_seed: None,
            oversub: None,
            checkpoint_dir: None,
            checkpoint_every: 1,
            audit: false,
            engine_threads: None,
        }
    }
}

/// The over-subscription ratios `--oversub` accepts: 1.0 (everything
/// fits) up to 4.0 (footprint four times device memory).
pub const OVERSUB_RANGE: std::ops::RangeInclusive<f64> = 1.0..=4.0;

impl Config {
    /// Builds the shared executor for this invocation, spilling to
    /// [`CACHE_DIR`]. With `--checkpoint-dir` the executor also keeps
    /// a write-ahead sweep journal next to the checkpoints, so an
    /// interrupted invocation can be diagnosed and resumed.
    pub fn executor(&self) -> Executor {
        let exec = Executor::new(self.jobs).with_spill_dir(CACHE_DIR);
        match &self.checkpoint_dir {
            Some(dir) => exec.with_journal(dir.join("sweep.journal")),
            None => exec,
        }
    }

    /// Installs the durability and execution settings process-wide:
    /// experiments build their own `RunOptions` deep inside each
    /// sweep, so `--checkpoint-dir`, `--checkpoint-every`, `--audit`,
    /// and `--engine-threads` travel as the `UVM_CHECKPOINT_DIR`/
    /// `UVM_CHECKPOINT_EVERY`/`UVM_AUDIT`/`UVM_ENGINE_THREADS`
    /// environment switches the simulator honours for every run.
    /// Called once by [`config_from_args`], before any worker thread
    /// exists. Safe because none of these change simulation results.
    pub fn install_durability(&self) {
        if let Some(dir) = &self.checkpoint_dir {
            std::env::set_var("UVM_CHECKPOINT_DIR", dir);
            std::env::set_var("UVM_CHECKPOINT_EVERY", self.checkpoint_every.to_string());
        }
        if self.audit {
            std::env::set_var("UVM_AUDIT", "1");
        }
        if let Some(n) = self.engine_threads {
            std::env::set_var("UVM_ENGINE_THREADS", n.to_string());
        }
    }

    /// The fault plan this invocation asked for: `--fault-profile`
    /// if given, else `default`, with `--fault-seed` applied on top.
    pub fn resolved_fault_plan(&self, default: FaultPlan) -> FaultPlan {
        let plan = self.fault_plan.unwrap_or(default);
        match self.fault_seed {
            Some(seed) => plan.with_seed(seed),
            None => plan,
        }
    }

    /// Where a run named `run` should export its trace: the
    /// `--trace-out` directory joined with `<run>.uvmt`, or `None`
    /// when trace export is off.
    pub fn trace_path(&self, run: &str) -> Option<PathBuf> {
        self.trace_out
            .as_ref()
            .map(|dir| dir.join(format!("{run}.uvmt")))
    }
}

/// One entry of the shared flag table: the flag's name, the shape of
/// its value (`None` for bare switches), its `--help` line, and the
/// action applying a parsed occurrence to the in-progress [`Config`].
struct FlagSpec {
    /// The flag as typed, e.g. `"--jobs"`.
    name: &'static str,
    /// Metavariable for the value (`Some("N")` renders `--jobs N`);
    /// `None` means the flag takes no value.
    metavar: Option<&'static str>,
    /// One help line for `--help`.
    help: &'static str,
    /// Applies the occurrence; receives `""` for bare switches.
    apply: fn(&mut ParseCtx, &str) -> Result<(), String>,
}

/// Mutable state threaded through one [`parse_args`] pass.
struct ParseCtx {
    cfg: Config,
    request: Option<Parsed>,
}

fn parse_prefetch_spec(s: &str) -> Result<PolicySpec, String> {
    let spec: PolicySpec = s.parse().map_err(|e| format!("{e}"))?;
    PolicyRegistry::global()
        .canonical_prefetch_spec(&spec)
        .map_err(|e| format!("{e}"))
}

fn parse_evict_spec(s: &str) -> Result<PolicySpec, String> {
    let spec: PolicySpec = s.parse().map_err(|e| format!("{e}"))?;
    PolicyRegistry::global()
        .canonical_evict_spec(&spec)
        .map_err(|e| format!("{e}"))
}

fn parse_oversub(n: &str) -> Result<f64, String> {
    let out_of_range = || {
        format!(
            "bad --oversub value {n:?}: accepted range is {:.1}..={:.1} \
             (footprint : device-memory ratio, e.g. 1.25 = 125%)",
            OVERSUB_RANGE.start(),
            OVERSUB_RANGE.end()
        )
    };
    let ratio: f64 = n.parse().map_err(|_| out_of_range())?;
    if OVERSUB_RANGE.contains(&ratio) {
        Ok(ratio)
    } else {
        Err(out_of_range())
    }
}

/// The shared flag table. [`parse_args`] drives parsing off it and
/// [`render_help`] renders it, so the two can never drift apart.
const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--smoke",
        metavar: None,
        help: "run at tiny smoke scale",
        apply: |ctx, _| {
            ctx.cfg.scale = Scale::Smoke;
            Ok(())
        },
    },
    FlagSpec {
        name: "--paper",
        metavar: None,
        help: "run at the paper's scale (default)",
        apply: |ctx, _| {
            ctx.cfg.scale = Scale::Paper;
            Ok(())
        },
    },
    FlagSpec {
        name: "--jobs",
        metavar: Some("N"),
        help: "worker-pool width; 0 auto-detects parallelism (default)",
        apply: |ctx, v| {
            ctx.cfg.jobs = v.parse().map_err(|_| format!("bad --jobs value {v:?}"))?;
            Ok(())
        },
    },
    FlagSpec {
        name: "--prefetch",
        metavar: Some("SPEC"),
        help: "prefetcher: name, alias, or name:key=val,... (e.g. markov:depth=2)",
        apply: |ctx, v| {
            ctx.cfg.prefetch = Some(parse_prefetch_spec(v)?);
            Ok(())
        },
    },
    FlagSpec {
        name: "--evict",
        metavar: Some("SPEC"),
        help: "evictor, same spec grammar as --prefetch",
        apply: |ctx, v| {
            ctx.cfg.evict = Some(parse_evict_spec(v)?);
            Ok(())
        },
    },
    FlagSpec {
        name: "--trace-out",
        metavar: Some("DIR"),
        help: "export per-run access/fault traces as DIR/<run>.uvmt",
        apply: |ctx, v| {
            if v.is_empty() {
                return Err("bad --trace-out value: directory must be non-empty".into());
            }
            ctx.cfg.trace_out = Some(PathBuf::from(v));
            Ok(())
        },
    },
    FlagSpec {
        name: "--oversub",
        metavar: Some("RATIO"),
        help: "over-subscription ratio, 1.0..=4.0 (1.25 = 125%)",
        apply: |ctx, v| {
            ctx.cfg.oversub = Some(parse_oversub(v)?);
            Ok(())
        },
    },
    FlagSpec {
        name: "--fault-profile",
        metavar: Some("NAME"),
        help: "deterministic fault-injection profile",
        apply: |ctx, v| {
            ctx.cfg.fault_plan = Some(FaultPlan::from_name(v).map_err(|e| format!("{e}"))?);
            Ok(())
        },
    },
    FlagSpec {
        name: "--fault-seed",
        metavar: Some("N"),
        help: "fault-injection seed override",
        apply: |ctx, v| {
            ctx.cfg.fault_seed = Some(
                v.parse()
                    .map_err(|_| format!("bad --fault-seed value {v:?}"))?,
            );
            Ok(())
        },
    },
    FlagSpec {
        name: "--checkpoint-dir",
        metavar: Some("DIR"),
        help: "write durable per-run checkpoints under DIR and resume from them",
        apply: |ctx, v| {
            if v.is_empty() {
                return Err("bad --checkpoint-dir value: directory must be non-empty".into());
            }
            ctx.cfg.checkpoint_dir = Some(PathBuf::from(v));
            Ok(())
        },
    },
    FlagSpec {
        name: "--checkpoint-every",
        metavar: Some("N"),
        help: "kernel launches between checkpoints (default 1)",
        apply: |ctx, v| {
            let every: usize = v
                .parse()
                .map_err(|_| format!("bad --checkpoint-every value {v:?}"))?;
            if every == 0 {
                return Err("bad --checkpoint-every value: must be at least 1".into());
            }
            ctx.cfg.checkpoint_every = every;
            Ok(())
        },
    },
    FlagSpec {
        name: "--audit",
        metavar: None,
        help: "run the GMMU invariant auditor at every checkpoint boundary",
        apply: |ctx, _| {
            ctx.cfg.audit = true;
            Ok(())
        },
    },
    FlagSpec {
        name: "--engine-threads",
        metavar: Some("N"),
        help: "engine shards per kernel: 0 = auto, 1 = serial (default), N = N shards",
        apply: |ctx, v| {
            ctx.cfg.engine_threads = Some(v.parse().map_err(|_| {
                format!(
                    "bad --engine-threads value {v:?}: accepted forms are \
                     0 (auto-size to the host) or a positive thread count"
                )
            })?);
            Ok(())
        },
    },
    FlagSpec {
        name: "--list-policies",
        metavar: None,
        help: "print every registered policy (and its parameters) and exit",
        apply: |ctx, _| {
            ctx.request = Some(Parsed::ListPolicies);
            Ok(())
        },
    },
    FlagSpec {
        name: "--help",
        metavar: None,
        help: "print this message and exit",
        apply: |ctx, _| {
            ctx.request = Some(Parsed::Help);
            Ok(())
        },
    },
];

/// Parses the common binary arguments off the [`FlagSpec`] table; see
/// `--help` for the catalogue. Every value-taking flag accepts both
/// `--flag VALUE` and `--flag=VALUE`. `--list-policies` prints the
/// policy registry and exits 0; `--help` prints the flag table and
/// exits 0. Unknown arguments, policy names, unknown policy
/// parameters, out-of-range ratios, and fault profiles exit with
/// status 2; the errors list the valid names, accepted parameters, or
/// the accepted range.
pub fn config_from_args() -> Config {
    match parse_args(std::env::args().skip(1)) {
        Ok(Parsed::Run(cfg)) => {
            cfg.install_durability();
            *cfg
        }
        Ok(Parsed::ListPolicies) => {
            print!("{}", render_policy_list());
            std::process::exit(0);
        }
        Ok(Parsed::Help) => {
            print!("{}", render_help());
            std::process::exit(0);
        }
        Err(msg) => {
            eprintln!("{msg}");
            eprint!("{}", render_help());
            std::process::exit(2);
        }
    }
}

/// Outcome of argument parsing: a runnable configuration, or one of
/// the print-and-exit requests.
#[derive(Clone, Debug, PartialEq)]
enum Parsed {
    // Boxed: Config dwarfs the unit variants.
    Run(Box<Config>),
    ListPolicies,
    Help,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Parsed, String> {
    let mut ctx = ParseCtx {
        cfg: Config::default(),
        request: None,
    };
    let mut args = args;
    while let Some(arg) = args.next() {
        // `--flag=VALUE` splits into the flag and an inline value;
        // `--flag VALUE` takes the value from the next argument.
        let (name, inline) = match arg.split_once('=') {
            Some((name, value)) => (name, Some(value.to_string())),
            None => (arg.as_str(), None),
        };
        let Some(spec) = FLAGS.iter().find(|f| f.name == name) else {
            return Err(format!("unknown argument {arg:?}"));
        };
        let value = match (spec.metavar, inline) {
            (Some(metavar), inline) => match inline.or_else(|| args.next()) {
                Some(v) => v,
                None => return Err(format!("{} needs a value ({metavar})", spec.name)),
            },
            (None, Some(_)) => {
                return Err(format!("{} takes no value", spec.name));
            }
            (None, None) => String::new(),
        };
        (spec.apply)(&mut ctx, &value)?;
        if let Some(request) = ctx.request.take() {
            return Ok(request);
        }
    }
    Ok(Parsed::Run(Box::new(ctx.cfg)))
}

/// The `--help` text, rendered straight from the [`FlagSpec`] table.
pub fn render_help() -> String {
    let mut out = String::from("usage: [FLAGS]\n");
    for f in FLAGS {
        let lhs = match f.metavar {
            Some(metavar) => format!("{} {metavar}", f.name),
            None => f.name.to_string(),
        };
        out.push_str(&format!("  {lhs:<24}{}\n", f.help));
    }
    out
}

/// The `--list-policies` listing: every registered prefetcher and
/// evictor with its aliases, summary, and accepted parameters,
/// straight from the registry.
pub fn render_policy_list() -> String {
    let registry = PolicyRegistry::global();
    let mut out = String::from("prefetchers:\n");
    let push =
        |out: &mut String, name: &str, aliases: &[&str], summary: &str, params: &[ParamSpec]| {
            let aliases = if aliases.is_empty() {
                String::new()
            } else {
                format!(" (aka {})", aliases.join(", "))
            };
            out.push_str(&format!("  {name:<10}{aliases:<30}{summary}\n"));
            for p in params {
                out.push_str(&format!(
                    "    :{:<12} {} (default {})\n",
                    p.key, p.summary, p.default
                ));
            }
        };
    for e in registry.prefetchers() {
        push(&mut out, e.name, e.aliases, e.summary, e.params);
    }
    out.push_str("evictors:\n");
    for e in registry.evictors() {
        push(&mut out, e.name, e.aliases, e.summary, e.params);
    }
    out
}

/// Prints `table` to stdout and writes `results/<name>.csv`.
pub fn emit(name: &str, table: &Table) -> Result<(), BenchError> {
    println!("{table}");
    write_csv(name, table)
}

/// Writes `results/<name>.csv` without printing the rows (for large
/// scatter series like Fig. 12).
pub fn write_csv(name: &str, table: &Table) -> Result<(), BenchError> {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir).map_err(|source| BenchError::Io {
        path: dir.clone(),
        source,
    })?;
    let path = dir.join(format!("{name}.csv"));
    fs::write(&path, table.to_csv()).map_err(|source| BenchError::Io {
        path: path.clone(),
        source,
    })?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

/// The full `all_experiments` sequence: every table/figure regenerator
/// plus the ablations, sharing one deduplicating executor. Also the
/// body of the smoke integration test. Ends with the executor's
/// failure report (quarantined spill entries, failed runs) when there
/// is anything to report.
pub fn run_all(cfg: &Config) -> Result<(), BenchError> {
    use uvm_sim::experiments as exp;
    let exec = cfg.executor();
    let scale = cfg.scale;

    emit("table1", &exp::table1())?;
    print!("{}", exp::fig2_walkthrough());

    let sweep = exp::prefetcher_sweep(&exec, scale);
    emit("fig3", &sweep.time)?;
    emit("fig4", &sweep.bandwidth)?;
    emit("fig5", &sweep.faults)?;

    let os = exp::oversubscription_sweep(&exec, scale);
    emit("fig6", &os.time)?;
    emit("fig7", &os.transfers_4k)?;

    print!("{}", exp::fig8_walkthrough());

    let iso = exp::eviction_isolation(&exec, scale);
    emit("fig9", &iso.time)?;
    emit("fig10", &iso.evicted)?;

    emit("fig11", &exp::policy_combinations(&exec, scale))?;

    for (launch, table) in exp::nw_trace(&exec, scale, &[60, 70]) {
        write_csv(&format!("fig12_launch{launch}"), &table)?;
    }

    emit(
        "fig13",
        &exp::tbn_oversubscription_sensitivity(&exec, scale),
    )?;
    emit("fig14", &exp::lru_reservation(&exec, scale))?;

    let cmp = exp::tbne_vs_2mb(&exec, scale);
    emit("fig15", &cmp.time)?;
    emit("fig16", &cmp.thrash)?;

    // Sec. 7 analysis and the design-choice ablations.
    emit("pattern_report", &exp::pattern_analysis(&exec, scale))?;
    emit(
        "ablation_prefetch_granularity",
        &exp::prefetch_granularity_ablation(&exec, scale),
    )?;
    emit(
        "ablation_fault_lanes",
        &exp::fault_lanes_ablation(&exec, scale, &[1, 2, 4, 8, 16]),
    )?;
    emit(
        "ablation_prefetch_accuracy",
        &exp::prefetch_accuracy_ablation(&exec, scale),
    )?;
    emit("ablation_writeback", &exp::writeback_ablation(&exec, scale))?;
    let oversubs: Vec<f64> = match cfg.oversub {
        Some(frac) => vec![frac],
        None => exp::HUGE_PAGE_OVERSUB.to_vec(),
    };
    let hp = exp::huge_page_ablation(&exec, scale, uvm_sim::Warmup::default(), &oversubs);
    emit("ablation_huge_pages_faults_per_kilo", &hp.faults_per_kilo)?;
    emit("ablation_huge_pages_time", &hp.time)?;
    emit("ablation_huge_pages_activity", &hp.activity)?;
    emit(
        "ablation_fault_injection",
        &exp::fault_injection_ablation(
            &exec,
            scale,
            cfg.resolved_fault_plan(uvm_core::FaultPlan::chaos()),
        ),
    )?;

    eprintln!(
        "executor: {} simulations run, {} submissions served from cache ({} workers)",
        exec.runs_executed(),
        exec.cache_hits(),
        exec.jobs(),
    );
    if let Some(report) = exec.failure_report() {
        eprint!("{report}");
        let failed = exec.failures();
        if !failed.is_empty() {
            return Err(BenchError::Sweep(format!(
                "{} run(s) failed; see the failure report above",
                failed.len()
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_writes_csv() {
        let mut t = Table::new("x", &["a"]);
        t.row(&["1"]);
        let tmp = std::env::temp_dir().join("uvm-bench-test");
        let _ = std::fs::create_dir_all(&tmp);
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&tmp).unwrap();
        emit("emit_test", &t).unwrap();
        let written = std::fs::read_to_string("results/emit_test.csv").unwrap();
        std::env::set_current_dir(old).unwrap();
        assert_eq!(written, "a\n1\n");
    }

    #[test]
    fn args_parse_scale_and_jobs() {
        let p = |args: &[&str]| parse_args(args.iter().map(|s| s.to_string()));
        let base = Config::default();
        assert_eq!(p(&[]).unwrap(), Parsed::Run(Box::new(base.clone())));
        assert_eq!(
            p(&["--smoke", "--jobs", "4"]).unwrap(),
            Parsed::Run(Box::new(Config {
                scale: Scale::Smoke,
                jobs: 4,
                ..base.clone()
            }))
        );
        assert_eq!(
            p(&["--jobs=8", "--paper"]).unwrap(),
            Parsed::Run(Box::new(Config {
                scale: Scale::Paper,
                jobs: 8,
                ..base
            }))
        );
        assert!(p(&["--jobs"]).is_err());
        assert!(p(&["--jobs", "many"]).is_err());
        assert!(p(&["--frobnicate"]).is_err());
        // Bare switches reject inline values.
        assert!(p(&["--smoke=yes"]).is_err());
    }

    #[test]
    fn args_resolve_policies_through_the_registry() {
        let p = |args: &[&str]| parse_args(args.iter().map(|s| s.to_string()));
        // Canonical names and registry aliases both resolve.
        let Parsed::Run(cfg) = p(&["--prefetch", "S256p", "--evict=freq"]).unwrap() else {
            panic!("expected a runnable config");
        };
        assert_eq!(cfg.prefetch, Some(PolicySpec::new("S256p")));
        assert_eq!(cfg.evict, Some(PolicySpec::new("AFe")));
        let Parsed::Run(cfg) = p(&["--prefetch=tree", "--evict", "LRU-2MB"]).unwrap() else {
            panic!("expected a runnable config");
        };
        assert_eq!(cfg.prefetch, Some(PolicySpec::new("TBNp")));
        assert_eq!(cfg.evict, Some(PolicySpec::new("LRU-2MB")));
        assert_eq!(p(&["--list-policies"]).unwrap(), Parsed::ListPolicies);
    }

    #[test]
    fn args_accept_parameterized_specs() {
        let p = |args: &[&str]| parse_args(args.iter().map(|s| s.to_string()));
        // Parameterized specs pass through with their params, and
        // aliases canonicalize without losing them.
        let Parsed::Run(cfg) = p(&["--prefetch", "markov:depth=3,degree=8"]).unwrap() else {
            panic!("expected a runnable config");
        };
        assert_eq!(
            cfg.prefetch,
            Some(
                PolicySpec::new("markov")
                    .with_param("depth", "3")
                    .with_param("degree", "8")
            )
        );
        let Parsed::Run(cfg) = p(&["--prefetch=delta-correlation:depth=2"]).unwrap() else {
            panic!("expected a runnable config");
        };
        assert_eq!(cfg.prefetch.unwrap().to_string(), "markov:depth=2");
    }

    #[test]
    fn unknown_policy_names_error_with_the_registry_list() {
        let p = |args: &[&str]| parse_args(args.iter().map(|s| s.to_string()));
        let err = p(&["--prefetch", "bogus"]).unwrap_err();
        assert!(err.contains("bogus"));
        for name in PolicyRegistry::global().prefetcher_names() {
            assert!(err.contains(name), "error lists {name}");
        }
        let err = p(&["--evict=bogus"]).unwrap_err();
        for name in PolicyRegistry::global().evictor_names() {
            assert!(err.contains(name), "error lists {name}");
        }
    }

    #[test]
    fn unknown_params_error_listing_the_accepted_keys() {
        let p = |args: &[&str]| parse_args(args.iter().map(|s| s.to_string()));
        let err = p(&["--prefetch", "markov:bogus=1"]).unwrap_err();
        assert!(err.contains("bogus"), "error names the bad key: {err}");
        assert!(err.contains("depth"), "error lists accepted keys: {err}");
        let err = p(&["--prefetch", "TBNp:depth=2"]).unwrap_err();
        assert!(err.contains("no parameters"), "{err}");
    }

    #[test]
    fn args_parse_trace_out() {
        let p = |args: &[&str]| parse_args(args.iter().map(|s| s.to_string()));
        let Parsed::Run(cfg) = p(&["--trace-out", "results/traces"]).unwrap() else {
            panic!("expected a runnable config");
        };
        assert_eq!(cfg.trace_out, Some(PathBuf::from("results/traces")));
        assert_eq!(
            cfg.trace_path("nw_markov"),
            Some(PathBuf::from("results/traces/nw_markov.uvmt"))
        );
        let Parsed::Run(cfg) = p(&["--trace-out=out"]).unwrap() else {
            panic!("expected a runnable config");
        };
        assert_eq!(cfg.trace_out, Some(PathBuf::from("out")));
        assert_eq!(Config::default().trace_path("x"), None);
        assert!(p(&["--trace-out"]).is_err());
    }

    #[test]
    fn args_parse_fault_profile_and_seed() {
        let p = |args: &[&str]| parse_args(args.iter().map(|s| s.to_string()));
        let Parsed::Run(cfg) = p(&["--fault-profile", "chaos", "--fault-seed", "42"]).unwrap()
        else {
            panic!("expected a runnable config");
        };
        assert_eq!(cfg.fault_plan, Some(FaultPlan::chaos()));
        assert_eq!(cfg.fault_seed, Some(42));
        assert_eq!(
            cfg.resolved_fault_plan(FaultPlan::none()),
            FaultPlan::chaos().with_seed(42)
        );

        let Parsed::Run(cfg) = p(&["--fault-profile=pcie-flaky", "--fault-seed=7"]).unwrap() else {
            panic!("expected a runnable config");
        };
        assert_eq!(cfg.fault_plan, Some(FaultPlan::pcie_flaky()));
        assert_eq!(cfg.fault_seed, Some(7));

        // No flags: the binary's default plan, untouched.
        let Parsed::Run(cfg) = p(&[]).unwrap() else {
            panic!("expected a runnable config");
        };
        assert_eq!(
            cfg.resolved_fault_plan(FaultPlan::none()),
            FaultPlan::none()
        );

        let err = p(&["--fault-profile", "bogus"]).unwrap_err();
        for name in FaultPlan::PROFILE_NAMES {
            assert!(err.contains(name), "error lists {name}");
        }
        assert!(p(&["--fault-seed", "many"]).is_err());
        assert!(p(&["--fault-profile"]).is_err());
        assert!(p(&["--fault-seed"]).is_err());
    }

    #[test]
    fn args_parse_and_validate_oversub() {
        let p = |args: &[&str]| parse_args(args.iter().map(|s| s.to_string()));
        let Parsed::Run(cfg) = p(&["--oversub", "1.25"]).unwrap() else {
            panic!("expected a runnable config");
        };
        assert_eq!(cfg.oversub, Some(1.25));
        let Parsed::Run(cfg) = p(&["--oversub=1.5"]).unwrap() else {
            panic!("expected a runnable config");
        };
        assert_eq!(cfg.oversub, Some(1.5));
        // Boundary values of the accepted range are accepted.
        assert!(p(&["--oversub", "1.0"]).is_ok());
        assert!(p(&["--oversub", "4.0"]).is_ok());

        // Out-of-range and unparseable ratios name the accepted range.
        for bad in ["0.5", "4.5", "-1.1", "110%", "lots"] {
            let err = p(&["--oversub", bad]).unwrap_err();
            assert!(err.contains(bad), "error echoes the value {bad:?}");
            assert!(err.contains("1.0..=4.0"), "error lists the range: {err}");
        }
        assert!(p(&["--oversub"]).is_err());
    }

    #[test]
    fn args_parse_checkpoint_and_audit_flags() {
        let p = |args: &[&str]| parse_args(args.iter().map(|s| s.to_string()));
        let Parsed::Run(cfg) = p(&[
            "--checkpoint-dir",
            "results/ckpt",
            "--checkpoint-every=3",
            "--audit",
        ])
        .unwrap() else {
            panic!("expected a runnable config");
        };
        assert_eq!(cfg.checkpoint_dir, Some(PathBuf::from("results/ckpt")));
        assert_eq!(cfg.checkpoint_every, 3);
        assert!(cfg.audit);

        // Defaults: checkpointing off, interval 1, no audit.
        let Parsed::Run(cfg) = p(&[]).unwrap() else {
            panic!("expected a runnable config");
        };
        assert_eq!(cfg.checkpoint_dir, None);
        assert_eq!(cfg.checkpoint_every, 1);
        assert!(!cfg.audit);

        assert!(p(&["--checkpoint-dir"]).is_err());
        assert!(p(&["--checkpoint-dir="]).is_err());
        assert!(p(&["--checkpoint-every", "0"]).is_err());
        assert!(p(&["--checkpoint-every", "some"]).is_err());
        assert!(p(&["--audit=1"]).is_err(), "bare switch takes no value");
    }

    #[test]
    fn args_parse_engine_threads() {
        let p = |args: &[&str]| parse_args(args.iter().map(|s| s.to_string()));
        let Parsed::Run(cfg) = p(&["--engine-threads", "4"]).unwrap() else {
            panic!("expected a runnable config");
        };
        assert_eq!(cfg.engine_threads, Some(4));
        let Parsed::Run(cfg) = p(&["--engine-threads=0"]).unwrap() else {
            panic!("expected a runnable config");
        };
        assert_eq!(cfg.engine_threads, Some(0), "0 = auto-size to the host");

        // Default: no override, the simulator stays serial.
        let Parsed::Run(cfg) = p(&[]).unwrap() else {
            panic!("expected a runnable config");
        };
        assert_eq!(cfg.engine_threads, None);

        // Invalid values exit 2 via config_from_args; the error lists
        // the accepted forms.
        for bad in ["many", "-1", "2.5", ""] {
            let err = p(&["--engine-threads", bad]).unwrap_err();
            assert!(err.contains("accepted forms"), "{err}");
            assert!(err.contains("0 (auto-size to the host)"), "{err}");
        }
        assert!(p(&["--engine-threads"]).is_err());
    }

    #[test]
    fn help_renders_the_flag_table() {
        let p = |args: &[&str]| parse_args(args.iter().map(|s| s.to_string()));
        assert_eq!(p(&["--help"]).unwrap(), Parsed::Help);
        let help = render_help();
        for f in FLAGS {
            assert!(help.contains(f.name), "--help mentions {}", f.name);
            assert!(
                help.contains(f.help),
                "--help carries the line for {}",
                f.name
            );
            if let Some(metavar) = f.metavar {
                let rendered = format!("{} {metavar}", f.name);
                assert!(help.contains(&rendered), "--help shows {rendered}");
            }
        }
        // Pinned shape: usage header plus one line per flag.
        assert!(help.starts_with("usage: [FLAGS]\n"));
        assert_eq!(help.lines().count(), 1 + FLAGS.len());
    }

    #[test]
    fn bench_error_display_names_the_path() {
        let e = BenchError::Io {
            path: PathBuf::from("results/x.csv"),
            source: std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        };
        assert!(e.to_string().contains("results/x.csv"));
        assert!(e.source().is_some());
        let s = BenchError::Sweep("2 run(s) failed".into());
        assert!(s.to_string().contains("2 run(s) failed"));
        assert!(s.source().is_none());
    }

    #[test]
    fn policy_list_covers_every_registered_name_and_param() {
        let listing = render_policy_list();
        let registry = PolicyRegistry::global();
        for e in registry.prefetchers() {
            for name in e.names() {
                assert!(listing.contains(name), "listing mentions {name}");
            }
            for p in e.params {
                assert!(listing.contains(p.key), "listing mentions param {}", p.key);
            }
        }
        for e in registry.evictors() {
            for name in e.names() {
                assert!(listing.contains(name), "listing mentions {name}");
            }
        }
    }
}
