//! Shared plumbing for the table/figure regenerator binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper: it runs the corresponding experiment from
//! [`uvm_sim::experiments`], prints the series to stdout, and writes a
//! CSV under `results/`. Run any of them as
//!
//! ```sh
//! cargo run --release -p uvm-bench --bin fig11            # paper scale
//! cargo run --release -p uvm-bench --bin fig11 -- --smoke # tiny smoke run
//! cargo run --release -p uvm-bench --bin all_experiments -- --jobs 4
//! ```
//!
//! Every binary shares one [`Executor`] per invocation (built by
//! [`Config::executor`]): identical runs required by several figures
//! are simulated once, `--jobs N` sets the simulation worker-pool
//! width, and completed results are spilled as JSON under
//! `results/cache/` so re-invocations resume instead of re-simulating.
//! Delete `results/cache/` to force fresh runs.

pub mod harness;

use std::error::Error;
use std::fmt;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use uvm_core::{EvictPolicy, FaultPlan, PolicyRegistry, PrefetchPolicy};
use uvm_sim::experiments::Scale;
use uvm_sim::{Executor, Table};

/// Relative directory the executor spills completed run results into.
pub const CACHE_DIR: &str = "results/cache";

/// A fallible step of a regenerator binary; rendered by [`finish`]
/// into the process exit code.
#[derive(Debug)]
pub enum BenchError {
    /// A filesystem write under `results/` failed.
    Io {
        /// The path that could not be written.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// One or more simulation runs failed after their retry budget;
    /// the executor's failure report has the details.
    Sweep(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Io { path, source } => {
                write!(f, "could not write {}: {source}", path.display())
            }
            BenchError::Sweep(msg) => write!(f, "sweep incomplete: {msg}"),
        }
    }
}

impl Error for BenchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BenchError::Io { source, .. } => Some(source),
            BenchError::Sweep(_) => None,
        }
    }
}

/// Renders a binary's outcome as its exit code, printing the error to
/// stderr on failure.
pub fn finish(outcome: Result<(), BenchError>) -> ExitCode {
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Common binary configuration parsed from the command line.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Config {
    /// Experiment scale (`--smoke` / `--paper`).
    pub scale: Scale,
    /// Worker-pool width (`--jobs N`); 0 means auto-detect.
    pub jobs: usize,
    /// Prefetcher override (`--prefetch NAME`), resolved through the
    /// policy registry. Binaries that sweep policies ignore it.
    pub prefetch: Option<PrefetchPolicy>,
    /// Evictor override (`--evict NAME`), resolved through the policy
    /// registry. Binaries that sweep policies ignore it.
    pub evict: Option<EvictPolicy>,
    /// Fault-injection profile (`--fault-profile NAME`); `None` means
    /// the binary's default (usually [`FaultPlan::none`]).
    pub fault_plan: Option<FaultPlan>,
    /// Fault-injection seed override (`--fault-seed N`).
    pub fault_seed: Option<u64>,
    /// Over-subscription ratio override (`--oversub RATIO`), the
    /// footprint : device-memory ratio (1.10 = 110 %). `None` means
    /// the binary's default level(s). Validated against
    /// [`OVERSUB_RANGE`] at parse time.
    pub oversub: Option<f64>,
}

/// The over-subscription ratios `--oversub` accepts: 1.0 (everything
/// fits) up to 4.0 (footprint four times device memory).
pub const OVERSUB_RANGE: std::ops::RangeInclusive<f64> = 1.0..=4.0;

impl Config {
    /// Builds the shared executor for this invocation, spilling to
    /// [`CACHE_DIR`].
    pub fn executor(&self) -> Executor {
        Executor::new(self.jobs).with_spill_dir(CACHE_DIR)
    }

    /// The fault plan this invocation asked for: `--fault-profile`
    /// if given, else `default`, with `--fault-seed` applied on top.
    pub fn resolved_fault_plan(&self, default: FaultPlan) -> FaultPlan {
        let plan = self.fault_plan.unwrap_or(default);
        match self.fault_seed {
            Some(seed) => plan.with_seed(seed),
            None => plan,
        }
    }
}

/// Parses the common binary arguments: `--smoke`/`--paper` select the
/// scale, `--jobs N` (or `--jobs=N`) the worker-pool width (`--jobs 0`
/// — the default — auto-detects the machine's parallelism, resolved
/// once when the [`Executor`] is constructed),
/// `--prefetch NAME` / `--evict NAME` pick policies by registry name,
/// `--oversub RATIO` overrides the over-subscription level (validated
/// against [`OVERSUB_RANGE`]),
/// `--fault-profile NAME` / `--fault-seed N` arm the deterministic
/// fault-injection layer, and `--list-policies` prints every
/// registered policy and exits. Unknown arguments, policy names,
/// out-of-range ratios, and fault profiles exit with status 2; the
/// errors list the valid names or the accepted range.
pub fn config_from_args() -> Config {
    match parse_args(std::env::args().skip(1)) {
        Ok(Parsed::Run(cfg)) => cfg,
        Ok(Parsed::ListPolicies) => {
            print!("{}", render_policy_list());
            std::process::exit(0);
        }
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: [--smoke|--paper] [--jobs N] \
                 [--prefetch NAME] [--evict NAME] [--oversub RATIO] \
                 [--fault-profile NAME] [--fault-seed N] [--list-policies]\n\
                 (--jobs 0 = auto-detect parallelism; the default.\n\
                 \x20--oversub accepts {:.1}..={:.1}, e.g. 1.25 = 125%)",
                OVERSUB_RANGE.start(),
                OVERSUB_RANGE.end()
            );
            std::process::exit(2);
        }
    }
}

/// Outcome of argument parsing: either a runnable configuration or the
/// `--list-policies` request.
#[derive(Clone, Debug, PartialEq)]
enum Parsed {
    Run(Config),
    ListPolicies,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Parsed, String> {
    let mut cfg = Config {
        scale: Scale::Paper,
        jobs: 0,
        prefetch: None,
        evict: None,
        fault_plan: None,
        fault_seed: None,
        oversub: None,
    };
    let parse_profile = |name: &str| -> Result<FaultPlan, String> {
        FaultPlan::from_name(name).map_err(|e| format!("{e}"))
    };
    let parse_seed = |n: &str| -> Result<u64, String> {
        n.parse()
            .map_err(|_| format!("bad --fault-seed value {n:?}"))
    };
    let parse_oversub = |n: &str| -> Result<f64, String> {
        let out_of_range = || {
            format!(
                "bad --oversub value {n:?}: accepted range is {:.1}..={:.1} \
                 (footprint : device-memory ratio, e.g. 1.25 = 125%)",
                OVERSUB_RANGE.start(),
                OVERSUB_RANGE.end()
            )
        };
        let ratio: f64 = n.parse().map_err(|_| out_of_range())?;
        if OVERSUB_RANGE.contains(&ratio) {
            Ok(ratio)
        } else {
            Err(out_of_range())
        }
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => cfg.scale = Scale::Smoke,
            "--paper" => cfg.scale = Scale::Paper,
            "--list-policies" => return Ok(Parsed::ListPolicies),
            "--jobs" => {
                let n = args.next().ok_or("--jobs needs a value")?;
                cfg.jobs = n.parse().map_err(|_| format!("bad --jobs value {n:?}"))?;
            }
            "--prefetch" => {
                let name = args.next().ok_or("--prefetch needs a policy name")?;
                cfg.prefetch = Some(name.parse().map_err(|e| format!("{e}"))?);
            }
            "--evict" => {
                let name = args.next().ok_or("--evict needs a policy name")?;
                cfg.evict = Some(name.parse().map_err(|e| format!("{e}"))?);
            }
            "--fault-profile" => {
                let name = args.next().ok_or("--fault-profile needs a profile name")?;
                cfg.fault_plan = Some(parse_profile(&name)?);
            }
            "--fault-seed" => {
                let n = args.next().ok_or("--fault-seed needs a value")?;
                cfg.fault_seed = Some(parse_seed(&n)?);
            }
            "--oversub" => {
                let n = args.next().ok_or("--oversub needs a ratio")?;
                cfg.oversub = Some(parse_oversub(&n)?);
            }
            other => {
                if let Some(n) = other.strip_prefix("--jobs=") {
                    cfg.jobs = n.parse().map_err(|_| format!("bad --jobs value {n:?}"))?;
                } else if let Some(name) = other.strip_prefix("--prefetch=") {
                    cfg.prefetch = Some(name.parse().map_err(|e| format!("{e}"))?);
                } else if let Some(name) = other.strip_prefix("--evict=") {
                    cfg.evict = Some(name.parse().map_err(|e| format!("{e}"))?);
                } else if let Some(name) = other.strip_prefix("--fault-profile=") {
                    cfg.fault_plan = Some(parse_profile(name)?);
                } else if let Some(n) = other.strip_prefix("--fault-seed=") {
                    cfg.fault_seed = Some(parse_seed(n)?);
                } else if let Some(n) = other.strip_prefix("--oversub=") {
                    cfg.oversub = Some(parse_oversub(n)?);
                } else {
                    return Err(format!("unknown argument {other:?}"));
                }
            }
        }
    }
    Ok(Parsed::Run(cfg))
}

/// The `--list-policies` listing: every registered prefetcher and
/// evictor with its aliases and summary, straight from the registry.
pub fn render_policy_list() -> String {
    let registry = PolicyRegistry::global();
    let mut out = String::from("prefetchers:\n");
    for e in registry.prefetchers() {
        let aliases = if e.aliases.is_empty() {
            String::new()
        } else {
            format!(" (aka {})", e.aliases.join(", "))
        };
        out.push_str(&format!("  {:<10}{aliases:<30}{}\n", e.name, e.summary));
    }
    out.push_str("evictors:\n");
    for e in registry.evictors() {
        let aliases = if e.aliases.is_empty() {
            String::new()
        } else {
            format!(" (aka {})", e.aliases.join(", "))
        };
        out.push_str(&format!("  {:<10}{aliases:<30}{}\n", e.name, e.summary));
    }
    out
}

/// Prints `table` to stdout and writes `results/<name>.csv`.
pub fn emit(name: &str, table: &Table) -> Result<(), BenchError> {
    println!("{table}");
    write_csv(name, table)
}

/// Writes `results/<name>.csv` without printing the rows (for large
/// scatter series like Fig. 12).
pub fn write_csv(name: &str, table: &Table) -> Result<(), BenchError> {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir).map_err(|source| BenchError::Io {
        path: dir.clone(),
        source,
    })?;
    let path = dir.join(format!("{name}.csv"));
    fs::write(&path, table.to_csv()).map_err(|source| BenchError::Io {
        path: path.clone(),
        source,
    })?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

/// The full `all_experiments` sequence: every table/figure regenerator
/// plus the ablations, sharing one deduplicating executor. Also the
/// body of the smoke integration test. Ends with the executor's
/// failure report (quarantined spill entries, failed runs) when there
/// is anything to report.
pub fn run_all(cfg: &Config) -> Result<(), BenchError> {
    use uvm_sim::experiments as exp;
    let exec = cfg.executor();
    let scale = cfg.scale;

    emit("table1", &exp::table1())?;
    print!("{}", exp::fig2_walkthrough());

    let sweep = exp::prefetcher_sweep(&exec, scale);
    emit("fig3", &sweep.time)?;
    emit("fig4", &sweep.bandwidth)?;
    emit("fig5", &sweep.faults)?;

    let os = exp::oversubscription_sweep(&exec, scale);
    emit("fig6", &os.time)?;
    emit("fig7", &os.transfers_4k)?;

    print!("{}", exp::fig8_walkthrough());

    let iso = exp::eviction_isolation(&exec, scale);
    emit("fig9", &iso.time)?;
    emit("fig10", &iso.evicted)?;

    emit("fig11", &exp::policy_combinations(&exec, scale))?;

    for (launch, table) in exp::nw_trace(&exec, scale, &[60, 70]) {
        write_csv(&format!("fig12_launch{launch}"), &table)?;
    }

    emit(
        "fig13",
        &exp::tbn_oversubscription_sensitivity(&exec, scale),
    )?;
    emit("fig14", &exp::lru_reservation(&exec, scale))?;

    let cmp = exp::tbne_vs_2mb(&exec, scale);
    emit("fig15", &cmp.time)?;
    emit("fig16", &cmp.thrash)?;

    // Sec. 7 analysis and the design-choice ablations.
    emit("pattern_report", &exp::pattern_analysis(&exec, scale))?;
    emit(
        "ablation_prefetch_granularity",
        &exp::prefetch_granularity_ablation(&exec, scale),
    )?;
    emit(
        "ablation_fault_lanes",
        &exp::fault_lanes_ablation(&exec, scale, &[1, 2, 4, 8, 16]),
    )?;
    emit(
        "ablation_prefetch_accuracy",
        &exp::prefetch_accuracy_ablation(&exec, scale),
    )?;
    emit("ablation_writeback", &exp::writeback_ablation(&exec, scale))?;
    let oversubs: Vec<f64> = match cfg.oversub {
        Some(frac) => vec![frac],
        None => exp::HUGE_PAGE_OVERSUB.to_vec(),
    };
    let hp = exp::huge_page_ablation(&exec, scale, uvm_sim::Warmup::default(), &oversubs);
    emit("ablation_huge_pages_faults_per_kilo", &hp.faults_per_kilo)?;
    emit("ablation_huge_pages_time", &hp.time)?;
    emit("ablation_huge_pages_activity", &hp.activity)?;
    emit(
        "ablation_fault_injection",
        &exp::fault_injection_ablation(
            &exec,
            scale,
            cfg.resolved_fault_plan(uvm_core::FaultPlan::chaos()),
        ),
    )?;

    eprintln!(
        "executor: {} simulations run, {} submissions served from cache ({} workers)",
        exec.runs_executed(),
        exec.cache_hits(),
        exec.jobs(),
    );
    if let Some(report) = exec.failure_report() {
        eprint!("{report}");
        let failed = exec.failures();
        if !failed.is_empty() {
            return Err(BenchError::Sweep(format!(
                "{} run(s) failed; see the failure report above",
                failed.len()
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_writes_csv() {
        let mut t = Table::new("x", &["a"]);
        t.row(&["1"]);
        let tmp = std::env::temp_dir().join("uvm-bench-test");
        let _ = std::fs::create_dir_all(&tmp);
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&tmp).unwrap();
        emit("emit_test", &t).unwrap();
        let written = std::fs::read_to_string("results/emit_test.csv").unwrap();
        std::env::set_current_dir(old).unwrap();
        assert_eq!(written, "a\n1\n");
    }

    #[test]
    fn args_parse_scale_and_jobs() {
        let p = |args: &[&str]| parse_args(args.iter().map(|s| s.to_string()));
        let base = Config {
            scale: Scale::Paper,
            jobs: 0,
            prefetch: None,
            evict: None,
            fault_plan: None,
            fault_seed: None,
            oversub: None,
        };
        assert_eq!(p(&[]).unwrap(), Parsed::Run(base));
        assert_eq!(
            p(&["--smoke", "--jobs", "4"]).unwrap(),
            Parsed::Run(Config {
                scale: Scale::Smoke,
                jobs: 4,
                ..base
            })
        );
        assert_eq!(
            p(&["--jobs=8", "--paper"]).unwrap(),
            Parsed::Run(Config {
                scale: Scale::Paper,
                jobs: 8,
                ..base
            })
        );
        assert!(p(&["--jobs"]).is_err());
        assert!(p(&["--jobs", "many"]).is_err());
        assert!(p(&["--frobnicate"]).is_err());
    }

    #[test]
    fn args_resolve_policies_through_the_registry() {
        let p = |args: &[&str]| parse_args(args.iter().map(|s| s.to_string()));
        // Canonical names and registry aliases both resolve.
        let Parsed::Run(cfg) = p(&["--prefetch", "S256p", "--evict=freq"]).unwrap() else {
            panic!("expected a runnable config");
        };
        assert_eq!(cfg.prefetch, Some(PrefetchPolicy::Stride256K));
        assert_eq!(cfg.evict, Some(EvictPolicy::AccessFrequency));
        let Parsed::Run(cfg) = p(&["--prefetch=tree", "--evict", "LRU-2MB"]).unwrap() else {
            panic!("expected a runnable config");
        };
        assert_eq!(cfg.prefetch, Some(PrefetchPolicy::TreeBasedNeighborhood));
        assert_eq!(cfg.evict, Some(EvictPolicy::LruLargePage));
        assert_eq!(p(&["--list-policies"]).unwrap(), Parsed::ListPolicies);
    }

    #[test]
    fn unknown_policy_names_error_with_the_registry_list() {
        let p = |args: &[&str]| parse_args(args.iter().map(|s| s.to_string()));
        let err = p(&["--prefetch", "bogus"]).unwrap_err();
        assert!(err.contains("bogus"));
        for name in PolicyRegistry::global().prefetcher_names() {
            assert!(err.contains(name), "error lists {name}");
        }
        let err = p(&["--evict=bogus"]).unwrap_err();
        for name in PolicyRegistry::global().evictor_names() {
            assert!(err.contains(name), "error lists {name}");
        }
    }

    #[test]
    fn args_parse_fault_profile_and_seed() {
        let p = |args: &[&str]| parse_args(args.iter().map(|s| s.to_string()));
        let Parsed::Run(cfg) = p(&["--fault-profile", "chaos", "--fault-seed", "42"]).unwrap()
        else {
            panic!("expected a runnable config");
        };
        assert_eq!(cfg.fault_plan, Some(FaultPlan::chaos()));
        assert_eq!(cfg.fault_seed, Some(42));
        assert_eq!(
            cfg.resolved_fault_plan(FaultPlan::none()),
            FaultPlan::chaos().with_seed(42)
        );

        let Parsed::Run(cfg) = p(&["--fault-profile=pcie-flaky", "--fault-seed=7"]).unwrap() else {
            panic!("expected a runnable config");
        };
        assert_eq!(cfg.fault_plan, Some(FaultPlan::pcie_flaky()));
        assert_eq!(cfg.fault_seed, Some(7));

        // No flags: the binary's default plan, untouched.
        let Parsed::Run(cfg) = p(&[]).unwrap() else {
            panic!("expected a runnable config");
        };
        assert_eq!(
            cfg.resolved_fault_plan(FaultPlan::none()),
            FaultPlan::none()
        );

        let err = p(&["--fault-profile", "bogus"]).unwrap_err();
        for name in FaultPlan::PROFILE_NAMES {
            assert!(err.contains(name), "error lists {name}");
        }
        assert!(p(&["--fault-seed", "many"]).is_err());
        assert!(p(&["--fault-profile"]).is_err());
        assert!(p(&["--fault-seed"]).is_err());
    }

    #[test]
    fn args_parse_and_validate_oversub() {
        let p = |args: &[&str]| parse_args(args.iter().map(|s| s.to_string()));
        let Parsed::Run(cfg) = p(&["--oversub", "1.25"]).unwrap() else {
            panic!("expected a runnable config");
        };
        assert_eq!(cfg.oversub, Some(1.25));
        let Parsed::Run(cfg) = p(&["--oversub=1.5"]).unwrap() else {
            panic!("expected a runnable config");
        };
        assert_eq!(cfg.oversub, Some(1.5));
        // Boundary values of the accepted range are accepted.
        assert!(p(&["--oversub", "1.0"]).is_ok());
        assert!(p(&["--oversub", "4.0"]).is_ok());

        // Out-of-range and unparseable ratios name the accepted range.
        for bad in ["0.5", "4.5", "-1.1", "110%", "lots"] {
            let err = p(&["--oversub", bad]).unwrap_err();
            assert!(err.contains(bad), "error echoes the value {bad:?}");
            assert!(err.contains("1.0..=4.0"), "error lists the range: {err}");
        }
        assert!(p(&["--oversub"]).is_err());
    }

    #[test]
    fn bench_error_display_names_the_path() {
        let e = BenchError::Io {
            path: PathBuf::from("results/x.csv"),
            source: std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        };
        assert!(e.to_string().contains("results/x.csv"));
        assert!(e.source().is_some());
        let s = BenchError::Sweep("2 run(s) failed".into());
        assert!(s.to_string().contains("2 run(s) failed"));
        assert!(s.source().is_none());
    }

    #[test]
    fn policy_list_covers_every_registered_name() {
        let listing = render_policy_list();
        let registry = PolicyRegistry::global();
        for e in registry.prefetchers() {
            for name in e.names() {
                assert!(listing.contains(name), "listing mentions {name}");
            }
        }
        for e in registry.evictors() {
            for name in e.names() {
                assert!(listing.contains(name), "listing mentions {name}");
            }
        }
    }
}
