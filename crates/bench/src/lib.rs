//! Shared plumbing for the table/figure regenerator binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper: it runs the corresponding experiment from
//! [`uvm_sim::experiments`], prints the series to stdout, and writes a
//! CSV under `results/`. Run any of them as
//!
//! ```sh
//! cargo run --release -p uvm-bench --bin fig11            # paper scale
//! cargo run --release -p uvm-bench --bin fig11 -- --smoke # tiny smoke run
//! ```

use std::fs;
use std::path::PathBuf;

use uvm_sim::experiments::Scale;
use uvm_sim::Table;

/// Parses the common binary arguments: `--smoke` selects the shrunken
/// suite, anything else is rejected with a usage message.
pub fn scale_from_args() -> Scale {
    let mut scale = Scale::Paper;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => scale = Scale::Smoke,
            "--paper" => scale = Scale::Paper,
            other => {
                eprintln!("unknown argument {other:?}; use --smoke or --paper");
                std::process::exit(2);
            }
        }
    }
    scale
}

/// Prints `table` to stdout and writes `results/<name>.csv`.
pub fn emit(name: &str, table: &Table) {
    println!("{table}");
    write_csv(name, table);
}

/// Writes `results/<name>.csv` without printing the rows (for large
/// scatter series like Fig. 12).
pub fn write_csv(name: &str, table: &Table) {
    let dir = PathBuf::from("results");
    if fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = fs::write(&path, table.to_csv()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_writes_csv() {
        let mut t = Table::new("x", &["a"]);
        t.row(&["1"]);
        let tmp = std::env::temp_dir().join("uvm-bench-test");
        let _ = std::fs::create_dir_all(&tmp);
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&tmp).unwrap();
        emit("emit_test", &t);
        let written = std::fs::read_to_string("results/emit_test.csv").unwrap();
        std::env::set_current_dir(old).unwrap();
        assert_eq!(written, "a\n1\n");
    }
}
