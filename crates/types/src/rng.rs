//! A small, fast, seedable PRNG used wherever the simulator needs
//! reproducible randomness (the Rp prefetcher, the Re evictor, the
//! bfs edge-chase generator, and the property-test case drivers).
//!
//! The workspace builds offline, so this replaces the external `rand`
//! crate with an xoshiro256++ generator seeded through SplitMix64 —
//! the same construction `rand`'s `SmallRng` family uses. Nothing in
//! the test suite pins specific random sequences, only same-seed
//! determinism, so the exact algorithm is free to differ from `rand`.
//!
//! # Examples
//!
//! ```
//! use uvm_types::rng::{Rng, SmallRng};
//!
//! let mut a = SmallRng::seed_from_u64(7);
//! let mut b = SmallRng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.gen_range(10u64..20);
//! assert!((10..20).contains(&x));
//! ```

/// Uniform sampling support for the integer types the simulator draws.
pub trait SampleUniform: Copy {
    /// Draws a value in `[lo, hi)` from `rng`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u64) - (lo as u64);
                lo + (rng.next_below(span) as Self)
            }
        }
    )*};
}

impl_sample_uniform!(u64, usize, u32);

/// The random-draw interface: everything derives from `next_u64`.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value below `bound` (`bound > 0`), via Lemire-style
    /// rejection so small ranges stay unbiased.
    fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection sampling over the widest multiple of `bound`.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// A uniform value in `range` (half-open, non-empty).
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 random bits → uniform f64 in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

/// xoshiro256++, seeded from a single `u64` through SplitMix64.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator whose whole sequence is a pure function of
    /// `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SmallRng { s }
    }

    /// The raw xoshiro256++ state, for checkpointing. Restoring the
    /// same words with [`SmallRng::from_state`] resumes the sequence
    /// exactly where it left off.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator mid-sequence from a [`SmallRng::state`]
    /// snapshot.
    pub fn from_state(s: [u64; 4]) -> Self {
        SmallRng { s }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let [mut s0, mut s1, mut s2, mut s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }
}

impl Rng for &mut SmallRng {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..17);
            assert!((10..17).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values drawn: {seen:?}");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits} of 10000 at p=0.3");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(5u64..5);
    }
}
