//! Allocation geometry: how a `cudaMallocManaged`-style allocation is
//! carved into full binary trees of 64 KB basic blocks (paper Sec. 3.3).
//!
//! Every allocation is first divided into 2 MB large pages, each backed
//! by a full binary tree whose 32 leaves are the 64 KB basic blocks. If
//! the allocation size is not a multiple of 2 MB, the remainder is
//! rounded **up** to the next `2^i * 64 KB` and one additional (smaller)
//! full tree is created. The paper's example: a 4 MB + 192 KB allocation
//! becomes two 2 MB trees plus one 256 KB tree.

use crate::size::{Bytes, BASIC_BLOCK_SIZE, LARGE_PAGE_SIZE};
use crate::BasicBlockId;

/// The extent of one full binary tree inside an allocation.
///
/// A tree covers `num_blocks` contiguous 64 KB basic blocks starting at
/// `first_block`; `num_blocks` is always a power of two in `1..=32`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TreeExtent {
    /// First 64 KB basic block covered by the tree.
    pub first_block: BasicBlockId,
    /// Number of leaves (64 KB blocks); a power of two, at most 32.
    pub num_blocks: u64,
}

impl TreeExtent {
    /// Total virtual-address span of the tree.
    pub fn span(&self) -> Bytes {
        BASIC_BLOCK_SIZE * self.num_blocks
    }

    /// Height of the tree (0 for a single-leaf tree, 5 for a 2 MB tree).
    pub fn height(&self) -> u32 {
        self.num_blocks.trailing_zeros()
    }

    /// `true` if `block` falls inside this extent.
    pub fn contains(&self, block: BasicBlockId) -> bool {
        let idx = block.index();
        let first = self.first_block.index();
        idx >= first && idx < first + self.num_blocks
    }
}

/// Rounds a byte size up to the next `2^i * 64 KB`, the size class a
/// remainder tree must have to stay a *full* binary tree.
///
/// Returns the number of 64 KB basic blocks (a power of two). A zero
/// size rounds to zero blocks.
///
/// # Examples
///
/// ```
/// use uvm_types::{round_up_pow2_blocks, Bytes};
///
/// assert_eq!(round_up_pow2_blocks(Bytes::kib(192)), 4); // -> 256 KB
/// assert_eq!(round_up_pow2_blocks(Bytes::kib(64)), 1);
/// assert_eq!(round_up_pow2_blocks(Bytes::kib(65)), 2);
/// ```
pub fn round_up_pow2_blocks(size: Bytes) -> u64 {
    if size == Bytes::ZERO {
        return 0;
    }
    let blocks = size.bytes().div_ceil(BASIC_BLOCK_SIZE.bytes());
    blocks.next_power_of_two()
}

/// Splits an allocation of `size` bytes starting at basic block
/// `first_block` into the full binary trees the GMMU maintains for it.
///
/// Whole 2 MB large pages each get a 32-leaf tree; a non-zero remainder
/// gets one tree rounded up per [`round_up_pow2_blocks`].
///
/// # Examples
///
/// ```
/// use uvm_types::{split_allocation, Bytes, BasicBlockId};
///
/// // The paper's example: 4 MB + 192 KB -> two 2 MB trees + one 256 KB tree.
/// let trees = split_allocation(BasicBlockId::new(0), Bytes::mib(4) + Bytes::kib(192));
/// assert_eq!(trees.len(), 3);
/// assert_eq!(trees[0].num_blocks, 32);
/// assert_eq!(trees[1].num_blocks, 32);
/// assert_eq!(trees[2].num_blocks, 4);
/// assert_eq!(trees[2].first_block, BasicBlockId::new(64));
/// ```
pub fn split_allocation(first_block: BasicBlockId, size: Bytes) -> Vec<TreeExtent> {
    let blocks_per_large = LARGE_PAGE_SIZE / BASIC_BLOCK_SIZE;
    let full_trees = size.bytes() / LARGE_PAGE_SIZE.bytes();
    let remainder = Bytes::new(size.bytes() % LARGE_PAGE_SIZE.bytes());

    let mut trees = Vec::new();
    let mut cursor = first_block;
    for _ in 0..full_trees {
        trees.push(TreeExtent {
            first_block: cursor,
            num_blocks: blocks_per_large,
        });
        cursor = cursor.add(blocks_per_large);
    }
    let rem_blocks = round_up_pow2_blocks(remainder);
    if rem_blocks > 0 {
        trees.push(TreeExtent {
            first_block: cursor,
            num_blocks: rem_blocks,
        });
    }
    trees
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_4mb_192kb() {
        let trees = split_allocation(BasicBlockId::new(0), Bytes::mib(4) + Bytes::kib(192));
        assert_eq!(trees.len(), 3);
        assert_eq!(trees[0].num_blocks, 32);
        assert_eq!(trees[0].first_block, BasicBlockId::new(0));
        assert_eq!(trees[1].num_blocks, 32);
        assert_eq!(trees[1].first_block, BasicBlockId::new(32));
        // 192 KB remainder rounds up to 256 KB = 4 blocks.
        assert_eq!(trees[2].num_blocks, 4);
        assert_eq!(trees[2].first_block, BasicBlockId::new(64));
        assert_eq!(trees[2].span(), Bytes::kib(256));
    }

    #[test]
    fn exact_multiple_has_no_remainder_tree() {
        let trees = split_allocation(BasicBlockId::new(10), Bytes::mib(6));
        assert_eq!(trees.len(), 3);
        assert!(trees.iter().all(|t| t.num_blocks == 32));
    }

    #[test]
    fn small_allocations() {
        // 512 KB: the worked examples of Fig. 2 use a single 8-leaf tree.
        let trees = split_allocation(BasicBlockId::new(0), Bytes::kib(512));
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].num_blocks, 8);
        assert_eq!(trees[0].height(), 3);

        let trees = split_allocation(BasicBlockId::new(0), Bytes::kib(1));
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].num_blocks, 1);
        assert_eq!(trees[0].height(), 0);
    }

    #[test]
    fn zero_allocation_yields_no_trees() {
        assert!(split_allocation(BasicBlockId::new(0), Bytes::ZERO).is_empty());
    }

    #[test]
    fn rounding() {
        assert_eq!(round_up_pow2_blocks(Bytes::ZERO), 0);
        assert_eq!(round_up_pow2_blocks(Bytes::new(1)), 1);
        assert_eq!(round_up_pow2_blocks(Bytes::kib(64)), 1);
        assert_eq!(round_up_pow2_blocks(Bytes::kib(128)), 2);
        assert_eq!(round_up_pow2_blocks(Bytes::kib(129)), 4);
        assert_eq!(round_up_pow2_blocks(Bytes::kib(1024)), 16);
        assert_eq!(round_up_pow2_blocks(Bytes::kib(1025)), 32);
    }

    #[test]
    fn extent_contains() {
        let t = TreeExtent {
            first_block: BasicBlockId::new(8),
            num_blocks: 4,
        };
        assert!(!t.contains(BasicBlockId::new(7)));
        assert!(t.contains(BasicBlockId::new(8)));
        assert!(t.contains(BasicBlockId::new(11)));
        assert!(!t.contains(BasicBlockId::new(12)));
    }

    #[test]
    fn trees_tile_the_allocation_contiguously() {
        let size = Bytes::mib(7) + Bytes::kib(300);
        let trees = split_allocation(BasicBlockId::new(100), size);
        let mut cursor = BasicBlockId::new(100);
        for t in &trees {
            assert_eq!(t.first_block, cursor);
            assert!(t.num_blocks.is_power_of_two());
            cursor = cursor.add(t.num_blocks);
        }
        // Coverage is at least the requested size.
        let covered: u64 = trees.iter().map(|t| t.span().bytes()).sum();
        assert!(covered >= size.bytes());
    }
}
