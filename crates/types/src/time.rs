//! Simulation time: GPU core cycles and wall-clock conversion.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// GPU core clock frequency used throughout the paper's simulator
/// configuration (Table 2): 28 Pascal SMs at 1481 MHz.
pub const CORE_CLOCK_HZ: u64 = 1_481_000_000;

/// A point in simulated time, measured in GPU core cycles.
///
/// # Examples
///
/// ```
/// use uvm_types::{Cycle, Duration};
///
/// let start = Cycle::ZERO;
/// let end = start + Duration::from_micros(45.0);
/// assert!(end.index() > 66_000); // 45us at 1481 MHz is ~66,645 cycles
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle stamp from a raw cycle count.
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// The raw cycle count.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Converts this cycle stamp to seconds of simulated time.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / CORE_CLOCK_HZ as f64
    }

    /// Converts this cycle stamp to milliseconds of simulated time.
    pub fn as_millis(self) -> f64 {
        self.as_secs() * 1e3
    }

    /// The duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is actually later.
    pub const fn since(self, earlier: Cycle) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two stamps.
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }
}

impl Add<Duration> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: Duration) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Cycle {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cyc{}", self.0)
    }
}

/// A span of simulated time, measured in GPU core cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Duration(u64);

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration of `raw` core cycles.
    pub const fn from_cycles(raw: u64) -> Self {
        Duration(raw)
    }

    /// Creates a duration from microseconds of wall-clock time,
    /// rounding to the nearest core cycle.
    pub fn from_micros(us: f64) -> Self {
        Duration((us * 1e-6 * CORE_CLOCK_HZ as f64).round() as u64)
    }

    /// Creates a duration from seconds of wall-clock time.
    pub fn from_secs(s: f64) -> Self {
        Duration((s * CORE_CLOCK_HZ as f64).round() as u64)
    }

    /// The raw cycle count.
    pub const fn cycles(self) -> u64 {
        self.0
    }

    /// This duration in seconds of simulated time.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / CORE_CLOCK_HZ as f64
    }

    /// This duration in microseconds of simulated time.
    pub fn as_micros(self) -> f64 {
        self.as_secs() * 1e6
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_round_trip() {
        let d = Duration::from_micros(45.0);
        assert!((d.as_micros() - 45.0).abs() < 0.001);
        // The paper's 45us fault latency is ~66,645 cycles at 1481 MHz.
        assert_eq!(d.cycles(), 66_645);
    }

    #[test]
    fn cycle_arithmetic() {
        let t = Cycle::new(100) + Duration::from_cycles(50);
        assert_eq!(t, Cycle::new(150));
        assert_eq!(t.since(Cycle::new(100)), Duration::from_cycles(50));
        assert_eq!(Cycle::new(10).since(Cycle::new(20)), Duration::ZERO);
        let mut u = Cycle::ZERO;
        u += Duration::from_cycles(7);
        assert_eq!(u.index(), 7);
        assert_eq!(Cycle::new(3).max(Cycle::new(9)), Cycle::new(9));
    }

    #[test]
    fn duration_arithmetic() {
        let d = Duration::from_cycles(30) + Duration::from_cycles(12);
        assert_eq!(d.cycles(), 42);
        assert_eq!((d - Duration::from_cycles(2)).cycles(), 40);
    }

    #[test]
    fn seconds_conversion() {
        let one_sec = Duration::from_secs(1.0);
        assert_eq!(one_sec.cycles(), CORE_CLOCK_HZ);
        assert!((Cycle::new(CORE_CLOCK_HZ).as_secs() - 1.0).abs() < 1e-12);
        assert!((Cycle::new(CORE_CLOCK_HZ).as_millis() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn display() {
        assert_eq!(Cycle::new(5).to_string(), "cyc5");
        assert_eq!(Duration::from_cycles(5).to_string(), "5cyc");
    }
}
