//! Virtual addresses and the three page-granularity identifiers.

use std::fmt;

use crate::size::{PAGES_PER_BASIC_BLOCK, PAGES_PER_LARGE_PAGE, PAGE_SIZE};
use crate::Bytes;

/// A byte address in the unified virtual address space.
///
/// # Examples
///
/// ```
/// use uvm_types::VirtAddr;
///
/// let a = VirtAddr::new(0x20_0000 + 5);
/// assert_eq!(a.large_page().index(), 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address from a raw byte offset.
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// The raw byte offset.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The 4 KB page containing this address.
    pub const fn page(self) -> PageId {
        PageId(self.0 / PAGE_SIZE.bytes())
    }

    /// The 64 KB basic block containing this address.
    pub const fn basic_block(self) -> BasicBlockId {
        self.page().basic_block()
    }

    /// The 2 MB large page containing this address.
    pub const fn large_page(self) -> LargePageId {
        self.page().large_page()
    }

    /// The address `delta` bytes above this one.
    pub const fn offset(self, delta: Bytes) -> VirtAddr {
        VirtAddr(self.0 + delta.bytes())
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        VirtAddr(raw)
    }
}

/// Index of a 4 KB page in the virtual address space.
///
/// This is the granularity of the GPU page table, of demand migration,
/// and of the LRU-4KB / Random eviction policies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(u64);

impl PageId {
    /// Creates a page id from a raw page index.
    pub const fn new(index: u64) -> Self {
        PageId(index)
    }

    /// The raw page index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The first byte of this page.
    pub const fn base_addr(self) -> VirtAddr {
        VirtAddr(self.0 * PAGE_SIZE.bytes())
    }

    /// The 64 KB basic block containing this page.
    pub const fn basic_block(self) -> BasicBlockId {
        BasicBlockId(self.0 / PAGES_PER_BASIC_BLOCK)
    }

    /// The 2 MB large page containing this page.
    pub const fn large_page(self) -> LargePageId {
        LargePageId(self.0 / PAGES_PER_LARGE_PAGE)
    }

    /// The page `n` places after this one.
    pub const fn add(self, n: u64) -> PageId {
        PageId(self.0 + n)
    }

    /// Position of this page within its basic block, in `0..16`.
    pub const fn offset_in_basic_block(self) -> u64 {
        self.0 % PAGES_PER_BASIC_BLOCK
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg{}", self.0)
    }
}

/// Index of a 64 KB basic block — the prefetch and pre-eviction unit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BasicBlockId(u64);

impl BasicBlockId {
    /// Creates a basic-block id from a raw index.
    pub const fn new(index: u64) -> Self {
        BasicBlockId(index)
    }

    /// The raw basic-block index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The first 4 KB page of this basic block.
    pub const fn first_page(self) -> PageId {
        PageId(self.0 * PAGES_PER_BASIC_BLOCK)
    }

    /// Iterates over the 16 pages of this basic block.
    pub fn pages(self) -> impl Iterator<Item = PageId> {
        let first = self.first_page().index();
        (first..first + PAGES_PER_BASIC_BLOCK).map(PageId)
    }

    /// The 2 MB large page containing this block.
    pub const fn large_page(self) -> LargePageId {
        LargePageId(self.0 / (PAGES_PER_LARGE_PAGE / PAGES_PER_BASIC_BLOCK))
    }

    /// Position of this block within its 2 MB large page, in `0..32`.
    pub const fn offset_in_large_page(self) -> u64 {
        self.0 % (PAGES_PER_LARGE_PAGE / PAGES_PER_BASIC_BLOCK)
    }

    /// The block `n` places after this one.
    pub const fn add(self, n: u64) -> BasicBlockId {
        BasicBlockId(self.0 + n)
    }
}

impl fmt::Display for BasicBlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Index of a 2 MB large page — the tree-prefetcher boundary and the
/// granularity of NVIDIA's static eviction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LargePageId(u64);

impl LargePageId {
    /// Creates a large-page id from a raw index.
    pub const fn new(index: u64) -> Self {
        LargePageId(index)
    }

    /// The raw large-page index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The first 4 KB page of this large page.
    pub const fn first_page(self) -> PageId {
        PageId(self.0 * PAGES_PER_LARGE_PAGE)
    }

    /// The first 64 KB basic block of this large page.
    pub const fn first_basic_block(self) -> BasicBlockId {
        BasicBlockId(self.0 * (PAGES_PER_LARGE_PAGE / PAGES_PER_BASIC_BLOCK))
    }
}

impl fmt::Display for LargePageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lp{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_to_page_mapping() {
        assert_eq!(VirtAddr::new(0).page(), PageId::new(0));
        assert_eq!(VirtAddr::new(4095).page(), PageId::new(0));
        assert_eq!(VirtAddr::new(4096).page(), PageId::new(1));
        assert_eq!(VirtAddr::new(0x20_0000).large_page(), LargePageId::new(1));
    }

    #[test]
    fn page_to_block_mapping() {
        assert_eq!(PageId::new(15).basic_block(), BasicBlockId::new(0));
        assert_eq!(PageId::new(16).basic_block(), BasicBlockId::new(1));
        assert_eq!(PageId::new(511).large_page(), LargePageId::new(0));
        assert_eq!(PageId::new(512).large_page(), LargePageId::new(1));
        assert_eq!(PageId::new(37).offset_in_basic_block(), 5);
    }

    #[test]
    fn block_geometry() {
        let bb = BasicBlockId::new(3);
        assert_eq!(bb.first_page(), PageId::new(48));
        let pages: Vec<_> = bb.pages().collect();
        assert_eq!(pages.len(), 16);
        assert_eq!(pages[0], PageId::new(48));
        assert_eq!(pages[15], PageId::new(63));
        assert_eq!(BasicBlockId::new(31).large_page(), LargePageId::new(0));
        assert_eq!(BasicBlockId::new(32).large_page(), LargePageId::new(1));
        assert_eq!(BasicBlockId::new(33).offset_in_large_page(), 1);
    }

    #[test]
    fn large_page_geometry() {
        let lp = LargePageId::new(2);
        assert_eq!(lp.first_page(), PageId::new(1024));
        assert_eq!(lp.first_basic_block(), BasicBlockId::new(64));
    }

    #[test]
    fn round_trips() {
        let page = PageId::new(1234);
        assert_eq!(page.base_addr().page(), page);
        let bb = BasicBlockId::new(77);
        assert_eq!(bb.first_page().basic_block(), bb);
        let lp = LargePageId::new(9);
        assert_eq!(lp.first_page().large_page(), lp);
    }

    #[test]
    fn display_formats() {
        assert_eq!(VirtAddr::new(255).to_string(), "0xff");
        assert_eq!(PageId::new(2).to_string(), "pg2");
        assert_eq!(BasicBlockId::new(2).to_string(), "bb2");
        assert_eq!(LargePageId::new(2).to_string(), "lp2");
    }

    #[test]
    fn offset_and_add() {
        let a = VirtAddr::new(100).offset(crate::Bytes::kib(4));
        assert_eq!(a.raw(), 100 + 4096);
        assert_eq!(PageId::new(5).add(3), PageId::new(8));
        assert_eq!(BasicBlockId::new(5).add(3), BasicBlockId::new(8));
    }
}
