//! Hashers for the two regimes the simulator needs:
//!
//! * [`StableHasher`] — a stable 128-bit content hasher for on-disk
//!   cache keys, and
//! * [`FxHasher`] — a fast in-process hasher for hot-path hash maps
//!   (per-SM TLB indexes), where SipHash's per-byte mixing would eat
//!   the lookup-structure win.
//!
//! `std::hash::Hasher` implementations (SipHash) are randomly keyed
//! per process, so they cannot name on-disk cache entries. The FNV-1a
//! variant widened to 128 bits is stable across processes, platforms,
//! and compiler versions — the property the run-result spill cache
//! under `results/cache/` depends on.
//!
//! # Examples
//!
//! ```
//! use uvm_types::hash::StableHasher;
//!
//! let mut h = StableHasher::new();
//! h.write_str("nw");
//! h.write_u64(42);
//! let a = h.finish();
//! let mut h2 = StableHasher::new();
//! h2.write_str("nw");
//! h2.write_u64(42);
//! assert_eq!(a, h2.finish());
//! ```

/// FNV-1a offset basis for 128-bit hashes.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV prime for 128-bit hashes.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// An incremental, process-stable 128-bit FNV-1a hasher.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u128,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a string, length-prefixed so field boundaries cannot
    /// alias (`"ab" + "c"` hashes differently from `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `bool`.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[v as u8]);
    }

    /// Absorbs an `f64` by exact bit pattern (NaN payloads included),
    /// so any numeric change produces a different key.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs an optional `f64`, tagged so `None` differs from any
    /// `Some` value.
    pub fn write_opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.write_bool(false),
            Some(x) => {
                self.write_bool(true);
                self.write_f64(x);
            }
        }
    }

    /// The 128-bit digest.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

/// A fast, non-cryptographic `std::hash::Hasher` for in-process hash
/// maps on the simulation hot path (the rustc `FxHash` multiply-mix).
///
/// Not stable across platforms or compiler versions — never use it to
/// name on-disk cache entries; that is [`StableHasher`]'s job.
///
/// # Examples
///
/// ```
/// use std::collections::HashMap;
/// use uvm_types::hash::FxBuildHasher;
///
/// let mut map: HashMap<u64, u32, FxBuildHasher> = HashMap::default();
/// map.insert(7, 1);
/// assert_eq!(map.get(&7), Some(&1));
/// ```
#[derive(Clone, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

/// [`BuildHasher`](std::hash::BuildHasher) for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = std::hash::BuildHasherDefault<FxHasher>;

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(f: impl FnOnce(&mut StableHasher)) -> u128 {
        let mut h = StableHasher::new();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn known_stable_value() {
        // FNV-1a of the empty input is the offset basis; of "a" it is
        // a fixed constant. Pinning both guards against accidental
        // algorithm drift, which would silently orphan spilled caches.
        assert_eq!(digest(|_| {}), FNV_OFFSET);
        let a = digest(|h| h.write_bytes(b"a"));
        assert_eq!(a, (FNV_OFFSET ^ b'a' as u128).wrapping_mul(FNV_PRIME));
    }

    #[test]
    fn field_boundaries_do_not_alias() {
        let ab_c = digest(|h| {
            h.write_str("ab");
            h.write_str("c");
        });
        let a_bc = digest(|h| {
            h.write_str("a");
            h.write_str("bc");
        });
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn every_input_kind_perturbs() {
        let base = digest(|h| {
            h.write_u64(1);
            h.write_bool(false);
            h.write_f64(1.5);
            h.write_opt_f64(None);
        });
        let variants = [
            digest(|h| {
                h.write_u64(2);
                h.write_bool(false);
                h.write_f64(1.5);
                h.write_opt_f64(None);
            }),
            digest(|h| {
                h.write_u64(1);
                h.write_bool(true);
                h.write_f64(1.5);
                h.write_opt_f64(None);
            }),
            digest(|h| {
                h.write_u64(1);
                h.write_bool(false);
                h.write_f64(1.5000001);
                h.write_opt_f64(None);
            }),
            digest(|h| {
                h.write_u64(1);
                h.write_bool(false);
                h.write_f64(1.5);
                h.write_opt_f64(Some(0.0));
            }),
        ];
        for v in variants {
            assert_ne!(base, v);
        }
    }

    #[test]
    fn fx_hasher_discriminates_and_repeats() {
        use std::hash::Hasher;
        let hash_u64 = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash_u64(42), hash_u64(42));
        assert_ne!(hash_u64(42), hash_u64(43));
        // Byte-wise writes agree with themselves across chunkings.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }
}
