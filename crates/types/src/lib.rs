//! Core newtypes and geometry constants shared by every crate in the
//! UVM-interplay simulator.
//!
//! The simulator reproduces the memory-system behaviour studied in
//! *"Interplay between Hardware Prefetcher and Page Eviction Policy in
//! CPU-GPU Unified Virtual Memory"* (ISCA 2019). Throughout the paper —
//! and therefore throughout this workspace — three granularities matter:
//!
//! * the 4 KB **page**, the unit of demand migration and of the GPU page
//!   table ([`PageId`]);
//! * the 64 KB **basic block**, the unit the hardware prefetcher and the
//!   proposed pre-eviction policies operate on ([`BasicBlockId`]);
//! * the 2 MB **large page**, the boundary within which the tree-based
//!   prefetcher balances and the granularity of NVIDIA's static eviction
//!   ([`LargePageId`]).
//!
//! # Examples
//!
//! ```
//! use uvm_types::{VirtAddr, PAGE_SIZE, BASIC_BLOCK_SIZE};
//!
//! let addr = VirtAddr::new(3 * PAGE_SIZE.bytes() + 17);
//! assert_eq!(addr.page().index(), 3);
//! assert_eq!(addr.basic_block().index(), 0);
//! assert_eq!(BASIC_BLOCK_SIZE.bytes() / PAGE_SIZE.bytes(), 16);
//! ```

mod addr;
pub mod codec;
mod geometry;
pub mod hash;
pub mod rng;
mod size;
mod time;

pub use addr::{BasicBlockId, LargePageId, PageId, VirtAddr};
pub use geometry::{round_up_pow2_blocks, split_allocation, TreeExtent};
pub use size::{
    Bytes, BASIC_BLOCK_ORDER, BASIC_BLOCK_SIZE, LARGE_PAGE_ORDER, LARGE_PAGE_SIZE,
    PAGES_PER_BASIC_BLOCK, PAGES_PER_LARGE_PAGE, PAGE_SIZE,
};
pub use time::{Cycle, Duration, CORE_CLOCK_HZ};
