//! A minimal binary codec for durable state — the byte-level
//! foundation of the `UVMC` checkpoint format.
//!
//! The workspace builds offline (no serde), so every checkpointable
//! structure hand-rolls `save`/`load` against these two types:
//!
//! * [`ByteWriter`] — append-only encoder (varint integers, zig-zag
//!   signed values, length-prefixed byte strings),
//! * [`ByteReader`] — the matching bounds-checked decoder, returning
//!   typed [`CodecError`]s instead of panicking on truncated or
//!   corrupt input.
//!
//! Encodings are canonical: a given value has exactly one byte
//! sequence, so checkpoint bytes can be checksummed and compared
//! across processes. Anything order-sensitive (LRU queues, free
//! lists) must be serialized in its observable order by the caller;
//! the codec itself adds no framing beyond what is written.
//!
//! # Examples
//!
//! ```
//! use uvm_types::codec::{ByteReader, ByteWriter};
//!
//! let mut w = ByteWriter::new();
//! w.put_u64(300);
//! w.put_str("nw");
//! let bytes = w.into_bytes();
//! let mut r = ByteReader::new(&bytes);
//! assert_eq!(r.get_u64().unwrap(), 300);
//! assert_eq!(r.get_str().unwrap(), "nw");
//! assert!(r.finish().is_ok());
//! ```

use std::fmt;

/// A typed decode failure. Carries enough context to name *what*
/// failed without holding onto the (possibly large) input buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended mid-value.
    UnexpectedEof {
        /// Byte offset at which more input was needed.
        offset: usize,
    },
    /// A varint ran past 10 bytes (encodes more than 64 bits).
    VarintOverflow {
        /// Byte offset of the offending varint's first byte.
        offset: usize,
    },
    /// A length prefix exceeds the remaining input — corrupt or
    /// truncated data; refusing early avoids huge bogus allocations.
    BadLength {
        /// The decoded (impossible) length.
        len: u64,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A byte that must be 0 or 1 was neither.
    BadBool {
        /// The offending byte.
        value: u8,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// A tag/discriminant byte outside the expected set.
    BadTag {
        /// What was being decoded (static context string).
        what: &'static str,
        /// The offending tag value.
        value: u64,
    },
    /// Decoding finished with bytes left over — the reader and writer
    /// disagree about the schema.
    TrailingBytes {
        /// How many bytes were left unread.
        remaining: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { offset } => {
                write!(f, "unexpected end of input at byte {offset}")
            }
            CodecError::VarintOverflow { offset } => {
                write!(f, "varint wider than 64 bits at byte {offset}")
            }
            CodecError::BadLength { len, remaining } => {
                write!(f, "length prefix {len} exceeds {remaining} remaining bytes")
            }
            CodecError::BadBool { value } => write!(f, "boolean byte {value:#x} (want 0 or 1)"),
            CodecError::BadUtf8 => write!(f, "string is not valid UTF-8"),
            CodecError::BadTag { what, value } => write!(f, "bad {what} tag {value}"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decode")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only binary encoder.
#[derive(Clone, Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// An empty writer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The encoded bytes so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends raw bytes with no framing.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u64` as an LEB128 varint (1–10 bytes).
    pub fn put_u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a `u32` (varint).
    pub fn put_u32(&mut self, v: u32) {
        self.put_u64(v as u64);
    }

    /// Appends a `usize` (varint).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `i64`, zig-zag mapped so small magnitudes stay short.
    pub fn put_i64(&mut self, v: i64) {
        self.put_u64(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends an `f64` by exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_raw(&v.to_bits().to_le_bytes());
    }

    /// Appends length-prefixed bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.put_raw(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Bounds-checked binary decoder over a borrowed buffer.
#[derive(Clone, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Succeeds only if every input byte was consumed — call after the
    /// last field so schema drift surfaces as [`CodecError::TrailingBytes`]
    /// instead of silent truncation.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }

    /// Reads `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof { offset: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        let b = self.get_raw(1)?;
        Ok(b[0])
    }

    /// Reads an LEB128 varint `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let start = self.pos;
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self
                .get_u8()
                .map_err(|_| CodecError::UnexpectedEof { offset: start })?;
            if shift == 63 && byte > 1 {
                return Err(CodecError::VarintOverflow { offset: start });
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(CodecError::VarintOverflow { offset: start });
            }
        }
    }

    /// Reads a varint `u32`, rejecting values above `u32::MAX`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let v = self.get_u64()?;
        u32::try_from(v).map_err(|_| CodecError::BadTag {
            what: "u32",
            value: v,
        })
    }

    /// Reads a varint `usize`, rejecting values above `usize::MAX`.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CodecError::BadTag {
            what: "usize",
            value: v,
        })
    }

    /// Reads a zig-zag `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        let v = self.get_u64()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Reads a `bool`, rejecting anything but 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            value => Err(CodecError::BadBool { value }),
        }
    }

    /// Reads an `f64` by exact bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        let raw = self.get_raw(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(raw);
        Ok(f64::from_bits(u64::from_le_bytes(b)))
    }

    /// Reads length-prefixed bytes, validating the length against the
    /// remaining input before allocating anything.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_u64()?;
        if len > self.remaining() as u64 {
            return Err(CodecError::BadLength {
                len,
                remaining: self.remaining(),
            });
        }
        self.get_raw(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, CodecError> {
        let bytes = self.get_bytes()?;
        std::str::from_utf8(bytes).map_err(|_| CodecError::BadUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u64(0);
        w.put_u64(127);
        w.put_u64(128);
        w.put_u64(u64::MAX);
        w.put_i64(0);
        w.put_i64(-1);
        w.put_i64(i64::MIN);
        w.put_i64(i64::MAX);
        w.put_bool(true);
        w.put_bool(false);
        w.put_f64(-0.5);
        w.put_bytes(b"abc");
        w.put_str("déjà");
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u64().unwrap(), 0);
        assert_eq!(r.get_u64().unwrap(), 127);
        assert_eq!(r.get_u64().unwrap(), 128);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), 0);
        assert_eq!(r.get_i64().unwrap(), -1);
        assert_eq!(r.get_i64().unwrap(), i64::MIN);
        assert_eq!(r.get_i64().unwrap(), i64::MAX);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_f64().unwrap(), -0.5);
        assert_eq!(r.get_bytes().unwrap(), b"abc");
        assert_eq!(r.get_str().unwrap(), "déjà");
        assert_eq!(r.get_u32().unwrap(), u32::MAX);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(matches!(r.get_u64(), Err(CodecError::UnexpectedEof { .. })));
        }
    }

    #[test]
    fn overlong_varint_rejected() {
        let mut r = ByteReader::new(&[0xff; 11]);
        assert!(matches!(
            r.get_u64(),
            Err(CodecError::VarintOverflow { .. })
        ));
        // 10 bytes encoding a 65-bit value also rejected.
        let mut r = ByteReader::new(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02]);
        assert!(matches!(
            r.get_u64(),
            Err(CodecError::VarintOverflow { .. })
        ));
    }

    #[test]
    fn bogus_length_prefix_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // absurd length
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_bytes(), Err(CodecError::BadLength { .. })));
    }

    #[test]
    fn bad_bool_and_utf8_rejected() {
        let mut r = ByteReader::new(&[7]);
        assert!(matches!(
            r.get_bool(),
            Err(CodecError::BadBool { value: 7 })
        ));
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_str(), Err(CodecError::BadUtf8));
    }

    #[test]
    fn finish_reports_trailing_bytes() {
        let mut w = ByteWriter::new();
        w.put_u64(1);
        w.put_u64(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.get_u64().unwrap();
        assert!(matches!(
            r.finish(),
            Err(CodecError::TrailingBytes { remaining: 1 })
        ));
    }
}
