//! Byte-size newtype and the fixed UVM geometry constants.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A size in bytes.
///
/// `Bytes` is used for transfer sizes, allocation sizes, and memory
/// budgets. It deliberately supports only the arithmetic the simulator
/// needs; mixed-unit mistakes (bytes vs pages vs cycles) are compile
/// errors.
///
/// # Examples
///
/// ```
/// use uvm_types::Bytes;
///
/// let chunk = Bytes::kib(64);
/// assert_eq!(chunk.bytes(), 65_536);
/// assert_eq!(chunk * 32, Bytes::mib(2));
/// assert_eq!(format!("{}", Bytes::mib(2)), "2MiB");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(u64);

impl Bytes {
    /// The zero size.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a size of `n` bytes.
    pub const fn new(n: u64) -> Self {
        Bytes(n)
    }

    /// Creates a size of `n` KiB.
    pub const fn kib(n: u64) -> Self {
        Bytes(n * 1024)
    }

    /// Creates a size of `n` MiB.
    pub const fn mib(n: u64) -> Self {
        Bytes(n * 1024 * 1024)
    }

    /// Creates a size of `n` GiB.
    pub const fn gib(n: u64) -> Self {
        Bytes(n * 1024 * 1024 * 1024)
    }

    /// Returns the raw byte count.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Returns this size expressed in whole KiB (truncating).
    pub const fn in_kib(self) -> u64 {
        self.0 / 1024
    }

    /// Returns this size as a floating point number of GB (10^9 bytes),
    /// the unit in which the paper reports PCI-e bandwidth.
    pub fn as_gb(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the number of whole 4 KB pages this size spans, rounding
    /// up. A zero size needs zero pages.
    pub const fn pages_ceil(self) -> u64 {
        self.0.div_ceil(PAGE_SIZE.bytes())
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// `true` if this size is an exact multiple of `unit`.
    ///
    /// # Panics
    ///
    /// Panics if `unit` is zero.
    pub const fn is_multiple_of(self, unit: Bytes) -> bool {
        self.0.is_multiple_of(unit.0)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Div<Bytes> for Bytes {
    type Output = u64;
    fn div(self, rhs: Bytes) -> u64 {
        self.0 / rhs.0
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MIB: u64 = 1024 * 1024;
        if self.0 >= MIB && self.0.is_multiple_of(MIB) {
            write!(f, "{}MiB", self.0 / MIB)
        } else if self.0 >= 1024 && self.0.is_multiple_of(1024) {
            write!(f, "{}KiB", self.0 / 1024)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// The demand-migration and page-table granularity: 4 KB, as in current
/// NVIDIA GPUs (paper Sec. 1).
pub const PAGE_SIZE: Bytes = Bytes::kib(4);

/// The prefetch/pre-eviction unit: a 64 KB *basic block* of 16
/// contiguous pages (paper Sec. 3.2).
pub const BASIC_BLOCK_SIZE: Bytes = Bytes::kib(64);

/// The large-page boundary within which the tree-based prefetcher
/// operates: 2 MB (paper Sec. 3.3).
pub const LARGE_PAGE_SIZE: Bytes = Bytes::mib(2);

/// Number of 4 KB pages per 64 KB basic block (16).
pub const PAGES_PER_BASIC_BLOCK: u64 = BASIC_BLOCK_SIZE.bytes() / PAGE_SIZE.bytes();

/// Number of 4 KB pages per 2 MB large page (512).
pub const PAGES_PER_LARGE_PAGE: u64 = LARGE_PAGE_SIZE.bytes() / PAGE_SIZE.bytes();

/// Buddy order of a 64 KB basic block in 4 KB frames (2^4 = 16).
pub const BASIC_BLOCK_ORDER: u32 = PAGES_PER_BASIC_BLOCK.trailing_zeros();

/// Buddy order of a 2 MB large page in 4 KB frames (2^9 = 512). The
/// frame allocator's top coalescing order and the huge-mapping unit.
pub const LARGE_PAGE_ORDER: u32 = PAGES_PER_LARGE_PAGE.trailing_zeros();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Bytes::kib(4).bytes(), 4096);
        assert_eq!(Bytes::mib(1), Bytes::kib(1024));
        assert_eq!(Bytes::gib(1), Bytes::mib(1024));
        assert_eq!(Bytes::new(12).bytes(), 12);
        assert_eq!(Bytes::ZERO.bytes(), 0);
    }

    #[test]
    fn geometry_constants() {
        assert_eq!(PAGES_PER_BASIC_BLOCK, 16);
        assert_eq!(PAGES_PER_LARGE_PAGE, 512);
        assert_eq!(LARGE_PAGE_SIZE / BASIC_BLOCK_SIZE, 32);
        assert_eq!(1u64 << BASIC_BLOCK_ORDER, PAGES_PER_BASIC_BLOCK);
        assert_eq!(1u64 << LARGE_PAGE_ORDER, PAGES_PER_LARGE_PAGE);
    }

    #[test]
    fn arithmetic() {
        let a = Bytes::kib(64);
        assert_eq!(a + a, Bytes::kib(128));
        assert_eq!(a - Bytes::kib(4), Bytes::kib(60));
        assert_eq!(a * 32, LARGE_PAGE_SIZE);
        assert_eq!(LARGE_PAGE_SIZE / a, 32);
        let mut b = a;
        b += Bytes::kib(1);
        b -= Bytes::kib(1);
        assert_eq!(b, a);
        assert_eq!(Bytes::kib(4).saturating_sub(Bytes::kib(8)), Bytes::ZERO);
    }

    #[test]
    fn pages_ceil_rounds_up() {
        assert_eq!(Bytes::ZERO.pages_ceil(), 0);
        assert_eq!(Bytes::new(1).pages_ceil(), 1);
        assert_eq!(Bytes::kib(4).pages_ceil(), 1);
        assert_eq!(Bytes::new(4097).pages_ceil(), 2);
        assert_eq!(Bytes::mib(2).pages_ceil(), 512);
    }

    #[test]
    fn display_uses_largest_exact_unit() {
        assert_eq!(Bytes::mib(2).to_string(), "2MiB");
        assert_eq!(Bytes::kib(60).to_string(), "60KiB");
        assert_eq!(Bytes::new(100).to_string(), "100B");
        assert_eq!(Bytes::new(1536).to_string(), "1536B"); // not whole KiB? 1536 % 1024 != 0
    }

    #[test]
    fn sum_of_sizes() {
        let total: Bytes = [Bytes::kib(4), Bytes::kib(60)].into_iter().sum();
        assert_eq!(total, BASIC_BLOCK_SIZE);
    }

    #[test]
    fn gb_conversion_matches_paper_units() {
        // 1024 KB transferred in ~91.3 us is ~11.2 GB/s; just sanity-check
        // the unit conversion used by the bandwidth model.
        let sz = Bytes::kib(1024);
        assert!((sz.as_gb() - 1.048576e-3).abs() < 1e-12);
    }

    #[test]
    fn multiples() {
        assert!(LARGE_PAGE_SIZE.is_multiple_of(BASIC_BLOCK_SIZE));
        assert!(BASIC_BLOCK_SIZE.is_multiple_of(PAGE_SIZE));
        assert!(!Bytes::new(4097).is_multiple_of(PAGE_SIZE));
    }
}
