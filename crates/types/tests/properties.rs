//! Randomized-property tests for the address/size/geometry
//! foundations, driven by seeded `SmallRng` case loops.

use uvm_types::rng::{Rng, SmallRng};
use uvm_types::{
    round_up_pow2_blocks, split_allocation, BasicBlockId, Bytes, Cycle, Duration, PageId, VirtAddr,
    BASIC_BLOCK_SIZE, LARGE_PAGE_SIZE, PAGES_PER_BASIC_BLOCK, PAGES_PER_LARGE_PAGE, PAGE_SIZE,
};

const CASES: usize = 256;

/// Address → page → block → large-page mappings are consistent with
/// integer division and with each other.
#[test]
fn address_hierarchy_is_consistent() {
    let mut rng = SmallRng::seed_from_u64(0x7e51);
    for _ in 0..CASES {
        let raw = rng.gen_range(0u64..(1 << 45));
        let addr = VirtAddr::new(raw);
        let page = addr.page();
        assert_eq!(page.index(), raw / PAGE_SIZE.bytes());
        assert_eq!(addr.basic_block(), page.basic_block());
        assert_eq!(addr.large_page(), page.large_page());
        assert_eq!(page.basic_block().large_page(), page.large_page());
        // The base address of the page contains the page.
        assert_eq!(page.base_addr().page(), page);
        assert!(page.base_addr().raw() <= raw);
    }
}

/// A block's pages all map back to the block, in order.
#[test]
fn block_pages_round_trip() {
    let mut rng = SmallRng::seed_from_u64(0x7e52);
    for _ in 0..CASES {
        let idx = rng.gen_range(0u64..(1 << 30));
        let block = BasicBlockId::new(idx);
        let pages: Vec<PageId> = block.pages().collect();
        assert_eq!(pages.len() as u64, PAGES_PER_BASIC_BLOCK);
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(p.basic_block(), block);
            assert_eq!(p.offset_in_basic_block(), i as u64);
        }
        assert_eq!(block.first_page().index() % PAGES_PER_BASIC_BLOCK, 0);
    }
}

/// Byte arithmetic is consistent: + then - is the identity, and
/// page-count rounding never undercounts.
#[test]
fn bytes_arithmetic() {
    let mut rng = SmallRng::seed_from_u64(0x7e53);
    for _ in 0..CASES {
        let a = rng.gen_range(0u64..(1 << 40));
        let b = rng.gen_range(0u64..(1 << 40));
        let x = Bytes::new(a);
        let y = Bytes::new(b);
        assert_eq!((x + y) - y, x);
        assert_eq!(x.saturating_sub(x + y), Bytes::ZERO);
        assert!((x + y) >= x);
        // pages_ceil never undercounts.
        assert!(x.pages_ceil() * PAGE_SIZE.bytes() >= a);
        assert!(x.pages_ceil() * PAGE_SIZE.bytes() < a + PAGE_SIZE.bytes());
    }
}

/// Rounding to power-of-two blocks is the smallest power-of-two block
/// count that covers the size.
#[test]
fn pow2_rounding_is_minimal() {
    let mut rng = SmallRng::seed_from_u64(0x7e54);
    for _ in 0..CASES {
        let size = rng.gen_range(1u64..(64 << 20));
        let blocks = round_up_pow2_blocks(Bytes::new(size));
        assert!(blocks.is_power_of_two());
        assert!(blocks * BASIC_BLOCK_SIZE.bytes() >= size);
        if blocks > 1 {
            assert!((blocks / 2) * BASIC_BLOCK_SIZE.bytes() < size);
        }
    }
}

/// Allocation splitting tiles the address range contiguously with full
/// 2 MB trees followed by at most one remainder tree.
#[test]
fn split_allocation_tiles() {
    let mut rng = SmallRng::seed_from_u64(0x7e55);
    for _ in 0..CASES {
        let first = rng.gen_range(0u64..(1 << 20));
        let size = rng.gen_range(1u64..(64 << 20));
        let first_block = BasicBlockId::new(first * 32); // 2 MB aligned
        let trees = split_allocation(first_block, Bytes::new(size));
        assert!(!trees.is_empty());
        let mut cursor = first_block;
        let blocks_per_lp = PAGES_PER_LARGE_PAGE / PAGES_PER_BASIC_BLOCK;
        for (i, t) in trees.iter().enumerate() {
            assert_eq!(t.first_block, cursor, "contiguous tiling");
            assert!(t.num_blocks.is_power_of_two());
            assert!(t.num_blocks <= blocks_per_lp);
            if i + 1 < trees.len() {
                assert_eq!(
                    t.num_blocks, blocks_per_lp,
                    "only the last tree may be small"
                );
            }
            cursor = cursor.add(t.num_blocks);
        }
        let covered: u64 = trees.iter().map(|t| t.span().bytes()).sum();
        assert!(covered >= size);
        // Coverage is not wasteful: dropping the last tree undershoots.
        let without_last: u64 = trees[..trees.len() - 1]
            .iter()
            .map(|t| t.span().bytes())
            .sum();
        assert!(without_last < size);
    }
}

/// Time conversions round-trip within a cycle.
#[test]
fn time_round_trips() {
    let mut rng = SmallRng::seed_from_u64(0x7e56);
    for _ in 0..CASES {
        let us = rng.gen_range(0u64..1_000_000) as f64 + rng.gen_range(0u64..1000) as f64 / 1000.0;
        let d = Duration::from_micros(us);
        assert!((d.as_micros() - us).abs() < 0.001);
        let t = Cycle::ZERO + d;
        assert_eq!(t.since(Cycle::ZERO), d);
    }
}

/// Cycle ordering is preserved by adding equal durations.
#[test]
fn cycle_ordering_is_translation_invariant() {
    let mut rng = SmallRng::seed_from_u64(0x7e57);
    for _ in 0..CASES {
        let a = rng.gen_range(0u64..(1 << 50));
        let b = rng.gen_range(0u64..(1 << 50));
        let d = rng.gen_range(0u64..(1 << 30));
        let (ca, cb) = (Cycle::new(a), Cycle::new(b));
        let dur = Duration::from_cycles(d);
        assert_eq!((ca + dur) <= (cb + dur), ca <= cb);
    }
}

#[test]
fn geometry_constants_are_consistent() {
    assert_eq!(PAGE_SIZE * PAGES_PER_BASIC_BLOCK, BASIC_BLOCK_SIZE);
    assert_eq!(PAGE_SIZE * PAGES_PER_LARGE_PAGE, LARGE_PAGE_SIZE);
    assert_eq!(
        BASIC_BLOCK_SIZE * (PAGES_PER_LARGE_PAGE / PAGES_PER_BASIC_BLOCK),
        LARGE_PAGE_SIZE
    );
}
