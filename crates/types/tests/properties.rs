//! Property-based tests for the address/size/geometry foundations.

use proptest::prelude::*;

use uvm_types::{
    round_up_pow2_blocks, split_allocation, BasicBlockId, Bytes, Cycle, Duration, PageId,
    VirtAddr, BASIC_BLOCK_SIZE, LARGE_PAGE_SIZE, PAGES_PER_BASIC_BLOCK, PAGES_PER_LARGE_PAGE,
    PAGE_SIZE,
};

proptest! {
    /// Address → page → block → large-page mappings are consistent
    /// with integer division and with each other.
    #[test]
    fn address_hierarchy_is_consistent(raw in 0u64..(1 << 45)) {
        let addr = VirtAddr::new(raw);
        let page = addr.page();
        prop_assert_eq!(page.index(), raw / PAGE_SIZE.bytes());
        prop_assert_eq!(addr.basic_block(), page.basic_block());
        prop_assert_eq!(addr.large_page(), page.large_page());
        prop_assert_eq!(page.basic_block().large_page(), page.large_page());
        // The base address of the page contains the page.
        prop_assert_eq!(page.base_addr().page(), page);
        prop_assert!(page.base_addr().raw() <= raw);
    }

    /// A block's pages all map back to the block, in order.
    #[test]
    fn block_pages_round_trip(idx in 0u64..(1 << 30)) {
        let block = BasicBlockId::new(idx);
        let pages: Vec<PageId> = block.pages().collect();
        prop_assert_eq!(pages.len() as u64, PAGES_PER_BASIC_BLOCK);
        for (i, p) in pages.iter().enumerate() {
            prop_assert_eq!(p.basic_block(), block);
            prop_assert_eq!(p.offset_in_basic_block(), i as u64);
        }
        prop_assert_eq!(block.first_page().index() % PAGES_PER_BASIC_BLOCK, 0);
    }

    /// Byte arithmetic is consistent: + then - is the identity, and
    /// multiplication scales page counts.
    #[test]
    fn bytes_arithmetic(a in 0u64..(1 << 40), b in 0u64..(1 << 40)) {
        let x = Bytes::new(a);
        let y = Bytes::new(b);
        prop_assert_eq!((x + y) - y, x);
        prop_assert_eq!(x.saturating_sub(x + y), Bytes::ZERO);
        prop_assert!((x + y) >= x);
        // pages_ceil never undercounts.
        prop_assert!(x.pages_ceil() * PAGE_SIZE.bytes() >= a);
        prop_assert!(x.pages_ceil() * PAGE_SIZE.bytes() < a + PAGE_SIZE.bytes());
    }

    /// Rounding to power-of-two blocks is the smallest power-of-two
    /// block count that covers the size.
    #[test]
    fn pow2_rounding_is_minimal(size in 1u64..(64 << 20)) {
        let blocks = round_up_pow2_blocks(Bytes::new(size));
        prop_assert!(blocks.is_power_of_two());
        prop_assert!(blocks * BASIC_BLOCK_SIZE.bytes() >= size);
        if blocks > 1 {
            prop_assert!((blocks / 2) * BASIC_BLOCK_SIZE.bytes() < size);
        }
    }

    /// Allocation splitting tiles the address range contiguously with
    /// full 2 MB trees followed by at most one remainder tree.
    #[test]
    fn split_allocation_tiles(first in 0u64..(1 << 20), size in 1u64..(64 << 20)) {
        let first_block = BasicBlockId::new(first * 32); // 2 MB aligned
        let trees = split_allocation(first_block, Bytes::new(size));
        prop_assert!(!trees.is_empty());
        let mut cursor = first_block;
        let blocks_per_lp = PAGES_PER_LARGE_PAGE / PAGES_PER_BASIC_BLOCK;
        for (i, t) in trees.iter().enumerate() {
            prop_assert_eq!(t.first_block, cursor, "contiguous tiling");
            prop_assert!(t.num_blocks.is_power_of_two());
            prop_assert!(t.num_blocks <= blocks_per_lp);
            if i + 1 < trees.len() {
                prop_assert_eq!(t.num_blocks, blocks_per_lp, "only the last tree may be small");
            }
            cursor = cursor.add(t.num_blocks);
        }
        let covered: u64 = trees.iter().map(|t| t.span().bytes()).sum();
        prop_assert!(covered >= size);
        // Coverage is not wasteful: dropping the last tree undershoots.
        let without_last: u64 = trees[..trees.len() - 1]
            .iter()
            .map(|t| t.span().bytes())
            .sum();
        prop_assert!(without_last < size);
    }

    /// Time conversions round-trip within a cycle.
    #[test]
    fn time_round_trips(us in 0.0f64..1e6) {
        let d = Duration::from_micros(us);
        prop_assert!((d.as_micros() - us).abs() < 0.001);
        let t = Cycle::ZERO + d;
        prop_assert_eq!(t.since(Cycle::ZERO), d);
    }

    /// Cycle ordering is preserved by adding equal durations.
    #[test]
    fn cycle_ordering_is_translation_invariant(
        a in 0u64..(1 << 50),
        b in 0u64..(1 << 50),
        d in 0u64..(1 << 30),
    ) {
        let (ca, cb) = (Cycle::new(a), Cycle::new(b));
        let dur = Duration::from_cycles(d);
        prop_assert_eq!((ca + dur) <= (cb + dur), ca <= cb);
    }
}

#[test]
fn geometry_constants_are_consistent() {
    assert_eq!(PAGE_SIZE * PAGES_PER_BASIC_BLOCK, BASIC_BLOCK_SIZE);
    assert_eq!(PAGE_SIZE * PAGES_PER_LARGE_PAGE, LARGE_PAGE_SIZE);
    assert_eq!(
        BASIC_BLOCK_SIZE * (PAGES_PER_LARGE_PAGE / PAGES_PER_BASIC_BLOCK),
        LARGE_PAGE_SIZE
    );
}
