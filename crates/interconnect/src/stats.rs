//! Per-channel traffic statistics — the raw material of Figs. 4 and 7.

use std::collections::BTreeMap;

use uvm_types::{Bytes, Duration, PAGE_SIZE};

/// Histogram of transfer counts keyed by exact transfer size.
///
/// Fig. 7 of the paper counts 4 KB transfers specifically; the harness
/// also uses the full histogram to explain bandwidth differences.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransferSizeHistogram {
    counts: BTreeMap<Bytes, u64>,
}

impl TransferSizeHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one transfer of `size`.
    pub fn record(&mut self, size: Bytes) {
        *self.counts.entry(size).or_insert(0) += 1;
    }

    /// Number of transfers of exactly `size`.
    pub fn count(&self, size: Bytes) -> u64 {
        self.counts.get(&size).copied().unwrap_or(0)
    }

    /// Number of transfers that were a single 4 KB page.
    pub fn count_4kib(&self) -> u64 {
        self.count(PAGE_SIZE)
    }

    /// Total number of transfers of any size.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Iterates over `(size, count)` pairs in increasing size order.
    pub fn iter(&self) -> impl Iterator<Item = (Bytes, u64)> + '_ {
        self.counts.iter().map(|(&s, &c)| (s, c))
    }

    /// Serializes the histogram for a checkpoint (sizes ascending, so
    /// the encoding is canonical).
    pub fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        w.put_usize(self.counts.len());
        for (&size, &count) in &self.counts {
            w.put_u64(size.bytes());
            w.put_u64(count);
        }
    }

    /// Rebuilds a histogram from a [`save_state`](Self::save_state)
    /// image.
    pub fn load_state(
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<Self, uvm_types::codec::CodecError> {
        let n = r.get_usize()?;
        let mut counts = BTreeMap::new();
        for _ in 0..n {
            let size = Bytes::new(r.get_u64()?);
            let count = r.get_u64()?;
            counts.insert(size, count);
        }
        Ok(TransferSizeHistogram { counts })
    }
}

/// Aggregate statistics for one direction of the PCI-e link.
#[derive(Clone, Debug, Default)]
pub struct ChannelStats {
    /// Total payload bytes moved.
    pub bytes: Bytes,
    /// Cycles during which the channel was actively transferring.
    pub busy: Duration,
    /// Histogram of transfer sizes.
    pub histogram: TransferSizeHistogram,
    /// Injected-fault replays paid across all transfers (zero unless
    /// the channel was armed with transfer faults).
    pub retries: u64,
    /// Transfers whose replay budget ran out.
    pub giveups: u64,
}

impl ChannelStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed transfer.
    pub fn record(&mut self, size: Bytes, time: Duration) {
        self.bytes += size;
        self.busy += time;
        self.histogram.record(size);
    }

    /// Average achieved bandwidth in GB/s over the channel's *busy*
    /// time — the quantity Fig. 4 plots. Returns 0 for an idle channel.
    pub fn average_bandwidth_gbps(&self) -> f64 {
        if self.busy == Duration::ZERO {
            0.0
        } else {
            self.bytes.as_gb() / self.busy.as_secs()
        }
    }

    /// Total number of transfers.
    pub fn transfers(&self) -> u64 {
        self.histogram.total()
    }

    /// Serializes the statistics for a checkpoint.
    pub fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        w.put_u64(self.bytes.bytes());
        w.put_u64(self.busy.cycles());
        self.histogram.save_state(w);
        w.put_u64(self.retries);
        w.put_u64(self.giveups);
    }

    /// Rebuilds statistics from a [`save_state`](Self::save_state)
    /// image.
    pub fn load_state(
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<Self, uvm_types::codec::CodecError> {
        Ok(ChannelStats {
            bytes: Bytes::new(r.get_u64()?),
            busy: Duration::from_cycles(r.get_u64()?),
            histogram: TransferSizeHistogram::load_state(r)?,
            retries: r.get_u64()?,
            giveups: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_by_size() {
        let mut h = TransferSizeHistogram::new();
        h.record(PAGE_SIZE);
        h.record(PAGE_SIZE);
        h.record(Bytes::kib(64));
        assert_eq!(h.count_4kib(), 2);
        assert_eq!(h.count(Bytes::kib(64)), 1);
        assert_eq!(h.count(Bytes::kib(128)), 0);
        assert_eq!(h.total(), 3);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(PAGE_SIZE, 2), (Bytes::kib(64), 1)]);
    }

    #[test]
    fn average_bandwidth() {
        let mut s = ChannelStats::new();
        assert_eq!(s.average_bandwidth_gbps(), 0.0);
        // 1e9 bytes in one second of busy time = 1 GB/s.
        s.record(Bytes::new(1_000_000_000), Duration::from_secs(1.0));
        assert!((s.average_bandwidth_gbps() - 1.0).abs() < 1e-9);
        assert_eq!(s.transfers(), 1);
    }

    #[test]
    fn record_accumulates() {
        let mut s = ChannelStats::new();
        s.record(Bytes::kib(4), Duration::from_cycles(10));
        s.record(Bytes::kib(60), Duration::from_cycles(20));
        assert_eq!(s.bytes, Bytes::kib(64));
        assert_eq!(s.busy, Duration::from_cycles(30));
        assert_eq!(s.histogram.count_4kib(), 1);
    }
}
