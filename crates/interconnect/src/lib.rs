//! PCI-e interconnect model for the UVM simulator.
//!
//! The paper calibrates its simulator against real PCI-e 3.0 16x
//! measurements on a GTX 1080ti (Table 1): every transaction pays a
//! constant activation/address-setup overhead, so larger transfers see
//! higher effective bandwidth — 3.22 GB/s at 4 KB rising to 11.22 GB/s
//! at 1 MB. That curve is *the* mechanism behind every result in the
//! paper: prefetchers and pre-eviction policies win exactly insofar as
//! they turn many 4 KB transactions into few large ones.
//!
//! [`PcieModel`] reproduces Table 1 exactly and interpolates between
//! the calibration points; [`PcieChannel`] serializes transfers on one
//! direction of the link and keeps the statistics the figures report.
//!
//! # Examples
//!
//! ```
//! use uvm_interconnect::PcieModel;
//! use uvm_types::Bytes;
//!
//! let pcie = PcieModel::pascal_x16();
//! assert!((pcie.bandwidth_gbps(Bytes::kib(4)) - 3.2219).abs() < 1e-9);
//! assert!((pcie.bandwidth_gbps(Bytes::kib(1024)) - 11.223).abs() < 1e-9);
//! ```

mod channel;
mod fault;
mod model;
mod stats;

pub use channel::{PcieChannel, ScheduledTransfer};
pub use fault::TransferFaultConfig;
pub use model::PcieModel;
pub use stats::{ChannelStats, TransferSizeHistogram};
