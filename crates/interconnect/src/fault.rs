//! Deterministic transfer-fault injection for one PCI-e channel.
//!
//! Real PCI-e links drop or corrupt TLPs and recover through
//! replay: the transaction layer retransmits the payload after a
//! backoff. [`TransferFaultConfig`] models that recovery path for a
//! [`PcieChannel`](crate::PcieChannel): each scheduled transfer draws
//! from a channel-local seeded RNG and, on a simulated drop, pays a
//! bounded number of replay-and-backoff retries before the channel
//! gives up and lets the payload through degraded.
//!
//! Determinism contract: a channel with no fault config (or a config
//! whose `drop_prob` is zero) draws nothing from any RNG, so the
//! no-fault schedule is byte-identical to a build without this module.

use uvm_types::Duration;

/// Retry backoff exponent cap: `backoff << 10` (~1000x) bounds the
/// penalty even when every retry of a transfer fails.
pub(crate) const MAX_BACKOFF_EXP: u32 = 10;

/// Fault-injection parameters for one direction of the PCI-e link.
///
/// Built by `FaultPlan::channel_faults` in `uvm-core`; the seed is
/// already mixed per-channel there so the read and write channels see
/// independent deterministic streams.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransferFaultConfig {
    /// Seed of the channel-local RNG.
    pub seed: u64,
    /// Probability that a scheduled transfer is dropped and must be
    /// replayed (drawn once per attempt, including replays).
    pub drop_prob: f64,
    /// Replay budget per transfer; once exhausted the channel gives
    /// up and the payload proceeds without further retries.
    pub max_retries: u32,
    /// Base backoff before the first replay; doubles per retry
    /// (capped at `2^10` times the base).
    pub backoff: Duration,
}

impl TransferFaultConfig {
    /// Backoff before retry number `retry` (1-based).
    pub(crate) fn backoff_for(&self, retry: u32) -> Duration {
        let exp = retry.saturating_sub(1).min(MAX_BACKOFF_EXP);
        Duration::from_cycles(self.backoff.cycles() << exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = TransferFaultConfig {
            seed: 1,
            drop_prob: 0.5,
            max_retries: 32,
            backoff: Duration::from_cycles(100),
        };
        assert_eq!(cfg.backoff_for(1), Duration::from_cycles(100));
        assert_eq!(cfg.backoff_for(2), Duration::from_cycles(200));
        assert_eq!(cfg.backoff_for(3), Duration::from_cycles(400));
        // Exponent saturates at 2^10.
        assert_eq!(cfg.backoff_for(11), Duration::from_cycles(100 << 10));
        assert_eq!(cfg.backoff_for(31), Duration::from_cycles(100 << 10));
    }
}
