//! The PCI-e cost model: latency and bandwidth as a function of
//! transfer size.

use uvm_types::{Bytes, Duration};

/// Calibration points measured by the paper on a GTX 1080ti with
/// PCI-e 3.0 16x (Table 1): `(transfer size, bandwidth in GB/s)`.
const TABLE1: [(Bytes, f64); 5] = [
    (Bytes::kib(4), 3.2219),
    (Bytes::kib(16), 6.4437),
    (Bytes::kib(64), 8.4771),
    (Bytes::kib(256), 10.508),
    (Bytes::kib(1024), 11.223),
];

/// Bandwidth-vs-size cost model for one direction of a PCI-e link.
///
/// The model stores calibration points and interpolates bandwidth
/// linearly in `log2(size)` between them; outside the calibrated range
/// the bandwidth is clamped to the first/last point. This reproduces
/// the paper's Table 1 exactly at the calibration sizes while keeping
/// both bandwidth and latency monotonically increasing in size — the
/// property the paper's analysis relies on ("scheduling larger
/// transfers amortizes activation overhead").
///
/// # Examples
///
/// ```
/// use uvm_interconnect::PcieModel;
/// use uvm_types::Bytes;
///
/// let pcie = PcieModel::pascal_x16();
/// let t_small = pcie.transfer_time(Bytes::kib(4));
/// let t_large = pcie.transfer_time(Bytes::kib(64));
/// // One 64 KB transfer beats sixteen 4 KB transfers by a wide margin.
/// assert!(t_large.cycles() < 16 * t_small.cycles() / 2);
/// ```
#[derive(Clone, Debug)]
pub struct PcieModel {
    /// `(log2(size_bytes), bandwidth GB/s)` calibration points, sorted.
    points: Vec<(f64, f64)>,
}

impl PcieModel {
    /// The model calibrated to the paper's GTX 1080ti / PCI-e 3.0 16x
    /// measurements (Table 1).
    pub fn pascal_x16() -> Self {
        Self::from_calibration(&TABLE1)
    }

    /// Builds a model from `(size, GB/s)` calibration points.
    ///
    /// # Panics
    ///
    /// Panics if fewer than one point is given, if sizes are not
    /// strictly increasing, or if any bandwidth is not positive.
    pub fn from_calibration(points: &[(Bytes, f64)]) -> Self {
        assert!(!points.is_empty(), "need at least one calibration point");
        let mut prev = 0u64;
        for &(size, gbps) in points {
            assert!(size.bytes() > prev, "sizes must be strictly increasing");
            assert!(gbps > 0.0, "bandwidth must be positive");
            prev = size.bytes();
        }
        PcieModel {
            points: points
                .iter()
                .map(|&(size, gbps)| ((size.bytes() as f64).log2(), gbps))
                .collect(),
        }
    }

    /// Effective bandwidth in GB/s for a transfer of `size`.
    ///
    /// Interpolated in `log2(size)` between calibration points and
    /// clamped outside them. Zero-size transfers report the smallest
    /// calibrated bandwidth.
    pub fn bandwidth_gbps(&self, size: Bytes) -> f64 {
        let first = self.points[0];
        let last = *self.points.last().expect("non-empty");
        if size.bytes() == 0 {
            return first.1;
        }
        let x = (size.bytes() as f64).log2();
        if x <= first.0 {
            return first.1;
        }
        if x >= last.0 {
            return last.1;
        }
        let hi = self
            .points
            .iter()
            .position(|&(px, _)| px >= x)
            .expect("x below last point");
        let (x0, y0) = self.points[hi - 1];
        let (x1, y1) = self.points[hi];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Wall-clock time to move `size` bytes over the link, including
    /// the per-transaction activation overhead (which is folded into
    /// the effective-bandwidth curve).
    ///
    /// A zero-size transfer takes zero time.
    pub fn transfer_time(&self, size: Bytes) -> Duration {
        if size == Bytes::ZERO {
            return Duration::ZERO;
        }
        let secs = size.bytes() as f64 / (self.bandwidth_gbps(size) * 1e9);
        Duration::from_secs(secs)
    }
}

impl Default for PcieModel {
    fn default() -> Self {
        Self::pascal_x16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The model must reproduce Table 1 exactly at calibration sizes.
    #[test]
    fn table1_reproduced_exactly() {
        let m = PcieModel::pascal_x16();
        for &(size, gbps) in &TABLE1 {
            assert!(
                (m.bandwidth_gbps(size) - gbps).abs() < 1e-12,
                "bandwidth mismatch at {size}"
            );
        }
    }

    #[test]
    fn clamped_outside_calibrated_range() {
        let m = PcieModel::pascal_x16();
        assert_eq!(m.bandwidth_gbps(Bytes::new(1)), 3.2219);
        assert_eq!(m.bandwidth_gbps(Bytes::kib(1)), 3.2219);
        assert_eq!(m.bandwidth_gbps(Bytes::mib(2)), 11.223);
        assert_eq!(m.bandwidth_gbps(Bytes::ZERO), 3.2219);
    }

    #[test]
    fn interpolation_is_between_neighbors() {
        let m = PcieModel::pascal_x16();
        let bw = m.bandwidth_gbps(Bytes::kib(32));
        assert!(bw > 6.4437 && bw < 8.4771, "got {bw}");
        // log2(32K) is exactly midway between log2(16K) and log2(64K).
        assert!((bw - (6.4437 + 8.4771) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_times_match_paper_magnitudes() {
        let m = PcieModel::pascal_x16();
        // 4 KB at 3.2219 GB/s is ~1.27 us.
        let t4k = m.transfer_time(Bytes::kib(4));
        assert!(
            (t4k.as_micros() - 1.2713).abs() < 0.01,
            "{}",
            t4k.as_micros()
        );
        // 1 MB at 11.223 GB/s is ~93.4 us.
        let t1m = m.transfer_time(Bytes::kib(1024));
        assert!((t1m.as_micros() - 93.43).abs() < 0.2, "{}", t1m.as_micros());
        assert_eq!(m.transfer_time(Bytes::ZERO), Duration::ZERO);
    }

    #[test]
    fn batching_beats_piecemeal() {
        // The core economic fact of the paper: one 64 KB transfer is far
        // cheaper than sixteen 4 KB transfers, and one 1 MB transfer is
        // far cheaper than 256 4 KB ones.
        let m = PcieModel::pascal_x16();
        let t4k = m.transfer_time(Bytes::kib(4)).cycles();
        assert!(m.transfer_time(Bytes::kib(64)).cycles() < 16 * t4k);
        assert!(m.transfer_time(Bytes::kib(1024)).cycles() < 256 * t4k / 2);
    }

    #[test]
    fn latency_monotone_in_size() {
        let m = PcieModel::pascal_x16();
        let mut prev = Duration::ZERO;
        for kb in [1u64, 2, 4, 8, 12, 16, 48, 64, 100, 256, 512, 1024, 2048] {
            let t = m.transfer_time(Bytes::kib(kb));
            assert!(t >= prev, "latency must not decrease with size ({kb} KB)");
            prev = t;
        }
    }

    #[test]
    fn bandwidth_monotone_in_size() {
        let m = PcieModel::pascal_x16();
        let mut prev = 0.0;
        for kb in [1u64, 4, 7, 16, 33, 64, 200, 256, 700, 1024, 4096] {
            let bw = m.bandwidth_gbps(Bytes::kib(kb));
            assert!(
                bw >= prev,
                "bandwidth must not decrease with size ({kb} KB)"
            );
            prev = bw;
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_calibration() {
        let _ = PcieModel::from_calibration(&[(Bytes::kib(16), 2.0), (Bytes::kib(4), 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty_calibration() {
        let _ = PcieModel::from_calibration(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_bandwidth() {
        let _ = PcieModel::from_calibration(&[(Bytes::kib(4), 0.0)]);
    }
}
