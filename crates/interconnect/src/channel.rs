//! A serialized transfer channel: one direction of the PCI-e link.

use uvm_types::{Bytes, Cycle, Duration};

use crate::model::PcieModel;
use crate::stats::ChannelStats;

/// The outcome of scheduling a transfer on a [`PcieChannel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduledTransfer {
    /// Cycle at which the transfer begins occupying the link.
    pub start: Cycle,
    /// Cycle at which the payload has fully arrived.
    pub finish: Cycle,
    /// Payload size.
    pub size: Bytes,
}

impl ScheduledTransfer {
    /// Link occupancy of this transfer.
    pub fn duration(&self) -> Duration {
        self.finish.since(self.start)
    }
}

/// One direction of the PCI-e link (host→device reads or device→host
/// write-backs). Transfers are serialized FIFO: a transfer issued while
/// the link is busy starts when the link frees up.
///
/// # Examples
///
/// ```
/// use uvm_interconnect::{PcieChannel, PcieModel};
/// use uvm_types::{Bytes, Cycle};
///
/// let mut read = PcieChannel::new(PcieModel::pascal_x16());
/// let a = read.schedule(Cycle::ZERO, Bytes::kib(64));
/// let b = read.schedule(Cycle::ZERO, Bytes::kib(4));
/// assert_eq!(b.start, a.finish); // serialized behind the first
/// ```
#[derive(Clone, Debug)]
pub struct PcieChannel {
    model: PcieModel,
    next_free: Cycle,
    stats: ChannelStats,
}

impl PcieChannel {
    /// Creates an idle channel governed by `model`.
    pub fn new(model: PcieModel) -> Self {
        PcieChannel {
            model,
            next_free: Cycle::ZERO,
            stats: ChannelStats::new(),
        }
    }

    /// Schedules a transfer of `size` bytes requested at cycle `now`.
    ///
    /// The transfer starts at `max(now, link free)` and occupies the
    /// link for the model's transfer time. Statistics are updated
    /// immediately. Zero-size requests complete instantly and are not
    /// recorded.
    pub fn schedule(&mut self, now: Cycle, size: Bytes) -> ScheduledTransfer {
        if size == Bytes::ZERO {
            return ScheduledTransfer {
                start: now,
                finish: now,
                size,
            };
        }
        let start = now.max(self.next_free);
        let time = self.model.transfer_time(size);
        let finish = start + time;
        self.next_free = finish;
        self.stats.record(size, time);
        ScheduledTransfer {
            start,
            finish,
            size,
        }
    }

    /// The first cycle at which a new transfer could start.
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }

    /// `true` if the link is idle at cycle `now`.
    pub fn is_idle_at(&self, now: Cycle) -> bool {
        self.next_free <= now
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// The cost model in force.
    pub fn model(&self) -> &PcieModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> PcieChannel {
        PcieChannel::new(PcieModel::pascal_x16())
    }

    #[test]
    fn serializes_back_to_back_transfers() {
        let mut ch = channel();
        let a = ch.schedule(Cycle::ZERO, Bytes::kib(4));
        assert_eq!(a.start, Cycle::ZERO);
        let b = ch.schedule(Cycle::ZERO, Bytes::kib(4));
        assert_eq!(b.start, a.finish);
        assert_eq!(ch.next_free(), b.finish);
    }

    #[test]
    fn idle_gap_respected() {
        let mut ch = channel();
        let a = ch.schedule(Cycle::ZERO, Bytes::kib(4));
        // A request long after the link freed starts immediately.
        let late = a.finish + Duration::from_cycles(1_000_000);
        let b = ch.schedule(late, Bytes::kib(4));
        assert_eq!(b.start, late);
        assert!(ch.is_idle_at(b.finish));
        assert!(!ch.is_idle_at(b.start));
    }

    #[test]
    fn zero_size_is_free_and_unrecorded() {
        let mut ch = channel();
        let t = ch.schedule(Cycle::new(5), Bytes::ZERO);
        assert_eq!(t.start, t.finish);
        assert_eq!(ch.stats().transfers(), 0);
        assert_eq!(ch.next_free(), Cycle::ZERO);
    }

    #[test]
    fn stats_accumulate() {
        let mut ch = channel();
        ch.schedule(Cycle::ZERO, Bytes::kib(4));
        ch.schedule(Cycle::ZERO, Bytes::kib(60));
        ch.schedule(Cycle::ZERO, Bytes::kib(1024));
        let s = ch.stats();
        assert_eq!(s.bytes, Bytes::kib(4 + 60 + 1024));
        assert_eq!(s.transfers(), 3);
        assert_eq!(s.histogram.count_4kib(), 1);
        // Busy time equals the sum of individual transfer durations.
        let m = PcieModel::pascal_x16();
        let expect = m.transfer_time(Bytes::kib(4))
            + m.transfer_time(Bytes::kib(60))
            + m.transfer_time(Bytes::kib(1024));
        assert_eq!(s.busy, expect);
    }

    #[test]
    fn average_bandwidth_reflects_transfer_mix() {
        // A channel that only ever moves 4 KB pages achieves ~3.22 GB/s;
        // a channel moving 1 MB chunks achieves ~11.2 GB/s.
        let mut small = channel();
        let mut big = channel();
        for _ in 0..64 {
            small.schedule(Cycle::ZERO, Bytes::kib(4));
        }
        big.schedule(Cycle::ZERO, Bytes::kib(1024));
        let bw_small = small.stats().average_bandwidth_gbps();
        let bw_big = big.stats().average_bandwidth_gbps();
        assert!((bw_small - 3.2219).abs() < 0.01, "{bw_small}");
        assert!((bw_big - 11.223).abs() < 0.01, "{bw_big}");
    }

    #[test]
    fn scheduled_transfer_duration() {
        let mut ch = channel();
        let t = ch.schedule(Cycle::ZERO, Bytes::kib(16));
        assert_eq!(
            t.duration(),
            PcieModel::pascal_x16().transfer_time(Bytes::kib(16))
        );
        assert_eq!(t.size, Bytes::kib(16));
    }
}
