//! A serialized transfer channel: one direction of the PCI-e link.

use uvm_types::rng::{Rng, SmallRng};
use uvm_types::{Bytes, Cycle, Duration};

use crate::fault::TransferFaultConfig;
use crate::model::PcieModel;
use crate::stats::ChannelStats;

/// The outcome of scheduling a transfer on a [`PcieChannel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduledTransfer {
    /// Cycle at which the transfer begins occupying the link.
    pub start: Cycle,
    /// Cycle at which the payload has fully arrived.
    pub finish: Cycle,
    /// Payload size.
    pub size: Bytes,
    /// Injected-fault replays this transfer paid before completing.
    pub retries: u32,
    /// `true` if the replay budget ran out and the channel stopped
    /// retrying (the payload still completes, degraded).
    pub gave_up: bool,
}

impl ScheduledTransfer {
    /// Link occupancy of this transfer.
    pub fn duration(&self) -> Duration {
        self.finish.since(self.start)
    }
}

/// One direction of the PCI-e link (host→device reads or device→host
/// write-backs). Transfers are serialized FIFO: a transfer issued while
/// the link is busy starts when the link frees up.
///
/// # Examples
///
/// ```
/// use uvm_interconnect::{PcieChannel, PcieModel};
/// use uvm_types::{Bytes, Cycle};
///
/// let mut read = PcieChannel::new(PcieModel::pascal_x16());
/// let a = read.schedule(Cycle::ZERO, Bytes::kib(64));
/// let b = read.schedule(Cycle::ZERO, Bytes::kib(4));
/// assert_eq!(b.start, a.finish); // serialized behind the first
/// ```
#[derive(Clone, Debug)]
pub struct PcieChannel {
    model: PcieModel,
    next_free: Cycle,
    stats: ChannelStats,
    faults: Option<FaultState>,
}

/// Injector state: the config plus the channel-local RNG it seeds.
#[derive(Clone, Debug)]
struct FaultState {
    cfg: TransferFaultConfig,
    rng: SmallRng,
}

impl PcieChannel {
    /// Creates an idle channel governed by `model`.
    pub fn new(model: PcieModel) -> Self {
        PcieChannel {
            model,
            next_free: Cycle::ZERO,
            stats: ChannelStats::new(),
            faults: None,
        }
    }

    /// Arms deterministic transfer-fault injection on this channel.
    ///
    /// Each scheduled transfer then draws from an RNG seeded with
    /// `cfg.seed` and may pay replay-and-backoff retries. A zero
    /// `drop_prob` never draws, so the schedule stays identical to an
    /// unarmed channel.
    pub fn with_transfer_faults(mut self, cfg: TransferFaultConfig) -> Self {
        self.faults = Some(FaultState {
            cfg,
            rng: SmallRng::seed_from_u64(cfg.seed),
        });
        self
    }

    /// Schedules a transfer of `size` bytes requested at cycle `now`.
    ///
    /// The transfer starts at `max(now, link free)` and occupies the
    /// link for the model's transfer time. Statistics are updated
    /// immediately. Zero-size requests complete instantly and are not
    /// recorded.
    ///
    /// With fault injection armed, each drop replays the payload after
    /// an exponential backoff: the replay is real link traffic (it is
    /// recorded in the stats), the backoff is idle recovery time. The
    /// replay budget bounds the loop; exhausting it sets `gave_up`.
    pub fn schedule(&mut self, now: Cycle, size: Bytes) -> ScheduledTransfer {
        if size == Bytes::ZERO {
            return ScheduledTransfer {
                start: now,
                finish: now,
                size,
                retries: 0,
                gave_up: false,
            };
        }
        let start = now.max(self.next_free);
        let time = self.model.transfer_time(size);
        let mut finish = start + time;
        self.stats.record(size, time);
        let mut retries = 0u32;
        let mut gave_up = false;
        if let Some(f) = &mut self.faults {
            while f.rng.gen_bool(f.cfg.drop_prob) {
                if retries >= f.cfg.max_retries {
                    gave_up = true;
                    self.stats.giveups += 1;
                    break;
                }
                retries += 1;
                self.stats.retries += 1;
                finish = finish + f.cfg.backoff_for(retries) + time;
                self.stats.record(size, time);
            }
        }
        self.next_free = finish;
        ScheduledTransfer {
            start,
            finish,
            size,
            retries,
            gave_up,
        }
    }

    /// The first cycle at which a new transfer could start.
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }

    /// `true` if the link is idle at cycle `now`.
    pub fn is_idle_at(&self, now: Cycle) -> bool {
        self.next_free <= now
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// The cost model in force.
    pub fn model(&self) -> &PcieModel {
        &self.model
    }

    /// Serializes the channel's mutable state for a checkpoint: the
    /// link backlog, statistics, and (if armed) the fault-injector's
    /// RNG position. The cost model and fault *config* are derivable
    /// from run options and are not stored.
    pub fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        w.put_u64(self.next_free.index());
        self.stats.save_state(w);
        match &self.faults {
            None => w.put_bool(false),
            Some(f) => {
                w.put_bool(true);
                for word in f.rng.state() {
                    w.put_u64(word);
                }
            }
        }
    }

    /// Restores a [`save_state`](Self::save_state) image into this
    /// channel. The channel must have been constructed with the same
    /// model and fault arming as the one that saved — a mismatch in
    /// fault arming is rejected as corrupt input.
    pub fn load_state(
        &mut self,
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<(), uvm_types::codec::CodecError> {
        self.next_free = Cycle::new(r.get_u64()?);
        self.stats = ChannelStats::load_state(r)?;
        let armed = r.get_bool()?;
        if armed != self.faults.is_some() {
            return Err(uvm_types::codec::CodecError::BadTag {
                what: "channel fault arming",
                value: u64::from(armed),
            });
        }
        if let Some(f) = &mut self.faults {
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = r.get_u64()?;
            }
            f.rng = SmallRng::from_state(s);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> PcieChannel {
        PcieChannel::new(PcieModel::pascal_x16())
    }

    #[test]
    fn serializes_back_to_back_transfers() {
        let mut ch = channel();
        let a = ch.schedule(Cycle::ZERO, Bytes::kib(4));
        assert_eq!(a.start, Cycle::ZERO);
        let b = ch.schedule(Cycle::ZERO, Bytes::kib(4));
        assert_eq!(b.start, a.finish);
        assert_eq!(ch.next_free(), b.finish);
    }

    #[test]
    fn idle_gap_respected() {
        let mut ch = channel();
        let a = ch.schedule(Cycle::ZERO, Bytes::kib(4));
        // A request long after the link freed starts immediately.
        let late = a.finish + Duration::from_cycles(1_000_000);
        let b = ch.schedule(late, Bytes::kib(4));
        assert_eq!(b.start, late);
        assert!(ch.is_idle_at(b.finish));
        assert!(!ch.is_idle_at(b.start));
    }

    #[test]
    fn zero_size_is_free_and_unrecorded() {
        let mut ch = channel();
        let t = ch.schedule(Cycle::new(5), Bytes::ZERO);
        assert_eq!(t.start, t.finish);
        assert_eq!(ch.stats().transfers(), 0);
        assert_eq!(ch.next_free(), Cycle::ZERO);
    }

    #[test]
    fn stats_accumulate() {
        let mut ch = channel();
        ch.schedule(Cycle::ZERO, Bytes::kib(4));
        ch.schedule(Cycle::ZERO, Bytes::kib(60));
        ch.schedule(Cycle::ZERO, Bytes::kib(1024));
        let s = ch.stats();
        assert_eq!(s.bytes, Bytes::kib(4 + 60 + 1024));
        assert_eq!(s.transfers(), 3);
        assert_eq!(s.histogram.count_4kib(), 1);
        // Busy time equals the sum of individual transfer durations.
        let m = PcieModel::pascal_x16();
        let expect = m.transfer_time(Bytes::kib(4))
            + m.transfer_time(Bytes::kib(60))
            + m.transfer_time(Bytes::kib(1024));
        assert_eq!(s.busy, expect);
    }

    #[test]
    fn average_bandwidth_reflects_transfer_mix() {
        // A channel that only ever moves 4 KB pages achieves ~3.22 GB/s;
        // a channel moving 1 MB chunks achieves ~11.2 GB/s.
        let mut small = channel();
        let mut big = channel();
        for _ in 0..64 {
            small.schedule(Cycle::ZERO, Bytes::kib(4));
        }
        big.schedule(Cycle::ZERO, Bytes::kib(1024));
        let bw_small = small.stats().average_bandwidth_gbps();
        let bw_big = big.stats().average_bandwidth_gbps();
        assert!((bw_small - 3.2219).abs() < 0.01, "{bw_small}");
        assert!((bw_big - 11.223).abs() < 0.01, "{bw_big}");
    }

    #[test]
    fn scheduled_transfer_duration() {
        let mut ch = channel();
        let t = ch.schedule(Cycle::ZERO, Bytes::kib(16));
        assert_eq!(
            t.duration(),
            PcieModel::pascal_x16().transfer_time(Bytes::kib(16))
        );
        assert_eq!(t.size, Bytes::kib(16));
        assert_eq!(t.retries, 0);
        assert!(!t.gave_up);
    }

    fn fault_cfg(drop_prob: f64) -> TransferFaultConfig {
        TransferFaultConfig {
            seed: 0xFA_17,
            drop_prob,
            max_retries: 3,
            backoff: Duration::from_cycles(1_000),
        }
    }

    #[test]
    fn zero_drop_prob_matches_unarmed_channel() {
        // A zero probability never draws from the RNG, so the armed
        // channel produces a byte-identical schedule.
        let mut plain = channel();
        let mut armed = channel().with_transfer_faults(fault_cfg(0.0));
        for i in 0..32 {
            let now = Cycle::new(i * 10);
            let a = plain.schedule(now, Bytes::kib(4 + (i % 3) * 60));
            let b = armed.schedule(now, Bytes::kib(4 + (i % 3) * 60));
            assert_eq!(a, b);
        }
        assert_eq!(plain.stats().retries, 0);
        assert_eq!(armed.stats().retries, 0);
        assert_eq!(armed.stats().giveups, 0);
    }

    #[test]
    fn certain_drop_exhausts_retry_budget_and_gives_up() {
        let mut ch = channel().with_transfer_faults(fault_cfg(1.0));
        let t = ch.schedule(Cycle::ZERO, Bytes::kib(4));
        assert_eq!(t.retries, 3);
        assert!(t.gave_up);
        let time = PcieModel::pascal_x16().transfer_time(Bytes::kib(4));
        // Original attempt + 3 replays + exponentially growing backoff.
        let mut expect = Cycle::ZERO + time;
        for retry in 1..=3u32 {
            expect = expect + Duration::from_cycles(1_000 << (retry - 1)) + time;
        }
        assert_eq!(t.finish, expect);
        assert_eq!(ch.stats().retries, 3);
        assert_eq!(ch.stats().giveups, 1);
        // Every replay is recorded as real link traffic.
        assert_eq!(ch.stats().transfers(), 4);
        assert_eq!(ch.stats().bytes, Bytes::kib(16));
    }

    #[test]
    fn faulty_schedule_is_deterministic_per_seed() {
        let run = || {
            let mut ch = channel().with_transfer_faults(fault_cfg(0.5));
            let mut out = Vec::new();
            for i in 0..64 {
                out.push(ch.schedule(Cycle::new(i), Bytes::kib(4)));
            }
            (out, ch.stats().retries, ch.stats().giveups)
        };
        let (a, ra, ga) = run();
        let (b, rb, gb) = run();
        assert_eq!(a, b);
        assert_eq!((ra, ga), (rb, gb));
        assert!(ra > 0, "p=0.5 over 64 transfers should retry at least once");
    }
}
