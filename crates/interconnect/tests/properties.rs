//! Randomized-property tests for the PCI-e model and channels, driven
//! by seeded `SmallRng` case loops.

use uvm_interconnect::{PcieChannel, PcieModel};
use uvm_types::rng::{Rng, SmallRng};
use uvm_types::{Bytes, Cycle, Duration};

const CASES: usize = 256;

/// Bandwidth and latency are monotone in transfer size, and bandwidth
/// stays within the calibrated envelope.
#[test]
fn model_is_monotone() {
    let mut rng = SmallRng::seed_from_u64(0xbc1);
    for _ in 0..CASES {
        let a = rng.gen_range(1u64..(4 << 20));
        let b = rng.gen_range(1u64..(4 << 20));
        let m = PcieModel::pascal_x16();
        let (lo, hi) = (a.min(b), a.max(b));
        assert!(m.bandwidth_gbps(Bytes::new(lo)) <= m.bandwidth_gbps(Bytes::new(hi)) + 1e-12);
        assert!(m.transfer_time(Bytes::new(lo)) <= m.transfer_time(Bytes::new(hi)));
        let bw = m.bandwidth_gbps(Bytes::new(a));
        assert!((3.2219..=11.223).contains(&bw), "bw {bw}");
    }
}

/// Batching never loses: one transfer of `n` pages is at most as slow
/// as `n` transfers of one page.
#[test]
fn batching_never_loses() {
    let mut rng = SmallRng::seed_from_u64(0xbc2);
    for _ in 0..CASES {
        let pages = rng.gen_range(1u64..512);
        let m = PcieModel::pascal_x16();
        let one = m.transfer_time(Bytes::kib(4)).cycles();
        let batched = m.transfer_time(Bytes::kib(4 * pages)).cycles();
        assert!(batched <= pages * one);
    }
}

/// Channels serialize: transfers never overlap, bytes accumulate, and
/// the busy time equals the sum of transfer durations.
#[test]
fn channel_serializes() {
    let mut rng = SmallRng::seed_from_u64(0xbc3);
    for _ in 0..CASES {
        let mut ch = PcieChannel::new(PcieModel::pascal_x16());
        let mut prev_finish = Cycle::ZERO;
        let mut total = Bytes::ZERO;
        let mut busy = Duration::ZERO;
        let n = rng.gen_range(1usize..40);
        for _ in 0..n {
            let kb = rng.gen_range(1u64..2048);
            let t = ch.schedule(Cycle::ZERO, Bytes::kib(kb));
            assert!(t.start >= prev_finish, "no overlap");
            assert!(t.finish > t.start);
            prev_finish = t.finish;
            total += Bytes::kib(kb);
            busy += t.duration();
        }
        assert_eq!(ch.stats().bytes, total);
        assert_eq!(ch.stats().busy, busy);
        assert_eq!(ch.next_free(), prev_finish);
    }
}

/// The average achieved bandwidth of any transfer mix lies between the
/// smallest and largest per-size bandwidths in the mix.
#[test]
fn average_bandwidth_is_bounded_by_the_mix() {
    let mut rng = SmallRng::seed_from_u64(0xbc4);
    for _ in 0..CASES {
        let m = PcieModel::pascal_x16();
        let mut ch = PcieChannel::new(m.clone());
        let mut min_bw = f64::INFINITY;
        let mut max_bw = 0.0f64;
        let n = rng.gen_range(1usize..40);
        for _ in 0..n {
            let kb = rng.gen_range(1u64..2048);
            ch.schedule(Cycle::ZERO, Bytes::kib(kb));
            let bw = m.bandwidth_gbps(Bytes::kib(kb));
            min_bw = min_bw.min(bw);
            max_bw = max_bw.max(bw);
        }
        // Transfer times are rounded to whole core cycles, so allow a
        // small relative tolerance for tiny transfers.
        let avg = ch.stats().average_bandwidth_gbps();
        assert!(avg >= min_bw * 0.99, "avg {avg} < min {min_bw}");
        assert!(avg <= max_bw * 1.01, "avg {avg} > max {max_bw}");
    }
}

/// A later request never starts before its issue time, and an idle
/// channel starts it immediately.
#[test]
fn idle_channel_starts_immediately() {
    let mut rng = SmallRng::seed_from_u64(0xbc5);
    for _ in 0..CASES {
        let gap = rng.gen_range(0u64..(1 << 30));
        let kb = rng.gen_range(1u64..1024);
        let mut ch = PcieChannel::new(PcieModel::pascal_x16());
        let first = ch.schedule(Cycle::ZERO, Bytes::kib(4));
        let at = first.finish + Duration::from_cycles(gap);
        let second = ch.schedule(at, Bytes::kib(kb));
        assert_eq!(second.start, at);
    }
}
