//! Property-based tests for the PCI-e model and channels.

use proptest::prelude::*;

use uvm_interconnect::{PcieChannel, PcieModel};
use uvm_types::{Bytes, Cycle, Duration};

proptest! {
    /// Bandwidth and latency are monotone in transfer size, and
    /// bandwidth stays within the calibrated envelope.
    #[test]
    fn model_is_monotone(a in 1u64..(4 << 20), b in 1u64..(4 << 20)) {
        let m = PcieModel::pascal_x16();
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(m.bandwidth_gbps(Bytes::new(lo)) <= m.bandwidth_gbps(Bytes::new(hi)) + 1e-12);
        prop_assert!(m.transfer_time(Bytes::new(lo)) <= m.transfer_time(Bytes::new(hi)));
        let bw = m.bandwidth_gbps(Bytes::new(a));
        prop_assert!((3.2219..=11.223).contains(&bw), "bw {bw}");
    }

    /// Batching never loses: one transfer of `n` pages is at most as
    /// slow as `n` transfers of one page.
    #[test]
    fn batching_never_loses(pages in 1u64..512) {
        let m = PcieModel::pascal_x16();
        let one = m.transfer_time(Bytes::kib(4)).cycles();
        let batched = m.transfer_time(Bytes::kib(4 * pages)).cycles();
        prop_assert!(batched <= pages * one);
    }

    /// Channels serialize: transfers never overlap, bytes accumulate,
    /// and the busy time equals the sum of transfer durations.
    #[test]
    fn channel_serializes(sizes in prop::collection::vec(1u64..2048, 1..40)) {
        let mut ch = PcieChannel::new(PcieModel::pascal_x16());
        let mut prev_finish = Cycle::ZERO;
        let mut total = Bytes::ZERO;
        let mut busy = Duration::ZERO;
        for kb in sizes {
            let t = ch.schedule(Cycle::ZERO, Bytes::kib(kb));
            prop_assert!(t.start >= prev_finish, "no overlap");
            prop_assert!(t.finish > t.start);
            prev_finish = t.finish;
            total += Bytes::kib(kb);
            busy += t.duration();
        }
        prop_assert_eq!(ch.stats().bytes, total);
        prop_assert_eq!(ch.stats().busy, busy);
        prop_assert_eq!(ch.next_free(), prev_finish);
    }

    /// The average achieved bandwidth of any transfer mix lies between
    /// the smallest and largest per-size bandwidths in the mix.
    #[test]
    fn average_bandwidth_is_bounded_by_the_mix(sizes in prop::collection::vec(1u64..2048, 1..40)) {
        let m = PcieModel::pascal_x16();
        let mut ch = PcieChannel::new(m.clone());
        let mut min_bw = f64::INFINITY;
        let mut max_bw = 0.0f64;
        for &kb in &sizes {
            ch.schedule(Cycle::ZERO, Bytes::kib(kb));
            let bw = m.bandwidth_gbps(Bytes::kib(kb));
            min_bw = min_bw.min(bw);
            max_bw = max_bw.max(bw);
        }
        // Transfer times are rounded to whole core cycles, so allow a
        // small relative tolerance for tiny transfers.
        let avg = ch.stats().average_bandwidth_gbps();
        prop_assert!(avg >= min_bw * 0.99, "avg {avg} < min {min_bw}");
        prop_assert!(avg <= max_bw * 1.01, "avg {avg} > max {max_bw}");
    }

    /// A later request never starts before its issue time, and an idle
    /// channel starts it immediately.
    #[test]
    fn idle_channel_starts_immediately(gap in 0u64..(1 << 30), kb in 1u64..1024) {
        let mut ch = PcieChannel::new(PcieModel::pascal_x16());
        let first = ch.schedule(Cycle::ZERO, Bytes::kib(4));
        let at = first.finish + Duration::from_cycles(gap);
        let second = ch.schedule(at, Bytes::kib(kb));
        prop_assert_eq!(second.start, at);
    }
}
