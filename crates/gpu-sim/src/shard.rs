//! Sharded kernel execution: SM-partitioned speculation with
//! deterministic epoch barriers.
//!
//! The serial engine (DESIGN.md §7) interleaves all 28 SMs through one
//! event loop. Sharded mode partitions the SMs — warp cursors, TLBs,
//! and the event-calendar slice they feed — across N [`Shard`]s that
//! simulate SM-local work independently, rendezvousing at the events
//! the GMMU serializes: far-faults (and the prefetch admissions,
//! evictions, and shootdowns they trigger) plus watchdog trips.
//!
//! # The canonical order and the barrier key
//!
//! Every event is identified by its *packed key*
//! `(cycle << 16) | rank`, where `rank` is the warp's SM-major
//! dispatch rank — exactly the `(cycle, key)` order the serial
//! engine's calendar pops in. Each live warp has one outstanding
//! event, so packed keys are globally unique, and "the schedule is a
//! pure function of (cycle, warp)" carries over verbatim: shards
//! process their own slice in ascending packed order, and the courier
//! commits cross-shard effects in ascending packed order, so the
//! merged schedule is byte-identical to serial at every shard count.
//!
//! # Epochs, speculation, and rollback
//!
//! Between barriers each shard runs against *frozen* shared views
//! (`&Gmmu`, `&ShootdownDirectory`): residency, page generations, and
//! huge mappings only change at barriers, and the single mid-epoch
//! read/write overlap — `Gmmu::ready_time` vs the arrival-pin removal
//! a committed `record_access` performs — is outcome-inert because a
//! pin consumed at event time `t` satisfies `ready ≤ t + 1 + walk`,
//! below any later event's probe point, so the stale pin filters out
//! identically. Everything a shard *would* write to shared state is
//! journaled instead: per-event undo frames (TLB inverse ops from
//! [`uvm_mem::TlbOp`], queue re-pushes, cursor/retire inverses) tagged
//! with the event's packed key, plus a cross-shard [`LogEntry`] stream
//! (`record_access` / holder-bit updates) the courier replays in
//! canonical order at each barrier.
//!
//! A shard stops at its first far-fault (publishing the packed key
//! through the shared `AtomicU64` bound so sibling shards stop
//! speculating past it), at a watchdog trip, at the bound, or at its
//! per-epoch event budget. The courier then picks the *frontier*
//! `k = min` over every shard's stop key, rolls every shard back to
//! `k` (undoing frames with packed key `> k`; speculative pushes are
//! cancelled by nonce tombstones so a rolled-back wake can never eat a
//! later legitimate event), commits the surviving log entries in
//! packed order, and — if `k` is a fault — services it exactly as the
//! serial loop would (`handle_fault`, shootdown generation bumps,
//! holder drains, replay wake). Spurious speculative faults at keys
//! `> k` simply roll back and re-execute. Since every committed event
//! saw shared state identical to serial's, the fault sequence, RNG
//! draws, statistics, traces, and final machine state are all
//! byte-identical to the serial engine.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use uvm_core::Gmmu;
use uvm_mem::{ShootdownDirectory, Tlb, TlbLookup, TlbOp};
use uvm_types::hash::FxBuildHasher;
use uvm_types::{Cycle, Duration, PageId};

use crate::engine::TraceEvent;
use crate::kernel::Access;
use crate::queue::EventQueue;

/// Bits reserved for the warp rank in a packed barrier key. Sharded
/// mode is gated to kernels with fewer than `1 << RANK_BITS` blocks.
pub(crate) const RANK_BITS: u32 = 16;

/// The canonical barrier key of an event: ascending packed order is
/// exactly the serial engine's `(cycle, rank)` pop order.
#[inline]
pub(crate) fn pack(t: Cycle, rank: u64) -> u64 {
    debug_assert!(t.index() < 1 << (64 - RANK_BITS), "cycle overflows key");
    debug_assert!(rank < 1 << RANK_BITS, "rank overflows key");
    (t.index() << RANK_BITS) | rank
}

/// Per-shard warp state — the shard-local mirror of the serial
/// engine's `WarpState`, indexed by shard-local position.
struct SWarp {
    /// Next access to issue, as an index into the shared arena.
    cursor: usize,
    /// One past the warp's last arena index.
    end: usize,
    /// The access currently being attempted (replayed after a fault).
    current: Option<Access>,
    /// Global SM index (for holder-bit log entries).
    sm: usize,
    /// SM index within this shard (TLB vector position).
    sm_local: usize,
    /// Global SM-major dispatch rank: the event key.
    rank: u64,
    /// Original block index (trace attribution and fault debug lines
    /// use this, exactly as the serial engine does).
    id: usize,
    done: bool,
}

/// One cross-shard side effect, replayed by the courier in packed-key
/// order at each barrier.
pub(crate) struct LogEntry {
    pub packed: u64,
    pub kind: LogKind,
}

pub(crate) enum LogKind {
    /// A completed access: `Gmmu::record_access` plus a trace entry.
    Access {
        page: PageId,
        write: bool,
        done: Cycle,
        warp: usize,
    },
    /// A TLB fill: set the page's holder bit for `sm`.
    NoteFill { page: PageId, sm: usize },
    /// A TLB victim eviction: drop `sm`'s holder bit.
    NoteDrop { page: PageId, sm: usize },
}

/// One journaled inverse, tagged with its event's packed key; popped
/// in reverse order while rolling back past a barrier frontier.
enum Frame {
    /// An event was popped: re-push it (original payload, original
    /// nonce) and restore the monotonicity watermark.
    Pop {
        t: Cycle,
        local: usize,
        nonce: u64,
        prev_last: Cycle,
    },
    /// A speculative push: tombstone its nonce so the queued event is
    /// skipped inertly when it surfaces.
    Push { nonce: u64 },
    /// The warp loaded its next access from the arena.
    LoadCursor { local: usize },
    /// The warp completed its current access.
    ClearCurrent { local: usize, access: Access },
    /// The warp retired (and possibly started the next queued block).
    Retire {
        local: usize,
        prev_end: Cycle,
        started: Option<usize>,
    },
    /// A TLB mutation, inverted via [`Tlb::undo`].
    Tlb { sm_local: usize, op: TlbOp },
    /// A cross-shard log entry was appended.
    Log,
}

/// A far-fault a shard stopped at, for the courier to service.
#[derive(Clone, Copy)]
pub(crate) struct PendingFault {
    pub t: Cycle,
    pub page: PageId,
    /// Walk-completion cycle: the fault's `now` for the GMMU.
    pub walked: Cycle,
    /// Shard-local index of the faulting warp (for the replay wake).
    pub local: usize,
    /// Original block index (the serial debug line's `w=`).
    pub warp_id: usize,
}

/// Why a shard's epoch ended.
pub(crate) enum Stop {
    /// First far-fault: the event at `packed` needs the GMMU. Its
    /// frames stay journaled at `packed` (kept if this fault wins the
    /// barrier, rolled back otherwise); `current` still holds the
    /// access for the post-fault replay.
    Fault { packed: u64, fault: PendingFault },
    /// Watchdog trip at `packed`: the event is re-held; the courier
    /// panics with the serial message once this is the frontier.
    Watchdog { packed: u64, t: Cycle },
    /// Stopped at the speculation bound or the epoch budget.
    Paused,
    /// No events left: every owned warp retired.
    Done,
}

impl Stop {
    /// The stop's position in canonical order: the key of the first
    /// event this shard has *not* committed-or-finished. Used by the
    /// courier to pick the barrier frontier (`Paused`/`Done` shards
    /// report theirs via [`Shard::frontier`]).
    pub(crate) fn key(&self) -> u64 {
        match self {
            Stop::Fault { packed, .. } | Stop::Watchdog { packed, .. } => *packed,
            Stop::Paused | Stop::Done => u64::MAX,
        }
    }
}

/// One thread block's dispatch record, for [`Shard::new`]: global
/// SM-major rank, original block index, and its arena chunk.
#[derive(Clone, Copy)]
pub(crate) struct DispatchedBlock {
    pub rank: u64,
    pub id: usize,
    pub cursor: usize,
    pub end: usize,
}

/// Read-only epoch context shared by every shard: frozen views plus
/// the live speculation bound.
pub(crate) struct EpochCtx<'a> {
    pub gmmu: &'a Gmmu,
    pub dir: &'a ShootdownDirectory,
    pub arena: &'a [Access],
    pub bound: &'a AtomicU64,
    pub start: Cycle,
    pub mem_latency: Duration,
    pub compute_delay: Duration,
    pub walk_latency: Duration,
    pub max_kernel_cycles: Option<u64>,
    /// Journal undo frames (off in the cooperative single-worker mode,
    /// where every event commits immediately and rollback never runs).
    pub journal: bool,
    /// Max events to process this epoch (`None` = until fault/bound).
    pub budget: Option<usize>,
}

/// One SM partition: a contiguous SM range with its warps, TLBs,
/// event-calendar slice, and speculation journal.
pub(crate) struct Shard {
    /// First owned (global) SM.
    sm_lo: usize,
    /// Owned TLBs, indexed by `sm - sm_lo`.
    tlbs: Vec<Tlb>,
    warps: Vec<SWarp>,
    /// Per owned SM: queued thread blocks (shard-local warp indices),
    /// popped from the back in dispatch order.
    sm_queues: Vec<Vec<usize>>,
    active: Vec<usize>,
    /// This shard's slice of the event calendar. Payload: shard-local
    /// warp index + push nonce (0 = committed push, never cancelled).
    queue: EventQueue<(usize, u64)>,
    /// Tombstoned nonces of rolled-back speculative pushes.
    cancelled: HashSet<u64, FxBuildHasher>,
    next_nonce: u64,
    /// An event popped but not processed (bound/watchdog stop); it is
    /// consumed first next epoch.
    held: Option<(Cycle, usize, u64)>,
    frames: Vec<(u64, Frame)>,
    log: Vec<LogEntry>,
    /// Max retire cycle seen (the shard's contribution to kernel end).
    end: Cycle,
    last_popped: Cycle,
}

impl Shard {
    /// Builds a shard owning global SMs `[sm_lo, sm_lo + tlbs.len())`.
    ///
    /// `blocks` lists, per owned SM in order, the warps dispatched to
    /// it in dispatch order. The first `blocks_per_sm` of each SM get
    /// their initial events at `start`; the rest queue behind them.
    pub(crate) fn new(
        sm_lo: usize,
        tlbs: Vec<Tlb>,
        blocks: &[Vec<DispatchedBlock>],
        blocks_per_sm: usize,
        start: Cycle,
    ) -> Self {
        debug_assert_eq!(tlbs.len(), blocks.len());
        let mut warps = Vec::new();
        let mut sm_queues = vec![Vec::new(); blocks.len()];
        let mut active = vec![0usize; blocks.len()];
        let mut queue = EventQueue::new();
        for (sm_local, dispatched) in blocks.iter().enumerate() {
            for (pos, b) in dispatched.iter().enumerate() {
                let local = warps.len();
                warps.push(SWarp {
                    cursor: b.cursor,
                    end: b.end,
                    current: None,
                    sm: sm_lo + sm_local,
                    sm_local,
                    rank: b.rank,
                    id: b.id,
                    done: false,
                });
                if pos < blocks_per_sm {
                    active[sm_local] += 1;
                    queue.push_keyed(start, b.rank, (local, 0));
                } else {
                    sm_queues[sm_local].push(local);
                }
            }
            // Queued blocks start in dispatch order; pop from the back.
            sm_queues[sm_local].reverse();
        }
        Shard {
            sm_lo,
            tlbs,
            warps,
            sm_queues,
            active,
            queue,
            cancelled: HashSet::default(),
            next_nonce: 0,
            held: None,
            frames: Vec::new(),
            log: Vec::new(),
            end: start,
            last_popped: start,
        }
    }

    /// The packed key of this shard's next unprocessed event, or
    /// `None` when it has none left. (Conservative in the presence of
    /// tombstoned events: may report a cancelled event's key, which
    /// only makes the courier's frontier earlier, never wrong.)
    pub(crate) fn frontier(&mut self) -> Option<u64> {
        if let Some((t, local, _)) = self.held {
            return Some(pack(t, self.warps[local].rank));
        }
        self.queue.peek_key().map(|(t, rank)| pack(t, rank))
    }

    /// This shard's latest retire cycle.
    pub(crate) fn end(&self) -> Cycle {
        self.end
    }

    /// Mutable access to the cross-shard log (the courier drains it).
    pub(crate) fn log_mut(&mut self) -> &mut Vec<LogEntry> {
        &mut self.log
    }

    /// Moves this shard's TLBs back out (kernel completion).
    pub(crate) fn into_tlbs(self) -> Vec<Tlb> {
        debug_assert!(self.queue.is_empty(), "shard retired with queued events");
        debug_assert!(self.frames.is_empty(), "shard retired with a live journal");
        debug_assert!(self.log.is_empty(), "shard retired with an undrained log");
        self.tlbs
    }

    /// Queues the post-fault replay wake for the warp that faulted
    /// (a committed push: nonce 0, no journal).
    pub(crate) fn push_wake(&mut self, t: Cycle, local: usize) {
        let rank = self.warps[local].rank;
        self.queue.push_keyed(t, rank, (local, 0));
    }

    /// Invalidates `page` in the TLB of global SM `sm` (courier-side
    /// shootdown at a fault barrier; committed, so no journal).
    pub(crate) fn invalidate(&mut self, sm: usize, page: PageId) {
        self.tlbs[sm - self.sm_lo].invalidate(page);
    }

    /// Discards the journal after a barrier commits (frames at or
    /// below the frontier describe now-committed events).
    pub(crate) fn commit(&mut self) {
        self.frames.clear();
    }

    /// Rolls back every journaled event with packed key `> k`,
    /// restoring warps, TLBs, the event queue, and the log to their
    /// exact state as of frontier `k`.
    pub(crate) fn rollback(&mut self, k: u64) {
        // A held event (bound/watchdog stop) goes back into the queue:
        // rolled-back events below it would otherwise be consumed
        // *after* it next epoch, since the held slot is drained first.
        if let Some((t, local, nonce)) = self.held.take() {
            let rank = self.warps[local].rank;
            self.queue.push_keyed(t, rank, (local, nonce));
        }
        while let Some(&(packed, _)) = self.frames.last() {
            if packed <= k {
                break;
            }
            let (_, frame) = self.frames.pop().expect("just peeked");
            match frame {
                Frame::Pop {
                    t,
                    local,
                    nonce,
                    prev_last,
                } => {
                    let rank = self.warps[local].rank;
                    self.queue.push_keyed(t, rank, (local, nonce));
                    self.last_popped = prev_last;
                }
                Frame::Push { nonce } => {
                    self.cancelled.insert(nonce);
                }
                Frame::LoadCursor { local } => {
                    let w = &mut self.warps[local];
                    w.cursor -= 1;
                    w.current = None;
                }
                Frame::ClearCurrent { local, access } => {
                    self.warps[local].current = Some(access);
                }
                Frame::Retire {
                    local,
                    prev_end,
                    started,
                } => {
                    let sm_local = self.warps[local].sm_local;
                    if let Some(next) = started {
                        self.sm_queues[sm_local].push(next);
                        self.active[sm_local] -= 1;
                    }
                    self.active[sm_local] += 1;
                    self.warps[local].done = false;
                    self.end = prev_end;
                }
                Frame::Tlb { sm_local, op } => self.tlbs[sm_local].undo(op),
                Frame::Log => {
                    self.log.pop();
                }
            }
        }
    }

    /// A fresh nonce for a speculative push (0 when not journaling:
    /// committed pushes are never cancelled).
    #[inline]
    fn alloc_nonce(&mut self, journal: bool) -> u64 {
        if journal {
            self.next_nonce += 1;
            self.next_nonce
        } else {
            0
        }
    }

    /// Runs this shard's slice of the serial event loop until a fault,
    /// a watchdog trip, the speculation bound, the epoch budget, or
    /// queue exhaustion. Mirrors `Engine::run_kernel_detailed`'s loop
    /// statement-for-statement; shared-state writes go to the journal
    /// and log instead.
    pub(crate) fn run_epoch(&mut self, ctx: &EpochCtx<'_>) -> Stop {
        let journal = ctx.journal;
        let mut used = 0usize;
        loop {
            if let Some(budget) = ctx.budget {
                if used == budget {
                    return Stop::Paused;
                }
            }
            let (t, local, nonce) = match self.held.take() {
                Some(ev) => ev,
                None => match self.queue.pop() {
                    Some((t, (local, nonce))) => (t, local, nonce),
                    None => return Stop::Done,
                },
            };
            // Tombstoned speculative push: inert, invisible to the
            // schedule (checked before the watchdog and the bound, as
            // the event never existed in the serial order).
            if nonce != 0 && self.cancelled.remove(&nonce) {
                continue;
            }
            let rank = self.warps[local].rank;
            let packed = pack(t, rank);
            if packed >= ctx.bound.load(Ordering::Relaxed) {
                // A sibling shard hit a serialization point earlier in
                // canonical order: stop speculating, keep the event.
                self.held = Some((t, local, nonce));
                return Stop::Paused;
            }
            if let Some(cap) = ctx.max_kernel_cycles {
                if t.since(ctx.start).cycles() > cap {
                    self.held = Some((t, local, nonce));
                    ctx.bound.fetch_min(packed, Ordering::Relaxed);
                    return Stop::Watchdog { packed, t };
                }
            }
            debug_assert!(
                t >= self.last_popped,
                "event time went backwards: {t} after {}",
                self.last_popped
            );
            let prev_last = self.last_popped;
            self.last_popped = t;
            used += 1;
            if journal {
                self.frames.push((
                    packed,
                    Frame::Pop {
                        t,
                        local,
                        nonce,
                        prev_last,
                    },
                ));
            }

            let warp = &mut self.warps[local];
            if warp.done {
                continue;
            }
            if warp.current.is_none() && warp.cursor < warp.end {
                warp.current = Some(ctx.arena[warp.cursor]);
                warp.cursor += 1;
                if journal {
                    self.frames.push((packed, Frame::LoadCursor { local }));
                }
            }
            let warp = &self.warps[local];
            let Some(access) = warp.current else {
                // Warp retired: start the next queued TB on its SM.
                let sm_local = warp.sm_local;
                let prev_end = self.end;
                self.warps[local].done = true;
                self.end = self.end.max(t);
                self.active[sm_local] -= 1;
                let mut started = None;
                if let Some(next) = self.sm_queues[sm_local].pop() {
                    self.active[sm_local] += 1;
                    let nonce = self.alloc_nonce(journal);
                    let next_rank = self.warps[next].rank;
                    self.queue.push_keyed(t, next_rank, (next, nonce));
                    if journal {
                        self.frames.push((packed, Frame::Push { nonce }));
                    }
                    started = Some(next);
                }
                if journal {
                    self.frames.push((
                        packed,
                        Frame::Retire {
                            local,
                            prev_end,
                            started,
                        },
                    ));
                }
                continue;
            };

            let page = access.page();
            let sm = warp.sm;
            let sm_local = warp.sm_local;
            let warp_id = warp.id;
            // Huge-page fast path (see the serial loop).
            if let Some(epoch) = ctx.gmmu.huge_translation(page.large_page(), t) {
                let (hit, op) = self.tlbs[sm_local].lookup_huge_logged(page.large_page(), epoch);
                if journal {
                    self.frames.push((packed, Frame::Tlb { sm_local, op }));
                }
                if hit {
                    let done = t + Duration::from_cycles(1) + ctx.mem_latency;
                    self.complete(ctx, packed, local, access, done);
                    continue;
                }
            }
            let generation = ctx.dir.generation(page);
            let (looked, op) = self.tlbs[sm_local].lookup_gen_logged(page, generation);
            if journal {
                self.frames.push((packed, Frame::Tlb { sm_local, op }));
            }
            match looked {
                TlbLookup::Hit => {
                    // 1-cycle lookup + device memory access.
                    let done = t + Duration::from_cycles(1) + ctx.mem_latency;
                    self.complete(ctx, packed, local, access, done);
                }
                TlbLookup::Miss => {
                    let walked = t + Duration::from_cycles(1) + ctx.walk_latency;
                    if !ctx.gmmu.is_resident(page) {
                        // Far-fault: a GMMU-serialized event. Publish
                        // the key and hand control to the courier; the
                        // event's own frames stay journaled at
                        // `packed` so they survive exactly when this
                        // fault wins the barrier.
                        ctx.bound.fetch_min(packed, Ordering::Relaxed);
                        return Stop::Fault {
                            packed,
                            fault: PendingFault {
                                t,
                                page,
                                walked,
                                local,
                                warp_id,
                            },
                        };
                    } else if let Some(ready) = ctx.gmmu.ready_time(page, walked) {
                        // In-flight migration: stall until it lands.
                        let nonce = self.alloc_nonce(journal);
                        self.queue.push_keyed(ready, rank, (local, nonce));
                        if journal {
                            self.frames.push((packed, Frame::Push { nonce }));
                        }
                    } else if let Some(epoch) = ctx.gmmu.huge_translation(page.large_page(), walked)
                    {
                        // The walk resolved a coalesced large page.
                        let op = self.tlbs[sm_local].fill_huge_logged(page.large_page(), epoch);
                        if journal {
                            self.frames.push((packed, Frame::Tlb { sm_local, op }));
                        }
                        let done = walked + ctx.mem_latency;
                        self.complete(ctx, packed, local, access, done);
                    } else {
                        let (victim, op) =
                            self.tlbs[sm_local].fill_after_miss_logged(page, generation);
                        if journal {
                            self.frames.push((packed, Frame::Tlb { sm_local, op }));
                        }
                        if let Some(victim) = victim {
                            self.log.push(LogEntry {
                                packed,
                                kind: LogKind::NoteDrop { page: victim, sm },
                            });
                            if journal {
                                self.frames.push((packed, Frame::Log));
                            }
                        }
                        self.log.push(LogEntry {
                            packed,
                            kind: LogKind::NoteFill { page, sm },
                        });
                        if journal {
                            self.frames.push((packed, Frame::Log));
                        }
                        let done = walked + ctx.mem_latency;
                        self.complete(ctx, packed, local, access, done);
                    }
                }
            }
        }
    }

    /// The completion tail shared by every satisfied access: log the
    /// `record_access` + trace entry, clear `current`, and schedule
    /// the warp's next event — the journaled mirror of the serial
    /// `complete_access` + re-push sequence.
    #[inline]
    fn complete(
        &mut self,
        ctx: &EpochCtx<'_>,
        packed: u64,
        local: usize,
        access: Access,
        done: Cycle,
    ) {
        let warp = &mut self.warps[local];
        let rank = warp.rank;
        let warp_id = warp.id;
        warp.current = None;
        self.log.push(LogEntry {
            packed,
            kind: LogKind::Access {
                page: access.page(),
                write: access.write,
                done,
                warp: warp_id,
            },
        });
        let nonce = self.alloc_nonce(ctx.journal);
        self.queue
            .push_keyed(done + ctx.compute_delay, rank, (local, nonce));
        if ctx.journal {
            self.frames.push((packed, Frame::Log));
            self.frames
                .push((packed, Frame::ClearCurrent { local, access }));
            self.frames.push((packed, Frame::Push { nonce }));
        }
    }
}

/// Replays a barrier's committed cross-shard log slice, in packed
/// order, against the real GMMU, shootdown directory, and trace — the
/// writes the serial loop would have performed inline.
pub(crate) fn apply_log(
    gmmu: &mut Gmmu,
    dir: &mut ShootdownDirectory,
    trace: &mut Option<Vec<TraceEvent>>,
    log: &mut Vec<LogEntry>,
) {
    for entry in log.drain(..) {
        match entry.kind {
            LogKind::Access {
                page,
                write,
                done,
                warp,
            } => {
                gmmu.record_access(page, write);
                if let Some(trace) = trace {
                    trace.push(TraceEvent {
                        cycle: done,
                        page,
                        warp,
                        write,
                    });
                }
            }
            LogKind::NoteFill { page, sm } => dir.note_fill(page, sm),
            LogKind::NoteDrop { page, sm } => dir.note_drop(page, sm),
        }
    }
}
