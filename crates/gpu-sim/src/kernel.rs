//! Kernel and thread-block descriptions consumed by the engine.

use uvm_types::{PageId, VirtAddr};

/// One coalesced memory access issued by a warp.
///
/// The load/store unit coalesces the per-lane addresses of a warp
/// instruction into unique page-granular requests before they reach
/// the TLB (paper Sec. 2.1); workloads emit accesses at that
/// granularity, optionally via [`coalesce_pages`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Access {
    /// Target virtual address.
    pub addr: VirtAddr,
    /// `true` for a store (sets the PTE dirty flag).
    pub write: bool,
}

impl Access {
    /// A read access.
    pub fn read(addr: VirtAddr) -> Self {
        Access { addr, write: false }
    }

    /// A write access.
    pub fn write(addr: VirtAddr) -> Self {
        Access { addr, write: true }
    }

    /// The 4 KB page this access touches.
    pub fn page(&self) -> PageId {
        self.addr.page()
    }
}

/// Coalesces the per-lane addresses of one warp instruction into
/// unique page-granular accesses, preserving first-occurrence order.
///
/// # Examples
///
/// ```
/// use uvm_gpu::coalesce_pages;
/// use uvm_types::VirtAddr;
///
/// let lanes: Vec<VirtAddr> = (0..32).map(|i| VirtAddr::new(i * 128)).collect();
/// let pages = coalesce_pages(&lanes);
/// assert_eq!(pages.len(), 1); // 32 lanes x 128 B fit in one 4 KB page
/// ```
pub fn coalesce_pages(lane_addrs: &[VirtAddr]) -> Vec<PageId> {
    let mut pages = Vec::new();
    for addr in lane_addrs {
        let p = addr.page();
        if !pages.contains(&p) {
            pages.push(p);
        }
    }
    pages
}

/// The access stream of one thread block (executed as one warp-actor
/// by the engine).
///
/// Streams are stored flat: every workload's access pattern is finite
/// and known at kernel-build time, so materialising it up front lets
/// the engine compile all blocks into one reusable arena
/// ([`KernelSpec::compile_into`]) and walk them by cursor, with zero
/// per-access allocation or dynamic dispatch on the simulation hot
/// path.
#[derive(Clone, Debug)]
pub struct ThreadBlockSpec {
    accesses: Vec<Access>,
}

impl ThreadBlockSpec {
    /// Builds a thread block from any access sequence.
    pub fn from_accesses<I>(accesses: I) -> Self
    where
        I: IntoIterator<Item = Access>,
    {
        ThreadBlockSpec {
            accesses: accesses.into_iter().collect(),
        }
    }

    /// Number of accesses in the block's stream.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// `true` if the block issues no accesses.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Consumes the spec, yielding its access stream.
    pub fn into_accesses(self) -> std::vec::IntoIter<Access> {
        self.accesses.into_iter()
    }
}

/// One kernel launch: a named grid of thread blocks.
#[derive(Clone, Debug)]
pub struct KernelSpec {
    name: String,
    blocks: Vec<ThreadBlockSpec>,
}

impl KernelSpec {
    /// Creates an empty kernel named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        KernelSpec {
            name: name.into(),
            blocks: Vec::new(),
        }
    }

    /// Adds a thread block (builder style).
    pub fn with_block(mut self, block: ThreadBlockSpec) -> Self {
        self.blocks.push(block);
        self
    }

    /// Adds a thread block.
    pub fn push_block(&mut self, block: ThreadBlockSpec) {
        self.blocks.push(block);
    }

    /// The kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of thread blocks in the grid.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total accesses across every block.
    pub fn total_accesses(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }

    /// Consumes the kernel, yielding its blocks.
    pub fn into_blocks(self) -> Vec<ThreadBlockSpec> {
        self.blocks
    }

    /// Flattens every block's stream into `arena` (cleared first, so an
    /// engine-owned arena's allocation is reused across kernels),
    /// returning the kernel's per-block chunk table.
    pub fn compile_into(self, arena: &mut Vec<Access>) -> CompiledKernel {
        arena.clear();
        arena.reserve(self.total_accesses());
        let mut chunks = Vec::with_capacity(self.blocks.len());
        for block in self.blocks {
            let start = arena.len();
            arena.extend_from_slice(&block.accesses);
            chunks.push((start, arena.len()));
        }
        CompiledKernel {
            name: self.name,
            chunks,
        }
    }
}

/// A kernel flattened into an access arena: each block is a
/// `(start, end)` window the engine walks by cursor.
#[derive(Clone, Debug)]
pub struct CompiledKernel {
    name: String,
    chunks: Vec<(usize, usize)>,
}

impl CompiledKernel {
    /// The kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of thread blocks.
    pub fn num_blocks(&self) -> usize {
        self.chunks.len()
    }

    /// Block `i`'s `(start, end)` window into the arena.
    pub fn chunk(&self, i: usize) -> (usize, usize) {
        self.chunks[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_constructors() {
        let a = Access::read(VirtAddr::new(4096));
        assert!(!a.write);
        assert_eq!(a.page(), PageId::new(1));
        let w = Access::write(VirtAddr::new(0));
        assert!(w.write);
    }

    #[test]
    fn coalesce_dedupes_and_preserves_order() {
        let addrs = vec![
            VirtAddr::new(8192),
            VirtAddr::new(0),
            VirtAddr::new(8200),
            VirtAddr::new(100),
        ];
        let pages = coalesce_pages(&addrs);
        assert_eq!(pages, vec![PageId::new(2), PageId::new(0)]);
    }

    #[test]
    fn kernel_builder() {
        let k = KernelSpec::new("k")
            .with_block(ThreadBlockSpec::from_accesses(std::iter::empty()))
            .with_block(ThreadBlockSpec::from_accesses(vec![Access::read(
                VirtAddr::new(0),
            )]));
        assert_eq!(k.name(), "k");
        assert_eq!(k.num_blocks(), 2);
        assert_eq!(k.total_accesses(), 1);
        let blocks = k.into_blocks();
        assert_eq!(blocks.len(), 2);
        assert_eq!(
            blocks.into_iter().nth(1).unwrap().into_accesses().count(),
            1
        );
    }

    #[test]
    fn compile_flattens_blocks_and_reuses_arena() {
        let mk = |lo: u64, n: u64| {
            ThreadBlockSpec::from_accesses((lo..lo + n).map(|i| Access::read(VirtAddr::new(i))))
        };
        let k = KernelSpec::new("k")
            .with_block(mk(0, 3))
            .with_block(mk(10, 2));
        let mut arena = Vec::new();
        let c = k.compile_into(&mut arena);
        assert_eq!(c.name(), "k");
        assert_eq!(c.num_blocks(), 2);
        assert_eq!(c.chunk(0), (0, 3));
        assert_eq!(c.chunk(1), (3, 5));
        assert_eq!(arena.len(), 5);
        assert_eq!(arena[3], Access::read(VirtAddr::new(10)));

        // A second kernel reuses the arena storage.
        let cap = arena.capacity();
        let c2 = KernelSpec::new("k2")
            .with_block(mk(0, 4))
            .compile_into(&mut arena);
        assert_eq!(c2.chunk(0), (0, 4));
        assert!(arena.capacity() >= cap);
    }
}
