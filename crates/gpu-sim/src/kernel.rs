//! Kernel and thread-block descriptions consumed by the engine.

use uvm_types::{PageId, VirtAddr};

/// One coalesced memory access issued by a warp.
///
/// The load/store unit coalesces the per-lane addresses of a warp
/// instruction into unique page-granular requests before they reach
/// the TLB (paper Sec. 2.1); workloads emit accesses at that
/// granularity, optionally via [`coalesce_pages`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Access {
    /// Target virtual address.
    pub addr: VirtAddr,
    /// `true` for a store (sets the PTE dirty flag).
    pub write: bool,
}

impl Access {
    /// A read access.
    pub fn read(addr: VirtAddr) -> Self {
        Access { addr, write: false }
    }

    /// A write access.
    pub fn write(addr: VirtAddr) -> Self {
        Access { addr, write: true }
    }

    /// The 4 KB page this access touches.
    pub fn page(&self) -> PageId {
        self.addr.page()
    }
}

/// Coalesces the per-lane addresses of one warp instruction into
/// unique page-granular accesses, preserving first-occurrence order.
///
/// # Examples
///
/// ```
/// use uvm_gpu::coalesce_pages;
/// use uvm_types::VirtAddr;
///
/// let lanes: Vec<VirtAddr> = (0..32).map(|i| VirtAddr::new(i * 128)).collect();
/// let pages = coalesce_pages(&lanes);
/// assert_eq!(pages.len(), 1); // 32 lanes x 128 B fit in one 4 KB page
/// ```
pub fn coalesce_pages(lane_addrs: &[VirtAddr]) -> Vec<PageId> {
    let mut pages = Vec::new();
    for addr in lane_addrs {
        let p = addr.page();
        if !pages.contains(&p) {
            pages.push(p);
        }
    }
    pages
}

/// The access stream of one thread block (executed as one warp-actor
/// by the engine).
pub struct ThreadBlockSpec {
    accesses: Box<dyn Iterator<Item = Access> + Send>,
}

impl ThreadBlockSpec {
    /// Builds a thread block from any access iterator.
    pub fn from_accesses<I>(accesses: I) -> Self
    where
        I: IntoIterator<Item = Access>,
        I::IntoIter: Send + 'static,
    {
        ThreadBlockSpec {
            accesses: Box::new(accesses.into_iter()),
        }
    }

    /// Consumes the spec, yielding its access iterator.
    pub fn into_accesses(self) -> Box<dyn Iterator<Item = Access> + Send> {
        self.accesses
    }
}

impl std::fmt::Debug for ThreadBlockSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadBlockSpec").finish_non_exhaustive()
    }
}

/// One kernel launch: a named grid of thread blocks.
#[derive(Debug)]
pub struct KernelSpec {
    name: String,
    blocks: Vec<ThreadBlockSpec>,
}

impl KernelSpec {
    /// Creates an empty kernel named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        KernelSpec {
            name: name.into(),
            blocks: Vec::new(),
        }
    }

    /// Adds a thread block (builder style).
    pub fn with_block(mut self, block: ThreadBlockSpec) -> Self {
        self.blocks.push(block);
        self
    }

    /// Adds a thread block.
    pub fn push_block(&mut self, block: ThreadBlockSpec) {
        self.blocks.push(block);
    }

    /// The kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of thread blocks in the grid.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Consumes the kernel, yielding its blocks.
    pub fn into_blocks(self) -> Vec<ThreadBlockSpec> {
        self.blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_constructors() {
        let a = Access::read(VirtAddr::new(4096));
        assert!(!a.write);
        assert_eq!(a.page(), PageId::new(1));
        let w = Access::write(VirtAddr::new(0));
        assert!(w.write);
    }

    #[test]
    fn coalesce_dedupes_and_preserves_order() {
        let addrs = vec![
            VirtAddr::new(8192),
            VirtAddr::new(0),
            VirtAddr::new(8200),
            VirtAddr::new(100),
        ];
        let pages = coalesce_pages(&addrs);
        assert_eq!(pages, vec![PageId::new(2), PageId::new(0)]);
    }

    #[test]
    fn kernel_builder() {
        let k = KernelSpec::new("k")
            .with_block(ThreadBlockSpec::from_accesses(std::iter::empty()))
            .with_block(ThreadBlockSpec::from_accesses(vec![Access::read(
                VirtAddr::new(0),
            )]));
        assert_eq!(k.name(), "k");
        assert_eq!(k.num_blocks(), 2);
        let blocks = k.into_blocks();
        assert_eq!(blocks.len(), 2);
        assert_eq!(
            blocks.into_iter().nth(1).unwrap().into_accesses().count(),
            1
        );
    }
}
