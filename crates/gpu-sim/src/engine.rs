//! The discrete-event engine: SMs, warp actors, TLBs, fault replay.
//!
//! The per-event hot path is allocation-free and O(1) per step: warp
//! events flow through a calendar [`EventQueue`], access streams are
//! pre-compiled into an engine-owned arena walked by cursor, per-SM
//! TLB operations are hash-indexed, and eviction shootdowns consult a
//! [`ShootdownDirectory`] so only the TLBs actually holding a page are
//! touched. See DESIGN.md §7 for the design and its exactness
//! argument — the schedules produced are bit-identical to the original
//! heap-and-scan implementation.

use std::sync::atomic::{AtomicU64, Ordering};

use uvm_core::Gmmu;
use uvm_mem::{RadixWalkModel, ShootdownDirectory, Tlb, TlbLookup};
use uvm_types::{Cycle, Duration, PageId};

use crate::kernel::{Access, KernelSpec};
use crate::queue::EventQueue;
use crate::shard::{apply_log, DispatchedBlock, EpochCtx, LogEntry, PendingFault, Shard, Stop};

/// One completed page access in a captured trace (the raw data of the
/// paper's Fig. 12 scatter, with warp attribution for per-warp
/// pattern analysis).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Completion cycle of the access.
    pub cycle: Cycle,
    /// Page touched.
    pub page: PageId,
    /// Index of the warp (thread block) that issued the access.
    pub warp: usize,
    /// `true` for a store.
    pub write: bool,
}

/// GPU-side configuration (paper Table 2 defaults: 28 Pascal SMs).
#[derive(Clone, Debug)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Thread blocks resident per SM at a time.
    pub blocks_per_sm: usize,
    /// Entries in each SM's fully associative TLB.
    pub tlb_entries: usize,
    /// Device-memory access latency on a TLB hit.
    pub mem_latency: Duration,
    /// Compute delay between a warp's consecutive coalesced accesses.
    pub compute_delay: Duration,
    /// Watchdog: abort if a single kernel exceeds this many simulated
    /// cycles (`None` = no limit). Guards against pathological
    /// eviction/refault cycles in exploratory configurations.
    pub max_kernel_cycles: Option<u64>,
    /// Optional detailed page-walk model: `Some((per-level latency,
    /// walk-cache entries))` replaces the flat Table 2 walk latency
    /// with a 4-level radix walk ([`RadixWalkModel`]).
    pub radix_walk: Option<(Duration, usize)>,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            num_sms: 28,
            blocks_per_sm: 8,
            tlb_entries: 64,
            mem_latency: Duration::from_cycles(300),
            compute_delay: Duration::from_cycles(20),
            max_kernel_cycles: None,
            radix_walk: None,
        }
    }
}

/// Outcome of one kernel launch.
#[derive(Clone, Debug)]
pub struct KernelResult {
    /// Kernel name.
    pub name: String,
    /// Launch-to-completion time.
    pub time: Duration,
    /// Cycle at which the kernel completed.
    pub end: Cycle,
}

/// State of one warp actor: a cursor over its arena chunk.
struct WarpState {
    /// Next access to issue, as an index into the engine's arena.
    cursor: usize,
    /// One past the warp's last arena index.
    end: usize,
    /// The access currently being attempted (replayed after a fault).
    current: Option<Access>,
    /// SM this warp's thread block runs on.
    sm: usize,
    /// Static same-cycle tiebreak: the warp's position in the SM-major
    /// dispatch enumeration. Events at equal cycles pop in ascending
    /// rank, making the schedule a pure function of `(cycle, warp)` —
    /// see [`EventQueue::push_keyed`].
    rank: u64,
    done: bool,
}

/// The GPU engine: owns the [`Gmmu`] and executes kernels on it.
///
/// Kernels run to completion one after another, modelling the
/// `cudaDeviceSynchronize` between iterative launches of the paper's
/// benchmarks; device state (page table, LRU lists, statistics)
/// persists across launches.
///
/// Between launches the engine can be frozen into an
/// [`EngineSnapshot`] and forked, so a sweep's shared warm-up prefix
/// simulates once (see DESIGN.md §8).
#[derive(Clone)]
pub struct Engine {
    gmmu: Gmmu,
    cfg: GpuConfig,
    tlbs: Vec<Tlb>,
    /// Per-page generation counters + TLB holder sets, replacing the
    /// all-SM invalidate broadcast on page eviction.
    shootdown: ShootdownDirectory,
    /// Warp event calendar, reused (empty) across kernel launches.
    queue: EventQueue<usize>,
    /// Flattened access streams of the running kernel; storage reused
    /// across launches.
    arena: Vec<Access>,
    walker: Option<RadixWalkModel>,
    now: Cycle,
    trace: Option<Vec<TraceEvent>>,
    /// `UVM_DEBUG_FAULTS` presence, sampled once at construction.
    debug_faults: bool,
    /// Sharded-execution width (see DESIGN.md §13): number of SM
    /// shards kernels run across. `1` = the serial loop, `0` = size to
    /// the host's parallelism at launch. Result-inert: every width
    /// produces the byte-identical schedule, so this is *not* part of
    /// checkpoints or snapshots.
    engine_threads: usize,
}

impl Engine {
    /// Creates an engine over `gmmu`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.num_sms` or `cfg.blocks_per_sm` is zero.
    pub fn new(gmmu: Gmmu, cfg: GpuConfig) -> Self {
        assert!(cfg.num_sms > 0, "need at least one SM");
        assert!(cfg.blocks_per_sm > 0, "need at least one block per SM");
        let tlbs = (0..cfg.num_sms)
            .map(|_| Tlb::new(cfg.tlb_entries))
            .collect();
        let walker = cfg
            .radix_walk
            .map(|(per_level, entries)| RadixWalkModel::new(per_level, entries));
        let shootdown = ShootdownDirectory::new(cfg.num_sms);
        Engine {
            gmmu,
            cfg,
            tlbs,
            shootdown,
            queue: EventQueue::new(),
            arena: Vec::new(),
            walker,
            now: Cycle::ZERO,
            trace: None,
            debug_faults: std::env::var_os("UVM_DEBUG_FAULTS").is_some(),
            engine_threads: 1,
        }
    }

    /// Sets the sharded-execution width: `n > 1` partitions the SMs
    /// across `n` shards with deterministic epoch barriers, `1`
    /// selects the serial loop, and `0` sizes to the host's available
    /// parallelism at each launch. The schedule is byte-identical at
    /// every width; kernels that sharding cannot cover (a radix-walk
    /// model, a single SM, ≥ 2¹⁶ thread blocks) silently run serial.
    pub fn set_engine_threads(&mut self, n: usize) {
        self.engine_threads = n;
    }

    /// The configured sharded-execution width (`0` = auto).
    pub fn engine_threads(&self) -> usize {
        self.engine_threads
    }

    /// The driver model (shared, read-only).
    pub fn gmmu(&self) -> &Gmmu {
        &self.gmmu
    }

    /// The driver model (mutable, e.g. for additional allocations
    /// between kernels).
    pub fn gmmu_mut(&mut self) -> &mut Gmmu {
        &mut self.gmmu
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Starts capturing a [`TraceEvent`] for every completed access
    /// (the raw data of the paper's Fig. 12).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Takes the captured access trace, leaving capture enabled. The
    /// next trace buffer is pre-sized from the taken trace's length,
    /// so steady-state capture (one take per kernel) does not regrow
    /// from zero capacity each launch.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        match &mut self.trace {
            Some(trace) => {
                let taken = std::mem::take(trace);
                *trace = Vec::with_capacity(taken.len());
                taken
            }
            None => Vec::new(),
        }
    }

    /// Runs `kernel` to completion and returns its execution time.
    /// The engine clock advances to the kernel's end.
    pub fn run_kernel(&mut self, kernel: KernelSpec) -> Duration {
        self.run_kernel_detailed(kernel).time
    }

    /// Runs `kernel` to completion with a detailed result.
    pub fn run_kernel_detailed(&mut self, kernel: KernelSpec) -> KernelResult {
        let start = self.now;
        let mut arena = std::mem::take(&mut self.arena);
        let compiled = kernel.compile_into(&mut arena);
        self.arena = arena;
        let name = compiled.name().to_owned();
        if let Some(trace) = &mut self.trace {
            trace.reserve(self.arena.len());
        }

        // Dispatch: TBs are distributed round-robin; each SM runs at
        // most `blocks_per_sm` concurrently, starting queued TBs as
        // earlier ones finish.
        let mut warps: Vec<WarpState> = Vec::with_capacity(compiled.num_blocks());
        let mut sm_queues: Vec<Vec<usize>> = vec![Vec::new(); self.cfg.num_sms];
        for i in 0..compiled.num_blocks() {
            let sm = i % self.cfg.num_sms;
            let (cursor, end) = compiled.chunk(i);
            warps.push(WarpState {
                cursor,
                end,
                current: None,
                sm,
                rank: 0,
                done: false,
            });
            sm_queues[sm].push(i);
        }
        // Same-cycle ranks follow the SM-major dispatch enumeration
        // (all of SM0's blocks, then SM1's, ...), matching the order
        // the initial pushes historically queued in.
        let mut rank = 0u64;
        for q in &sm_queues {
            for &w in q {
                warps[w].rank = rank;
                rank += 1;
            }
        }
        // Sharded execution covers every configuration the packed
        // barrier key can express; anything else (and explicit width
        // 1) takes the serial loop below.
        if let Some(n) = self.shard_count(compiled.num_blocks(), start) {
            return self.run_kernel_sharded(name, start, &warps, &sm_queues, n);
        }

        // Queues were filled in dispatch order; pop from the front.
        for q in &mut sm_queues {
            q.reverse();
        }

        debug_assert!(self.queue.is_empty(), "previous kernel drained the queue");
        let mut active_per_sm = vec![0usize; self.cfg.num_sms];
        for sm in 0..self.cfg.num_sms {
            while active_per_sm[sm] < self.cfg.blocks_per_sm {
                let Some(w) = sm_queues[sm].pop() else { break };
                active_per_sm[sm] += 1;
                self.queue.push_keyed(start, warps[w].rank, w);
            }
        }

        let mut end = start;
        let mut last_popped = start;
        while let Some((t, w)) = self.queue.pop() {
            debug_assert!(
                t >= last_popped,
                "event time went backwards: {t} after {last_popped}"
            );
            last_popped = t;
            if let Some(cap) = self.cfg.max_kernel_cycles {
                let fi = &self.gmmu.stats().fault_injection;
                assert!(
                    t.since(start).cycles() <= cap,
                    "watchdog: kernel {name} exceeded {cap} cycles \
                     (far-faults {}, evicted {}, thrashed {}; injected: \
                     transfer retries {}, migration retries {}, \
                     emergency evictions {}, jitter cycles {})",
                    self.gmmu.stats().far_faults,
                    self.gmmu.stats().pages_evicted,
                    self.gmmu.stats().pages_thrashed,
                    fi.transfer_retries,
                    fi.migration_retries,
                    fi.emergency_evictions,
                    fi.jitter_cycles,
                );
            }
            let warp = &mut warps[w];
            if warp.done {
                continue;
            }
            if warp.current.is_none() && warp.cursor < warp.end {
                warp.current = Some(self.arena[warp.cursor]);
                warp.cursor += 1;
            }
            let Some(access) = warp.current else {
                // Warp retired: start the next queued TB on its SM.
                warp.done = true;
                end = end.max(t);
                let sm = warp.sm;
                active_per_sm[sm] -= 1;
                if let Some(next) = sm_queues[sm].pop() {
                    active_per_sm[sm] += 1;
                    self.queue.push_keyed(t, warps[next].rank, next);
                }
                continue;
            };

            let page = access.page();
            let sm = warp.sm;
            let rank = warp.rank;
            // Huge-page fast path: a coalesced 2 MB mapping serves the
            // whole large page out of one side-table TLB entry. Entries
            // are epoch-stamped, so one splinter (epoch bump) stales
            // them on every SM at once — no per-SM invalidation walk.
            if let Some(epoch) = self.gmmu.huge_translation(page.large_page(), t) {
                if self.tlbs[sm].lookup_huge(page.large_page(), epoch) {
                    let done = t + Duration::from_cycles(1) + self.cfg.mem_latency;
                    self.complete_access(access, done, w);
                    warps[w].current = None;
                    self.queue
                        .push_keyed(done + self.cfg.compute_delay, rank, w);
                    continue;
                }
            }
            let generation = self.shootdown.generation(page);
            match self.tlbs[sm].lookup_gen(page, generation) {
                TlbLookup::Hit => {
                    // 1-cycle lookup + device memory access.
                    let done = t + Duration::from_cycles(1) + self.cfg.mem_latency;
                    self.complete_access(access, done, w);
                    warps[w].current = None;
                    self.queue
                        .push_keyed(done + self.cfg.compute_delay, rank, w);
                }
                TlbLookup::Miss => {
                    let walk_latency = match &mut self.walker {
                        Some(w) => w.walk(page),
                        None => self.gmmu.config().walk_latency,
                    };
                    let walked = t + Duration::from_cycles(1) + walk_latency;
                    if !self.gmmu.is_resident(page) {
                        // Far-fault: the driver migrates (and possibly
                        // prefetches / evicts); the access replays when
                        // the faulty page's data arrives.
                        let res = self.gmmu.handle_fault(page, walked);
                        if self.debug_faults {
                            eprintln!(
                                "t={} w={w} fault pg{} ready={} evicted={}",
                                t.index(),
                                page.index(),
                                res.fault_page_ready().index(),
                                res.evicted.len()
                            );
                        }
                        for &evicted in res.shootdowns() {
                            // New generation, then reclaim the holders'
                            // slots so TLB occupancy matches an eager
                            // broadcast exactly.
                            self.shootdown.bump(evicted);
                            let tlbs = &mut self.tlbs;
                            self.shootdown.drain_holders(evicted, |unit| {
                                tlbs[unit].invalidate(evicted);
                            });
                        }
                        self.queue.push_keyed(res.fault_page_ready(), rank, w);
                    } else if let Some(ready) = self.gmmu.ready_time(page, walked) {
                        // In-flight prefetch: stall until the data lands
                        // (the MSHR-merge path — the migration already
                        // has an owner).
                        self.queue.push_keyed(ready, rank, w);
                    } else if let Some(epoch) =
                        self.gmmu.huge_translation(page.large_page(), walked)
                    {
                        // The walk resolved a coalesced large page: fill
                        // the huge side table (epoch-validated, so it
                        // needs no shootdown-directory tracking) instead
                        // of a 4 KB slot.
                        self.tlbs[sm].fill_huge(page.large_page(), epoch);
                        let done = walked + self.cfg.mem_latency;
                        self.complete_access(access, done, w);
                        warps[w].current = None;
                        self.queue
                            .push_keyed(done + self.cfg.compute_delay, rank, w);
                    } else {
                        // The lookup above just missed, so the page is
                        // certainly absent: take the no-reprobe fill.
                        if let Some(victim) = self.tlbs[sm].fill_after_miss(page, generation) {
                            self.shootdown.note_drop(victim, sm);
                        }
                        self.shootdown.note_fill(page, sm);
                        let done = walked + self.cfg.mem_latency;
                        self.complete_access(access, done, w);
                        warps[w].current = None;
                        self.queue
                            .push_keyed(done + self.cfg.compute_delay, rank, w);
                    }
                }
            }
        }

        self.now = end;
        KernelResult {
            name,
            time: end.since(start),
            end,
        }
    }

    /// Freezes the engine into a forkable [`EngineSnapshot`].
    ///
    /// Everything the simulation's future depends on is captured: the
    /// GMMU (page/frame tables, policy state, PCI-e channel backlog,
    /// RNG streams, statistics), all per-SM TLBs, the shootdown
    /// directory, the walk-cache model, the calendar event queue, the
    /// clock, and the trace buffer. Per-warp arena cursors are kernel-
    /// local (the access arena is recompiled per launch), which is why
    /// snapshots are only legal at a launch boundary.
    ///
    /// # Panics
    ///
    /// Panics if called mid-kernel (events still queued): per-warp
    /// state would be lost.
    pub fn snapshot(&self) -> EngineSnapshot {
        assert!(
            self.queue.is_empty(),
            "engine snapshot mid-kernel: the event queue still holds warp events"
        );
        EngineSnapshot {
            inner: self.clone(),
        }
    }

    /// Serializes the full engine state for a durable checkpoint.
    ///
    /// Only legal at a kernel boundary, like [`snapshot`](Self::snapshot):
    /// per-warp cursors are kernel-local, so the event queue must be
    /// drained. The GPU configuration is *not* stored — the restore
    /// path rebuilds the engine from the same `RunOptions` — but
    /// structural parameters (SM count, radix-walk presence) are
    /// cross-checked on load so a checkpoint can never be restored
    /// into a differently shaped machine.
    ///
    /// # Panics
    ///
    /// Panics if called mid-kernel (events still queued).
    pub fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        assert!(
            self.queue.is_empty(),
            "engine checkpoint mid-kernel: the event queue still holds warp events"
        );
        w.put_u64(self.now.index());
        self.gmmu.save_state(w);
        w.put_usize(self.tlbs.len());
        for tlb in &self.tlbs {
            tlb.save_state(w);
        }
        self.shootdown.save_state(w);
        match &self.walker {
            Some(walker) => {
                w.put_bool(true);
                walker.save_state(w);
            }
            None => w.put_bool(false),
        }
        match &self.trace {
            Some(trace) => {
                w.put_bool(true);
                w.put_usize(trace.len());
                for ev in trace {
                    w.put_u64(ev.cycle.index());
                    w.put_u64(ev.page.index());
                    w.put_usize(ev.warp);
                    w.put_bool(ev.write);
                }
            }
            None => w.put_bool(false),
        }
    }

    /// Restores a [`save_state`](Self::save_state) image into an engine
    /// freshly built from the same configuration.
    pub fn load_state(
        &mut self,
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<(), uvm_core::CheckpointError> {
        use uvm_core::CheckpointError;

        self.now = Cycle::new(r.get_u64()?);
        self.gmmu.load_state(r)?;
        let num_tlbs = r.get_usize()?;
        if num_tlbs != self.cfg.num_sms {
            return Err(CheckpointError::Incompatible(format!(
                "checkpoint has {num_tlbs} SM TLBs but this run is configured for {}",
                self.cfg.num_sms
            )));
        }
        self.tlbs = (0..num_tlbs)
            .map(|_| Tlb::load_state(r))
            .collect::<Result<_, _>>()?;
        self.shootdown = ShootdownDirectory::load_state(r)?;
        if self.shootdown.num_units() != self.cfg.num_sms {
            return Err(CheckpointError::Incompatible(format!(
                "checkpoint shootdown directory tracks {} units but this run has {} SMs",
                self.shootdown.num_units(),
                self.cfg.num_sms
            )));
        }
        let has_walker = r.get_bool()?;
        if has_walker != self.walker.is_some() {
            return Err(CheckpointError::Incompatible(format!(
                "checkpoint {} a radix-walk model but this run {}",
                if has_walker { "carries" } else { "lacks" },
                if self.walker.is_some() {
                    "expects one"
                } else {
                    "does not"
                },
            )));
        }
        if has_walker {
            self.walker = Some(RadixWalkModel::load_state(r)?);
        }
        self.trace = if r.get_bool()? {
            let n = r.get_usize()?;
            let mut trace = Vec::with_capacity(n);
            for _ in 0..n {
                trace.push(TraceEvent {
                    cycle: Cycle::new(r.get_u64()?),
                    page: PageId::new(r.get_u64()?),
                    warp: r.get_usize()?,
                    write: r.get_bool()?,
                });
            }
            Some(trace)
        } else {
            None
        };
        Ok(())
    }

    /// Audits the engine-level invariants on top of
    /// [`Gmmu::audit`]: every cached TLB translation must be
    /// consistent with the shootdown directory's generation counters
    /// and holder bits, both directions, and every cached huge-page
    /// epoch must be bounded by the driver's current epoch.
    ///
    /// The strong form holds because the engine always pairs
    /// `bump(evicted)` with an immediate `drain_holders`, so a stale
    /// entry or dangling holder bit can never survive an eviction.
    /// Read-only and schedule-inert.
    pub fn audit(&self) -> Result<(), uvm_core::AuditError> {
        let mut violations = match self.gmmu.audit() {
            Ok(()) => Vec::new(),
            Err(e) => e.violations,
        };
        // Per-SM maps of what each TLB currently caches, for O(1)
        // cross-checks in both directions.
        let held: Vec<std::collections::HashMap<PageId, u32>> = self
            .tlbs
            .iter()
            .map(|tlb| tlb.iter_entries().collect())
            .collect();
        for (sm, entries) in held.iter().enumerate() {
            for (&page, &gen) in entries {
                let current = self.shootdown.generation(page);
                if gen > current {
                    violations.push(format!(
                        "SM{sm} TLB caches {page} at generation {gen}, \
                         ahead of the directory's {current}"
                    ));
                } else if gen == current {
                    if !self.gmmu.is_resident(page) {
                        violations.push(format!(
                            "SM{sm} TLB holds a live translation for non-resident {page}"
                        ));
                    }
                    if !self.shootdown.holders_of(page).contains(&sm) {
                        violations.push(format!(
                            "SM{sm} TLB holds {page} but its holder bit is clear"
                        ));
                    }
                }
            }
        }
        for (page, sm) in self.shootdown.iter_holders() {
            match held.get(sm).and_then(|entries| entries.get(&page)) {
                Some(&gen) if gen == self.shootdown.generation(page) => {}
                Some(&gen) => violations.push(format!(
                    "holder bit says SM{sm} caches {page} but its entry is stale \
                     (generation {gen} vs {})",
                    self.shootdown.generation(page)
                )),
                None => violations.push(format!(
                    "holder bit says SM{sm} caches {page} but its TLB has no entry"
                )),
            }
        }
        for (sm, tlb) in self.tlbs.iter().enumerate() {
            for (lp, epoch) in tlb.iter_huge() {
                match self.gmmu.huge_epoch(lp) {
                    Some(current) if epoch <= current => {}
                    Some(current) => violations.push(format!(
                        "SM{sm} huge TLB caches {lp} at epoch {epoch}, \
                         ahead of the driver's {current}"
                    )),
                    None => violations.push(format!("SM{sm} huge TLB caches never-promoted {lp}")),
                }
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(uvm_core::AuditError { violations })
        }
    }

    /// Resolves the configured sharded-execution width against this
    /// kernel: `Some(n > 1)` selects sharded mode. Kernels the packed
    /// barrier key cannot express (≥ 2¹⁶ blocks, astronomical clocks)
    /// and configurations sharding does not model (a radix-walk
    /// model's shared walk cache) fall back to the serial loop, as do
    /// empty launches.
    fn shard_count(&self, num_blocks: usize, start: Cycle) -> Option<usize> {
        let n = match self.engine_threads {
            0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
            n => n,
        };
        let n = n.min(self.cfg.num_sms);
        (n > 1
            && self.walker.is_none()
            && num_blocks > 0
            && num_blocks < (1 << crate::shard::RANK_BITS)
            && start.index() < (1 << 47))
            .then_some(n)
    }

    /// Sharded kernel execution (DESIGN.md §13): the SMs are
    /// partitioned into `n` contiguous shards that simulate SM-local
    /// epochs against frozen GMMU/directory views, rendezvousing at
    /// every GMMU-serialized event. The schedule — fault order, RNG
    /// draws, statistics, traces, final machine state — is
    /// byte-identical to the serial loop at every `n`.
    ///
    /// `sm_queues` is still in dispatch order (not yet reversed) and
    /// `warps` carries the initial cursors and global ranks.
    fn run_kernel_sharded(
        &mut self,
        name: String,
        start: Cycle,
        warps: &[WarpState],
        sm_queues: &[Vec<usize>],
        n: usize,
    ) -> KernelResult {
        debug_assert!(self.queue.is_empty(), "previous kernel drained the queue");
        let num_sms = self.cfg.num_sms;
        // Contiguous SM partition; the first `num_sms % n` shards own
        // one extra SM.
        let (width, extra) = (num_sms / n, num_sms % n);
        let mut shard_of_sm = Vec::with_capacity(num_sms);
        let mut shards: Vec<Shard> = Vec::with_capacity(n);
        let mut tlbs = std::mem::take(&mut self.tlbs).into_iter();
        let mut sm = 0usize;
        for si in 0..n {
            let owned = width + usize::from(si < extra);
            let sm_lo = sm;
            let mut blocks: Vec<Vec<DispatchedBlock>> = Vec::with_capacity(owned);
            let mut shard_tlbs = Vec::with_capacity(owned);
            for _ in 0..owned {
                shard_tlbs.push(tlbs.next().expect("one TLB per SM"));
                blocks.push(
                    sm_queues[sm]
                        .iter()
                        .map(|&w| DispatchedBlock {
                            rank: warps[w].rank,
                            id: w,
                            cursor: warps[w].cursor,
                            end: warps[w].end,
                        })
                        .collect(),
                );
                shard_of_sm.push(si);
                sm += 1;
            }
            shards.push(Shard::new(
                sm_lo,
                shard_tlbs,
                &blocks,
                self.cfg.blocks_per_sm,
                start,
            ));
        }
        debug_assert!(tlbs.next().is_none(), "partition covered every SM");

        let bound = AtomicU64::new(u64::MAX);
        let walk_latency = self.gmmu.config().walk_latency;
        let os_workers = resolve_os_workers(n);
        macro_rules! epoch_ctx {
            ($journal:expr, $budget:expr) => {
                EpochCtx {
                    gmmu: &self.gmmu,
                    dir: &self.shootdown,
                    arena: &self.arena,
                    bound: &bound,
                    start,
                    mem_latency: self.cfg.mem_latency,
                    compute_delay: self.cfg.compute_delay,
                    walk_latency,
                    max_kernel_cycles: self.cfg.max_kernel_cycles,
                    journal: $journal,
                    budget: $budget,
                }
            };
        }

        if os_workers <= 1 {
            // Cooperative courier: always advance the shard owning the
            // globally next event, one event at a time, committing its
            // effects immediately. This is the exact serial interleave
            // — no speculation, no journal, no rollback — so the
            // single-worker overhead is one frontier scan per event.
            let mut next: Vec<Option<u64>> = shards.iter_mut().map(Shard::frontier).collect();
            loop {
                let mut si = usize::MAX;
                let mut best = u64::MAX;
                for (i, k) in next.iter().enumerate() {
                    if let Some(k) = *k {
                        if k < best {
                            best = k;
                            si = i;
                        }
                    }
                }
                if si == usize::MAX {
                    break;
                }
                let ctx = epoch_ctx!(false, Some(1));
                let stop = shards[si].run_epoch(&ctx);
                apply_log(
                    &mut self.gmmu,
                    &mut self.shootdown,
                    &mut self.trace,
                    shards[si].log_mut(),
                );
                match stop {
                    Stop::Fault { fault, .. } => {
                        self.fault_barrier(&mut shards, &shard_of_sm, si, &fault);
                        // `run_epoch` published the fault key as the
                        // speculation bound; with no sibling workers
                        // the bound only wedges, so lift it.
                        bound.store(u64::MAX, Ordering::Relaxed);
                    }
                    Stop::Watchdog { t, .. } => self.watchdog_panic(&name, t, start),
                    Stop::Paused | Stop::Done => {}
                }
                next[si] = shards[si].frontier();
            }
        } else {
            // Threaded courier: every epoch, all shards speculate in
            // parallel (journaled, budgeted), then rendezvous. The
            // barrier frontier `k` is the first event in canonical
            // order not yet safely committed: the minimum over every
            // fault/watchdog key and every paused/done shard's next
            // event. Everything past `k` rolls back; everything below
            // commits; if `k` itself is a fault or watchdog it is
            // serviced exactly as the serial loop would.
            const EPOCH_BUDGET: usize = 256;
            loop {
                bound.store(u64::MAX, Ordering::Relaxed);
                let ctx = epoch_ctx!(true, Some(EPOCH_BUDGET));
                let stops: Vec<Stop> = std::thread::scope(|scope| {
                    let ctx = &ctx;
                    let handles: Vec<_> = shards
                        .iter_mut()
                        .map(|shard| scope.spawn(move || shard.run_epoch(ctx)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard worker panicked"))
                        .collect()
                });
                let mut k = u64::MAX;
                let mut winner: Option<usize> = None;
                for (i, stop) in stops.iter().enumerate() {
                    let key = match stop {
                        Stop::Paused | Stop::Done => shards[i].frontier().unwrap_or(u64::MAX),
                        stopped => stopped.key(),
                    };
                    // Keys are globally unique (one outstanding event
                    // per live warp), so strict `<` is total.
                    if key < k {
                        k = key;
                        winner = match stop {
                            Stop::Fault { .. } | Stop::Watchdog { .. } => Some(i),
                            Stop::Paused | Stop::Done => None,
                        };
                    }
                }
                for shard in &mut shards {
                    shard.rollback(k);
                }
                let mut entries: Vec<LogEntry> = Vec::new();
                for shard in &mut shards {
                    entries.append(shard.log_mut());
                }
                // Stable by packed key: within one event the entry
                // order (drop before fill before access) is the push
                // order, and keys never tie across shards.
                entries.sort_by_key(|e| e.packed);
                apply_log(
                    &mut self.gmmu,
                    &mut self.shootdown,
                    &mut self.trace,
                    &mut entries,
                );
                for shard in &mut shards {
                    shard.commit();
                }
                match winner {
                    Some(i) => match &stops[i] {
                        Stop::Fault { fault, .. } => {
                            let fault = *fault;
                            self.fault_barrier(&mut shards, &shard_of_sm, i, &fault);
                        }
                        Stop::Watchdog { t, .. } => self.watchdog_panic(&name, *t, start),
                        Stop::Paused | Stop::Done => unreachable!("winner is a stop key"),
                    },
                    None if k == u64::MAX => break,
                    None => {}
                }
            }
        }

        let mut end = start;
        for shard in &shards {
            end = end.max(shard.end());
        }
        self.tlbs = shards.into_iter().flat_map(Shard::into_tlbs).collect();
        self.now = end;
        KernelResult {
            name,
            time: end.since(start),
            end,
        }
    }

    /// Services a far-fault at a barrier: exactly the serial loop's
    /// fault block, with TLB shootdowns routed to the owning shards
    /// and the replay wake queued on the faulting shard.
    fn fault_barrier(
        &mut self,
        shards: &mut [Shard],
        shard_of_sm: &[usize],
        si: usize,
        f: &PendingFault,
    ) {
        let res = self.gmmu.handle_fault(f.page, f.walked);
        if self.debug_faults {
            eprintln!(
                "t={} w={} fault pg{} ready={} evicted={}",
                f.t.index(),
                f.warp_id,
                f.page.index(),
                res.fault_page_ready().index(),
                res.evicted.len()
            );
        }
        for &evicted in res.shootdowns() {
            // New generation, then reclaim the holders' slots so TLB
            // occupancy matches an eager broadcast exactly.
            self.shootdown.bump(evicted);
            self.shootdown.drain_holders(evicted, |unit| {
                shards[shard_of_sm[unit]].invalidate(unit, evicted);
            });
        }
        shards[si].push_wake(res.fault_page_ready(), f.local);
    }

    /// Trips the watchdog with the serial loop's exact panic message.
    fn watchdog_panic(&self, name: &str, t: Cycle, start: Cycle) -> ! {
        let cap = self
            .cfg
            .max_kernel_cycles
            .expect("watchdog tripped without a cap");
        debug_assert!(t.since(start).cycles() > cap);
        let fi = &self.gmmu.stats().fault_injection;
        panic!(
            "watchdog: kernel {name} exceeded {cap} cycles \
             (far-faults {}, evicted {}, thrashed {}; injected: \
             transfer retries {}, migration retries {}, \
             emergency evictions {}, jitter cycles {})",
            self.gmmu.stats().far_faults,
            self.gmmu.stats().pages_evicted,
            self.gmmu.stats().pages_thrashed,
            fi.transfer_retries,
            fi.migration_retries,
            fi.emergency_evictions,
            fi.jitter_cycles,
        );
    }

    fn complete_access(&mut self, access: Access, done: Cycle, warp: usize) {
        self.gmmu.record_access(access.page(), access.write);
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent {
                cycle: done,
                page: access.page(),
                warp,
                write: access.write,
            });
        }
    }
}

/// OS worker threads for the sharded epoch executor:
/// `UVM_ENGINE_OS_THREADS` when set (lenient — unparsable values fall
/// back to 1), else the host's available parallelism, capped at the
/// shard count. At one worker the courier runs the shards
/// cooperatively inline, which needs no OS threads at all. Schedule-
/// inert either way: this only picks the executor, never the result.
fn resolve_os_workers(n: usize) -> usize {
    let workers = match std::env::var("UVM_ENGINE_OS_THREADS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism().map_or(1, |p| p.get()),
    };
    workers.min(n)
}

/// A frozen engine state captured between kernel launches.
///
/// Snapshots are immutable and `Send + Sync`: a sweep executor shares
/// one behind an `Arc` and every worker [`fork`](Self::fork)s its own
/// independent [`Engine`] from it. Forks are deep copies — running one
/// can never perturb the snapshot or a sibling fork (the differential
/// suite in `tests/fork_equivalence.rs` pins this down).
#[derive(Clone)]
pub struct EngineSnapshot {
    inner: Engine,
}

impl EngineSnapshot {
    /// A fresh, fully independent engine resuming from this snapshot.
    pub fn fork(&self) -> Engine {
        self.inner.clone()
    }

    /// The frozen driver state (read-only).
    pub fn gmmu(&self) -> &Gmmu {
        &self.inner.gmmu
    }

    /// The frozen clock.
    pub fn now(&self) -> Cycle {
        self.inner.now
    }

    /// Serializes the frozen state (a snapshot is always at a kernel
    /// boundary, so this cannot panic).
    pub fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        self.inner.save_state(w);
    }

    /// Audits the frozen state (see [`Engine::audit`]).
    pub fn audit(&self) -> Result<(), uvm_core::AuditError> {
        self.inner.audit()
    }
}

impl std::fmt::Debug for EngineSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineSnapshot")
            .field("now", &self.inner.now)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("num_sms", &self.cfg.num_sms)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ThreadBlockSpec;
    use uvm_core::{EvictPolicy, PrefetchPolicy, UvmConfig};
    use uvm_types::{Bytes, VirtAddr};

    fn engine_with(cfg: UvmConfig, alloc: Bytes) -> (Engine, VirtAddr) {
        let mut gmmu = Gmmu::new(cfg);
        let base = gmmu.malloc_managed(alloc);
        (Engine::new(gmmu, GpuConfig::default()), base)
    }

    fn seq_reads(base: VirtAddr, pages: u64) -> ThreadBlockSpec {
        ThreadBlockSpec::from_accesses(
            (0..pages).map(move |i| Access::read(base.offset(Bytes::kib(4) * i))),
        )
    }

    #[test]
    fn empty_kernel_takes_no_time() {
        let (mut e, _) = engine_with(UvmConfig::default(), Bytes::mib(1));
        let t = e.run_kernel(KernelSpec::new("empty"));
        assert_eq!(t, Duration::ZERO);
    }

    #[test]
    fn single_access_pays_fault_and_migration() {
        let (mut e, base) = engine_with(
            UvmConfig::default().with_prefetch(PrefetchPolicy::None),
            Bytes::mib(1),
        );
        let t = e.run_kernel(KernelSpec::new("one").with_block(seq_reads(base, 1)));
        // 1 (TLB) + 100 (walk) + 45us + 4KB transfer + 300 (mem) + ...
        assert!(t > Duration::from_micros(45.0));
        assert!(t < Duration::from_micros(60.0));
        assert_eq!(e.gmmu().stats().far_faults, 1);
    }

    #[test]
    fn tlb_hits_after_first_touch() {
        let (mut e, base) = engine_with(
            UvmConfig::default().with_prefetch(PrefetchPolicy::None),
            Bytes::mib(1),
        );
        // Access the same page 100 times.
        let k = KernelSpec::new("hot").with_block(ThreadBlockSpec::from_accesses(
            (0..100).map(move |_| Access::read(base)),
        ));
        e.run_kernel(k);
        assert_eq!(e.gmmu().stats().far_faults, 1);
        // Second launch touches it again: still no fault.
        let k = KernelSpec::new("hot2").with_block(ThreadBlockSpec::from_accesses(
            std::iter::once(Access::read(base)),
        ));
        e.run_kernel(k);
        assert_eq!(e.gmmu().stats().far_faults, 1);
    }

    #[test]
    fn prefetched_pages_do_not_refault() {
        let (mut e, base) = engine_with(
            UvmConfig::default().with_prefetch(PrefetchPolicy::SequentialLocal),
            Bytes::mib(1),
        );
        e.run_kernel(KernelSpec::new("s").with_block(seq_reads(base, 64)));
        // 64 pages = 4 basic blocks = 4 faults with SLp.
        assert_eq!(e.gmmu().stats().far_faults, 4);
        assert_eq!(e.gmmu().stats().pages_migrated, 64);
    }

    #[test]
    fn kernels_serialize_and_clock_advances() {
        let (mut e, base) = engine_with(UvmConfig::default(), Bytes::mib(1));
        let r1 = e.run_kernel_detailed(KernelSpec::new("a").with_block(seq_reads(base, 8)));
        assert_eq!(e.now(), r1.end);
        let r2 = e.run_kernel_detailed(KernelSpec::new("b").with_block(seq_reads(base, 8)));
        assert!(r2.end >= r1.end);
        assert_eq!(r2.name, "b");
    }

    #[test]
    fn multiple_blocks_share_the_machine() {
        let (mut e, base) = engine_with(
            UvmConfig::default().with_prefetch(PrefetchPolicy::None),
            Bytes::mib(4),
        );
        let mut k = KernelSpec::new("par");
        for b in 0..56 {
            // Each block reads its own page: 56 faults, but they share
            // the driver, so time is dominated by 56 serialized faults.
            let page_base = base.offset(Bytes::kib(4) * b);
            k.push_block(ThreadBlockSpec::from_accesses(std::iter::once(
                Access::read(page_base),
            )));
        }
        let t = e.run_kernel(k);
        assert_eq!(e.gmmu().stats().far_faults, 56);
        // All faults raised around t=0 drain through the default 8
        // fault lanes: at least ceil(56/8) = 7 serialized windows.
        assert!(t > Duration::from_micros(45.0 * 6.0));
        assert!(t < Duration::from_micros(45.0 * 20.0));
    }

    #[test]
    fn concurrent_faults_on_same_page_merge() {
        let (mut e, base) = engine_with(
            UvmConfig::default().with_prefetch(PrefetchPolicy::None),
            Bytes::mib(1),
        );
        let mut k = KernelSpec::new("merge");
        for _ in 0..10 {
            k.push_block(ThreadBlockSpec::from_accesses(std::iter::once(
                Access::read(base),
            )));
        }
        e.run_kernel(k);
        // Ten warps, one page: a single migration.
        assert_eq!(e.gmmu().stats().far_faults, 1);
        assert_eq!(e.gmmu().stats().pages_migrated, 1);
    }

    #[test]
    fn eviction_shoots_down_tlbs_and_refaults() {
        let cfg = UvmConfig::default()
            .with_capacity(Bytes::kib(256)) // 64 frames
            .with_prefetch(PrefetchPolicy::None)
            .with_evict(EvictPolicy::LruPage);
        let (mut e, base) = engine_with(cfg, Bytes::mib(1));
        // Two sweeps over 128 pages with a 64-frame budget.
        e.run_kernel(KernelSpec::new("sweep1").with_block(seq_reads(base, 128)));
        let faults_after_first = e.gmmu().stats().far_faults;
        assert_eq!(faults_after_first, 128);
        e.run_kernel(KernelSpec::new("sweep2").with_block(seq_reads(base, 128)));
        // LRU on a linear re-scan thrashes: every page refaults.
        assert_eq!(e.gmmu().stats().far_faults, 256);
        assert!(e.gmmu().stats().pages_thrashed >= 128);
    }

    #[test]
    fn trace_captures_accesses() {
        let (mut e, base) = engine_with(UvmConfig::default(), Bytes::mib(1));
        e.enable_trace();
        e.run_kernel(KernelSpec::new("t").with_block(seq_reads(base, 4)));
        let trace = e.take_trace();
        assert_eq!(trace.len(), 4);
        let pages: Vec<u64> = trace.iter().map(|ev| ev.page.index()).collect();
        assert_eq!(pages, vec![0, 1, 2, 3]);
        assert!(trace.iter().all(|ev| ev.warp == 0 && !ev.write));
        // Trace is consumed but capture stays on.
        e.run_kernel(KernelSpec::new("t2").with_block(seq_reads(base, 2)));
        assert_eq!(e.take_trace().len(), 2);
    }

    #[test]
    fn radix_walk_model_shortens_warm_walks() {
        // Same kernel, flat vs radix walks: the radix walker's warm
        // walks (25 cycles) beat the flat 100-cycle walk for a
        // sequential scan, so the run is strictly faster.
        let run = |radix: Option<(Duration, usize)>| {
            let mut gmmu =
                Gmmu::new(UvmConfig::default().with_prefetch(PrefetchPolicy::SequentialLocal));
            let base = gmmu.malloc_managed(Bytes::mib(1));
            let mut e = Engine::new(
                gmmu,
                GpuConfig {
                    radix_walk: radix,
                    ..GpuConfig::default()
                },
            );
            e.run_kernel(KernelSpec::new("scan").with_block(seq_reads(base, 256)))
        };
        let flat = run(None);
        let radix = run(Some((Duration::from_cycles(25), 32)));
        assert!(radix < flat, "radix {radix} vs flat {flat}");
    }

    #[test]
    fn fault_injection_is_deterministic_at_the_engine_level() {
        use uvm_core::FaultPlan;
        // A full engine replay under the chaos plan: two engines with
        // the same seed produce identical times and stats; a seeded
        // but all-zero-probability plan matches the unarmed engine.
        let run = |plan: FaultPlan| {
            let cfg = UvmConfig::default()
                .with_capacity(Bytes::kib(256))
                .with_prefetch(PrefetchPolicy::None)
                .with_evict(EvictPolicy::LruPage)
                .with_fault_plan(plan);
            let (mut e, base) = engine_with(cfg, Bytes::mib(1));
            let t = e.run_kernel(KernelSpec::new("sweep").with_block(seq_reads(base, 128)));
            (t, e.gmmu().stats().clone())
        };
        let chaos = FaultPlan::chaos().with_seed(0xfa11);
        let (t1, s1) = run(chaos);
        let (t2, s2) = run(chaos);
        assert_eq!(t1, t2);
        assert_eq!(s1, s2);
        assert!(!s1.fault_injection.is_clean(), "chaos injects something");

        let (t_clean, s_clean) = run(FaultPlan::none());
        let (t_inert, s_inert) = run(FaultPlan::none().with_seed(0xfa11));
        assert_eq!(t_clean, t_inert, "an inert plan draws no randomness");
        assert_eq!(s_clean, s_inert);
        assert!(s_clean.fault_injection.is_clean());
        assert!(t1 > t_clean, "injected faults cost time");
    }

    #[test]
    fn arena_is_reused_across_kernels() {
        let (mut e, base) = engine_with(UvmConfig::default(), Bytes::mib(1));
        e.run_kernel(KernelSpec::new("a").with_block(seq_reads(base, 64)));
        let cap = e.arena.capacity();
        assert!(cap >= 64);
        e.run_kernel(KernelSpec::new("b").with_block(seq_reads(base, 32)));
        assert_eq!(e.arena.capacity(), cap, "smaller kernel reuses the arena");
    }

    /// Builds a fresh engine from `cfg`, restores `image` into it, and
    /// checks the restored engine re-serializes identically.
    fn restore(image: &[u8], cfg: UvmConfig, alloc: Bytes) -> Engine {
        let mut gmmu = Gmmu::new(cfg);
        gmmu.malloc_managed(alloc);
        let mut e = Engine::new(gmmu, GpuConfig::default());
        let mut r = uvm_types::codec::ByteReader::new(image);
        e.load_state(&mut r).unwrap();
        r.finish().unwrap();
        e.audit().unwrap();
        let mut w = uvm_types::codec::ByteWriter::new();
        e.save_state(&mut w);
        assert_eq!(image, w.into_bytes(), "restored engine diverges");
        e
    }

    #[test]
    fn checkpoint_resume_is_byte_identical_under_thrashing() {
        let cfg = UvmConfig::default()
            .with_capacity(Bytes::kib(256))
            .with_prefetch(PrefetchPolicy::SequentialLocal)
            .with_evict(EvictPolicy::LruPage);
        let (mut e, base) = engine_with(cfg.clone(), Bytes::mib(1));
        e.run_kernel(KernelSpec::new("warm").with_block(seq_reads(base, 128)));
        e.audit().unwrap();
        let mut w = uvm_types::codec::ByteWriter::new();
        e.save_state(&mut w);
        let image = w.into_bytes();
        let mut resumed = restore(&image, cfg, Bytes::mib(1));
        // Both engines run the same second kernel: identical timing,
        // stats, and a second checkpoint with identical bytes.
        let t1 = e.run_kernel(KernelSpec::new("again").with_block(seq_reads(base, 128)));
        let t2 = resumed.run_kernel(KernelSpec::new("again").with_block(seq_reads(base, 128)));
        assert_eq!(t1, t2);
        assert_eq!(e.gmmu().stats(), resumed.gmmu().stats());
        let (mut w1, mut w2) = (
            uvm_types::codec::ByteWriter::new(),
            uvm_types::codec::ByteWriter::new(),
        );
        e.save_state(&mut w1);
        resumed.save_state(&mut w2);
        assert_eq!(w1.into_bytes(), w2.into_bytes());
        e.audit().unwrap();
        resumed.audit().unwrap();
    }

    #[test]
    fn checkpoint_resume_replays_chaos_identically() {
        use uvm_core::FaultPlan;
        let cfg = UvmConfig::default()
            .with_capacity(Bytes::kib(256))
            .with_prefetch(PrefetchPolicy::None)
            .with_evict(EvictPolicy::LruPage)
            .with_fault_plan(FaultPlan::chaos().with_seed(0xfa11));
        // Reference: uninterrupted two-kernel run.
        let (mut reference, base) = engine_with(cfg.clone(), Bytes::mib(1));
        reference.run_kernel(KernelSpec::new("a").with_block(seq_reads(base, 128)));
        let t_ref = reference.run_kernel(KernelSpec::new("b").with_block(seq_reads(base, 96)));
        // Checkpointed: same first kernel, save, restore, second kernel.
        let (mut e, base) = engine_with(cfg.clone(), Bytes::mib(1));
        e.run_kernel(KernelSpec::new("a").with_block(seq_reads(base, 128)));
        e.audit().unwrap();
        let mut w = uvm_types::codec::ByteWriter::new();
        e.save_state(&mut w);
        let mut resumed = restore(&w.into_bytes(), cfg, Bytes::mib(1));
        let t = resumed.run_kernel(KernelSpec::new("b").with_block(seq_reads(base, 96)));
        assert_eq!(t, t_ref, "resume diverged from the uninterrupted run");
        assert_eq!(resumed.gmmu().stats(), reference.gmmu().stats());
        assert!(!resumed.gmmu().stats().fault_injection.is_clean());
    }

    #[test]
    fn checkpoint_rejects_mismatched_machine_shape() {
        let (mut e, base) = engine_with(UvmConfig::default(), Bytes::mib(1));
        e.run_kernel(KernelSpec::new("k").with_block(seq_reads(base, 8)));
        let mut w = uvm_types::codec::ByteWriter::new();
        e.save_state(&mut w);
        let image = w.into_bytes();
        let mut gmmu = Gmmu::new(UvmConfig::default());
        gmmu.malloc_managed(Bytes::mib(1));
        let mut other = Engine::new(
            gmmu,
            GpuConfig {
                num_sms: 4,
                ..GpuConfig::default()
            },
        );
        let mut r = uvm_types::codec::ByteReader::new(&image);
        let err = other.load_state(&mut r).unwrap_err();
        assert!(
            matches!(err, uvm_core::CheckpointError::Incompatible(_)),
            "{err}"
        );
    }

    #[test]
    fn audit_catches_a_stale_holder_bit() {
        let (mut e, base) = engine_with(
            UvmConfig::default().with_prefetch(PrefetchPolicy::None),
            Bytes::mib(1),
        );
        e.run_kernel(KernelSpec::new("k").with_block(seq_reads(base, 4)));
        e.audit().unwrap();
        // Plant a holder bit for a page no TLB caches: the reverse
        // cross-check must flag it.
        e.shootdown.note_fill(base.page().add(100), 3);
        let err = e.audit().unwrap_err();
        assert!(
            err.violations.iter().any(|v| v.contains("holder bit")),
            "{err}"
        );
    }

    /// Two kernels under eviction pressure (strided multi-block sweep,
    /// then a thrashing linear re-scan), returning every observable:
    /// times, stats, trace, and the serialized machine state.
    fn thrashing_observables(
        threads: usize,
    ) -> (
        Duration,
        Duration,
        uvm_core::UvmStats,
        Vec<TraceEvent>,
        Vec<u8>,
    ) {
        let cfg = UvmConfig::default()
            .with_capacity(Bytes::kib(256))
            .with_prefetch(PrefetchPolicy::SequentialLocal)
            .with_evict(EvictPolicy::LruPage);
        let mut gmmu = Gmmu::new(cfg);
        let base = gmmu.malloc_managed(Bytes::mib(1));
        let mut e = Engine::new(gmmu, GpuConfig::default());
        e.set_engine_threads(threads);
        e.enable_trace();
        let mut k = KernelSpec::new("strided");
        for b in 0..56u64 {
            k.push_block(ThreadBlockSpec::from_accesses((0..24u64).map(move |i| {
                Access::read(base.offset(Bytes::kib(4) * ((b * 4 + i * 3) % 256)))
            })));
        }
        let t1 = e.run_kernel(k);
        let t2 = e.run_kernel(KernelSpec::new("rescan").with_block(seq_reads(base, 200)));
        e.audit().unwrap();
        let trace = e.take_trace();
        let mut w = uvm_types::codec::ByteWriter::new();
        e.save_state(&mut w);
        (t1, t2, e.gmmu().stats().clone(), trace, w.into_bytes())
    }

    #[test]
    fn sharded_execution_is_byte_identical_to_serial() {
        let serial = thrashing_observables(1);
        assert!(serial.2.pages_evicted > 0, "scenario must evict");
        for threads in [2, 3, 4, 8, 28, 0] {
            let sharded = thrashing_observables(threads);
            assert_eq!(serial.0, sharded.0, "kernel 1 time at {threads} shards");
            assert_eq!(serial.1, sharded.1, "kernel 2 time at {threads} shards");
            assert_eq!(serial.2, sharded.2, "stats at {threads} shards");
            assert_eq!(serial.3, sharded.3, "trace at {threads} shards");
            assert_eq!(serial.4, sharded.4, "state bytes at {threads} shards");
        }
    }

    #[test]
    fn sharded_threaded_executor_is_byte_identical_to_serial() {
        // Force the journaled multi-worker executor (speculation,
        // rollback, epoch barriers) even on a single-CPU host; width 1
        // never consults the executor, so the serial baseline is
        // unaffected by the env var.
        std::env::set_var("UVM_ENGINE_OS_THREADS", "4");
        let serial = thrashing_observables(1);
        for threads in [2, 4, 28] {
            let sharded = thrashing_observables(threads);
            assert_eq!(serial.0, sharded.0, "kernel 1 time at {threads} shards");
            assert_eq!(serial.1, sharded.1, "kernel 2 time at {threads} shards");
            assert_eq!(serial.2, sharded.2, "stats at {threads} shards");
            assert_eq!(serial.3, sharded.3, "trace at {threads} shards");
            assert_eq!(serial.4, sharded.4, "state bytes at {threads} shards");
        }
        std::env::remove_var("UVM_ENGINE_OS_THREADS");
    }

    #[test]
    fn sharded_replays_chaos_identically() {
        use uvm_core::FaultPlan;
        let run = |threads: usize| {
            let cfg = UvmConfig::default()
                .with_capacity(Bytes::kib(256))
                .with_prefetch(PrefetchPolicy::None)
                .with_evict(EvictPolicy::LruPage)
                .with_fault_plan(FaultPlan::chaos().with_seed(0xfa11));
            let mut gmmu = Gmmu::new(cfg);
            let base = gmmu.malloc_managed(Bytes::mib(1));
            let mut e = Engine::new(gmmu, GpuConfig::default());
            e.set_engine_threads(threads);
            let mut k = KernelSpec::new("chaos");
            for b in 0..40u64 {
                k.push_block(ThreadBlockSpec::from_accesses((0..16u64).map(move |i| {
                    Access::read(base.offset(Bytes::kib(4) * ((b * 7 + i) % 128)))
                })));
            }
            let t = e.run_kernel(k);
            e.audit().unwrap();
            let mut w = uvm_types::codec::ByteWriter::new();
            e.save_state(&mut w);
            (t, e.gmmu().stats().clone(), w.into_bytes())
        };
        let serial = run(1);
        assert!(
            !serial.1.fault_injection.is_clean(),
            "chaos must inject something"
        );
        for threads in [2, 4, 28] {
            assert_eq!(serial, run(threads), "chaos replay at {threads} shards");
        }
    }

    #[test]
    fn sharded_watchdog_trips_with_the_serial_message() {
        let run = |threads: usize| {
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut gmmu = Gmmu::new(UvmConfig::default().with_prefetch(PrefetchPolicy::None));
                let base = gmmu.malloc_managed(Bytes::mib(1));
                let mut e = Engine::new(
                    gmmu,
                    GpuConfig {
                        max_kernel_cycles: Some(50_000),
                        ..GpuConfig::default()
                    },
                );
                e.set_engine_threads(threads);
                let mut k = KernelSpec::new("wd");
                for b in 0..8u64 {
                    k.push_block(seq_reads(base.offset(Bytes::kib(4) * (b * 16)), 16));
                }
                e.run_kernel(k);
            }))
            .expect_err("the watchdog must trip");
            *err.downcast::<String>().expect("panic carries a message")
        };
        let serial = run(1);
        assert!(serial.contains("watchdog: kernel wd exceeded"), "{serial}");
        assert_eq!(serial, run(4), "sharded watchdog message diverged");
    }

    #[test]
    #[should_panic(expected = "at least one SM")]
    fn zero_sms_rejected() {
        let gmmu = Gmmu::new(UvmConfig::default());
        let _ = Engine::new(
            gmmu,
            GpuConfig {
                num_sms: 0,
                ..GpuConfig::default()
            },
        );
    }
}
