//! Calendar-based event queue for the engine's warp scheduler.
//!
//! The engine's event stream is near-monotone: pops advance cycle time,
//! and every push lands at or after the last popped cycle, almost
//! always within a few hundred cycles (TLB-hit latency) with a 1-in-N
//! tail at the far-fault latency (~66 k cycles). A binary heap pays
//! O(log n) per operation and compares `(Cycle, seq)` tuples all the
//! way down; this calendar (ladder) queue instead hashes each event to
//! a time bucket — push is O(1) amortised, and pop only sorts the one
//! small bucket currently being drained.
//!
//! Layout: a ring of `n` buckets each spanning `2^shift` cycles
//! (default 256-cycle buckets, 512 buckets = a 131 k-cycle horizon that
//! covers the far-fault hop), an occupancy bitmap so advancing to the
//! next non-empty bucket is a word scan, and an overflow min-heap for
//! events beyond the horizon, migrated into the ring as the calendar
//! advances. The bucket being drained is kept sorted descending in
//! `cur` and popped from the back; same-bucket pushes insert in order.
//!
//! Ordering contract (the engine's schedule depends on it): events pop
//! in ascending `(cycle, push order)` — ties on cycle break FIFO, with
//! the sequence number assigned internally at push. This is exactly the
//! order `BinaryHeap<Reverse<(Cycle, u64, T)>>` produced, which the
//! differential test in `tests/properties.rs` pins down.
//!
//! Precondition: pushes never precede the last popped cycle (the
//! engine's event causality). Events pushed earlier than that would
//! still pop — ordered among the not-yet-popped — but cannot rewind
//! already-popped history.

use std::collections::BinaryHeap;

use uvm_types::Cycle;

/// An event beyond the calendar horizon, parked in the overflow heap.
#[derive(Clone, Debug)]
struct Parked<T> {
    t: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Parked<T> {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}

impl<T> Eq for Parked<T> {}

impl<T> Ord for Parked<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed so the BinaryHeap (a max-heap) yields the earliest
        // (t, seq) first.
        (other.t, other.seq).cmp(&(self.t, self.seq))
    }
}

impl<T> PartialOrd for Parked<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A monotone priority queue over `(Cycle, FIFO order)`, bucketed by
/// cycle (calendar queue).
///
/// # Examples
///
/// ```
/// use uvm_gpu::EventQueue;
/// use uvm_types::Cycle;
///
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(10), "late");
/// q.push(Cycle::new(5), "early");
/// q.push(Cycle::new(5), "early-second");
/// assert_eq!(q.pop(), Some((Cycle::new(5), "early")));
/// assert_eq!(q.pop(), Some((Cycle::new(5), "early-second")));
/// assert_eq!(q.pop(), Some((Cycle::new(10), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue<T> {
    /// Ring of future buckets; slot `b % n` holds bucket `b` for
    /// `cur_bucket < b <= cur_bucket + n`. Unsorted.
    buckets: Vec<Vec<(Cycle, u64, T)>>,
    /// One bit per ring slot: slot non-empty.
    occupied: Vec<u64>,
    /// The bucket currently being drained, sorted descending by
    /// `(t, seq)` and popped from the back.
    cur: Vec<(Cycle, u64, T)>,
    /// Bucket number `cur` drains (`t >> shift`).
    cur_bucket: u64,
    /// Events beyond the ring horizon.
    overflow: BinaryHeap<Parked<T>>,
    /// Events currently in `buckets` (not `cur`, not `overflow`).
    ring_len: usize,
    /// Next push sequence number (FIFO tiebreak).
    seq: u64,
    len: usize,
    /// log2 of the bucket span in cycles.
    shift: u32,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// A queue with the engine's default geometry: 256-cycle buckets,
    /// 512-bucket ring (131 k-cycle horizon — past the far-fault hop).
    pub fn new() -> Self {
        Self::with_geometry(8, 512)
    }

    /// A queue with `2^shift`-cycle buckets and an `n_buckets` ring.
    ///
    /// # Panics
    ///
    /// Panics unless `n_buckets` is a non-zero multiple of 64 (the
    /// occupancy bitmap's word size).
    pub fn with_geometry(shift: u32, n_buckets: usize) -> Self {
        assert!(
            n_buckets > 0 && n_buckets.is_multiple_of(64),
            "ring size must be a non-zero multiple of 64"
        );
        EventQueue {
            buckets: (0..n_buckets).map(|_| Vec::new()).collect(),
            occupied: vec![0; n_buckets / 64],
            cur: Vec::new(),
            cur_bucket: 0,
            overflow: BinaryHeap::new(),
            ring_len: 0,
            seq: 0,
            len: 0,
            shift,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queues `payload` at cycle `t`. Events at the same cycle pop in
    /// push order.
    pub fn push(&mut self, t: Cycle, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.push_with(t, seq, payload);
    }

    /// Queues `payload` at cycle `t` with a caller-supplied tiebreak
    /// `key` in place of the internal FIFO sequence number: same-cycle
    /// events pop in ascending key order regardless of push order.
    ///
    /// The engine uses the warp index as the key, which makes the
    /// schedule a pure function of `(cycle, warp)` — re-pushing an
    /// event after a speculative rollback reproduces its exact queue
    /// position, which the internal sequence number cannot. Callers
    /// must not queue two live events with equal `(t, key)`; their
    /// relative order would fall back to insertion order.
    pub fn push_keyed(&mut self, t: Cycle, key: u64, payload: T) {
        self.push_with(t, key, payload);
    }

    fn push_with(&mut self, t: Cycle, seq: u64, payload: T) {
        self.len += 1;
        let bucket = t.index() >> self.shift;
        if bucket <= self.cur_bucket {
            // The bucket being drained (or, before any pop, the very
            // first): keep `cur` sorted descending. Insert after equal
            // `(t, seq)` entries so duplicates keep insertion order.
            let pos = self.cur.partition_point(|e| (e.0, e.1) > (t, seq));
            self.cur.insert(pos, (t, seq, payload));
        } else if bucket - self.cur_bucket <= self.buckets.len() as u64 {
            self.ring_insert(bucket, (t, seq, payload));
        } else {
            self.overflow.push(Parked { t, seq, payload });
        }
    }

    /// The `(cycle, key)` of the earliest queued event without
    /// removing it (`&mut` because the calendar may need to advance to
    /// the next occupied bucket — work the following [`pop`](Self::pop)
    /// then skips). The sharded engine's cooperative scheduler peeks
    /// every shard to find the globally earliest event.
    pub fn peek_key(&mut self) -> Option<(Cycle, u64)> {
        if self.cur.is_empty() && !self.refill() {
            return None;
        }
        self.cur.last().map(|&(t, seq, _)| (t, seq))
    }

    /// Removes and returns the earliest `(cycle, payload)`.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        if self.cur.is_empty() && !self.refill() {
            return None;
        }
        let (t, _seq, payload) = self.cur.pop().expect("refill produced an event");
        self.len -= 1;
        Some((t, payload))
    }

    /// Drops an event into its ring slot and marks it occupied.
    fn ring_insert(&mut self, bucket: u64, event: (Cycle, u64, T)) {
        let slot = (bucket % self.buckets.len() as u64) as usize;
        self.buckets[slot].push(event);
        self.occupied[slot / 64] |= 1 << (slot % 64);
        self.ring_len += 1;
    }

    /// Advances the calendar to the next non-empty bucket, refilling
    /// `cur`. Returns `false` when the queue is empty.
    fn refill(&mut self) -> bool {
        debug_assert!(self.cur.is_empty());
        if self.len == 0 {
            return false;
        }
        let n = self.buckets.len() as u64;
        if self.ring_len > 0 {
            // Earliest bucket = first occupied slot in circular order
            // after the current one (slot `base` itself can only hold
            // bucket `cur_bucket + n`, the far end of the horizon).
            let base = (self.cur_bucket % n) as usize;
            let slot = self.next_occupied(base);
            let mut delta = (slot as u64 + n - base as u64) % n;
            if delta == 0 {
                delta = n;
            }
            self.cur_bucket += delta;
            self.occupied[slot / 64] &= !(1 << (slot % 64));
            std::mem::swap(&mut self.buckets[slot], &mut self.cur);
            self.ring_len -= self.cur.len();
        } else {
            // Everything lives past the horizon: jump straight to the
            // earliest parked event's bucket.
            let top = self.overflow.peek().expect("len > 0 with empty ring");
            self.cur_bucket = top.t.index() >> self.shift;
        }
        // The calendar advanced: parked events may now fit the ring —
        // or `cur` itself. (Overflow events are strictly later than
        // every ring event, so migration never lands before
        // `cur_bucket`.)
        while let Some(top) = self.overflow.peek() {
            let bucket = top.t.index() >> self.shift;
            if bucket > self.cur_bucket + n {
                break;
            }
            let Parked { t, seq, payload } = self.overflow.pop().expect("peeked");
            if bucket == self.cur_bucket {
                self.cur.push((t, seq, payload));
            } else {
                self.ring_insert(bucket, (t, seq, payload));
            }
        }
        self.cur
            .sort_unstable_by_key(|e| std::cmp::Reverse((e.0, e.1)));
        debug_assert!(!self.cur.is_empty());
        true
    }

    /// First occupied ring slot strictly-circularly after `base`
    /// (wrapping around to `base` itself last). Caller guarantees the
    /// ring is non-empty.
    fn next_occupied(&self, base: usize) -> usize {
        let words = self.occupied.len();
        let start = (base + 1) % self.buckets.len();
        let mut word = start / 64;
        let mut mask = !0u64 << (start % 64);
        // `words + 1` iterations: the final pass re-checks the first
        // word without the mask, covering the wrapped-around slots.
        for _ in 0..=words {
            let bits = self.occupied[word] & mask;
            if bits != 0 {
                return word * 64 + bits.trailing_zeros() as usize;
            }
            mask = !0;
            word = (word + 1) % words;
        }
        unreachable!("ring_len > 0 but no occupied slot");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_cycle_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(300), 'c');
        q.push(Cycle::new(100), 'a');
        q.push(Cycle::new(200), 'b');
        assert_eq!(q.pop(), Some((Cycle::new(100), 'a')));
        assert_eq!(q.pop(), Some((Cycle::new(200), 'b')));
        assert_eq!(q.pop(), Some((Cycle::new(300), 'c')));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn same_cycle_pops_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(Cycle::new(7), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((Cycle::new(7), i)));
        }
    }

    #[test]
    fn push_into_draining_bucket_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), 'a');
        q.push(Cycle::new(12), 'c');
        assert_eq!(q.pop(), Some((Cycle::new(10), 'a')));
        // Same bucket as the event being drained, earlier than 'c'.
        q.push(Cycle::new(11), 'b');
        // Same cycle as 'c' but pushed later: FIFO puts it after.
        q.push(Cycle::new(12), 'd');
        assert_eq!(q.pop(), Some((Cycle::new(11), 'b')));
        assert_eq!(q.pop(), Some((Cycle::new(12), 'c')));
        assert_eq!(q.pop(), Some((Cycle::new(12), 'd')));
    }

    #[test]
    fn far_fault_hop_crosses_the_horizon() {
        // Tiny geometry: 4-cycle buckets, 64-bucket ring = 256-cycle
        // horizon, so the paper's 66k-cycle hop exercises overflow.
        let mut q = EventQueue::with_geometry(2, 64);
        q.push(Cycle::new(0), 'a');
        q.push(Cycle::new(66_645), 'z');
        q.push(Cycle::new(100), 'b');
        assert_eq!(q.pop(), Some((Cycle::new(0), 'a')));
        assert_eq!(q.pop(), Some((Cycle::new(100), 'b')));
        // Queue jumps straight to the parked event.
        assert_eq!(q.pop(), Some((Cycle::new(66_645), 'z')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn slot_aliasing_at_the_horizon_edge() {
        // bucket and bucket + n share a ring slot; both orders must
        // survive. 4-cycle buckets, 64 buckets: cycles 0 and 256 alias.
        let mut q = EventQueue::with_geometry(2, 64);
        q.push(Cycle::new(4), "a");
        assert_eq!(q.pop(), Some((Cycle::new(4), "a")));
        // Now cur_bucket = 1; slot 1 is the horizon's far edge
        // (bucket 65 = cycle 260..264).
        q.push(Cycle::new(261), "far");
        q.push(Cycle::new(8), "near");
        assert_eq!(q.pop(), Some((Cycle::new(8), "near")));
        assert_eq!(q.pop(), Some((Cycle::new(261), "far")));
    }

    #[test]
    fn drain_and_restart_much_later() {
        let mut q = EventQueue::with_geometry(2, 64);
        q.push(Cycle::new(1), 'a');
        assert_eq!(q.pop(), Some((Cycle::new(1), 'a')));
        assert_eq!(q.pop(), None);
        // Restart far past the old horizon.
        q.push(Cycle::new(1_000_000), 'b');
        q.push(Cycle::new(1_000_000), 'c');
        assert_eq!(q.pop(), Some((Cycle::new(1_000_000), 'b')));
        assert_eq!(q.pop(), Some((Cycle::new(1_000_000), 'c')));
    }

    #[test]
    fn keyed_pushes_pop_in_key_order_not_push_order() {
        let mut q = EventQueue::new();
        // Same cycle, keys out of push order: pops ascend by key.
        q.push_keyed(Cycle::new(7), 5, 'e');
        q.push_keyed(Cycle::new(7), 1, 'a');
        q.push_keyed(Cycle::new(7), 3, 'c');
        assert_eq!(q.pop(), Some((Cycle::new(7), 'a')));
        assert_eq!(q.pop(), Some((Cycle::new(7), 'c')));
        assert_eq!(q.pop(), Some((Cycle::new(7), 'e')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn keyed_pushes_are_reproducible_across_draining_and_overflow() {
        // The same (t, key) set pops identically no matter the push
        // order or which structure (cur / ring / overflow) each entry
        // landed in — the property the sharded engine's rollback
        // re-pushes rely on.
        let events: &[(u64, u64, u32)] = &[
            (10, 2, 0),
            (10, 0, 1),
            (300, 1, 2),
            (300, 0, 3),
            (66_645, 3, 4),
            (66_645, 1, 5),
        ];
        let drain = |order: &[usize]| {
            let mut q = EventQueue::with_geometry(2, 64);
            for &i in order {
                let (t, k, v) = events[i];
                q.push_keyed(Cycle::new(t), k, v);
            }
            let mut out = Vec::new();
            while let Some(e) = q.pop() {
                out.push(e);
            }
            out
        };
        let a = drain(&[0, 1, 2, 3, 4, 5]);
        let b = drain(&[5, 3, 1, 0, 2, 4]);
        assert_eq!(a, b);
        let keys: Vec<u32> = a.iter().map(|&(_, v)| v).collect();
        assert_eq!(keys, vec![1, 0, 3, 2, 5, 4]);
    }

    #[test]
    fn matches_binary_heap_on_random_churn() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        // Deterministic xorshift stream driving both queues through an
        // engine-like near-monotone workload.
        let mut rng = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut q = EventQueue::with_geometry(3, 64);
        let mut h: BinaryHeap<Reverse<(Cycle, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut id = 0u32;
        for _ in 0..200 {
            q.push(Cycle::new(now), id);
            h.push(Reverse((Cycle::new(now), seq, id)));
            seq += 1;
            id += 1;
        }
        for step in 0..5_000 {
            if step % 3 != 0 && !h.is_empty() {
                let Reverse((t, _, v)) = h.pop().expect("non-empty");
                assert_eq!(q.pop(), Some((t, v)), "divergence at step {step}");
                now = t.index();
            } else {
                let hop = match next() % 10 {
                    0 => 66_645,
                    1 => 0,
                    r => r * 37,
                };
                q.push(Cycle::new(now + hop), id);
                h.push(Reverse((Cycle::new(now + hop), seq, id)));
                seq += 1;
                id += 1;
            }
        }
        while let Some(Reverse((t, _, v))) = h.pop() {
            assert_eq!(q.pop(), Some((t, v)));
        }
        assert_eq!(q.pop(), None);
    }
}
