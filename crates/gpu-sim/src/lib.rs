//! Discrete-event GPU execution engine for the UVM simulator.
//!
//! This crate models the GPU side of the paper's Fig. 1 control flow:
//! warps issue coalesced memory accesses; each access performs a
//! single-cycle TLB lookup in its SM's fully associative TLB; a miss is
//! relayed to the GMMU for a 100-cycle page-table walk; an invalid PTE
//! raises a far-fault that the [`uvm_core::Gmmu`] driver services
//! (45 µs handling plus PCI-e migration), after which the access
//! replays.
//!
//! Compute is abstracted: every warp is a stream of page-granular
//! coalesced accesses separated by a configurable compute delay. This
//! keeps the memory system — the object of the paper's study — in full
//! detail while making kernels cheap to simulate.
//!
//! # Examples
//!
//! ```
//! use uvm_core::{Gmmu, UvmConfig};
//! use uvm_gpu::{Access, Engine, GpuConfig, KernelSpec, ThreadBlockSpec};
//! use uvm_types::Bytes;
//!
//! let mut gmmu = Gmmu::new(UvmConfig::default());
//! let base = gmmu.malloc_managed(Bytes::mib(1));
//! let mut engine = Engine::new(gmmu, GpuConfig::default());
//!
//! // One thread block streaming over 32 pages.
//! let kernel = KernelSpec::new("stream").with_block(ThreadBlockSpec::from_accesses(
//!     (0..32).map(move |i| Access::read(base.offset(Bytes::kib(4) * i))),
//! ));
//! let time = engine.run_kernel(kernel);
//! assert!(time.cycles() > 0);
//! assert_eq!(engine.gmmu().stats().far_faults, 2); // TBNp prefetched the rest
//! ```

mod engine;
mod kernel;
mod queue;
mod shard;

pub use engine::{Engine, EngineSnapshot, GpuConfig, KernelResult, TraceEvent};
pub use kernel::{coalesce_pages, Access, CompiledKernel, KernelSpec, ThreadBlockSpec};
pub use queue::EventQueue;
