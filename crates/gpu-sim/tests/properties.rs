//! Property-based tests for the execution engine: arbitrary access
//! streams run to completion with consistent accounting, regardless of
//! policies, budgets, and machine shapes.

use proptest::prelude::*;

use uvm_core::{EvictPolicy, Gmmu, PrefetchPolicy, UvmConfig};
use uvm_gpu::{Access, Engine, GpuConfig, KernelSpec, ThreadBlockSpec};
use uvm_types::{Bytes, Duration, PAGE_SIZE};

fn policies() -> impl Strategy<Value = (PrefetchPolicy, EvictPolicy)> {
    prop_oneof![
        Just((PrefetchPolicy::None, EvictPolicy::LruPage)),
        Just((PrefetchPolicy::SequentialLocal, EvictPolicy::SequentialLocal)),
        Just((
            PrefetchPolicy::TreeBasedNeighborhood,
            EvictPolicy::TreeBasedNeighborhood
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Far-faults never exceed total accesses (liveness), every access
    /// is eventually recorded (trace length), and kernel time grows
    /// monotonically with the number of kernels.
    #[test]
    fn engine_liveness_and_accounting(
        (prefetch, evict) in policies(),
        page_lists in prop::collection::vec(
            prop::collection::vec(0u64..256, 1..40),
            1..5,
        ),
        sms in 1usize..8,
        blocks_per_sm in 1usize..4,
        capacity_blocks in 6u64..20,
    ) {
        let cfg = UvmConfig::default()
            .with_capacity(Bytes::kib(64) * capacity_blocks)
            .with_prefetch(prefetch)
            .with_evict(evict);
        let mut gmmu = Gmmu::new(cfg);
        let base = gmmu.malloc_managed(Bytes::mib(1));
        let mut engine = Engine::new(
            gmmu,
            GpuConfig {
                num_sms: sms,
                blocks_per_sm,
                max_kernel_cycles: Some(2_000_000_000),
                ..GpuConfig::default()
            },
        );
        engine.enable_trace();

        let mut total_accesses = 0u64;
        let mut prev_end = engine.now();
        for (i, pages) in page_lists.iter().enumerate() {
            total_accesses += pages.len() as u64;
            let mut k = KernelSpec::new(format!("k{i}"));
            // Split the access list across a few thread blocks.
            for chunk in pages.chunks(8) {
                let accesses: Vec<Access> = chunk
                    .iter()
                    .map(|&p| Access::read(base.offset(PAGE_SIZE * p)))
                    .collect();
                k.push_block(ThreadBlockSpec::from_accesses(accesses));
            }
            let r = engine.run_kernel_detailed(k);
            prop_assert!(r.end >= prev_end, "time flows forward");
            prev_end = r.end;
        }

        let trace_len: usize = {
            let t = engine.take_trace();
            t.len()
        };
        prop_assert_eq!(trace_len as u64, total_accesses, "every access completes");
        let stats = engine.gmmu().stats();
        prop_assert!(stats.far_faults <= total_accesses, "liveness bound");
        prop_assert!(engine.gmmu().resident_pages() <= engine.gmmu().capacity_frames());
    }

    /// The engine's timing is deterministic for a fixed configuration.
    #[test]
    fn engine_is_deterministic(
        pages in prop::collection::vec(0u64..128, 1..60),
        (prefetch, evict) in policies(),
    ) {
        let run = || {
            let cfg = UvmConfig::default()
                .with_capacity(Bytes::kib(256))
                .with_prefetch(prefetch)
                .with_evict(evict);
            let mut gmmu = Gmmu::new(cfg);
            let base = gmmu.malloc_managed(Bytes::kib(512));
            let mut engine = Engine::new(gmmu, GpuConfig::default());
            let accesses: Vec<Access> = pages
                .iter()
                .map(|&p| Access::read(base.offset(PAGE_SIZE * p)))
                .collect();
            let t = engine.run_kernel(
                KernelSpec::new("k").with_block(ThreadBlockSpec::from_accesses(accesses)),
            );
            (t, engine.gmmu().stats().clone())
        };
        let (t1, s1) = run();
        let (t2, s2) = run();
        prop_assert_eq!(t1, t2);
        prop_assert_eq!(s1, s2);
    }

    /// Slower machines are never faster: increasing the compute delay
    /// never reduces kernel time.
    #[test]
    fn compute_delay_is_monotone(
        pages in prop::collection::vec(0u64..64, 1..40),
        delay_a in 0u64..200,
        delay_b in 0u64..200,
    ) {
        let run = |delay: u64| {
            let mut gmmu = Gmmu::new(UvmConfig::default());
            let base = gmmu.malloc_managed(Bytes::kib(512));
            let mut engine = Engine::new(
                gmmu,
                GpuConfig {
                    compute_delay: Duration::from_cycles(delay),
                    ..GpuConfig::default()
                },
            );
            let accesses: Vec<Access> = pages
                .iter()
                .map(|&p| Access::read(base.offset(PAGE_SIZE * p)))
                .collect();
            engine.run_kernel(
                KernelSpec::new("k").with_block(ThreadBlockSpec::from_accesses(accesses)),
            )
        };
        let (lo, hi) = (delay_a.min(delay_b), delay_a.max(delay_b));
        prop_assert!(run(lo) <= run(hi));
    }
}
