//! Randomized-property tests for the execution engine: arbitrary
//! access streams run to completion with consistent accounting,
//! regardless of policies, budgets, and machine shapes. Driven by
//! seeded `SmallRng` case loops.

use uvm_core::{EvictPolicy, Gmmu, PrefetchPolicy, UvmConfig};
use uvm_gpu::{Access, Engine, EventQueue, GpuConfig, KernelSpec, ThreadBlockSpec};
use uvm_types::rng::{Rng, SmallRng};
use uvm_types::{Bytes, Cycle, Duration, PAGE_SIZE};

const CASES: usize = 24;

fn pick_policies(rng: &mut SmallRng) -> (PrefetchPolicy, EvictPolicy) {
    match rng.gen_range(0u32..3) {
        0 => (PrefetchPolicy::None, EvictPolicy::LruPage),
        1 => (
            PrefetchPolicy::SequentialLocal,
            EvictPolicy::SequentialLocal,
        ),
        _ => (
            PrefetchPolicy::TreeBasedNeighborhood,
            EvictPolicy::TreeBasedNeighborhood,
        ),
    }
}

fn page_list(rng: &mut SmallRng, span: u64, max_len: usize) -> Vec<u64> {
    let n = rng.gen_range(1usize..max_len);
    (0..n).map(|_| rng.gen_range(0u64..span)).collect()
}

/// Far-faults never exceed total accesses (liveness), every access is
/// eventually recorded (trace length), and time flows forward across
/// kernels.
#[test]
fn engine_liveness_and_accounting() {
    let mut rng = SmallRng::seed_from_u64(0x69b1);
    for _ in 0..CASES {
        let (prefetch, evict) = pick_policies(&mut rng);
        let num_kernels = rng.gen_range(1usize..5);
        let page_lists: Vec<Vec<u64>> = (0..num_kernels)
            .map(|_| page_list(&mut rng, 256, 40))
            .collect();
        let sms = rng.gen_range(1usize..8);
        let blocks_per_sm = rng.gen_range(1usize..4);
        let capacity_blocks = rng.gen_range(6u64..20);

        let cfg = UvmConfig::default()
            .with_capacity(Bytes::kib(64) * capacity_blocks)
            .with_prefetch(prefetch)
            .with_evict(evict);
        let mut gmmu = Gmmu::new(cfg);
        let base = gmmu.malloc_managed(Bytes::mib(1));
        let mut engine = Engine::new(
            gmmu,
            GpuConfig {
                num_sms: sms,
                blocks_per_sm,
                max_kernel_cycles: Some(2_000_000_000),
                ..GpuConfig::default()
            },
        );
        engine.enable_trace();

        let mut total_accesses = 0u64;
        let mut prev_end = engine.now();
        for (i, pages) in page_lists.iter().enumerate() {
            total_accesses += pages.len() as u64;
            let mut k = KernelSpec::new(format!("k{i}"));
            // Split the access list across a few thread blocks.
            for chunk in pages.chunks(8) {
                let accesses: Vec<Access> = chunk
                    .iter()
                    .map(|&p| Access::read(base.offset(PAGE_SIZE * p)))
                    .collect();
                k.push_block(ThreadBlockSpec::from_accesses(accesses));
            }
            let r = engine.run_kernel_detailed(k);
            assert!(r.end >= prev_end, "time flows forward");
            prev_end = r.end;
        }

        let trace_len: usize = {
            let t = engine.take_trace();
            t.len()
        };
        assert_eq!(trace_len as u64, total_accesses, "every access completes");
        let stats = engine.gmmu().stats();
        assert!(stats.far_faults <= total_accesses, "liveness bound");
        assert!(engine.gmmu().resident_pages() <= engine.gmmu().capacity_frames());
    }
}

/// The engine's timing is deterministic for a fixed configuration.
#[test]
fn engine_is_deterministic() {
    let mut rng = SmallRng::seed_from_u64(0x69b2);
    for _ in 0..CASES {
        let pages = page_list(&mut rng, 128, 60);
        let (prefetch, evict) = pick_policies(&mut rng);
        let run = || {
            let cfg = UvmConfig::default()
                .with_capacity(Bytes::kib(256))
                .with_prefetch(prefetch)
                .with_evict(evict);
            let mut gmmu = Gmmu::new(cfg);
            let base = gmmu.malloc_managed(Bytes::kib(512));
            let mut engine = Engine::new(gmmu, GpuConfig::default());
            let accesses: Vec<Access> = pages
                .iter()
                .map(|&p| Access::read(base.offset(PAGE_SIZE * p)))
                .collect();
            let t = engine.run_kernel(
                KernelSpec::new("k").with_block(ThreadBlockSpec::from_accesses(accesses)),
            );
            (t, engine.gmmu().stats().clone())
        };
        let (t1, s1) = run();
        let (t2, s2) = run();
        assert_eq!(t1, t2);
        assert_eq!(s1, s2);
    }
}

/// Same-schedule property: the calendar [`EventQueue`] pops events in
/// the exact order of the `BinaryHeap<Reverse<(Cycle, seq, payload)>>`
/// it replaced, over randomized engine-like event logs — near-monotone
/// pushes with same-cycle bursts (FIFO ties), TLB-hit hops, far-fault
/// hops past the ring horizon, full drains, and cold restarts.
#[test]
fn event_queue_matches_binary_heap_order() {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut rng = SmallRng::seed_from_u64(0x69b4);
    for case in 0..CASES {
        // Vary geometry so bucket spans and horizons all get exercised,
        // including ones far smaller than the engine's default.
        let shift = rng.gen_range(0u64..9) as u32;
        let n_buckets = 64 * rng.gen_range(1usize..5);
        let mut q: EventQueue<u64> = EventQueue::with_geometry(shift, n_buckets);
        let mut h: BinaryHeap<Reverse<(Cycle, u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut id = 0u64;
        let steps = rng.gen_range(1usize..2_000);
        for step in 0..steps {
            if rng.gen_bool(0.5) && !h.is_empty() {
                let Reverse((t, _, v)) = h.pop().expect("non-empty");
                assert_eq!(
                    q.pop(),
                    Some((t, v)),
                    "case {case} (shift {shift}, {n_buckets} buckets) \
                     diverged at step {step}"
                );
                now = t.index();
            } else {
                // Push 1–4 events at or after the last popped cycle:
                // same-cycle ties, short hops, and horizon-crossing
                // fault hops, like the engine's latency mix.
                for _ in 0..rng.gen_range(1u64..5) {
                    let hop = match rng.gen_range(0u32..8) {
                        0 => 0,
                        1 => 66_645,
                        2 => rng.gen_range(0u64..1_000_000),
                        _ => rng.gen_range(0u64..400),
                    };
                    let t = Cycle::new(now + hop);
                    q.push(t, id);
                    h.push(Reverse((t, seq, id)));
                    seq += 1;
                    id += 1;
                }
            }
            assert_eq!(q.len(), h.len());
        }
        while let Some(Reverse((t, _, v))) = h.pop() {
            assert_eq!(q.pop(), Some((t, v)), "case {case} diverged in drain");
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }
}

/// Slower machines are never faster: increasing the compute delay
/// never reduces kernel time.
#[test]
fn compute_delay_is_monotone() {
    let mut rng = SmallRng::seed_from_u64(0x69b3);
    for _ in 0..CASES {
        let pages = page_list(&mut rng, 64, 40);
        let delay_a = rng.gen_range(0u64..200);
        let delay_b = rng.gen_range(0u64..200);
        let run = |delay: u64| {
            let mut gmmu = Gmmu::new(UvmConfig::default());
            let base = gmmu.malloc_managed(Bytes::kib(512));
            let mut engine = Engine::new(
                gmmu,
                GpuConfig {
                    compute_delay: Duration::from_cycles(delay),
                    ..GpuConfig::default()
                },
            );
            let accesses: Vec<Access> = pages
                .iter()
                .map(|&p| Access::read(base.offset(PAGE_SIZE * p)))
                .collect();
            engine.run_kernel(
                KernelSpec::new("k").with_block(ThreadBlockSpec::from_accesses(accesses)),
            )
        };
        let (lo, hi) = (delay_a.min(delay_b), delay_a.max(delay_b));
        assert!(run(lo) <= run(hi));
    }
}
