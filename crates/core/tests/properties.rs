//! Randomized-property tests for the paper's core mechanisms: the
//! full binary tree (TBNp/TBNe), the LRU structures, and the GMMU
//! driver. Driven by seeded `SmallRng` case loops.

use std::collections::HashSet;

use uvm_core::{
    AllocTree, Allocations, EvictPolicy, Gmmu, HierarchicalLru, LruQueue, PrefetchPolicy, UvmConfig,
};
use uvm_types::rng::{Rng, SmallRng};
use uvm_types::{BasicBlockId, Bytes, Cycle, PageId, TreeExtent, PAGES_PER_BASIC_BLOCK};

const CASES: usize = 256;

fn random_tree(rng: &mut SmallRng) -> AllocTree {
    let h = rng.gen_range(0u32..6);
    AllocTree::new(TreeExtent {
        first_block: BasicBlockId::new(0),
        num_blocks: 1 << h,
    })
}

/// TBNp: prefetch plans only ever name blocks with free capacity,
/// never the fault block, and never duplicate; applying the plan
/// keeps the tree's internal sums consistent.
#[test]
fn prefetch_plan_is_sound() {
    let mut rng = SmallRng::seed_from_u64(0xc0e1);
    for _ in 0..CASES {
        let mut tree = random_tree(&mut rng);
        let n = tree.extent().num_blocks;
        let fills = rng.gen_range(0usize..32);
        for _ in 0..fills {
            let block = BasicBlockId::new(rng.gen_range(0u64..32) % n);
            if !tree.block_full(block) {
                tree.fill_block(block);
            }
        }
        let fault_block = BasicBlockId::new(rng.gen_range(0u64..32) % n);
        if tree.block_full(fault_block) {
            continue; // a full block cannot fault
        }
        let before = tree.root_valid_pages();
        let plan = tree.plan_prefetch(fault_block);
        assert_eq!(tree.root_valid_pages(), before, "plan must not mutate");

        let mut seen = HashSet::new();
        for b in &plan {
            assert!(tree.extent().contains(*b), "plan inside the tree");
            assert!(*b != fault_block, "fault block not re-planned");
            assert!(seen.insert(*b), "no duplicates");
            assert!(!tree.block_full(*b), "only blocks with invalid pages");
        }
        // Applying the plan never overflows the tree.
        tree.fill_block(fault_block);
        for b in plan {
            tree.fill_block(b);
        }
        tree.check_invariants();
        assert!(tree.root_valid_pages() <= tree.capacity_pages());
    }
}

/// TBNe mirrors TBNp: eviction plans name only valid blocks, never
/// the victim, and applying them never underflows.
#[test]
fn eviction_plan_is_sound() {
    let mut rng = SmallRng::seed_from_u64(0xc0e2);
    for _ in 0..CASES {
        let mut tree = random_tree(&mut rng);
        let n = tree.extent().num_blocks;
        let fills = rng.gen_range(1usize..32);
        for _ in 0..fills {
            let block = BasicBlockId::new(rng.gen_range(0u64..32) % n);
            if !tree.block_full(block) {
                tree.fill_block(block);
            }
        }
        let victim_block = BasicBlockId::new(rng.gen_range(0u64..32) % n);
        if tree.block_valid_pages(victim_block) == 0 {
            continue; // nothing to evict there
        }
        let plan = tree.plan_eviction(victim_block);
        let mut seen = HashSet::new();
        for b in &plan {
            assert!(tree.extent().contains(*b));
            assert!(*b != victim_block);
            assert!(seen.insert(*b), "no duplicates");
            assert!(tree.block_valid_pages(*b) > 0, "only valid blocks evicted");
        }
        tree.clear_block(victim_block);
        for b in plan {
            tree.clear_block(b);
        }
        tree.check_invariants();
    }
}

/// The 50% rule: after any fault is serviced with its plan applied,
/// prefetching again for the same block yields nothing new (the plan
/// is a fixpoint).
#[test]
fn prefetch_plan_is_a_fixpoint() {
    let mut rng = SmallRng::seed_from_u64(0xc0e3);
    for _ in 0..CASES {
        let mut tree = random_tree(&mut rng);
        let n = tree.extent().num_blocks;
        let fault_block = BasicBlockId::new(rng.gen_range(0u64..32) % n);
        let plan = tree.plan_prefetch(fault_block);
        tree.fill_block(fault_block);
        for b in plan {
            tree.fill_block(b);
        }
        // The serviced fault leaves no pending obligation for itself
        // (soundness is re-checked by the other property).
        assert!(tree.block_full(fault_block));
    }
}

/// LruQueue behaves exactly like a reference model.
#[test]
fn lru_queue_matches_reference_model() {
    let mut rng = SmallRng::seed_from_u64(0xc0e4);
    for _ in 0..CASES {
        let mut q: LruQueue<u64> = LruQueue::new();
        let mut model: Vec<u64> = Vec::new(); // front = LRU
        let n = rng.gen_range(0usize..200);
        for _ in 0..n {
            let key = rng.gen_range(0u64..32);
            match rng.gen_range(0u32..3) {
                0 => {
                    q.touch(key);
                    model.retain(|&k| k != key);
                    model.push(key);
                }
                1 => {
                    q.insert_if_absent(key);
                    if !model.contains(&key) {
                        model.push(key);
                    }
                }
                _ => {
                    let was = q.remove(&key);
                    assert_eq!(was, model.contains(&key));
                    model.retain(|&k| k != key);
                }
            }
            assert_eq!(q.len(), model.len());
            assert_eq!(q.peek_lru(), model.first());
            let order: Vec<u64> = q.iter().copied().collect();
            assert_eq!(&order, &model);
        }
    }
}

/// HierarchicalLru page accounting matches a reference count, and the
/// candidate (when one exists) is always a tracked block.
#[test]
fn hier_lru_accounting() {
    let mut rng = SmallRng::seed_from_u64(0xc0e5);
    for _ in 0..CASES {
        let mut h = HierarchicalLru::new();
        let mut resident: Vec<u64> = Vec::new();
        let n = rng.gen_range(0usize..300);
        for _ in 0..n {
            let page = rng.gen_range(0u64..256);
            let p = PageId::new(page);
            match rng.gen_range(0u32..3) {
                0 => {
                    h.on_validate(p);
                    resident.push(page);
                }
                1 => {
                    if resident.contains(&page) {
                        h.on_access(p);
                    }
                }
                _ => {
                    if let Some(pos) = resident.iter().position(|&x| x == page) {
                        resident.swap_remove(pos);
                        h.on_invalidate_page(p);
                    }
                }
            }
            assert_eq!(h.total_pages(), resident.len() as u64);
            match h.candidate(0, |_| true) {
                Some(bb) => {
                    assert!(h.block_pages(bb) > 0);
                    assert!(resident
                        .iter()
                        .any(|&pg| PageId::new(pg).basic_block() == bb));
                }
                None => assert!(resident.is_empty()),
            }
        }
    }
}

fn pick_policy_pair(rng: &mut SmallRng) -> (PrefetchPolicy, EvictPolicy) {
    match rng.gen_range(0u32..5) {
        0 => (PrefetchPolicy::None, EvictPolicy::LruPage),
        1 => (PrefetchPolicy::Random, EvictPolicy::RandomPage),
        2 => (
            PrefetchPolicy::SequentialLocal,
            EvictPolicy::SequentialLocal,
        ),
        3 => (
            PrefetchPolicy::TreeBasedNeighborhood,
            EvictPolicy::TreeBasedNeighborhood,
        ),
        _ => (
            PrefetchPolicy::TreeBasedNeighborhood,
            EvictPolicy::LruLargePage,
        ),
    }
}

/// Driver-level conservation under random fault/access sequences:
/// residency never exceeds the budget, trees and page table agree,
/// and statistics balance.
#[test]
fn gmmu_conserves_under_random_traffic() {
    let mut rng = SmallRng::seed_from_u64(0xc0e6);
    for _ in 0..48 {
        let (prefetch, evict) = pick_policy_pair(&mut rng);
        let capacity_blocks = rng.gen_range(4u64..24);
        let num_accesses = rng.gen_range(1usize..150);
        let seed = rng.next_u64();
        let cfg = UvmConfig::default()
            .with_capacity(Bytes::kib(64) * capacity_blocks)
            .with_prefetch(prefetch)
            .with_evict(evict)
            .with_rng_seed(seed);
        let mut g = Gmmu::new(cfg);
        let base = g.malloc_managed(Bytes::mib(2));
        let mut now = Cycle::ZERO;
        for _ in 0..num_accesses {
            let page = rng.gen_range(0u64..512);
            let write = rng.gen_bool(0.5);
            let p = base.page().add(page);
            if !g.is_resident(p) {
                let res = g.handle_fault(p, now);
                now = res.fault_page_ready();
                // Every page in the resolution is now resident.
                for (rp, _) in &res.ready {
                    assert!(g.is_resident(*rp));
                }
            }
            g.record_access(p, write);
        }
        let stats = g.stats();
        assert!(g.resident_pages() <= g.capacity_frames());
        assert_eq!(
            stats.pages_migrated - stats.pages_evicted,
            g.resident_pages()
        );
        assert!(stats.pages_prefetched <= stats.pages_migrated);
        assert!(stats.far_faults <= stats.pages_migrated);
        assert!(stats.pages_thrashed <= stats.pages_evicted);
    }
}

#[test]
fn allocations_never_overlap() {
    let mut allocs = Allocations::new();
    let sizes = [100u64, 4096, 65_536, 2 << 20, (2 << 20) + 4096, 192 << 10];
    let mut claimed: HashSet<u64> = HashSet::new();
    for &s in &sizes {
        let id = allocs.allocate(Bytes::new(s));
        let a = allocs.get(id);
        for p in a.first_page().index()..a.end_page().index() {
            assert!(claimed.insert(p), "page {p} double-claimed");
        }
    }
}

#[test]
fn tree_block_page_granularity_interplay() {
    // Mixed partial/full residency: on-demand 4 KB migrations create
    // partial blocks; prefetch plans must still be applicable.
    let mut tree = AllocTree::new(TreeExtent {
        first_block: BasicBlockId::new(0),
        num_blocks: 8,
    });
    // 5 pages of block 0 resident (on-demand, prefetcher off).
    tree.add_pages(BasicBlockId::new(0), 5);
    // A fault on block 0 with the prefetcher on plans around the
    // partial block.
    let plan = tree.plan_prefetch(BasicBlockId::new(0));
    for b in plan {
        assert_ne!(b, BasicBlockId::new(0));
        tree.fill_block(b);
    }
    // Completing block 0 adds exactly the missing pages.
    tree.add_pages(BasicBlockId::new(0), PAGES_PER_BASIC_BLOCK as u32 - 5);
    assert!(tree.block_full(BasicBlockId::new(0)));
    tree.check_invariants();
}
