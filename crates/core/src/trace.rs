//! Compact binary traces of per-run fault and access streams, and the
//! delta table the `learned` prefetcher consumes.
//!
//! # The `UVMT` trace format
//!
//! A trace is one run's merged page-event stream — far-faults, memory
//! accesses, kernel boundaries — with enough metadata to reproduce the
//! run that made it:
//!
//! ```text
//! magic    b"UVMT"                      4 bytes
//! version  u16 LE                       format revision (1)
//! meta     workload, prefetch, evict    length-prefixed UTF-8 each
//!          seed                         u64 LE
//! count    varint                       number of records
//! paylen   varint                       payload byte length
//! checksum u128 LE                      FNV-1a over the payload
//! payload  count records
//! ```
//!
//! Each record is a tag byte ([`TraceKind`]) followed by two zigzag
//! varints: the cycle delta and the page delta, both relative to the
//! previous record. Fault streams walk pages mostly in small strides,
//! so deltas keep records at 3–5 bytes against 17 for fixed-width —
//! the compactness that makes committing traces as CI artifacts
//! practical.
//!
//! The decoder verifies magic, version, and checksum before yielding
//! any record, so a truncated or bit-flipped file fails loudly
//! ([`TraceError`]) instead of training a garbage table.
//!
//! # The `UVML` learned-table format
//!
//! [`train_table`] folds a trace's *fault* records into a
//! [`LearnedTable`]: for every context of `depth` consecutive fault
//! deltas it keeps the `degree` most frequent next deltas. The table
//! serializes to a sibling format (magic `UVML`, same
//! varint/checksum discipline) that `learned:table=PATH` loads at
//! policy-build time. Training is deterministic — ties break toward
//! the smaller delta — so retraining on the same trace is
//! byte-identical.

use std::collections::HashMap;
use std::fmt;
use std::path::Path;

use uvm_types::hash::StableHasher;

/// Current revision of the `UVMT` trace format.
pub const TRACE_VERSION: u16 = 1;

/// Current revision of the `UVML` learned-table format.
pub const TABLE_VERSION: u16 = 1;

const TRACE_MAGIC: &[u8; 4] = b"UVMT";
const TABLE_MAGIC: &[u8; 4] = b"UVML";

/// What a trace record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A memory read serviced by the GPU.
    AccessRead,
    /// A memory write serviced by the GPU.
    AccessWrite,
    /// A far-fault the driver migrated a page for.
    Fault,
    /// A kernel boundary (page field is zero).
    KernelEnd,
}

impl TraceKind {
    /// The wire tag byte of this kind (stable across releases; the
    /// checkpoint codec reuses it to freeze pending export records).
    pub fn tag(self) -> u8 {
        match self {
            TraceKind::AccessRead => 0,
            TraceKind::AccessWrite => 1,
            TraceKind::Fault => 2,
            TraceKind::KernelEnd => 3,
        }
    }

    /// Decodes a wire tag byte back into a kind.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(TraceKind::AccessRead),
            1 => Some(TraceKind::AccessWrite),
            2 => Some(TraceKind::Fault),
            3 => Some(TraceKind::KernelEnd),
            _ => None,
        }
    }
}

/// One trace event: kind, engine cycle, raw page index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// What happened.
    pub kind: TraceKind,
    /// Engine cycle stamp.
    pub cycle: u64,
    /// Raw 4 KB page index (zero for [`TraceKind::KernelEnd`]).
    pub page: u64,
}

/// Run metadata carried in the trace header.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceMeta {
    /// Workload name (e.g. `"backprop"`).
    pub workload: String,
    /// Prefetch policy spec string the run used.
    pub prefetch: String,
    /// Eviction policy spec string the run used.
    pub evict: String,
    /// The run's RNG seed.
    pub seed: u64,
}

/// Why a trace or table file failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The magic bytes were wrong — not a `UVMT`/`UVML` file.
    BadMagic,
    /// The format revision is newer than this decoder.
    BadVersion(u16),
    /// The buffer ended mid-field.
    Truncated,
    /// The payload checksum did not match the header.
    ChecksumMismatch,
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// An unknown record tag byte.
    BadTag(u8),
    /// A varint ran past 64 bits.
    VarintOverflow,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a UVM trace/table file (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            TraceError::Truncated => write!(f, "file truncated"),
            TraceError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            TraceError::BadUtf8 => write!(f, "metadata string is not valid UTF-8"),
            TraceError::BadTag(t) => write!(f, "unknown record tag {t}"),
            TraceError::VarintOverflow => write!(f, "varint overflows 64 bits"),
        }
    }
}

impl std::error::Error for TraceError {}

fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn write_ivarint(out: &mut Vec<u8>, v: i64) {
    write_uvarint(out, zigzag(v));
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A cursor over an encoded buffer.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self.pos.checked_add(n).ok_or(TraceError::Truncated)?;
        if end > self.buf.len() {
            return Err(TraceError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, TraceError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16_le(&mut self) -> Result<u16, TraceError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u64_le(&mut self) -> Result<u64, TraceError> {
        let b = self.bytes(8)?;
        let b: [u8; 8] = b.try_into().map_err(|_| TraceError::Truncated)?;
        Ok(u64::from_le_bytes(b))
    }

    fn u128_le(&mut self) -> Result<u128, TraceError> {
        let b = self.bytes(16)?;
        let b: [u8; 16] = b.try_into().map_err(|_| TraceError::Truncated)?;
        Ok(u128::from_le_bytes(b))
    }

    fn uvarint(&mut self) -> Result<u64, TraceError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(TraceError::VarintOverflow);
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn ivarint(&mut self) -> Result<i64, TraceError> {
        Ok(unzigzag(self.uvarint()?))
    }

    fn string(&mut self) -> Result<String, TraceError> {
        let len = self.uvarint()? as usize;
        let raw = self.bytes(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| TraceError::BadUtf8)
    }
}

fn write_string(out: &mut Vec<u8>, s: &str) {
    write_uvarint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn checksum(payload: &[u8]) -> u128 {
    let mut h = StableHasher::new();
    h.write_bytes(payload);
    h.finish()
}

/// Encodes a run's record stream into the `UVMT` wire format.
pub fn encode_trace(meta: &TraceMeta, records: &[TraceRecord]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(records.len() * 4);
    let mut prev_cycle: i64 = 0;
    let mut prev_page: i64 = 0;
    for r in records {
        payload.push(r.kind.tag());
        write_ivarint(&mut payload, r.cycle as i64 - prev_cycle);
        write_ivarint(&mut payload, r.page as i64 - prev_page);
        prev_cycle = r.cycle as i64;
        prev_page = r.page as i64;
    }

    let mut out = Vec::with_capacity(payload.len() + 64);
    out.extend_from_slice(TRACE_MAGIC);
    out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
    write_string(&mut out, &meta.workload);
    write_string(&mut out, &meta.prefetch);
    write_string(&mut out, &meta.evict);
    out.extend_from_slice(&meta.seed.to_le_bytes());
    write_uvarint(&mut out, records.len() as u64);
    write_uvarint(&mut out, payload.len() as u64);
    out.extend_from_slice(&checksum(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes a `UVMT` buffer, verifying magic, version, and checksum.
pub fn decode_trace(bytes: &[u8]) -> Result<(TraceMeta, Vec<TraceRecord>), TraceError> {
    let mut r = Reader::new(bytes);
    if r.bytes(4)? != TRACE_MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = r.u16_le()?;
    if version != TRACE_VERSION {
        return Err(TraceError::BadVersion(version));
    }
    let meta = TraceMeta {
        workload: r.string()?,
        prefetch: r.string()?,
        evict: r.string()?,
        seed: r.u64_le()?,
    };
    let count = r.uvarint()? as usize;
    let paylen = r.uvarint()? as usize;
    let expect = r.u128_le()?;
    let payload = r.bytes(paylen)?;
    if checksum(payload) != expect {
        return Err(TraceError::ChecksumMismatch);
    }

    let mut rp = Reader::new(payload);
    let mut records = Vec::with_capacity(count.min(1 << 20));
    let mut cycle: i64 = 0;
    let mut page: i64 = 0;
    for _ in 0..count {
        let kind =
            TraceKind::from_tag(rp.u8()?).ok_or_else(|| TraceError::BadTag(payload[rp.pos - 1]))?;
        cycle += rp.ivarint()?;
        page += rp.ivarint()?;
        records.push(TraceRecord {
            kind,
            cycle: cycle as u64,
            page: page as u64,
        });
    }
    Ok((meta, records))
}

/// The `learned` prefetcher's delta table: for each context of `depth`
/// consecutive fault deltas, the next deltas to predict, most
/// confident first.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LearnedTable {
    /// Context length the table was trained with.
    depth: usize,
    /// Sorted by context, for deterministic serialization and O(log n)
    /// lookup.
    entries: Vec<(Vec<i64>, Vec<i64>)>,
}

impl LearnedTable {
    /// An empty table (predicts nothing) with the given context depth.
    pub fn empty(depth: usize) -> Self {
        LearnedTable {
            depth,
            entries: Vec::new(),
        }
    }

    /// The context length.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of distinct contexts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the table holds no contexts.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The predicted next deltas for `context`, most confident first.
    pub fn predict(&self, context: &[i64]) -> &[i64] {
        self.entries
            .binary_search_by(|(c, _)| c.as_slice().cmp(context))
            .map(|i| self.entries[i].1.as_slice())
            .unwrap_or(&[])
    }

    /// Serializes to the `UVML` wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        write_uvarint(&mut payload, self.depth as u64);
        write_uvarint(&mut payload, self.entries.len() as u64);
        for (context, nexts) in &self.entries {
            for &d in context {
                write_ivarint(&mut payload, d);
            }
            write_uvarint(&mut payload, nexts.len() as u64);
            for &d in nexts {
                write_ivarint(&mut payload, d);
            }
        }
        let mut out = Vec::with_capacity(payload.len() + 32);
        out.extend_from_slice(TABLE_MAGIC);
        out.extend_from_slice(&TABLE_VERSION.to_le_bytes());
        write_uvarint(&mut out, payload.len() as u64);
        out.extend_from_slice(&checksum(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a `UVML` buffer, verifying magic, version, and
    /// checksum.
    pub fn decode(bytes: &[u8]) -> Result<Self, TraceError> {
        let mut r = Reader::new(bytes);
        if r.bytes(4)? != TABLE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = r.u16_le()?;
        if version != TABLE_VERSION {
            return Err(TraceError::BadVersion(version));
        }
        let paylen = r.uvarint()? as usize;
        let expect = r.u128_le()?;
        let payload = r.bytes(paylen)?;
        if checksum(payload) != expect {
            return Err(TraceError::ChecksumMismatch);
        }
        let mut rp = Reader::new(payload);
        let depth = rp.uvarint()? as usize;
        let count = rp.uvarint()? as usize;
        let mut entries = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let mut context = Vec::with_capacity(depth);
            for _ in 0..depth {
                context.push(rp.ivarint()?);
            }
            let n = rp.uvarint()? as usize;
            let mut nexts = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                nexts.push(rp.ivarint()?);
            }
            entries.push((context, nexts));
        }
        Ok(LearnedTable { depth, entries })
    }

    /// Writes the table to `path` in `UVML` format.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.encode())
    }

    /// Loads a `UVML` table from `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        Self::decode(&bytes).map_err(|e| format!("decoding {}: {e}", path.display()))
    }
}

/// Trains a [`LearnedTable`] from a trace's fault records: for every
/// context of `depth` consecutive fault-page deltas, keep the `degree`
/// most frequent next deltas (ties toward the smaller delta, so
/// training is deterministic). Zero deltas — refaults on the same page
/// — are skipped as history noise.
pub fn train_table(records: &[TraceRecord], depth: usize, degree: usize) -> LearnedTable {
    assert!(depth >= 1, "context depth must be at least 1");
    assert!(degree >= 1, "prediction degree must be at least 1");
    let mut deltas: Vec<i64> = Vec::new();
    let mut prev: Option<u64> = None;
    for r in records {
        if r.kind != TraceKind::Fault {
            continue;
        }
        if let Some(p) = prev {
            let d = r.page as i64 - p as i64;
            if d != 0 {
                deltas.push(d);
            }
        }
        prev = Some(r.page);
    }

    let mut counts: HashMap<Vec<i64>, HashMap<i64, u64>> = HashMap::new();
    for window in deltas.windows(depth + 1) {
        let (context, next) = window.split_at(depth);
        *counts
            .entry(context.to_vec())
            .or_default()
            .entry(next[0])
            .or_insert(0) += 1;
    }

    let mut entries: Vec<(Vec<i64>, Vec<i64>)> = counts
        .into_iter()
        .map(|(context, nexts)| {
            let mut ranked: Vec<(i64, u64)> = nexts.into_iter().collect();
            ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            ranked.truncate(degree);
            (context, ranked.into_iter().map(|(d, _)| d).collect())
        })
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    LearnedTable { depth, entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                kind: TraceKind::Fault,
                cycle: 100,
                page: 4096,
            },
            TraceRecord {
                kind: TraceKind::AccessRead,
                cycle: 150,
                page: 4096,
            },
            TraceRecord {
                kind: TraceKind::Fault,
                cycle: 220,
                page: 4097,
            },
            TraceRecord {
                kind: TraceKind::AccessWrite,
                cycle: 230,
                page: 4097,
            },
            TraceRecord {
                kind: TraceKind::Fault,
                cycle: 400,
                page: 4080, // backwards jump: signed deltas
            },
            TraceRecord {
                kind: TraceKind::KernelEnd,
                cycle: 500,
                page: 0,
            },
        ]
    }

    #[test]
    fn trace_round_trips_byte_exactly() {
        let meta = TraceMeta {
            workload: "backprop".into(),
            prefetch: "none".into(),
            evict: "LRU-4KB".into(),
            seed: 42,
        };
        let records = sample_records();
        let bytes = encode_trace(&meta, &records);
        let (meta2, records2) = decode_trace(&bytes).unwrap();
        assert_eq!(meta, meta2);
        assert_eq!(records, records2);
        // Re-encoding the decode is byte-identical.
        assert_eq!(encode_trace(&meta2, &records2), bytes);
    }

    #[test]
    fn empty_trace_round_trips() {
        let meta = TraceMeta::default();
        let bytes = encode_trace(&meta, &[]);
        let (m, r) = decode_trace(&bytes).unwrap();
        assert_eq!(m, meta);
        assert!(r.is_empty());
    }

    #[test]
    fn corrupt_header_and_payload_are_rejected() {
        let meta = TraceMeta::default();
        let good = encode_trace(&meta, &sample_records());

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(decode_trace(&bad_magic).unwrap_err(), TraceError::BadMagic);

        let mut bad_version = good.clone();
        bad_version[4] = 0xff;
        assert!(matches!(
            decode_trace(&bad_version).unwrap_err(),
            TraceError::BadVersion(_)
        ));

        let truncated = &good[..good.len() - 3];
        assert_eq!(decode_trace(truncated).unwrap_err(), TraceError::Truncated);

        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert_eq!(
            decode_trace(&flipped).unwrap_err(),
            TraceError::ChecksumMismatch
        );
    }

    #[test]
    fn zigzag_is_an_involution() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn training_ranks_deltas_by_frequency() {
        // Fault pages 0,1,2,3,4, 10, 11, 12 — delta stream
        // [1,1,1,1,6,1,1]: after a context [1], next is 1 (5 times)
        // or 6 (once).
        let pages = [0u64, 1, 2, 3, 4, 10, 11, 12];
        let records: Vec<TraceRecord> = pages
            .iter()
            .enumerate()
            .map(|(i, &p)| TraceRecord {
                kind: TraceKind::Fault,
                cycle: i as u64 * 10,
                page: p,
            })
            .collect();
        let table = train_table(&records, 1, 2);
        assert_eq!(table.depth(), 1);
        assert_eq!(table.predict(&[1]), &[1, 6]);
        assert_eq!(table.predict(&[6]), &[1]);
        assert_eq!(table.predict(&[99]), &[] as &[i64]);
    }

    #[test]
    fn training_is_deterministic_and_tables_round_trip() {
        let records: Vec<TraceRecord> = (0..200u64)
            .map(|i| TraceRecord {
                kind: TraceKind::Fault,
                cycle: i * 7,
                page: (i * i * 31) % 512,
            })
            .collect();
        let a = train_table(&records, 2, 4);
        let b = train_table(&records, 2, 4);
        assert_eq!(a, b);
        assert_eq!(a.encode(), b.encode());
        let decoded = LearnedTable::decode(&a.encode()).unwrap();
        assert_eq!(decoded, a);
    }

    #[test]
    fn corrupt_table_is_rejected() {
        let table = train_table(
            &[
                TraceRecord {
                    kind: TraceKind::Fault,
                    cycle: 0,
                    page: 1,
                },
                TraceRecord {
                    kind: TraceKind::Fault,
                    cycle: 1,
                    page: 2,
                },
                TraceRecord {
                    kind: TraceKind::Fault,
                    cycle: 2,
                    page: 3,
                },
            ],
            1,
            1,
        );
        let good = table.encode();
        let mut bad = good.clone();
        bad[0] = b'Z';
        assert_eq!(
            LearnedTable::decode(&bad).unwrap_err(),
            TraceError::BadMagic
        );
        let last = good.len() - 1;
        let mut flipped = good.clone();
        flipped[last] ^= 1;
        assert_eq!(
            LearnedTable::decode(&flipped).unwrap_err(),
            TraceError::ChecksumMismatch
        );
    }
}
