//! Managed-allocation registry: the UVM analogue of
//! `cudaMallocManaged` bookkeeping.
//!
//! Allocations are assigned 2 MB-aligned virtual addresses by a bump
//! allocator, carved into full binary trees per [`split_allocation`]
//! (one 32-leaf tree per whole 2 MB plus a rounded-up remainder tree),
//! and the rounded-up extent is treated as migratable, mirroring the
//! driver's zero-fill of the rounded tail.

use uvm_types::{split_allocation, BasicBlockId, Bytes, PageId, VirtAddr, LARGE_PAGE_SIZE};

use crate::tree::AllocTree;

/// Identifier of a managed allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AllocId(usize);

impl AllocId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One managed allocation and its prefetch/eviction trees.
#[derive(Clone, Debug)]
pub struct Allocation {
    id: AllocId,
    base: VirtAddr,
    requested: Bytes,
    trees: Vec<AllocTree>,
    /// First basic block of each tree, for O(log n) tree lookup.
    tree_starts: Vec<u64>,
    /// Total rounded extent in basic blocks.
    rounded_blocks: u64,
}

impl Allocation {
    /// The allocation id.
    pub fn id(&self) -> AllocId {
        self.id
    }

    /// Base virtual address (2 MB aligned).
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// The size the caller asked for.
    pub fn requested(&self) -> Bytes {
        self.requested
    }

    /// The rounded-up migratable extent.
    pub fn rounded(&self) -> Bytes {
        Bytes::kib(64) * self.rounded_blocks
    }

    /// First 4 KB page of the allocation.
    pub fn first_page(&self) -> PageId {
        self.base.page()
    }

    /// One-past-the-last migratable page.
    pub fn end_page(&self) -> PageId {
        self.first_page().add(self.rounded().pages_ceil())
    }

    /// `true` if `page` is inside the migratable extent.
    pub fn contains_page(&self, page: PageId) -> bool {
        page >= self.first_page() && page < self.end_page()
    }

    /// The tree covering `block`, if the block is inside this
    /// allocation.
    pub fn tree_for_block(&self, block: BasicBlockId) -> Option<&AllocTree> {
        let idx = self.tree_index(block)?;
        Some(&self.trees[idx])
    }

    /// Mutable access to the tree covering `block`.
    pub fn tree_for_block_mut(&mut self, block: BasicBlockId) -> Option<&mut AllocTree> {
        let idx = self.tree_index(block)?;
        Some(&mut self.trees[idx])
    }

    fn tree_index(&self, block: BasicBlockId) -> Option<usize> {
        let first = self.base.basic_block().index();
        if block.index() < first || block.index() >= first + self.rounded_blocks {
            return None;
        }
        let idx = match self.tree_starts.binary_search(&block.index()) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        debug_assert!(self.trees[idx].extent().contains(block));
        Some(idx)
    }

    /// The trees of this allocation.
    pub fn trees(&self) -> &[AllocTree] {
        &self.trees
    }
}

/// The registry of managed allocations, with a 2 MB-aligned bump
/// virtual-address allocator.
///
/// # Examples
///
/// ```
/// use uvm_core::Allocations;
/// use uvm_types::Bytes;
///
/// let mut allocs = Allocations::new();
/// let a = allocs.allocate(Bytes::mib(4) + Bytes::kib(192));
/// let alloc = allocs.get(a);
/// assert_eq!(alloc.trees().len(), 3); // 2MB + 2MB + 256KB (paper's example)
/// assert_eq!(alloc.rounded(), Bytes::mib(4) + Bytes::kib(256));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Allocations {
    allocs: Vec<Allocation>,
    /// Next free 2 MB-aligned virtual address.
    next_base: u64,
}

impl Allocations {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a managed allocation of `size` bytes and returns its
    /// id. No physical memory is allocated — pages migrate on demand.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn allocate(&mut self, size: Bytes) -> AllocId {
        assert!(size > Bytes::ZERO, "zero-size managed allocation");
        let id = AllocId(self.allocs.len());
        let base = VirtAddr::new(self.next_base);
        let first_block = base.basic_block();
        let extents = split_allocation(first_block, size);
        let rounded_blocks: u64 = extents.iter().map(|e| e.num_blocks).sum();
        let tree_starts = extents.iter().map(|e| e.first_block.index()).collect();
        let trees = extents.into_iter().map(AllocTree::new).collect();
        // Advance the bump pointer to the next 2 MB boundary past the
        // rounded extent so every allocation starts a fresh large page.
        let extent_bytes = rounded_blocks * Bytes::kib(64).bytes();
        self.next_base += extent_bytes.div_ceil(LARGE_PAGE_SIZE.bytes()) * LARGE_PAGE_SIZE.bytes();
        self.allocs.push(Allocation {
            id,
            base,
            requested: size,
            trees,
            tree_starts,
            rounded_blocks,
        });
        id
    }

    /// The allocation with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this registry.
    pub fn get(&self, id: AllocId) -> &Allocation {
        &self.allocs[id.0]
    }

    /// The allocation containing `page`, if any.
    pub fn find_by_page(&self, page: PageId) -> Option<&Allocation> {
        // Allocations have ascending bases; binary search on base page.
        let idx = self
            .allocs
            .partition_point(|a| a.first_page() <= page)
            .checked_sub(1)?;
        let alloc = &self.allocs[idx];
        alloc.contains_page(page).then_some(alloc)
    }

    /// The allocation containing `block`, if any (mutable).
    pub fn find_by_block_mut(&mut self, block: BasicBlockId) -> Option<&mut Allocation> {
        let page = block.first_page();
        let idx = self
            .allocs
            .partition_point(|a| a.first_page() <= page)
            .checked_sub(1)?;
        let alloc = &mut self.allocs[idx];
        alloc.contains_page(page).then_some(alloc)
    }

    /// Iterates over all allocations.
    pub fn iter(&self) -> impl Iterator<Item = &Allocation> {
        self.allocs.iter()
    }

    /// Total requested bytes across allocations (the working-set
    /// footprint in the paper's terms).
    pub fn total_requested(&self) -> Bytes {
        self.allocs.iter().map(|a| a.requested).sum()
    }

    /// Total rounded (migratable) bytes across allocations.
    pub fn total_rounded(&self) -> Bytes {
        self.allocs.iter().map(|a| a.rounded()).sum()
    }

    /// Serializes the registry for a checkpoint: each allocation's
    /// requested size (bases and tree layout are a pure function of
    /// the allocation sequence) plus every tree's valid counts.
    pub fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        w.put_usize(self.allocs.len());
        for a in &self.allocs {
            w.put_u64(a.requested.bytes());
            for tree in &a.trees {
                tree.save_state(w);
            }
        }
    }

    /// Rebuilds a registry from a [`save_state`](Self::save_state)
    /// image by replaying [`allocate`](Self::allocate) (reproducing the
    /// deterministic bump addresses and tree layout) and restoring each
    /// tree's valid counts.
    pub fn load_state(
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<Self, uvm_types::codec::CodecError> {
        let n = r.get_usize()?;
        let mut allocs = Allocations::new();
        for _ in 0..n {
            let requested = Bytes::new(r.get_u64()?);
            if requested == Bytes::ZERO {
                return Err(uvm_types::codec::CodecError::BadTag {
                    what: "allocation size",
                    value: 0,
                });
            }
            let id = allocs.allocate(requested);
            for tree in &mut allocs.allocs[id.index()].trees {
                tree.load_state(r)?;
            }
        }
        Ok(allocs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bases_are_2mb_aligned_and_disjoint() {
        let mut r = Allocations::new();
        let a = r.allocate(Bytes::kib(100));
        let b = r.allocate(Bytes::mib(3));
        let c = r.allocate(Bytes::kib(4));
        for id in [a, b, c] {
            assert_eq!(r.get(id).base().raw() % LARGE_PAGE_SIZE.bytes(), 0);
        }
        // 100 KB rounds to 128 KB but the next base still jumps 2 MB.
        assert_eq!(r.get(b).base().raw(), LARGE_PAGE_SIZE.bytes());
        // 3 MB rounds to two trees (2 MB + 1 MB) within 4 MB of VA.
        assert_eq!(r.get(c).base().raw(), 3 * LARGE_PAGE_SIZE.bytes());
    }

    #[test]
    fn paper_example_tree_split() {
        let mut r = Allocations::new();
        let id = r.allocate(Bytes::mib(4) + Bytes::kib(192));
        let a = r.get(id);
        let sizes: Vec<_> = a.trees().iter().map(|t| t.extent().num_blocks).collect();
        assert_eq!(sizes, vec![32, 32, 4]);
        assert_eq!(a.rounded(), Bytes::mib(4) + Bytes::kib(256));
    }

    #[test]
    fn page_lookup() {
        let mut r = Allocations::new();
        let a = r.allocate(Bytes::mib(2));
        let b = r.allocate(Bytes::kib(64));
        assert_eq!(r.find_by_page(PageId::new(0)).unwrap().id(), a);
        assert_eq!(r.find_by_page(PageId::new(511)).unwrap().id(), a);
        assert_eq!(r.find_by_page(PageId::new(512)).unwrap().id(), b);
        assert_eq!(r.find_by_page(PageId::new(512 + 15)).unwrap().id(), b);
        // Past the rounded extent of b.
        assert!(r.find_by_page(PageId::new(512 + 16)).is_none());
    }

    #[test]
    fn tree_lookup_by_block() {
        let mut r = Allocations::new();
        let id = r.allocate(Bytes::mib(4) + Bytes::kib(192));
        let a = r.get(id);
        assert_eq!(
            a.tree_for_block(BasicBlockId::new(0))
                .unwrap()
                .extent()
                .first_block,
            BasicBlockId::new(0)
        );
        assert_eq!(
            a.tree_for_block(BasicBlockId::new(33))
                .unwrap()
                .extent()
                .first_block,
            BasicBlockId::new(32)
        );
        assert_eq!(
            a.tree_for_block(BasicBlockId::new(65))
                .unwrap()
                .extent()
                .first_block,
            BasicBlockId::new(64)
        );
        // Block past the rounded extent (4 MB + 256 KB = 68 blocks).
        assert!(a.tree_for_block(BasicBlockId::new(68)).is_none());
    }

    #[test]
    fn rounded_tail_is_migratable() {
        let mut r = Allocations::new();
        let id = r.allocate(Bytes::kib(192)); // rounds to 256 KB
        let a = r.get(id);
        assert!(a.contains_page(PageId::new(63))); // last page of 256 KB
        assert!(!a.contains_page(PageId::new(64)));
    }

    #[test]
    fn totals() {
        let mut r = Allocations::new();
        r.allocate(Bytes::mib(2));
        r.allocate(Bytes::kib(100));
        assert_eq!(r.total_requested(), Bytes::mib(2) + Bytes::kib(100));
        assert_eq!(r.total_rounded(), Bytes::mib(2) + Bytes::kib(128));
        assert_eq!(r.iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "zero-size")]
    fn zero_size_rejected() {
        let mut r = Allocations::new();
        r.allocate(Bytes::ZERO);
    }
}
