//! The policy registry: every prefetcher and evictor the driver can
//! run, resolvable by a [`PolicySpec`] — canonical name, alias, or a
//! parameterized `name:key=val,...` form.
//!
//! The registry is the single source of truth for policy names *and*
//! parameters. The [`PrefetchPolicy`]/[`EvictPolicy`] enum
//! `Display`/`FromStr` impls, the bench-binary CLIs
//! (`--prefetch`/`--evict`/`--list-policies`), and `Gmmu::new` all
//! resolve through it, so a policy registered here is selectable
//! everywhere without touching the mechanism. Each entry declares the
//! parameters it accepts ([`ParamSpec`]); a spec naming an undeclared
//! parameter is rejected with the accepted list before any factory
//! runs.
//!
//! Third-party policies extend a registry value ([`builtin`] +
//! [`register_prefetcher`]/[`register_evictor`]) and instantiate the
//! driver via `Gmmu::with_policies`; built-in selection goes through
//! the shared [`global`] table.
//!
//! [`builtin`]: PolicyRegistry::builtin
//! [`register_prefetcher`]: PolicyRegistry::register_prefetcher
//! [`register_evictor`]: PolicyRegistry::register_evictor
//! [`global`]: PolicyRegistry::global

use std::fmt;
use std::sync::OnceLock;

use crate::config::UvmConfig;
use crate::evict::{
    Evictor, FreqEvictor, LruLargeEvictor, LruPageEvictor, MosaicEvictor, RandomPageEvictor,
    SlEvictor, TbnEvictor,
};
use crate::policy::{EvictPolicy, PrefetchPolicy};
use crate::prefetch::{
    LearnedPrefetcher, MarkovPrefetcher, MosaicPrefetcher, NonePrefetcher, Prefetcher,
    RandomPrefetcher, SlPrefetcher, Stride256kPrefetcher, Sz512kPrefetcher, TbnPrefetcher,
};
use crate::spec::PolicySpec;

/// One parameter a registered policy accepts, for validation and
/// `--list-policies` documentation.
#[derive(Clone, Copy, Debug)]
pub struct ParamSpec {
    /// The `key` in `name:key=val`.
    pub key: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Human-readable default (documentation only — the factory owns
    /// the actual default).
    pub default: &'static str,
}

/// Why a [`PolicySpec`] failed to resolve against the registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PolicyError {
    /// No prefetcher registered under the spec's name; carries the
    /// known canonical names.
    UnknownPrefetcher { name: String, known: Vec<String> },
    /// No evictor registered under the spec's name.
    UnknownEvictor { name: String, known: Vec<String> },
    /// The spec names a parameter the policy does not declare.
    UnknownParam {
        policy: String,
        param: String,
        accepted: Vec<String>,
    },
    /// A declared parameter's value failed to parse or load.
    BadParam {
        policy: String,
        param: String,
        value: String,
        reason: String,
    },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::UnknownPrefetcher { name, known } => write!(
                f,
                "unknown prefetch policy: {name:?} (known: {})",
                known.join(", ")
            ),
            PolicyError::UnknownEvictor { name, known } => write!(
                f,
                "unknown eviction policy: {name:?} (known: {})",
                known.join(", ")
            ),
            PolicyError::UnknownParam {
                policy,
                param,
                accepted,
            } => {
                if accepted.is_empty() {
                    write!(f, "policy {policy:?} accepts no parameters (got {param:?})")
                } else {
                    write!(
                        f,
                        "policy {policy:?} does not accept parameter {param:?} \
                         (accepted: {})",
                        accepted.join(", ")
                    )
                }
            }
            PolicyError::BadParam {
                policy,
                param,
                value,
                reason,
            } => write!(
                f,
                "bad value {value:?} for parameter {param:?} of policy \
                 {policy:?}: {reason}"
            ),
        }
    }
}

impl std::error::Error for PolicyError {}

impl PolicyError {
    /// Builds a [`BadParam`](Self::BadParam) for `entry_name`; the
    /// factory helper policies use for value-parse failures.
    pub fn bad_param(
        policy: &str,
        param: &str,
        value: &str,
        reason: impl fmt::Display,
    ) -> PolicyError {
        PolicyError::BadParam {
            policy: policy.to_owned(),
            param: param.to_owned(),
            value: value.to_owned(),
            reason: reason.to_string(),
        }
    }
}

/// Signature of a [`PrefetcherEntry`] factory.
pub type PrefetcherFactory =
    fn(&UvmConfig, &PolicySpec) -> Result<Box<dyn Prefetcher>, PolicyError>;

/// Signature of an [`EvictorEntry`] factory.
pub type EvictorFactory = fn(&UvmConfig, &PolicySpec) -> Result<Box<dyn Evictor>, PolicyError>;

/// A registered prefetcher: names, documentation, parameters, factory.
#[derive(Clone)]
pub struct PrefetcherEntry {
    /// Canonical name — what the policy's `Display` prints and its
    /// `name()` method returns.
    pub name: &'static str,
    /// Accepted spellings besides the canonical name.
    pub aliases: &'static [&'static str],
    /// One-line description for `--list-policies`.
    pub summary: &'static str,
    /// Parameters the policy accepts (`name:key=val,...`); empty for
    /// parameterless policies.
    pub params: &'static [ParamSpec],
    /// The enum selector, for policies reachable through
    /// [`PrefetchPolicy`]; `None` for registrations that are
    /// name-only (parameterized and third-party policies).
    pub selector: Option<PrefetchPolicy>,
    /// Builds a fresh policy instance for one driver. The spec's
    /// parameter *keys* are pre-validated against [`params`]; the
    /// factory parses the values (and loads any files) and may fail
    /// with [`PolicyError::BadParam`].
    ///
    /// [`params`]: Self::params
    pub factory: PrefetcherFactory,
}

/// A registered evictor: names, documentation, parameters, factory.
#[derive(Clone)]
pub struct EvictorEntry {
    /// Canonical name — what the policy's `Display` prints and its
    /// `name()` method returns.
    pub name: &'static str,
    /// Accepted spellings besides the canonical name.
    pub aliases: &'static [&'static str],
    /// One-line description for `--list-policies`.
    pub summary: &'static str,
    /// Parameters the policy accepts; empty for parameterless
    /// policies.
    pub params: &'static [ParamSpec],
    /// The enum selector, for policies reachable through
    /// [`EvictPolicy`]; `None` for name-only registrations.
    pub selector: Option<EvictPolicy>,
    /// Builds a fresh policy instance for one driver (see
    /// [`PrefetcherEntry::factory`]).
    pub factory: EvictorFactory,
}

/// Name → factory table for both policy kinds.
#[derive(Clone, Default)]
pub struct PolicyRegistry {
    prefetchers: Vec<PrefetcherEntry>,
    evictors: Vec<EvictorEntry>,
}

impl PolicyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry holding every built-in policy: the paper's ten,
    /// the S256p/AFe out-of-core pair, the Mosaic huge-page pair, and
    /// the history-based markov/learned prefetchers.
    pub fn builtin() -> Self {
        let mut r = PolicyRegistry::new();
        r.register_prefetcher(PrefetcherEntry {
            name: "none",
            aliases: &[],
            summary: "no prefetching: pure 4 KB on-demand migration",
            params: &[],
            selector: Some(PrefetchPolicy::None),
            factory: |_, _| Ok(Box::new(NonePrefetcher)),
        });
        r.register_prefetcher(PrefetcherEntry {
            name: "Rp",
            aliases: &["random"],
            summary: "one random invalid page of the faulty 2 MB large page (Sec. 3.1)",
            params: &[],
            selector: Some(PrefetchPolicy::Random),
            factory: |_, _| Ok(Box::new(RandomPrefetcher)),
        });
        r.register_prefetcher(PrefetcherEntry {
            name: "SLp",
            aliases: &["sequential-local"],
            summary: "rest of the faulty 64 KB basic block as one group (Sec. 3.2)",
            params: &[],
            selector: Some(PrefetchPolicy::SequentialLocal),
            factory: |_, _| Ok(Box::new(SlPrefetcher)),
        });
        r.register_prefetcher(PrefetcherEntry {
            name: "SZp",
            aliases: &["zheng", "sequential-512k"],
            summary: "Zheng et al.: 128 consecutive pages (512 KB) past the fault",
            params: &[],
            selector: Some(PrefetchPolicy::Sequential512K),
            factory: |_, _| Ok(Box::new(Sz512kPrefetcher)),
        });
        r.register_prefetcher(PrefetcherEntry {
            name: "S256p",
            aliases: &["stride-256k"],
            summary: "fixed 256 KB stride window past the fault (Long et al. baseline)",
            params: &[],
            selector: Some(PrefetchPolicy::Stride256K),
            factory: |_, _| Ok(Box::new(Stride256kPrefetcher)),
        });
        r.register_prefetcher(PrefetcherEntry {
            name: "TBNp",
            aliases: &["tree"],
            summary: "tree-based neighborhood prefetch from the NVIDIA driver (Sec. 3.3)",
            params: &[],
            selector: Some(PrefetchPolicy::TreeBasedNeighborhood),
            factory: |_, _| Ok(Box::new(TbnPrefetcher)),
        });
        r.register_prefetcher(PrefetcherEntry {
            name: "MOSp",
            aliases: &["mosaic-prefetch", "mosp"],
            summary: "Mosaic-style: TBN plan plus finish-the-2MB-page for coalescing",
            params: &[],
            selector: Some(PrefetchPolicy::MosaicCoalesce),
            factory: |_, _| Ok(Box::new(MosaicPrefetcher::new())),
        });
        r.register_prefetcher(PrefetcherEntry {
            name: "markov",
            aliases: &["MKVp", "delta-correlation"],
            summary: "online delta-correlation (Markov-table) fault-history prefetch",
            params: MarkovPrefetcher::PARAMS,
            selector: None,
            factory: |_, spec| Ok(Box::new(MarkovPrefetcher::from_spec(spec)?)),
        });
        r.register_prefetcher(PrefetcherEntry {
            name: "learned",
            aliases: &["LRNp", "table-driven"],
            summary: "offline-trained delta table (train_prefetcher) loaded from a file",
            params: LearnedPrefetcher::PARAMS,
            selector: None,
            factory: |_, spec| Ok(Box::new(LearnedPrefetcher::from_spec(spec)?)),
        });
        r.register_evictor(EvictorEntry {
            name: "LRU-4KB",
            aliases: &["lru"],
            summary: "least-recently accessed 4 KB page, the CUDA baseline (Sec. 4.2)",
            params: &[],
            selector: Some(EvictPolicy::LruPage),
            factory: |_, _| Ok(Box::new(LruPageEvictor::new())),
        });
        r.register_evictor(EvictorEntry {
            name: "Re",
            aliases: &["random"],
            summary: "uniformly random resident 4 KB page (Sec. 4.2)",
            params: &[],
            selector: Some(EvictPolicy::RandomPage),
            factory: |_, _| Ok(Box::new(RandomPageEvictor)),
        });
        r.register_evictor(EvictorEntry {
            name: "SLe",
            aliases: &["sequential-local"],
            summary: "pre-evict the whole LRU 64 KB basic block (Sec. 5.1)",
            params: &[],
            selector: Some(EvictPolicy::SequentialLocal),
            factory: |_, _| Ok(Box::new(SlEvictor::new())),
        });
        r.register_evictor(EvictorEntry {
            name: "TBNe",
            aliases: &["tree"],
            summary: "tree-based neighborhood pre-eviction, 64 KB–1 MB (Sec. 5.2)",
            params: &[],
            selector: Some(EvictPolicy::TreeBasedNeighborhood),
            factory: |_, _| Ok(Box::new(TbnEvictor::new())),
        });
        r.register_evictor(EvictorEntry {
            name: "LRU-2MB",
            aliases: &["lru-2mb"],
            summary: "static 2 MB large-page LRU eviction (Sec. 7.5)",
            params: &[],
            selector: Some(EvictPolicy::LruLargePage),
            factory: |_, _| Ok(Box::new(LruLargeEvictor::new())),
        });
        r.register_evictor(EvictorEntry {
            name: "AFe",
            aliases: &["freq", "access-frequency"],
            summary: "least-frequently accessed resident page (LFU)",
            params: &[],
            selector: Some(EvictPolicy::AccessFrequency),
            factory: |_, _| Ok(Box::new(FreqEvictor::new())),
        });
        r.register_evictor(EvictorEntry {
            name: "MOSe",
            aliases: &["mosaic-evict", "mose"],
            summary: "Mosaic-style: splinter the coldest huge page, evict its LRU blocks",
            params: &[],
            selector: Some(EvictPolicy::MosaicSplinter),
            factory: |_, _| Ok(Box::new(MosaicEvictor::new())),
        });
        r
    }

    /// The process-wide built-in registry the enums and `Gmmu::new`
    /// resolve through.
    pub fn global() -> &'static PolicyRegistry {
        static GLOBAL: OnceLock<PolicyRegistry> = OnceLock::new();
        GLOBAL.get_or_init(PolicyRegistry::builtin)
    }

    /// Adds a prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if the canonical name or an alias collides with an
    /// existing prefetcher entry.
    pub fn register_prefetcher(&mut self, entry: PrefetcherEntry) {
        for name in entry.names() {
            assert!(
                self.prefetcher(name).is_none(),
                "duplicate prefetcher name {name:?}"
            );
        }
        self.prefetchers.push(entry);
    }

    /// Adds an evictor.
    ///
    /// # Panics
    ///
    /// Panics if the canonical name or an alias collides with an
    /// existing evictor entry.
    pub fn register_evictor(&mut self, entry: EvictorEntry) {
        for name in entry.names() {
            assert!(
                self.evictor(name).is_none(),
                "duplicate evictor name {name:?}"
            );
        }
        self.evictors.push(entry);
    }

    /// Looks up a prefetcher by canonical name or alias.
    pub fn prefetcher(&self, name: &str) -> Option<&PrefetcherEntry> {
        self.prefetchers.iter().find(|e| e.matches(name))
    }

    /// Looks up an evictor by canonical name or alias.
    pub fn evictor(&self, name: &str) -> Option<&EvictorEntry> {
        self.evictors.iter().find(|e| e.matches(name))
    }

    /// The entry a [`PrefetchPolicy`] selector resolves to.
    pub fn prefetcher_for(&self, selector: PrefetchPolicy) -> Option<&PrefetcherEntry> {
        self.prefetchers
            .iter()
            .find(|e| e.selector == Some(selector))
    }

    /// The entry an [`EvictPolicy`] selector resolves to.
    pub fn evictor_for(&self, selector: EvictPolicy) -> Option<&EvictorEntry> {
        self.evictors.iter().find(|e| e.selector == Some(selector))
    }

    /// Resolves a prefetch spec: canonicalizes the name (alias →
    /// canonical) and validates every parameter key against the
    /// entry's declared [`ParamSpec`]s. Value parsing stays with the
    /// factory, so this is the cheap CLI-time check.
    pub fn canonical_prefetch_spec(&self, spec: &PolicySpec) -> Result<PolicySpec, PolicyError> {
        let entry = self
            .prefetcher(spec.name())
            .ok_or_else(|| PolicyError::UnknownPrefetcher {
                name: spec.name().to_owned(),
                known: self
                    .prefetcher_names()
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            })?;
        validate_params(entry.name, entry.params, spec)?;
        Ok(spec.clone().rename(entry.name))
    }

    /// Resolves an evict spec (see [`canonical_prefetch_spec`]).
    ///
    /// [`canonical_prefetch_spec`]: Self::canonical_prefetch_spec
    pub fn canonical_evict_spec(&self, spec: &PolicySpec) -> Result<PolicySpec, PolicyError> {
        let entry = self
            .evictor(spec.name())
            .ok_or_else(|| PolicyError::UnknownEvictor {
                name: spec.name().to_owned(),
                known: self.evictor_names().iter().map(|s| s.to_string()).collect(),
            })?;
        validate_params(entry.name, entry.params, spec)?;
        Ok(spec.clone().rename(entry.name))
    }

    /// Builds the prefetcher a spec describes: name resolution,
    /// parameter-key validation, then the entry's factory (which
    /// parses values and loads any files).
    pub fn build_prefetcher_spec(
        &self,
        spec: &PolicySpec,
        cfg: &UvmConfig,
    ) -> Result<Box<dyn Prefetcher>, PolicyError> {
        let canonical = self.canonical_prefetch_spec(spec)?;
        let entry = self.prefetcher(canonical.name()).expect("just resolved");
        (entry.factory)(cfg, &canonical)
    }

    /// Builds the evictor a spec describes (see
    /// [`build_prefetcher_spec`]).
    ///
    /// [`build_prefetcher_spec`]: Self::build_prefetcher_spec
    pub fn build_evictor_spec(
        &self,
        spec: &PolicySpec,
        cfg: &UvmConfig,
    ) -> Result<Box<dyn Evictor>, PolicyError> {
        let canonical = self.canonical_evict_spec(spec)?;
        let entry = self.evictor(canonical.name()).expect("just resolved");
        (entry.factory)(cfg, &canonical)
    }

    /// Builds the prefetcher for `selector`.
    ///
    /// # Panics
    ///
    /// Panics if no entry carries the selector (the built-in registry
    /// covers every enum variant; selector-bearing entries take no
    /// parameters, so the factory cannot fail).
    pub fn build_prefetcher(
        &self,
        selector: PrefetchPolicy,
        cfg: &UvmConfig,
    ) -> Box<dyn Prefetcher> {
        let entry = self
            .prefetcher_for(selector)
            .unwrap_or_else(|| panic!("no registered prefetcher for {selector:?}"));
        (entry.factory)(cfg, &PolicySpec::new(entry.name))
            .unwrap_or_else(|e| panic!("building {selector:?} failed: {e}"))
    }

    /// Builds the evictor for `selector`.
    ///
    /// # Panics
    ///
    /// Panics if no entry carries the selector (the built-in registry
    /// covers every enum variant).
    pub fn build_evictor(&self, selector: EvictPolicy, cfg: &UvmConfig) -> Box<dyn Evictor> {
        let entry = self
            .evictor_for(selector)
            .unwrap_or_else(|| panic!("no registered evictor for {selector:?}"));
        (entry.factory)(cfg, &PolicySpec::new(entry.name))
            .unwrap_or_else(|e| panic!("building {selector:?} failed: {e}"))
    }

    /// All registered prefetchers, registration order.
    pub fn prefetchers(&self) -> &[PrefetcherEntry] {
        &self.prefetchers
    }

    /// All registered evictors, registration order.
    pub fn evictors(&self) -> &[EvictorEntry] {
        &self.evictors
    }

    /// Canonical prefetcher names, registration order.
    pub fn prefetcher_names(&self) -> Vec<&'static str> {
        self.prefetchers.iter().map(|e| e.name).collect()
    }

    /// Canonical evictor names, registration order.
    pub fn evictor_names(&self) -> Vec<&'static str> {
        self.evictors.iter().map(|e| e.name).collect()
    }
}

/// Rejects parameters the entry does not declare.
fn validate_params(
    entry_name: &'static str,
    accepted: &'static [ParamSpec],
    spec: &PolicySpec,
) -> Result<(), PolicyError> {
    for (key, _) in spec.params() {
        if !accepted.iter().any(|p| p.key == key) {
            return Err(PolicyError::UnknownParam {
                policy: entry_name.to_owned(),
                param: key.clone(),
                accepted: accepted.iter().map(|p| p.key.to_owned()).collect(),
            });
        }
    }
    Ok(())
}

impl PrefetcherEntry {
    /// Canonical name followed by the aliases.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        std::iter::once(self.name).chain(self.aliases.iter().copied())
    }

    fn matches(&self, name: &str) -> bool {
        self.names().any(|n| n == name)
    }
}

impl EvictorEntry {
    /// Canonical name followed by the aliases.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        std::iter::once(self.name).chain(self.aliases.iter().copied())
    }

    fn matches(&self, name: &str) -> bool {
        self.names().any(|n| n == name)
    }
}

impl std::fmt::Debug for PolicyRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyRegistry")
            .field("prefetchers", &self.prefetcher_names())
            .field("evictors", &self.evictor_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_enum_selector_has_an_entry() {
        let r = PolicyRegistry::global();
        for p in PrefetchPolicy::ALL_WITH_ABLATIONS {
            let e = r
                .prefetcher_for(p)
                .unwrap_or_else(|| panic!("missing {p:?}"));
            assert_eq!(e.name, p.to_string(), "canonical name matches Display");
        }
        for ev in EvictPolicy::ALL_WITH_ABLATIONS {
            let e = r
                .evictor_for(ev)
                .unwrap_or_else(|| panic!("missing {ev:?}"));
            assert_eq!(e.name, ev.to_string(), "canonical name matches Display");
        }
    }

    #[test]
    fn built_policies_report_their_registry_name() {
        let cfg = UvmConfig::default();
        let r = PolicyRegistry::global();
        for e in r.prefetchers() {
            let built = (e.factory)(&cfg, &PolicySpec::new(e.name)).unwrap();
            assert_eq!(built.name(), e.name);
        }
        for e in r.evictors() {
            let built = (e.factory)(&cfg, &PolicySpec::new(e.name)).unwrap();
            assert_eq!(built.name(), e.name);
        }
    }

    #[test]
    fn evictor_pre_eviction_flag_matches_enum_classification() {
        let cfg = UvmConfig::default();
        for e in PolicyRegistry::global().evictors() {
            let selector = e.selector.expect("built-ins carry selectors");
            let built = (e.factory)(&cfg, &PolicySpec::new(e.name)).unwrap();
            assert_eq!(
                built.is_pre_eviction(),
                selector.is_pre_eviction(),
                "{}",
                e.name
            );
        }
    }

    #[test]
    fn lookup_by_alias_and_name() {
        let r = PolicyRegistry::global();
        assert_eq!(r.prefetcher("tree").unwrap().name, "TBNp");
        assert_eq!(r.prefetcher("TBNp").unwrap().name, "TBNp");
        assert_eq!(r.prefetcher("MKVp").unwrap().name, "markov");
        assert_eq!(r.evictor("freq").unwrap().name, "AFe");
        assert!(r.prefetcher("bogus").is_none());
    }

    #[test]
    fn canonical_spec_resolves_aliases_and_keeps_params() {
        let r = PolicyRegistry::global();
        let spec: PolicySpec = "delta-correlation:depth=2".parse().unwrap();
        let canonical = r.canonical_prefetch_spec(&spec).unwrap();
        assert_eq!(canonical.to_string(), "markov:depth=2");
        let bare = r.canonical_evict_spec(&"lru".parse().unwrap()).unwrap();
        assert_eq!(bare.to_string(), "LRU-4KB");
    }

    #[test]
    fn unknown_params_are_rejected_listing_accepted() {
        let r = PolicyRegistry::global();
        let err = r
            .canonical_prefetch_spec(&"markov:bogus=1".parse().unwrap())
            .unwrap_err();
        let PolicyError::UnknownParam {
            policy,
            param,
            accepted,
        } = &err
        else {
            panic!("expected UnknownParam, got {err:?}");
        };
        assert_eq!(policy, "markov");
        assert_eq!(param, "bogus");
        assert!(accepted.iter().any(|p| p == "depth"), "{accepted:?}");
        let msg = err.to_string();
        assert!(msg.contains("bogus") && msg.contains("depth"), "{msg}");

        // Parameterless policies reject any parameter.
        let err = r
            .canonical_prefetch_spec(&"TBNp:depth=2".parse().unwrap())
            .unwrap_err();
        assert!(err.to_string().contains("accepts no parameters"), "{err}");
    }

    #[test]
    fn unknown_names_list_the_registry() {
        let r = PolicyRegistry::global();
        let err = r
            .canonical_prefetch_spec(&PolicySpec::new("bogus"))
            .unwrap_err();
        let msg = err.to_string();
        for name in r.prefetcher_names() {
            assert!(msg.contains(name), "error lists {name}");
        }
    }

    #[test]
    fn build_prefetcher_spec_applies_params() {
        let r = PolicyRegistry::global();
        let cfg = UvmConfig::default();
        let p = r
            .build_prefetcher_spec(&"markov:depth=2,degree=4".parse().unwrap(), &cfg)
            .unwrap();
        assert_eq!(p.name(), "markov");
        let err = r
            .build_prefetcher_spec(&"markov:depth=zero".parse().unwrap(), &cfg)
            .unwrap_err();
        assert!(matches!(err, PolicyError::BadParam { .. }), "{err:?}");
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_registration_panics() {
        let mut r = PolicyRegistry::builtin();
        r.register_prefetcher(PrefetcherEntry {
            name: "Rp",
            aliases: &[],
            summary: "",
            params: &[],
            selector: None,
            factory: |_, _| Ok(Box::new(NonePrefetcher)),
        });
    }

    #[test]
    fn third_party_registration_is_name_reachable() {
        let mut r = PolicyRegistry::builtin();
        r.register_prefetcher(PrefetcherEntry {
            name: "mine",
            aliases: &["my-policy"],
            summary: "a third-party prefetcher",
            params: &[],
            selector: None,
            factory: |_, _| Ok(Box::new(NonePrefetcher)),
        });
        let cfg = UvmConfig::default();
        let e = r.prefetcher("my-policy").unwrap();
        assert!(e.selector.is_none());
        assert_eq!(
            (e.factory)(&cfg, &PolicySpec::new("mine")).unwrap().name(),
            "none"
        );
    }
}
