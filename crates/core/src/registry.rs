//! The string-keyed policy registry: every prefetcher and evictor the
//! driver can run, resolvable by canonical name or alias.
//!
//! The registry is the single source of truth for policy names. The
//! [`PrefetchPolicy`]/[`EvictPolicy`] enum `Display`/`FromStr` impls,
//! the bench-binary CLIs (`--prefetch`/`--evict`/`--list-policies`),
//! and `Gmmu::new` all resolve through it, so a policy registered here
//! is selectable everywhere without touching the mechanism.
//!
//! Third-party policies extend a registry value ([`builtin`] +
//! [`register_prefetcher`]/[`register_evictor`]) and instantiate the
//! driver via `Gmmu::with_policies`; built-in selection goes through
//! the shared [`global`] table.
//!
//! [`builtin`]: PolicyRegistry::builtin
//! [`register_prefetcher`]: PolicyRegistry::register_prefetcher
//! [`register_evictor`]: PolicyRegistry::register_evictor
//! [`global`]: PolicyRegistry::global

use std::sync::OnceLock;

use crate::config::UvmConfig;
use crate::evict::{
    Evictor, FreqEvictor, LruLargeEvictor, LruPageEvictor, MosaicEvictor, RandomPageEvictor,
    SlEvictor, TbnEvictor,
};
use crate::policy::{EvictPolicy, PrefetchPolicy};
use crate::prefetch::{
    MosaicPrefetcher, NonePrefetcher, Prefetcher, RandomPrefetcher, SlPrefetcher,
    Stride256kPrefetcher, Sz512kPrefetcher, TbnPrefetcher,
};

/// A registered prefetcher: names, documentation, and factory.
#[derive(Clone)]
pub struct PrefetcherEntry {
    /// Canonical name — what the policy's `Display` prints and its
    /// `name()` method returns.
    pub name: &'static str,
    /// Accepted spellings besides the canonical name.
    pub aliases: &'static [&'static str],
    /// One-line description for `--list-policies`.
    pub summary: &'static str,
    /// The enum selector, for policies reachable through
    /// [`PrefetchPolicy`]; `None` for third-party registrations that
    /// are name-only.
    pub selector: Option<PrefetchPolicy>,
    /// Builds a fresh policy instance for one driver.
    pub factory: fn(&UvmConfig) -> Box<dyn Prefetcher>,
}

/// A registered evictor: names, documentation, and factory.
#[derive(Clone)]
pub struct EvictorEntry {
    /// Canonical name — what the policy's `Display` prints and its
    /// `name()` method returns.
    pub name: &'static str,
    /// Accepted spellings besides the canonical name.
    pub aliases: &'static [&'static str],
    /// One-line description for `--list-policies`.
    pub summary: &'static str,
    /// The enum selector, for policies reachable through
    /// [`EvictPolicy`]; `None` for third-party registrations.
    pub selector: Option<EvictPolicy>,
    /// Builds a fresh policy instance for one driver.
    pub factory: fn(&UvmConfig) -> Box<dyn Evictor>,
}

/// Name → factory table for both policy kinds.
#[derive(Clone, Default)]
pub struct PolicyRegistry {
    prefetchers: Vec<PrefetcherEntry>,
    evictors: Vec<EvictorEntry>,
}

impl PolicyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry holding every built-in policy (the paper's ten
    /// plus the S256p/AFe out-of-core pair).
    pub fn builtin() -> Self {
        let mut r = PolicyRegistry::new();
        r.register_prefetcher(PrefetcherEntry {
            name: "none",
            aliases: &[],
            summary: "no prefetching: pure 4 KB on-demand migration",
            selector: Some(PrefetchPolicy::None),
            factory: |_| Box::new(NonePrefetcher),
        });
        r.register_prefetcher(PrefetcherEntry {
            name: "Rp",
            aliases: &["random"],
            summary: "one random invalid page of the faulty 2 MB large page (Sec. 3.1)",
            selector: Some(PrefetchPolicy::Random),
            factory: |_| Box::new(RandomPrefetcher),
        });
        r.register_prefetcher(PrefetcherEntry {
            name: "SLp",
            aliases: &["sequential-local"],
            summary: "rest of the faulty 64 KB basic block as one group (Sec. 3.2)",
            selector: Some(PrefetchPolicy::SequentialLocal),
            factory: |_| Box::new(SlPrefetcher),
        });
        r.register_prefetcher(PrefetcherEntry {
            name: "SZp",
            aliases: &["zheng", "sequential-512k"],
            summary: "Zheng et al.: 128 consecutive pages (512 KB) past the fault",
            selector: Some(PrefetchPolicy::Sequential512K),
            factory: |_| Box::new(Sz512kPrefetcher),
        });
        r.register_prefetcher(PrefetcherEntry {
            name: "S256p",
            aliases: &["stride-256k"],
            summary: "fixed 256 KB stride window past the fault (Long et al. baseline)",
            selector: Some(PrefetchPolicy::Stride256K),
            factory: |_| Box::new(Stride256kPrefetcher),
        });
        r.register_prefetcher(PrefetcherEntry {
            name: "TBNp",
            aliases: &["tree"],
            summary: "tree-based neighborhood prefetch from the NVIDIA driver (Sec. 3.3)",
            selector: Some(PrefetchPolicy::TreeBasedNeighborhood),
            factory: |_| Box::new(TbnPrefetcher),
        });
        r.register_prefetcher(PrefetcherEntry {
            name: "MOSp",
            aliases: &["mosaic-prefetch", "mosp"],
            summary: "Mosaic-style: TBN plan plus finish-the-2MB-page for coalescing",
            selector: Some(PrefetchPolicy::MosaicCoalesce),
            factory: |_| Box::new(MosaicPrefetcher::new()),
        });
        r.register_evictor(EvictorEntry {
            name: "LRU-4KB",
            aliases: &["lru"],
            summary: "least-recently accessed 4 KB page, the CUDA baseline (Sec. 4.2)",
            selector: Some(EvictPolicy::LruPage),
            factory: |_| Box::new(LruPageEvictor::new()),
        });
        r.register_evictor(EvictorEntry {
            name: "Re",
            aliases: &["random"],
            summary: "uniformly random resident 4 KB page (Sec. 4.2)",
            selector: Some(EvictPolicy::RandomPage),
            factory: |_| Box::new(RandomPageEvictor),
        });
        r.register_evictor(EvictorEntry {
            name: "SLe",
            aliases: &["sequential-local"],
            summary: "pre-evict the whole LRU 64 KB basic block (Sec. 5.1)",
            selector: Some(EvictPolicy::SequentialLocal),
            factory: |_| Box::new(SlEvictor::new()),
        });
        r.register_evictor(EvictorEntry {
            name: "TBNe",
            aliases: &["tree"],
            summary: "tree-based neighborhood pre-eviction, 64 KB–1 MB (Sec. 5.2)",
            selector: Some(EvictPolicy::TreeBasedNeighborhood),
            factory: |_| Box::new(TbnEvictor::new()),
        });
        r.register_evictor(EvictorEntry {
            name: "LRU-2MB",
            aliases: &["lru-2mb"],
            summary: "static 2 MB large-page LRU eviction (Sec. 7.5)",
            selector: Some(EvictPolicy::LruLargePage),
            factory: |_| Box::new(LruLargeEvictor::new()),
        });
        r.register_evictor(EvictorEntry {
            name: "AFe",
            aliases: &["freq", "access-frequency"],
            summary: "least-frequently accessed resident page (LFU)",
            selector: Some(EvictPolicy::AccessFrequency),
            factory: |_| Box::new(FreqEvictor::new()),
        });
        r.register_evictor(EvictorEntry {
            name: "MOSe",
            aliases: &["mosaic-evict", "mose"],
            summary: "Mosaic-style: splinter the coldest huge page, evict its LRU blocks",
            selector: Some(EvictPolicy::MosaicSplinter),
            factory: |_| Box::new(MosaicEvictor::new()),
        });
        r
    }

    /// The process-wide built-in registry the enums and `Gmmu::new`
    /// resolve through.
    pub fn global() -> &'static PolicyRegistry {
        static GLOBAL: OnceLock<PolicyRegistry> = OnceLock::new();
        GLOBAL.get_or_init(PolicyRegistry::builtin)
    }

    /// Adds a prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if the canonical name or an alias collides with an
    /// existing prefetcher entry.
    pub fn register_prefetcher(&mut self, entry: PrefetcherEntry) {
        for name in entry.names() {
            assert!(
                self.prefetcher(name).is_none(),
                "duplicate prefetcher name {name:?}"
            );
        }
        self.prefetchers.push(entry);
    }

    /// Adds an evictor.
    ///
    /// # Panics
    ///
    /// Panics if the canonical name or an alias collides with an
    /// existing evictor entry.
    pub fn register_evictor(&mut self, entry: EvictorEntry) {
        for name in entry.names() {
            assert!(
                self.evictor(name).is_none(),
                "duplicate evictor name {name:?}"
            );
        }
        self.evictors.push(entry);
    }

    /// Looks up a prefetcher by canonical name or alias.
    pub fn prefetcher(&self, name: &str) -> Option<&PrefetcherEntry> {
        self.prefetchers.iter().find(|e| e.matches(name))
    }

    /// Looks up an evictor by canonical name or alias.
    pub fn evictor(&self, name: &str) -> Option<&EvictorEntry> {
        self.evictors.iter().find(|e| e.matches(name))
    }

    /// The entry a [`PrefetchPolicy`] selector resolves to.
    pub fn prefetcher_for(&self, selector: PrefetchPolicy) -> Option<&PrefetcherEntry> {
        self.prefetchers
            .iter()
            .find(|e| e.selector == Some(selector))
    }

    /// The entry an [`EvictPolicy`] selector resolves to.
    pub fn evictor_for(&self, selector: EvictPolicy) -> Option<&EvictorEntry> {
        self.evictors.iter().find(|e| e.selector == Some(selector))
    }

    /// Builds the prefetcher for `selector`.
    ///
    /// # Panics
    ///
    /// Panics if no entry carries the selector (the built-in registry
    /// covers every enum variant).
    pub fn build_prefetcher(
        &self,
        selector: PrefetchPolicy,
        cfg: &UvmConfig,
    ) -> Box<dyn Prefetcher> {
        let entry = self
            .prefetcher_for(selector)
            .unwrap_or_else(|| panic!("no registered prefetcher for {selector:?}"));
        (entry.factory)(cfg)
    }

    /// Builds the evictor for `selector`.
    ///
    /// # Panics
    ///
    /// Panics if no entry carries the selector (the built-in registry
    /// covers every enum variant).
    pub fn build_evictor(&self, selector: EvictPolicy, cfg: &UvmConfig) -> Box<dyn Evictor> {
        let entry = self
            .evictor_for(selector)
            .unwrap_or_else(|| panic!("no registered evictor for {selector:?}"));
        (entry.factory)(cfg)
    }

    /// All registered prefetchers, registration order.
    pub fn prefetchers(&self) -> &[PrefetcherEntry] {
        &self.prefetchers
    }

    /// All registered evictors, registration order.
    pub fn evictors(&self) -> &[EvictorEntry] {
        &self.evictors
    }

    /// Canonical prefetcher names, registration order.
    pub fn prefetcher_names(&self) -> Vec<&'static str> {
        self.prefetchers.iter().map(|e| e.name).collect()
    }

    /// Canonical evictor names, registration order.
    pub fn evictor_names(&self) -> Vec<&'static str> {
        self.evictors.iter().map(|e| e.name).collect()
    }
}

impl PrefetcherEntry {
    /// Canonical name followed by the aliases.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        std::iter::once(self.name).chain(self.aliases.iter().copied())
    }

    fn matches(&self, name: &str) -> bool {
        self.names().any(|n| n == name)
    }
}

impl EvictorEntry {
    /// Canonical name followed by the aliases.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        std::iter::once(self.name).chain(self.aliases.iter().copied())
    }

    fn matches(&self, name: &str) -> bool {
        self.names().any(|n| n == name)
    }
}

impl std::fmt::Debug for PolicyRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyRegistry")
            .field("prefetchers", &self.prefetcher_names())
            .field("evictors", &self.evictor_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_enum_selector_has_an_entry() {
        let r = PolicyRegistry::global();
        for p in PrefetchPolicy::ALL_WITH_ABLATIONS {
            let e = r
                .prefetcher_for(p)
                .unwrap_or_else(|| panic!("missing {p:?}"));
            assert_eq!(e.name, p.to_string(), "canonical name matches Display");
        }
        for ev in EvictPolicy::ALL_WITH_ABLATIONS {
            let e = r
                .evictor_for(ev)
                .unwrap_or_else(|| panic!("missing {ev:?}"));
            assert_eq!(e.name, ev.to_string(), "canonical name matches Display");
        }
    }

    #[test]
    fn built_policies_report_their_registry_name() {
        let cfg = UvmConfig::default();
        let r = PolicyRegistry::global();
        for e in r.prefetchers() {
            assert_eq!((e.factory)(&cfg).name(), e.name);
        }
        for e in r.evictors() {
            assert_eq!((e.factory)(&cfg).name(), e.name);
        }
    }

    #[test]
    fn evictor_pre_eviction_flag_matches_enum_classification() {
        let cfg = UvmConfig::default();
        for e in PolicyRegistry::global().evictors() {
            let selector = e.selector.expect("built-ins carry selectors");
            assert_eq!(
                (e.factory)(&cfg).is_pre_eviction(),
                selector.is_pre_eviction(),
                "{}",
                e.name
            );
        }
    }

    #[test]
    fn lookup_by_alias_and_name() {
        let r = PolicyRegistry::global();
        assert_eq!(r.prefetcher("tree").unwrap().name, "TBNp");
        assert_eq!(r.prefetcher("TBNp").unwrap().name, "TBNp");
        assert_eq!(r.evictor("freq").unwrap().name, "AFe");
        assert!(r.prefetcher("bogus").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_registration_panics() {
        let mut r = PolicyRegistry::builtin();
        r.register_prefetcher(PrefetcherEntry {
            name: "Rp",
            aliases: &[],
            summary: "",
            selector: None,
            factory: |_| Box::new(NonePrefetcher),
        });
    }

    #[test]
    fn third_party_registration_is_name_reachable() {
        let mut r = PolicyRegistry::builtin();
        r.register_prefetcher(PrefetcherEntry {
            name: "mine",
            aliases: &["my-policy"],
            summary: "a third-party prefetcher",
            selector: None,
            factory: |_| Box::new(NonePrefetcher),
        });
        let cfg = UvmConfig::default();
        let e = r.prefetcher("my-policy").unwrap();
        assert!(e.selector.is_none());
        assert_eq!((e.factory)(&cfg).name(), "none");
    }
}
