//! Parameterized policy specifications — the `name:key=val,...`
//! grammar every CLI and config surface resolves policies through.
//!
//! A [`PolicySpec`] is the *general* policy identity: a registered
//! name (canonical or alias) plus an ordered set of `key=value`
//! parameters. Bare names (`"TBNp"`, `"lru"`) remain valid — they are
//! specs with no parameters — so every pre-existing spelling keeps
//! working, while parameterized policies like `markov:depth=2` or
//! `learned:table=results/bp.tbl` become expressible from any CLI.
//!
//! Grammar (`FromStr`):
//!
//! ```text
//! spec   := name [ ':' param ( ',' param )* ]
//! param  := key '=' value
//! name   := any characters except ':'       (non-empty)
//! key    := any characters except '=' / ',' (non-empty)
//! value  := any characters except ','       (may be empty? no: non-empty)
//! ```
//!
//! Parameters are canonicalized to ascending key order on parse, so
//! `markov:table=512,depth=2` and `markov:depth=2,table=512` are the
//! *same* spec: they compare equal, display identically, and hash to
//! the same [`RunKey`](https://docs.rs/uvm-sim) cache entry. `Display`
//! emits the canonical form, and `parse(display(s)) == s` holds for
//! every spec — the round-trip property the CLI layers rely on.
//!
//! Name resolution (alias → canonical name) and parameter validation
//! live in the [`PolicyRegistry`](crate::PolicyRegistry); this module
//! is pure syntax.

use std::fmt;
use std::str::FromStr;

use crate::policy::{EvictPolicy, PrefetchPolicy};

/// A parsed policy specification: a policy name plus its parameters,
/// canonicalized to ascending key order.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PolicySpec {
    name: String,
    /// `key=value` pairs, sorted ascending by key, keys unique.
    params: Vec<(String, String)>,
}

impl PolicySpec {
    /// A bare spec (no parameters) for `name`.
    pub fn new(name: impl Into<String>) -> Self {
        PolicySpec {
            name: name.into(),
            params: Vec::new(),
        }
    }

    /// Adds (or replaces) one parameter, keeping the canonical key
    /// order.
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        let key = key.into();
        let value = value.into();
        match self.params.binary_search_by(|(k, _)| k.as_str().cmp(&key)) {
            Ok(i) => self.params[i].1 = value,
            Err(i) => self.params.insert(i, (key, value)),
        }
        self
    }

    /// The policy name as given (canonical name or alias — resolution
    /// is the registry's job).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replaces the name, keeping the parameters (the registry uses
    /// this to canonicalize aliases).
    pub(crate) fn rename(mut self, name: &str) -> Self {
        self.name = name.to_owned();
        self
    }

    /// The parameters, ascending key order.
    pub fn params(&self) -> &[(String, String)] {
        &self.params
    }

    /// The value of parameter `key`, if present.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.params[i].1.as_str())
    }

    /// `true` if the spec carries no parameters (a bare name).
    pub fn is_bare(&self) -> bool {
        self.params.is_empty()
    }
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        for (i, (k, v)) in self.params.iter().enumerate() {
            f.write_str(if i == 0 { ":" } else { "," })?;
            write!(f, "{k}={v}")?;
        }
        Ok(())
    }
}

/// Error parsing the `name:key=val,...` grammar (pure syntax — unknown
/// names and parameters are registry-level errors).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseSpecError {
    /// The spec was empty, or nothing preceded the `:`.
    EmptyName,
    /// A parameter was missing its `=` (the offending fragment).
    MissingEquals(String),
    /// A parameter had an empty key or value (the offending fragment).
    EmptyParam(String),
    /// The same key appeared twice.
    DuplicateKey(String),
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseSpecError::EmptyName => {
                write!(f, "empty policy name (expected name or name:key=val,...)")
            }
            ParseSpecError::MissingEquals(p) => {
                write!(
                    f,
                    "policy parameter {p:?} is missing '=' (expected key=val)"
                )
            }
            ParseSpecError::EmptyParam(p) => {
                write!(f, "policy parameter {p:?} has an empty key or value")
            }
            ParseSpecError::DuplicateKey(k) => {
                write!(f, "policy parameter key {k:?} given twice")
            }
        }
    }
}

impl std::error::Error for ParseSpecError {}

impl FromStr for PolicySpec {
    type Err = ParseSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (name, rest) = match s.split_once(':') {
            None => (s, None),
            Some((n, r)) => (n, Some(r)),
        };
        if name.is_empty() {
            return Err(ParseSpecError::EmptyName);
        }
        let mut spec = PolicySpec::new(name);
        if let Some(rest) = rest {
            // `name:` with nothing after the colon is malformed — a
            // bare name must simply omit the colon.
            if rest.is_empty() {
                return Err(ParseSpecError::EmptyParam(String::new()));
            }
            for fragment in rest.split(',') {
                let Some((key, value)) = fragment.split_once('=') else {
                    return Err(ParseSpecError::MissingEquals(fragment.to_owned()));
                };
                if key.is_empty() || value.is_empty() {
                    return Err(ParseSpecError::EmptyParam(fragment.to_owned()));
                }
                if spec.param(key).is_some() {
                    return Err(ParseSpecError::DuplicateKey(key.to_owned()));
                }
                spec = spec.with_param(key, value);
            }
        }
        Ok(spec)
    }
}

impl From<PrefetchPolicy> for PolicySpec {
    /// The bare spec of the selector's canonical registry name.
    fn from(p: PrefetchPolicy) -> Self {
        PolicySpec::new(p.to_string())
    }
}

impl From<EvictPolicy> for PolicySpec {
    /// The bare spec of the selector's canonical registry name.
    fn from(e: EvictPolicy) -> Self {
        PolicySpec::new(e.to_string())
    }
}

impl From<&PolicySpec> for PolicySpec {
    fn from(s: &PolicySpec) -> Self {
        s.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_names_round_trip() {
        for name in ["TBNp", "none", "LRU-4KB", "lru", "tree"] {
            let spec: PolicySpec = name.parse().unwrap();
            assert_eq!(spec.name(), name);
            assert!(spec.is_bare());
            assert_eq!(spec.to_string(), name);
            assert_eq!(spec.to_string().parse::<PolicySpec>().unwrap(), spec);
        }
    }

    #[test]
    fn parameterized_specs_canonicalize_and_round_trip() {
        let a: PolicySpec = "markov:table=512,depth=2".parse().unwrap();
        let b: PolicySpec = "markov:depth=2,table=512".parse().unwrap();
        assert_eq!(a, b, "parameter order is canonicalized away");
        assert_eq!(a.to_string(), "markov:depth=2,table=512");
        assert_eq!(a.to_string().parse::<PolicySpec>().unwrap(), a);
        assert_eq!(a.param("depth"), Some("2"));
        assert_eq!(a.param("table"), Some("512"));
        assert_eq!(a.param("bogus"), None);
    }

    #[test]
    fn values_may_contain_paths_and_equals_free_chars() {
        let s: PolicySpec = "learned:table=results/trained/bp.tbl".parse().unwrap();
        assert_eq!(s.param("table"), Some("results/trained/bp.tbl"));
        assert_eq!(s.to_string(), "learned:table=results/trained/bp.tbl");
    }

    #[test]
    fn with_param_replaces_existing_keys() {
        let s = PolicySpec::new("markov")
            .with_param("depth", "1")
            .with_param("depth", "3");
        assert_eq!(s.param("depth"), Some("3"));
        assert_eq!(s.params().len(), 1);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert_eq!(
            "".parse::<PolicySpec>().unwrap_err(),
            ParseSpecError::EmptyName
        );
        assert_eq!(
            ":depth=2".parse::<PolicySpec>().unwrap_err(),
            ParseSpecError::EmptyName
        );
        assert_eq!(
            "markov:".parse::<PolicySpec>().unwrap_err(),
            ParseSpecError::EmptyParam(String::new())
        );
        assert_eq!(
            "markov:depth".parse::<PolicySpec>().unwrap_err(),
            ParseSpecError::MissingEquals("depth".into())
        );
        assert_eq!(
            "markov:=2".parse::<PolicySpec>().unwrap_err(),
            ParseSpecError::EmptyParam("=2".into())
        );
        assert_eq!(
            "markov:depth=".parse::<PolicySpec>().unwrap_err(),
            ParseSpecError::EmptyParam("depth=".into())
        );
        assert_eq!(
            "markov:depth=1,depth=2".parse::<PolicySpec>().unwrap_err(),
            ParseSpecError::DuplicateKey("depth".into())
        );
    }

    #[test]
    fn selector_conversions_use_canonical_names() {
        assert_eq!(
            PolicySpec::from(PrefetchPolicy::TreeBasedNeighborhood).to_string(),
            "TBNp"
        );
        assert_eq!(
            PolicySpec::from(EvictPolicy::LruPage).to_string(),
            "LRU-4KB"
        );
    }
}
