//! The `UVMC` durable-checkpoint container (DESIGN.md §12).
//!
//! A checkpoint file is a small envelope around an opaque payload the
//! engine layers produce with the `save_state` codecs:
//!
//! ```text
//! magic   4 bytes   b"UVMC"
//! version u32       CHECKPOINT_VERSION (LEB128)
//! check   2×u64     128-bit FNV-1a of the payload (LEB128)
//! payload bytes     length-prefixed opaque state image
//! ```
//!
//! The discipline mirrors the executor's spill cache: writes go to a
//! `.tmp` sibling, are fsynced, and land via atomic rename, so a
//! crash mid-write can never leave a truncated file under the real
//! name; reads verify magic, version, and checksum before a single
//! payload byte is decoded, and a corrupt file is quarantined (renamed
//! to `<name>.corrupt`) so a resume never loops over the same rotten
//! bytes. Version mismatches are *rejected but not quarantined* — the
//! file is a valid checkpoint from another revision, not damage.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use uvm_types::codec::{ByteReader, ByteWriter, CodecError};
use uvm_types::hash::StableHasher;

/// Container magic: the first four bytes of every checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"UVMC";

/// Current container format revision. Bump on any change to the
/// payload layout; readers reject every other value.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Why a checkpoint could not be written or read back.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure (create, write, fsync, rename, read).
    Io {
        /// What the container layer was doing.
        op: &'static str,
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file does not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The file's format revision is not [`CHECKPOINT_VERSION`].
    Version {
        /// Revision found in the file.
        found: u32,
        /// Revision this build reads.
        expected: u32,
    },
    /// The payload bytes do not hash to the stored checksum.
    Checksum,
    /// The payload decoded to something structurally invalid.
    Codec(CodecError),
    /// The payload is well-formed but belongs to a different run
    /// configuration (policy spec, capacity, fault plan, ...).
    Incompatible(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { op, path, source } => {
                write!(f, "checkpoint {op} {}: {source}", path.display())
            }
            CheckpointError::BadMagic => write!(f, "not a UVMC checkpoint (bad magic)"),
            CheckpointError::Version { found, expected } => write!(
                f,
                "checkpoint format v{found} is not readable by this build (expects v{expected})"
            ),
            CheckpointError::Checksum => write!(f, "checkpoint payload checksum mismatch"),
            CheckpointError::Codec(e) => write!(f, "checkpoint payload corrupt: {e}"),
            CheckpointError::Incompatible(why) => {
                write!(f, "checkpoint belongs to a different run: {why}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            CheckpointError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        CheckpointError::Codec(e)
    }
}

impl CheckpointError {
    /// `true` for errors that mean the file itself is damaged (bad
    /// magic, bad checksum, undecodable payload) rather than merely
    /// foreign (wrong version, wrong run) or inaccessible (I/O).
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            CheckpointError::BadMagic | CheckpointError::Checksum | CheckpointError::Codec(_)
        )
    }
}

fn payload_checksum(payload: &[u8]) -> u128 {
    let mut h = StableHasher::new();
    h.write_bytes(payload);
    h.finish()
}

/// Wraps `payload` in the `UVMC` envelope.
pub fn encode_container(payload: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_raw(CHECKPOINT_MAGIC);
    w.put_u32(CHECKPOINT_VERSION);
    let check = payload_checksum(payload);
    w.put_u64(check as u64);
    w.put_u64((check >> 64) as u64);
    w.put_bytes(payload);
    w.into_bytes()
}

/// Unwraps a `UVMC` envelope, verifying magic, version, and checksum
/// before returning the payload.
pub fn decode_container(bytes: &[u8]) -> Result<Vec<u8>, CheckpointError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.get_raw(CHECKPOINT_MAGIC.len())?;
    if magic != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = r.get_u32()?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::Version {
            found: version,
            expected: CHECKPOINT_VERSION,
        });
    }
    let lo = r.get_u64()?;
    let hi = r.get_u64()?;
    let stored = (u128::from(hi) << 64) | u128::from(lo);
    let payload = r.get_bytes()?.to_vec();
    r.finish()?;
    if payload_checksum(&payload) != stored {
        return Err(CheckpointError::Checksum);
    }
    Ok(payload)
}

/// Writes `payload` as a checkpoint file with the spill-cache
/// discipline: envelope → `<path>.tmp` → fsync → atomic rename onto
/// `path`. A crash at any point leaves either the old file or the new
/// one, never a torn hybrid.
pub fn write_checkpoint(path: &Path, payload: &[u8]) -> Result<(), CheckpointError> {
    let bytes = encode_container(payload);
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).map_err(|source| CheckpointError::Io {
            op: "create dir for",
            path: path.to_path_buf(),
            source,
        })?;
    }
    let tmp = tmp_sibling(path);
    let mut f = fs::File::create(&tmp).map_err(|source| CheckpointError::Io {
        op: "create",
        path: tmp.clone(),
        source,
    })?;
    f.write_all(&bytes)
        .and_then(|()| f.sync_all())
        .map_err(|source| CheckpointError::Io {
            op: "write",
            path: tmp.clone(),
            source,
        })?;
    drop(f);
    fs::rename(&tmp, path).map_err(|source| CheckpointError::Io {
        op: "rename into place",
        path: path.to_path_buf(),
        source,
    })
}

/// Reads a checkpoint file back, verifying the envelope. A file that
/// fails magic, checksum, or payload-shape validation is quarantined —
/// renamed to `<name>.corrupt` — before the error is returned, so a
/// retrying resume falls through to an older checkpoint (or a cold
/// start) instead of re-reading the same damage. Version mismatches
/// and plain I/O failures leave the file untouched.
pub fn read_checkpoint(path: &Path) -> Result<Vec<u8>, CheckpointError> {
    let bytes = fs::read(path).map_err(|source| CheckpointError::Io {
        op: "read",
        path: path.to_path_buf(),
        source,
    })?;
    match decode_container(&bytes) {
        Ok(payload) => Ok(payload),
        Err(e) => {
            if e.is_corruption() {
                quarantine(path);
            }
            Err(e)
        }
    }
}

/// Renames a damaged checkpoint to `<name>.corrupt` (best-effort; an
/// unremovable file is left in place and the read error still stands).
pub fn quarantine(path: &Path) {
    let mut name = path.as_os_str().to_os_string();
    name.push(".corrupt");
    let _ = fs::rename(path, PathBuf::from(name));
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uvmc-test-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn container_round_trips() {
        let payload = b"engine state bytes".to_vec();
        let bytes = encode_container(&payload);
        assert_eq!(decode_container(&bytes).unwrap(), payload);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_container(b"x");
        bytes[0] = b'Z';
        assert!(matches!(
            decode_container(&bytes),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn version_mismatch_rejected_without_quarantine() {
        let dir = tempdir("ver");
        let path = dir.join("k.uvmc");
        let mut w = ByteWriter::new();
        w.put_raw(CHECKPOINT_MAGIC);
        w.put_u32(CHECKPOINT_VERSION + 7);
        w.put_u64(0);
        w.put_u64(0);
        w.put_bytes(b"payload");
        fs::write(&path, w.into_bytes()).unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::Version { found, expected }
                if found == CHECKPOINT_VERSION + 7 && expected == CHECKPOINT_VERSION
        ));
        assert!(!err.is_corruption());
        assert!(path.exists(), "foreign version is not damage");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_payload_byte_fails_checksum_and_quarantines() {
        let dir = tempdir("sum");
        let path = dir.join("k.uvmc");
        write_checkpoint(&path, b"some payload bytes").unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, bytes).unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Checksum), "{err}");
        assert!(err.is_corruption());
        assert!(!path.exists(), "corrupt file renamed away");
        let quarantined = dir.join("k.uvmc.corrupt");
        assert!(quarantined.exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_quarantined() {
        let dir = tempdir("trunc");
        let path = dir.join("k.uvmc");
        write_checkpoint(&path, &vec![0xAB; 256]).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(err.is_corruption(), "{err}");
        assert!(dir.join("k.uvmc.corrupt").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_is_atomic_no_tmp_left_behind() {
        let dir = tempdir("atomic");
        let path = dir.join("k.uvmc");
        write_checkpoint(&path, b"one").unwrap();
        write_checkpoint(&path, b"two").unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), b"two");
        assert!(!dir.join("k.uvmc.tmp").exists());
        fs::remove_dir_all(&dir).ok();
    }
}
