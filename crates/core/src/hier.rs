//! The hierarchical LRU ordering used by the pre-eviction policies.
//!
//! Paper Sec. 5.3: pages enter the list as soon as their valid flag is
//! set (not on first access, as a traditional LRU would), so unused
//! prefetched pages are evictable alongside their neighbours. Ordering
//! is hierarchical: 2 MB large pages are ordered by the access
//! timestamp of the whole chunk, and the 64 KB basic blocks within a
//! large page are ordered by their own access timestamps. Eviction
//! candidates are therefore *basic blocks*: the LRU block of the LRU
//! large page.

use std::collections::HashMap;

use uvm_types::{BasicBlockId, LargePageId, PageId};

use crate::lru::LruQueue;

/// Hierarchically ordered residency list at (large page, basic block)
/// granularity.
///
/// # Examples
///
/// ```
/// use uvm_core::HierarchicalLru;
/// use uvm_types::PageId;
///
/// let mut h = HierarchicalLru::new();
/// h.on_validate(PageId::new(0));
/// h.on_validate(PageId::new(512)); // second large page
/// h.on_access(PageId::new(0));     // first large page becomes MRU
/// let victim = h.candidate(0, |_| true).unwrap();
/// assert_eq!(victim, PageId::new(512).basic_block());
/// ```
#[derive(Clone, Debug, Default)]
pub struct HierarchicalLru {
    /// Large pages, LRU-ordered by chunk access time.
    large_pages: LruQueue<LargePageId>,
    /// Per large page: its resident basic blocks, LRU-ordered.
    blocks: HashMap<LargePageId, LruQueue<BasicBlockId>>,
    /// Resident pages per basic block.
    pages_per_block: HashMap<BasicBlockId, u32>,
    /// Resident pages per large page, maintained incrementally so the
    /// candidate scans can skip a whole large page in O(1) instead of
    /// re-summing its blocks (the TBN-family policies call
    /// [`candidate`](Self::candidate) on every eviction).
    lp_pages: HashMap<LargePageId, u64>,
    /// Total resident pages tracked.
    total_pages: u64,
}

impl HierarchicalLru {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `page` as newly valid (migrated). Sec. 5.3: pages are
    /// *placed at the back of the LRU list* when their valid flag is
    /// set, so migration refreshes the block's and large page's
    /// position just as an access would — a freshly migrated block is
    /// never the immediate next victim.
    pub fn on_validate(&mut self, page: PageId) {
        let bb = page.basic_block();
        let lp = page.large_page();
        self.large_pages.touch(lp);
        self.blocks.entry(lp).or_default().touch(bb);
        *self.pages_per_block.entry(bb).or_insert(0) += 1;
        *self.lp_pages.entry(lp).or_insert(0) += 1;
        self.total_pages += 1;
    }

    /// Records an access to `page`: its large page and basic block move
    /// to the MRU end of their respective orders. Accesses to pages not
    /// tracked by [`on_validate`](Self::on_validate) are ignored (the
    /// GMMU faults before accessing, so this cannot happen in a run) —
    /// inserting them would create zero-page ghost blocks and break the
    /// "every queued block holds at least one page" invariant that the
    /// whole-large-page reservation skip in
    /// [`candidate`](Self::candidate) relies on.
    pub fn on_access(&mut self, page: PageId) {
        let bb = page.basic_block();
        if !self.pages_per_block.contains_key(&bb) {
            return;
        }
        let lp = page.large_page();
        self.large_pages.touch(lp);
        self.blocks.entry(lp).or_default().touch(bb);
    }

    /// Removes one page of `block` from the accounting (the page was
    /// individually invalidated). Removes the block/large page entries
    /// once empty.
    pub fn on_invalidate_page(&mut self, page: PageId) {
        let bb = page.basic_block();
        let count = self
            .pages_per_block
            .get_mut(&bb)
            .expect("invalidate of untracked page");
        *count -= 1;
        self.total_pages -= 1;
        let lp = bb.large_page();
        let lp_count = self
            .lp_pages
            .get_mut(&lp)
            .expect("invalidate of untracked large page");
        *lp_count -= 1;
        if *lp_count == 0 {
            self.lp_pages.remove(&lp);
        }
        if *count == 0 {
            self.pages_per_block.remove(&bb);
            if let Some(q) = self.blocks.get_mut(&lp) {
                q.remove(&bb);
                if q.is_empty() {
                    self.blocks.remove(&lp);
                    self.large_pages.remove(&lp);
                }
            }
        }
    }

    /// Resident pages currently tracked.
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// Resident pages of `block`.
    pub fn block_pages(&self, block: BasicBlockId) -> u32 {
        self.pages_per_block.get(&block).copied().unwrap_or(0)
    }

    /// Picks the eviction-candidate basic block: the least-recently
    /// used block of the least-recently used large page, after skipping
    /// the `reserve_pages` least-recent pages (the Sec. 5.3 reservation
    /// optimisation) and any block rejected by `eligible`.
    pub fn candidate(
        &self,
        reserve_pages: u64,
        mut eligible: impl FnMut(BasicBlockId) -> bool,
    ) -> Option<BasicBlockId> {
        let mut skipped = 0u64;
        for lp in self.large_pages.iter() {
            let Some(blocks) = self.blocks.get(lp) else {
                continue;
            };
            // Whole-large-page skip: if even the last block of this
            // large page falls inside the reservation, no block in it
            // can be a candidate (every resident block holds >= 1 page,
            // so the per-block walk below would skip each one). Exact,
            // because the per-block walk only tests `eligible` once
            // `skipped` reaches `reserve_pages`.
            let lp_total = self.lp_pages.get(lp).copied().unwrap_or(0);
            if skipped + lp_total <= reserve_pages {
                skipped += lp_total;
                continue;
            }
            for &bb in blocks.iter() {
                let pages = u64::from(self.block_pages(bb));
                if skipped < reserve_pages {
                    skipped += pages;
                    continue;
                }
                if eligible(bb) {
                    return Some(bb);
                }
            }
        }
        None
    }

    /// Picks the eviction-candidate *large page* for 2 MB LRU eviction,
    /// after skipping `reserve_pages` least-recent pages.
    pub fn candidate_large_page(
        &self,
        reserve_pages: u64,
        mut eligible: impl FnMut(LargePageId) -> bool,
    ) -> Option<LargePageId> {
        let mut skipped = 0u64;
        for &lp in self.large_pages.iter() {
            let pages = self.lp_pages.get(&lp).copied().unwrap_or(0);
            if skipped < reserve_pages {
                skipped += pages;
                continue;
            }
            if eligible(lp) {
                return Some(lp);
            }
        }
        None
    }

    /// Resident basic blocks of `lp` in LRU order.
    pub fn blocks_of(&self, lp: LargePageId) -> impl Iterator<Item = BasicBlockId> + '_ {
        self.blocks
            .get(&lp)
            .into_iter()
            .flat_map(|q| q.iter().copied())
    }

    /// Serializes the hierarchy for a checkpoint: the large-page queue
    /// in LRU→MRU order, each large page's block queue in LRU→MRU
    /// order, and the per-block page counts (sorted, for a canonical
    /// encoding).
    pub fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        w.put_usize(self.large_pages.len());
        for &lp in self.large_pages.iter() {
            w.put_u64(lp.index());
            let blocks = self.blocks.get(&lp);
            w.put_usize(blocks.map_or(0, |q| q.len()));
            if let Some(q) = blocks {
                for &bb in q.iter() {
                    w.put_u64(bb.index());
                }
            }
        }
        let mut counts: Vec<(BasicBlockId, u32)> =
            self.pages_per_block.iter().map(|(&b, &c)| (b, c)).collect();
        counts.sort_unstable_by_key(|(b, _)| *b);
        w.put_usize(counts.len());
        for (bb, count) in counts {
            w.put_u64(bb.index());
            w.put_u32(count);
        }
        w.put_u64(self.total_pages);
    }

    /// Rebuilds a hierarchy from a [`save_state`](Self::save_state)
    /// image.
    pub fn load_state(
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<Self, uvm_types::codec::CodecError> {
        let mut h = HierarchicalLru::new();
        let lps = r.get_usize()?;
        for _ in 0..lps {
            let lp = LargePageId::new(r.get_u64()?);
            h.large_pages.touch(lp);
            let nb = r.get_usize()?;
            let q = h.blocks.entry(lp).or_default();
            for _ in 0..nb {
                q.touch(BasicBlockId::new(r.get_u64()?));
            }
        }
        let nc = r.get_usize()?;
        for _ in 0..nc {
            let bb = BasicBlockId::new(r.get_u64()?);
            let count = r.get_u32()?;
            h.pages_per_block.insert(bb, count);
            // `lp_pages` is derived data, rebuilt here rather than
            // serialized so the checkpoint byte format is unchanged.
            *h.lp_pages.entry(bb.large_page()).or_insert(0) += u64::from(count);
        }
        h.total_pages = r.get_u64()?;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(i: u64) -> PageId {
        PageId::new(i)
    }

    #[test]
    fn validate_tracks_counts() {
        let mut h = HierarchicalLru::new();
        for i in 0..16 {
            h.on_validate(page(i));
        }
        assert_eq!(h.total_pages(), 16);
        assert_eq!(h.block_pages(BasicBlockId::new(0)), 16);
        assert_eq!(h.block_pages(BasicBlockId::new(1)), 0);
    }

    #[test]
    fn candidate_is_lru_block_of_lru_large_page() {
        let mut h = HierarchicalLru::new();
        // Two large pages; validate one block in each.
        h.on_validate(page(0)); // lp0, bb0
        h.on_validate(page(512)); // lp1, bb32
                                  // Access lp0 -> lp1 is LRU.
        h.on_access(page(0));
        let c = h.candidate(0, |_| true).unwrap();
        assert_eq!(c, BasicBlockId::new(32));
        // Now access lp1; lp0 becomes LRU.
        h.on_access(page(512));
        let c = h.candidate(0, |_| true).unwrap();
        assert_eq!(c, BasicBlockId::new(0));
    }

    #[test]
    fn within_large_page_blocks_ordered_by_access() {
        let mut h = HierarchicalLru::new();
        h.on_validate(page(0)); // bb0
        h.on_validate(page(16)); // bb1
        h.on_validate(page(32)); // bb2
        h.on_access(page(0));
        h.on_access(page(32));
        // bb1 was validated but never accessed; insert order makes it
        // older than the touched ones.
        let c = h.candidate(0, |_| true).unwrap();
        assert_eq!(c, BasicBlockId::new(1));
    }

    #[test]
    fn unaccessed_prefetched_blocks_are_evictable() {
        // The whole point of the Sec. 5.3 design choice: valid-but-
        // never-accessed blocks appear in the list.
        let mut h = HierarchicalLru::new();
        for i in 0..16 {
            h.on_validate(page(i)); // bb0, never accessed
        }
        assert!(h.candidate(0, |_| true).is_some());
    }

    #[test]
    fn reservation_skips_top_of_list() {
        let mut h = HierarchicalLru::new();
        // Three blocks of 16 pages each in one large page.
        for b in 0..3u64 {
            for i in 0..16 {
                h.on_validate(page(b * 16 + i));
            }
            h.on_access(page(b * 16)); // access order: bb0, bb1, bb2
        }
        // No reservation: bb0.
        assert_eq!(h.candidate(0, |_| true).unwrap(), BasicBlockId::new(0));
        // Reserving 16 pages skips bb0.
        assert_eq!(h.candidate(16, |_| true).unwrap(), BasicBlockId::new(1));
        // Reserving 17..32 pages also skips bb1.
        assert_eq!(h.candidate(20, |_| true).unwrap(), BasicBlockId::new(2));
        // Reserving everything: no candidate.
        assert_eq!(h.candidate(48, |_| true), None);
    }

    #[test]
    fn eligibility_filter_respected() {
        let mut h = HierarchicalLru::new();
        h.on_validate(page(0)); // bb0
        h.on_validate(page(16)); // bb1
        let c = h.candidate(0, |bb| bb != BasicBlockId::new(0)).unwrap();
        assert_eq!(c, BasicBlockId::new(1));
        assert_eq!(h.candidate(0, |_| false), None);
    }

    #[test]
    fn invalidate_page_removes_empty_structures() {
        let mut h = HierarchicalLru::new();
        h.on_validate(page(0));
        h.on_validate(page(1));
        h.on_invalidate_page(page(0));
        assert_eq!(h.total_pages(), 1);
        assert_eq!(h.block_pages(BasicBlockId::new(0)), 1);
        h.on_invalidate_page(page(1));
        assert_eq!(h.total_pages(), 0);
        assert!(h.candidate(0, |_| true).is_none());
    }

    #[test]
    fn candidate_large_page_order() {
        let mut h = HierarchicalLru::new();
        h.on_validate(page(0)); // lp0
        h.on_validate(page(512)); // lp1
        h.on_validate(page(1024)); // lp2
        h.on_access(page(0));
        h.on_access(page(1024));
        // LRU large page is lp1 (validated, never accessed, but lp0 and
        // lp2 were touched after).
        assert_eq!(
            h.candidate_large_page(0, |_| true).unwrap(),
            LargePageId::new(1)
        );
        // Reservation skipping one page's worth skips lp1.
        assert_eq!(
            h.candidate_large_page(1, |_| true).unwrap(),
            LargePageId::new(0)
        );
    }

    #[test]
    fn blocks_of_iterates_lru_order() {
        let mut h = HierarchicalLru::new();
        h.on_validate(page(0));
        h.on_validate(page(16));
        h.on_access(page(0)); // bb0 newer than bb1
        let order: Vec<_> = h.blocks_of(LargePageId::new(0)).collect();
        assert_eq!(order, vec![BasicBlockId::new(1), BasicBlockId::new(0)]);
    }

    #[test]
    #[should_panic(expected = "untracked")]
    fn invalidate_untracked_page_panics() {
        let mut h = HierarchicalLru::new();
        h.on_invalidate_page(page(0));
    }

    /// Reference `candidate`: the pre-memoization implementation that
    /// walks every block and re-derives per-large-page totals on each
    /// call. The incremental `lp_pages` cache must never change what
    /// either scan returns.
    fn naive_candidate(h: &HierarchicalLru, reserve_pages: u64) -> Option<BasicBlockId> {
        let mut skipped = 0u64;
        for lp in h.large_pages.iter() {
            let Some(blocks) = h.blocks.get(lp) else {
                continue;
            };
            for &bb in blocks.iter() {
                let pages = u64::from(h.block_pages(bb));
                if skipped < reserve_pages {
                    skipped += pages;
                    continue;
                }
                return Some(bb);
            }
        }
        None
    }

    fn naive_candidate_large_page(h: &HierarchicalLru, reserve_pages: u64) -> Option<LargePageId> {
        let mut skipped = 0u64;
        for &lp in h.large_pages.iter() {
            let pages: u64 = h
                .blocks
                .get(&lp)
                .map(|q| q.iter().map(|&b| u64::from(h.block_pages(b))).sum())
                .unwrap_or(0);
            if skipped < reserve_pages {
                skipped += pages;
                continue;
            }
            return Some(lp);
        }
        None
    }

    #[test]
    fn candidate_matches_naive_rescan_differentially() {
        // Pseudorandom validate/access/invalidate churn over 4 large
        // pages, checking both candidate scans against the naive
        // re-summing reference at every reservation depth after each
        // step.
        let mut h = HierarchicalLru::new();
        let mut resident: Vec<u64> = Vec::new();
        let mut rng = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for step in 0..2000u64 {
            let r = next();
            let p = r % 2048; // 4 large pages of 512 pages each
            match r % 3 {
                0 => {
                    h.on_validate(page(p));
                    resident.push(p);
                }
                1 => {
                    // Access only resident pages, per the on_access
                    // contract (the GMMU faults before accessing).
                    if !resident.is_empty() {
                        let idx = (r as usize / 11) % resident.len();
                        h.on_access(page(resident[idx]));
                    }
                }
                _ => {
                    if !resident.is_empty() {
                        let idx = (r as usize / 7) % resident.len();
                        h.on_invalidate_page(page(resident.swap_remove(idx)));
                    }
                }
            }
            if step % 37 == 0 {
                for reserve in [0, 1, 15, 16, 17, 100, h.total_pages(), h.total_pages() + 5] {
                    assert_eq!(
                        h.candidate(reserve, |_| true),
                        naive_candidate(&h, reserve),
                        "candidate diverged at step {step}, reserve {reserve}"
                    );
                    assert_eq!(
                        h.candidate_large_page(reserve, |_| true),
                        naive_candidate_large_page(&h, reserve),
                        "candidate_large_page diverged at step {step}, reserve {reserve}"
                    );
                }
            }
        }
    }

    #[test]
    fn lp_pages_cache_survives_checkpoint_round_trip() {
        let mut h = HierarchicalLru::new();
        for i in 0..64 {
            h.on_validate(page(i));
            h.on_validate(page(512 + i));
        }
        h.on_access(page(5));
        let mut w = uvm_types::codec::ByteWriter::new();
        h.save_state(&mut w);
        let bytes = w.into_bytes();
        let restored =
            HierarchicalLru::load_state(&mut uvm_types::codec::ByteReader::new(&bytes)).unwrap();
        for reserve in [0, 32, 64, 96, 128] {
            assert_eq!(
                restored.candidate(reserve, |_| true),
                h.candidate(reserve, |_| true)
            );
            assert_eq!(
                restored.candidate_large_page(reserve, |_| true),
                h.candidate_large_page(reserve, |_| true)
            );
        }
        let mut w2 = uvm_types::codec::ByteWriter::new();
        restored.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "round trip is byte-stable");
    }
}
