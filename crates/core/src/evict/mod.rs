//! The pluggable eviction / pre-eviction layer (paper Secs. 4.2, 5,
//! and 7.5).
//!
//! Each policy lives in its own module and implements [`Evictor`].
//! Recency bookkeeping is *policy state*: the traditional accessed-page
//! LRU lives inside [`LruPageEvictor`], and the Sec. 5.3 hierarchical
//! valid-page list lives inside each pre-eviction policy. The `Gmmu`
//! mechanism feeds the bookkeeping through the `on_validate` /
//! `on_access` / `on_invalidate` hooks and handles everything else
//! (write-back scheduling, budget accounting, the free-page buffer,
//! PTE invalidation).

mod freq;
mod lru_large;
mod lru_page;
mod mosaic;
mod random_page;
mod sl;
mod tbn;

pub use freq::FreqEvictor;
pub use lru_large::LruLargeEvictor;
pub use lru_page::LruPageEvictor;
pub use mosaic::MosaicEvictor;
pub use random_page::RandomPageEvictor;
pub use sl::SlEvictor;
pub use tbn::TbnEvictor;

use std::fmt;

use uvm_types::rng::SmallRng;
use uvm_types::{Cycle, LargePageId, PageId};

use crate::view::ResidencyView;

/// An eviction policy: chooses victim pages when the device memory
/// budget forces room to be made.
///
/// Contract:
///
/// * [`select_victims`](Self::select_victims) returns *write-back
///   groups*: each inner `Vec` is written back as one PCI-e transfer.
///   Every returned page must be resident with pin level at most
///   `max_pin` at `t` (query `view.pin_level`); the mechanism expels
///   exactly what is returned.
/// * The mechanism calls with `max_pin = PIN_NONE` first and falls
///   back to `PIN_SOFT`; hard-pinned demand pages are never victims.
/// * The `on_*` hooks mirror the driver's page state transitions so a
///   policy can maintain recency/frequency structures; they fire for
///   every page regardless of which policy planned its migration.
/// * Policies observe driver state only through `view` and must not
///   assume their hooks saw pages admitted before the policy was
///   installed.
/// * All randomness must come from the supplied `rng` (the driver's
///   single seeded stream).
/// * Implementations must be `Send + Sync` plain data: engine
///   snapshots holding a policy are shared across sweep workers, and
///   [`snapshot_box`](Self::snapshot_box) must produce an independent
///   deep copy (no shared interior mutability).
pub trait Evictor: fmt::Debug + Send + Sync {
    /// The registry's canonical (display) name for this evictor.
    fn name(&self) -> &'static str;

    /// `true` for bulk pre-eviction policies whose write-backs do not
    /// stall the demand migration (paper Sec. 5); demand-eviction
    /// policies stall the fault behind the write-back barrier.
    fn is_pre_eviction(&self) -> bool;

    /// A page became valid (migrated in).
    fn on_validate(&mut self, _page: PageId) {}

    /// A resident page was accessed by a warp.
    fn on_access(&mut self, _page: PageId) {}

    /// A page was invalidated (evicted).
    fn on_invalidate(&mut self, _page: PageId) {}

    /// Chooses the victim groups (each group = one write-back
    /// transfer), or `None` if no eligible victim exists.
    fn select_victims(
        &mut self,
        view: &ResidencyView<'_>,
        rng: &mut SmallRng,
        t: Cycle,
        max_pin: u8,
    ) -> Option<Vec<Vec<PageId>>>;

    /// Huge-page splinter hook: consulted by the mechanism under
    /// memory pressure, *before* [`select_victims`](Self::select_victims),
    /// whenever huge mappings exist. Return a currently huge-mapped
    /// large page (query `view.is_huge_mapped`) to demote it back to
    /// 4 KB mappings — its pages stay resident but become individually
    /// evictable. Default: never splinter (the mechanism still
    /// force-splinters if victims land inside a coalesced large page,
    /// so this hook is about policy, not correctness).
    fn select_splinter(
        &mut self,
        view: &ResidencyView<'_>,
        rng: &mut SmallRng,
        t: Cycle,
    ) -> Option<LargePageId> {
        let _ = (view, rng, t);
        None
    }

    /// Clones the evictor behind a fresh box (trait objects cannot
    /// derive `Clone`).
    fn box_clone(&self) -> Box<dyn Evictor>;

    /// The snapshot seam for engine forking: a deep copy whose recency
    /// and frequency bookkeeping round-trips — the copy must select
    /// identical victims given identical inputs, and the two must
    /// never share mutable state afterwards. Defaults to
    /// [`box_clone`]; override only when snapshotting differs from
    /// plain cloning.
    ///
    /// [`box_clone`]: Self::box_clone
    fn snapshot_box(&self) -> Box<dyn Evictor> {
        self.box_clone()
    }

    /// The durable-checkpoint seam, mirroring [`snapshot_box`]: writes
    /// the policy's *mutable* recency/frequency bookkeeping
    /// (configuration knobs come back for free when the policy is
    /// rebuilt from its spec). After [`load_state`] on a freshly built
    /// policy of the same spec, victim selection must be identical to
    /// the original's. Stateless policies keep the no-op default.
    ///
    /// [`snapshot_box`]: Self::snapshot_box
    /// [`load_state`]: Self::load_state
    fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        let _ = w;
    }

    /// Restores the state written by [`save_state`](Self::save_state)
    /// into a freshly built policy of the same spec.
    fn load_state(
        &mut self,
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<(), uvm_types::codec::CodecError> {
        let _ = r;
        Ok(())
    }
}

impl Clone for Box<dyn Evictor> {
    fn clone(&self) -> Self {
        // Cloning a driver (and thus an engine snapshot) goes through
        // the snapshot seam so third-party policies keep control over
        // how their state round-trips.
        self.snapshot_box()
    }
}
