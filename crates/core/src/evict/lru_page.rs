//! LRU-4KB: the CUDA-driver baseline eviction (paper Sec. 4.2).

use uvm_types::rng::SmallRng;
use uvm_types::{Cycle, PageId};

use crate::lru::LruQueue;
use crate::view::ResidencyView;

use super::Evictor;

/// LRU-4KB: evict the least-recently *accessed* page, honouring the
/// LRU-top reservation. The accessed-page LRU list is policy state —
/// pages enter it on first access, not on migration, so unaccessed
/// prefetched pages are invisible to it (the fallback scans the full
/// resident set instead).
#[derive(Clone, Debug, Default)]
pub struct LruPageEvictor {
    lru: LruQueue<PageId>,
}

impl LruPageEvictor {
    /// An evictor with an empty recency list.
    pub fn new() -> Self {
        Self::default()
    }

    fn pick(&self, view: &ResidencyView<'_>, t: Cycle, max_pin: u8) -> Option<PageId> {
        let reserved = (view.reserve_frac() * self.lru.len() as f64).floor() as usize;
        self.lru
            .iter()
            .skip(reserved)
            .find(|&&p| view.pin_level(p, t) <= max_pin)
            .copied()
            // If everything past the reservation is pinned, fall back
            // to reserved entries, then to any resident page
            // (unaccessed prefetched pages are invisible to the
            // traditional LRU list).
            .or_else(|| {
                self.lru
                    .iter()
                    .find(|&&p| view.pin_level(p, t) <= max_pin)
                    .copied()
            })
            .or_else(|| {
                view.resident_iter()
                    .find(|&p| view.pin_level(p, t) <= max_pin)
            })
    }
}

impl Evictor for LruPageEvictor {
    fn name(&self) -> &'static str {
        "LRU-4KB"
    }

    fn is_pre_eviction(&self) -> bool {
        false
    }

    fn on_access(&mut self, page: PageId) {
        self.lru.touch(page);
    }

    fn on_invalidate(&mut self, page: PageId) {
        self.lru.remove(&page);
    }

    fn select_victims(
        &mut self,
        view: &ResidencyView<'_>,
        _rng: &mut SmallRng,
        t: Cycle,
        max_pin: u8,
    ) -> Option<Vec<Vec<PageId>>> {
        self.pick(view, t, max_pin).map(|p| vec![vec![p]])
    }

    fn box_clone(&self) -> Box<dyn Evictor> {
        Box::new(self.clone())
    }

    fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        self.lru.save_state(w, |w, p| w.put_u64(p.index()));
    }

    fn load_state(
        &mut self,
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<(), uvm_types::codec::CodecError> {
        self.lru = LruQueue::load_state(r, |r| Ok(PageId::new(r.get_u64()?)))?;
        Ok(())
    }
}
