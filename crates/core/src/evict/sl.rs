//! SLe: sequential-local pre-eviction (paper Sec. 5.1).

use uvm_types::rng::SmallRng;
use uvm_types::{Cycle, PageId};

use crate::hier::HierarchicalLru;
use crate::view::ResidencyView;

use super::Evictor;

/// SLe: evict the whole 64 KB basic block of the LRU candidate as a
/// single write-back unit. Owns the Sec. 5.3 hierarchical valid-page
/// list (pages enter on migration, not first access), fed by the
/// driver's hooks.
#[derive(Clone, Debug, Default)]
pub struct SlEvictor {
    hier: HierarchicalLru,
}

impl SlEvictor {
    /// An evictor with an empty hierarchical list.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Evictor for SlEvictor {
    fn name(&self) -> &'static str {
        "SLe"
    }

    fn is_pre_eviction(&self) -> bool {
        true
    }

    fn on_validate(&mut self, page: PageId) {
        self.hier.on_validate(page);
    }

    fn on_access(&mut self, page: PageId) {
        self.hier.on_access(page);
    }

    fn on_invalidate(&mut self, page: PageId) {
        self.hier.on_invalidate_page(page);
    }

    fn select_victims(
        &mut self,
        view: &ResidencyView<'_>,
        _rng: &mut SmallRng,
        t: Cycle,
        max_pin: u8,
    ) -> Option<Vec<Vec<PageId>>> {
        let reserve = (view.reserve_frac() * self.hier.total_pages() as f64).floor() as u64;
        let hier = &self.hier;
        let block = hier
            .candidate(reserve, |b| view.block_evictable(b, t, max_pin))
            .or_else(|| hier.candidate(0, |b| view.block_evictable(b, t, max_pin)))?;
        Some(vec![view.evictable_pages_of_block(block, t, max_pin)])
    }

    fn box_clone(&self) -> Box<dyn Evictor> {
        Box::new(self.clone())
    }

    fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        self.hier.save_state(w);
    }

    fn load_state(
        &mut self,
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<(), uvm_types::codec::CodecError> {
        self.hier = HierarchicalLru::load_state(r)?;
        Ok(())
    }
}
