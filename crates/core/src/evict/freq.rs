//! AFe: access-frequency (LFU) eviction, the out-of-core policy
//! proving the registry seam.
//!
//! A least-frequently-used counterpart to the recency policies the
//! paper studies: iterative workloads that re-touch a hot core keep
//! it resident even when a linear sweep would flush an LRU list.
//! Registered purely through the policy registry: the `Gmmu` mechanism
//! has no knowledge of it.

use uvm_types::rng::SmallRng;
use uvm_types::{Cycle, PageId};

use crate::dense::DensePageMap;
use crate::view::ResidencyView;

use super::Evictor;

/// AFe: evict the resident page with the fewest accesses during its
/// current residency (ties break toward the lowest page index, making
/// selection fully deterministic). Counts are policy state: they start
/// at zero on migration and are dropped on eviction, so a thrashing
/// page restarts cold.
#[derive(Clone, Debug, Default)]
pub struct FreqEvictor {
    counts: DensePageMap<u64>,
}

impl FreqEvictor {
    /// An evictor with no recorded accesses.
    pub fn new() -> Self {
        Self::default()
    }

    fn pick(&self, view: &ResidencyView<'_>, t: Cycle, max_pin: u8) -> Option<PageId> {
        view.resident_iter()
            .filter(|&p| view.pin_level(p, t) <= max_pin)
            .min_by_key(|&p| (self.counts.get(p).unwrap_or(0), p.index()))
    }
}

impl Evictor for FreqEvictor {
    fn name(&self) -> &'static str {
        "AFe"
    }

    fn is_pre_eviction(&self) -> bool {
        false
    }

    fn on_validate(&mut self, page: PageId) {
        self.counts.insert(page, 0);
    }

    fn on_access(&mut self, page: PageId) {
        let n = self.counts.get(page).unwrap_or(0);
        self.counts.insert(page, n + 1);
    }

    fn on_invalidate(&mut self, page: PageId) {
        self.counts.remove(page);
    }

    fn select_victims(
        &mut self,
        view: &ResidencyView<'_>,
        _rng: &mut SmallRng,
        t: Cycle,
        max_pin: u8,
    ) -> Option<Vec<Vec<PageId>>> {
        self.pick(view, t, max_pin).map(|p| vec![vec![p]])
    }

    fn box_clone(&self) -> Box<dyn Evictor> {
        Box::new(self.clone())
    }

    fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        self.counts.save_state(w, |w, v| w.put_u64(v));
    }

    fn load_state(
        &mut self,
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<(), uvm_types::codec::CodecError> {
        self.counts = DensePageMap::load_state(r, |r| r.get_u64())?;
        Ok(())
    }
}
