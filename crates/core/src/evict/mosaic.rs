//! MOSe: the Mosaic-style splinter-then-evict policy.

use uvm_types::rng::SmallRng;
use uvm_types::{BasicBlockId, Cycle, LargePageId, PageId};

use crate::hier::HierarchicalLru;
use crate::view::ResidencyView;

use super::Evictor;

/// Basic blocks evicted per selection: the LRU quarter-ish of the
/// victim large page (8 × 64 KB = 512 KB), the middle ground between
/// SLe's single block and LRU-2MB's whole 2 MB.
const BLOCKS_PER_EVICTION: usize = 8;

/// MOSe: hierarchical LRU that splinters before it evicts.
///
/// Under pressure it first demotes the coldest huge-mapped large page
/// back to 4 KB mappings (one shootdown generation, via the
/// [`select_splinter`](Evictor::select_splinter) hook), then evicts
/// only the least-recently-used *blocks* of the coldest large page —
/// unlike LRU-2MB, which writes back all 512 pages at once and
/// re-faults the warm half of the large page straight back in. This is
/// the eviction half of Mosaic's coalesce/splinter cooperation: MOSp
/// builds large pages up, MOSe tears them down no further than the
/// pressure actually requires.
#[derive(Clone, Debug, Default)]
pub struct MosaicEvictor {
    hier: HierarchicalLru,
}

impl MosaicEvictor {
    /// An evictor with an empty hierarchical list.
    pub fn new() -> Self {
        Self::default()
    }

    /// The coldest large page worth evicting from, honoring the LRU-top
    /// reservation with a no-reservation fallback.
    fn victim_large_page(
        &self,
        view: &ResidencyView<'_>,
        t: Cycle,
        max_pin: u8,
    ) -> Option<LargePageId> {
        let reserve = (view.reserve_frac() * self.hier.total_pages() as f64).floor() as u64;
        let hier = &self.hier;
        let mut evictable = |lp| {
            hier.blocks_of(lp)
                .any(|b| view.block_evictable(b, t, max_pin))
        };
        hier.candidate_large_page(reserve, &mut evictable)
            .or_else(|| hier.candidate_large_page(0, &mut evictable))
    }
}

impl Evictor for MosaicEvictor {
    fn name(&self) -> &'static str {
        "MOSe"
    }

    fn is_pre_eviction(&self) -> bool {
        true
    }

    fn on_validate(&mut self, page: PageId) {
        self.hier.on_validate(page);
    }

    fn on_access(&mut self, page: PageId) {
        self.hier.on_access(page);
    }

    fn on_invalidate(&mut self, page: PageId) {
        self.hier.on_invalidate_page(page);
    }

    fn select_splinter(
        &mut self,
        view: &ResidencyView<'_>,
        _rng: &mut SmallRng,
        t: Cycle,
    ) -> Option<LargePageId> {
        // Splinter the large page eviction is about to reach into, so
        // the mechanism never has to force-demote on our behalf. If the
        // victim is not coalesced there is nothing to splinter.
        use crate::view::{PIN_NONE, PIN_SOFT};
        let victim = self
            .victim_large_page(view, t, PIN_NONE)
            .or_else(|| self.victim_large_page(view, t, PIN_SOFT))?;
        view.is_huge_mapped(victim).then_some(victim)
    }

    fn select_victims(
        &mut self,
        view: &ResidencyView<'_>,
        _rng: &mut SmallRng,
        t: Cycle,
        max_pin: u8,
    ) -> Option<Vec<Vec<PageId>>> {
        let lp = self.victim_large_page(view, t, max_pin)?;
        // LRU order within the large page: HierarchicalLru yields
        // blocks coldest-first.
        let blocks: Vec<BasicBlockId> = self
            .hier
            .blocks_of(lp)
            .filter(|&b| view.block_evictable(b, t, max_pin))
            .take(BLOCKS_PER_EVICTION)
            .collect();
        let groups: Vec<Vec<PageId>> = blocks
            .into_iter()
            .map(|b| view.evictable_pages_of_block(b, t, max_pin))
            .filter(|pages| !pages.is_empty())
            .collect();
        if groups.is_empty() {
            None
        } else {
            Some(groups)
        }
    }

    fn box_clone(&self) -> Box<dyn Evictor> {
        Box::new(self.clone())
    }

    fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        self.hier.save_state(w);
    }

    fn load_state(
        &mut self,
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<(), uvm_types::codec::CodecError> {
        self.hier = HierarchicalLru::load_state(r)?;
        Ok(())
    }
}
