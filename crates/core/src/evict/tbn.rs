//! TBNe: tree-based neighborhood pre-eviction (paper Sec. 5.2).

use uvm_types::rng::SmallRng;
use uvm_types::{Cycle, PageId};

use crate::hier::HierarchicalLru;
use crate::tree::group_contiguous;
use crate::view::ResidencyView;

use super::Evictor;

/// TBNe: the LRU basic block plus the allocation tree's eviction
/// cascade, grouped into contiguous write-back transfers. The
/// granularity floats between 64 KB and 1 MB with the tree balance.
/// Owns the hierarchical valid-page list; the trees are shared
/// residency metadata read through the view (TBNp reads the same
/// trees).
#[derive(Clone, Debug, Default)]
pub struct TbnEvictor {
    hier: HierarchicalLru,
}

impl TbnEvictor {
    /// An evictor with an empty hierarchical list.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Evictor for TbnEvictor {
    fn name(&self) -> &'static str {
        "TBNe"
    }

    fn is_pre_eviction(&self) -> bool {
        true
    }

    fn on_validate(&mut self, page: PageId) {
        self.hier.on_validate(page);
    }

    fn on_access(&mut self, page: PageId) {
        self.hier.on_access(page);
    }

    fn on_invalidate(&mut self, page: PageId) {
        self.hier.on_invalidate_page(page);
    }

    fn select_victims(
        &mut self,
        view: &ResidencyView<'_>,
        _rng: &mut SmallRng,
        t: Cycle,
        max_pin: u8,
    ) -> Option<Vec<Vec<PageId>>> {
        let reserve = (view.reserve_frac() * self.hier.total_pages() as f64).floor() as u64;
        let hier = &self.hier;
        let victim = hier
            .candidate(reserve, |b| view.block_evictable(b, t, max_pin))
            .or_else(|| hier.candidate(0, |b| view.block_evictable(b, t, max_pin)))?;
        let planned = view
            .allocations()
            .find_by_page(victim.first_page())
            .and_then(|a| a.tree_for_block(victim))
            .map(|tree| tree.plan_eviction(victim))
            .unwrap_or_default();

        let mut blocks = vec![victim];
        blocks.extend(
            planned
                .into_iter()
                .filter(|&b| view.block_evictable(b, t, max_pin) && self.hier.block_pages(b) > 0),
        );
        blocks.sort_unstable_by_key(|b| b.index());
        blocks.dedup();
        let runs = group_contiguous(&blocks);
        let groups: Vec<Vec<PageId>> = runs
            .into_iter()
            .map(|(start, len)| {
                (0..len)
                    .flat_map(|i| view.evictable_pages_of_block(start.add(i), t, max_pin))
                    .collect::<Vec<_>>()
            })
            .filter(|g| !g.is_empty())
            .collect();
        if groups.is_empty() {
            None
        } else {
            Some(groups)
        }
    }

    fn box_clone(&self) -> Box<dyn Evictor> {
        Box::new(self.clone())
    }

    fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        self.hier.save_state(w);
    }

    fn load_state(
        &mut self,
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<(), uvm_types::codec::CodecError> {
        self.hier = HierarchicalLru::load_state(r)?;
        Ok(())
    }
}
