//! LRU-2MB: static large-page eviction (paper Sec. 7.5).

use uvm_types::rng::SmallRng;
use uvm_types::{BasicBlockId, Cycle, PageId};

use crate::hier::HierarchicalLru;
use crate::view::ResidencyView;

use super::Evictor;

/// LRU-2MB: evict the whole least-recently-used 2 MB large page as one
/// transfer, as real NVIDIA hardware does. Owns the hierarchical
/// valid-page list and picks at large-page granularity.
#[derive(Clone, Debug, Default)]
pub struct LruLargeEvictor {
    hier: HierarchicalLru,
}

impl LruLargeEvictor {
    /// An evictor with an empty hierarchical list.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Evictor for LruLargeEvictor {
    fn name(&self) -> &'static str {
        "LRU-2MB"
    }

    fn is_pre_eviction(&self) -> bool {
        true
    }

    fn on_validate(&mut self, page: PageId) {
        self.hier.on_validate(page);
    }

    fn on_access(&mut self, page: PageId) {
        self.hier.on_access(page);
    }

    fn on_invalidate(&mut self, page: PageId) {
        self.hier.on_invalidate_page(page);
    }

    fn select_victims(
        &mut self,
        view: &ResidencyView<'_>,
        _rng: &mut SmallRng,
        t: Cycle,
        max_pin: u8,
    ) -> Option<Vec<Vec<PageId>>> {
        let reserve = (view.reserve_frac() * self.hier.total_pages() as f64).floor() as u64;
        let hier = &self.hier;
        let mut evictable = |lp| {
            hier.blocks_of(lp)
                .any(|b| view.block_evictable(b, t, max_pin))
        };
        let lp = hier
            .candidate_large_page(reserve, &mut evictable)
            .or_else(|| hier.candidate_large_page(0, &mut evictable))?;
        let blocks: Vec<BasicBlockId> = self.hier.blocks_of(lp).collect();
        let pages: Vec<PageId> = blocks
            .into_iter()
            .flat_map(|b| view.evictable_pages_of_block(b, t, max_pin))
            .collect();
        if pages.is_empty() {
            None
        } else {
            Some(vec![pages])
        }
    }

    fn box_clone(&self) -> Box<dyn Evictor> {
        Box::new(self.clone())
    }

    fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        self.hier.save_state(w);
    }

    fn load_state(
        &mut self,
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<(), uvm_types::codec::CodecError> {
        self.hier = HierarchicalLru::load_state(r)?;
        Ok(())
    }
}
