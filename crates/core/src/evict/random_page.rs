//! Re: random 4 KB eviction (paper Sec. 4.2).

use uvm_types::rng::SmallRng;
use uvm_types::{Cycle, PageId};

use crate::view::ResidencyView;

use super::Evictor;

/// Re: a uniformly random resident page. Stateless — the resident set
/// and the driver's seeded random stream are both supplied per call.
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomPageEvictor;

impl RandomPageEvictor {
    fn pick(
        &self,
        view: &ResidencyView<'_>,
        rng: &mut SmallRng,
        t: Cycle,
        max_pin: u8,
    ) -> Option<PageId> {
        for _ in 0..32 {
            let p = view.sample_resident(rng)?;
            if view.pin_level(p, t) <= max_pin {
                return Some(p);
            }
        }
        view.resident_iter()
            .find(|&p| view.pin_level(p, t) <= max_pin)
    }
}

impl Evictor for RandomPageEvictor {
    fn name(&self) -> &'static str {
        "Re"
    }

    fn is_pre_eviction(&self) -> bool {
        false
    }

    fn select_victims(
        &mut self,
        view: &ResidencyView<'_>,
        rng: &mut SmallRng,
        t: Cycle,
        max_pin: u8,
    ) -> Option<Vec<Vec<PageId>>> {
        self.pick(view, rng, t, max_pin).map(|p| vec![vec![p]])
    }

    fn box_clone(&self) -> Box<dyn Evictor> {
        Box::new(*self)
    }
}
