//! The paper's contribution: CPU-GPU UVM hardware prefetchers and the
//! locality-aware pre-eviction policies that respect their semantics.
//!
//! This crate implements, from the paper *"Interplay between Hardware
//! Prefetcher and Page Eviction Policy in CPU-GPU Unified Virtual
//! Memory"* (ISCA 2019):
//!
//! * the per-allocation full binary trees ([`AllocTree`]) shared by the
//!   tree-based neighborhood prefetcher (TBNp) and pre-eviction policy
//!   (TBNe), including the exact balancing semantics of the paper's
//!   worked examples (Figs. 2 and 8);
//! * the hardware prefetchers of Sec. 3 — random (Rp),
//!   sequential-local (SLp), tree-based neighborhood (TBNp), plus the
//!   Zheng et al. 512 KB and 256 KB-stride ablations — as
//!   [`Prefetcher`] implementations in [`prefetch`], selected by
//!   [`PrefetchPolicy`];
//! * the eviction / pre-eviction policies of Secs. 4–5 and 7.5 —
//!   LRU-4KB, random, SLe, TBNe, LRU-2MB, plus the access-frequency
//!   ablation — as [`Evictor`] implementations in [`evict`], selected
//!   by [`EvictPolicy`], plus the memory-threshold free-page buffer
//!   and the LRU-top reservation optimisation;
//! * the hierarchical valid-page LRU list of Sec. 5.3
//!   ([`HierarchicalLru`]);
//! * the string-keyed [`PolicyRegistry`] that maps policy names (and
//!   aliases) to factories, letting CLIs and third-party code resolve
//!   policies without touching the driver;
//! * the [`Gmmu`] driver model that services far-faults, runs the
//!   prefetcher, enforces the memory budget, and schedules PCI-e
//!   transfers — pure mechanism; policy decisions observe it only
//!   through the read-only [`ResidencyView`].
//!
//! # Examples
//!
//! ```
//! use uvm_core::{EvictPolicy, Gmmu, PrefetchPolicy, UvmConfig};
//! use uvm_types::{Bytes, Cycle};
//!
//! // An over-subscribed GPU: 1 MB of device memory, TBNp + TBNe.
//! let mut gmmu = Gmmu::new(
//!     UvmConfig::default()
//!         .with_capacity(Bytes::mib(1))
//!         .with_prefetch(PrefetchPolicy::TreeBasedNeighborhood)
//!         .with_evict(EvictPolicy::TreeBasedNeighborhood),
//! );
//! let base = gmmu.malloc_managed(Bytes::mib(2));
//! let mut now = Cycle::ZERO;
//! for block in 0..32 {
//!     let page = base.page().add(block * 16);
//!     if !gmmu.is_resident(page) {
//!         let res = gmmu.handle_fault(page, now);
//!         now = res.fault_page_ready();
//!         gmmu.record_access(page, false);
//!     }
//! }
//! // The working set is 2x the budget: evictions must have happened.
//! assert!(gmmu.stats().pages_evicted > 0);
//! ```

mod alloc;
pub mod checkpoint;
mod config;
mod dense;
pub mod evict;
mod fault;
mod gmmu;
mod hier;
mod indexed;
mod lru;
mod policy;
pub mod prefetch;
mod registry;
mod spec;
mod stats;
pub mod trace;
mod tree;
mod view;

pub use alloc::{AllocId, Allocation, Allocations};
pub use checkpoint::{
    read_checkpoint, write_checkpoint, CheckpointError, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use config::UvmConfig;
pub use dense::{DensePageMap, DensePageSet};
pub use evict::{Evictor, MosaicEvictor};
pub use fault::{FaultPlan, ParseFaultProfileError, READ_CHANNEL_TAG, WRITE_CHANNEL_TAG};
pub use gmmu::AuditError;
pub use gmmu::{FaultResolution, Gmmu};
pub use hier::HierarchicalLru;
pub use indexed::IndexedPageSet;
pub use lru::LruQueue;
pub use policy::{EvictPolicy, ParsePolicyError, PrefetchPolicy};
pub use prefetch::{LearnedPrefetcher, MarkovPrefetcher, MosaicPrefetcher, Prefetcher};
pub use registry::{EvictorEntry, ParamSpec, PolicyError, PolicyRegistry, PrefetcherEntry};
pub use spec::{ParseSpecError, PolicySpec};
pub use stats::{FaultInjectionStats, HugePageStats, UvmStats};
pub use trace::{train_table, LearnedTable, TraceError, TraceKind, TraceMeta, TraceRecord};
pub use tree::{group_contiguous, AllocTree};
pub use view::{ResidencyView, PIN_GRACE, PIN_HARD, PIN_NONE, PIN_SOFT};
