//! Dense, page-index-keyed tables for the GMMU hot path.
//!
//! The virtual address space is handed out by a 2 MB-aligned bump
//! allocator starting at address zero ([`crate::alloc::Allocations`]),
//! so the page indices a simulation touches form a small dense range.
//! That makes a plain `Vec` indexed by `PageId::index()` strictly
//! better than a `HashMap<PageId, _>` for the per-access lookups:
//! no hashing, no probing, one cache line per hit.
//!
//! # Examples
//!
//! ```
//! use uvm_core::{DensePageMap, DensePageSet};
//! use uvm_types::PageId;
//!
//! let mut map: DensePageMap<u32> = DensePageMap::new();
//! map.insert(PageId::new(7), 42);
//! assert_eq!(map.get(PageId::new(7)), Some(42));
//!
//! let mut set = DensePageSet::new();
//! assert!(set.insert(PageId::new(3)));
//! assert!(!set.insert(PageId::new(3)));
//! assert!(set.contains(PageId::new(3)));
//! ```

use uvm_types::PageId;

/// A `PageId → T` map backed by a dense `Vec<Option<T>>`.
///
/// Grows to the highest inserted page index; lookups outside the
/// grown range are misses, never panics.
#[derive(Clone, Debug, Default)]
pub struct DensePageMap<T> {
    slots: Vec<Option<T>>,
    len: usize,
}

impl<T: Copy> DensePageMap<T> {
    /// An empty map.
    pub fn new() -> Self {
        DensePageMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    fn idx(page: PageId) -> usize {
        page.index() as usize
    }

    /// The value for `page`, if present.
    #[inline]
    pub fn get(&self, page: PageId) -> Option<T> {
        self.slots.get(Self::idx(page)).copied().flatten()
    }

    /// `true` if `page` has a value.
    #[inline]
    pub fn contains(&self, page: PageId) -> bool {
        self.get(page).is_some()
    }

    /// Inserts or replaces the value for `page`, returning the old one.
    pub fn insert(&mut self, page: PageId, value: T) -> Option<T> {
        let i = Self::idx(page);
        if i >= self.slots.len() {
            self.slots.resize(i + 1, None);
        }
        let old = self.slots[i].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes `page`'s value, returning it.
    pub fn remove(&mut self, page: PageId) -> Option<T> {
        let old = self.slots.get_mut(Self::idx(page))?.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Number of present entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no entry is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates present `(page, value)` entries in ascending page
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, T)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.map(|v| (PageId::new(i as u64), v)))
    }

    /// Serializes the map for a checkpoint, delegating value encoding
    /// to `put`. Entries are written in ascending page order (the only
    /// order the dense representation has), so the encoding is
    /// canonical.
    pub fn save_state(
        &self,
        w: &mut uvm_types::codec::ByteWriter,
        mut put: impl FnMut(&mut uvm_types::codec::ByteWriter, T),
    ) {
        w.put_usize(self.len);
        for (page, value) in self.iter() {
            w.put_u64(page.index());
            put(w, value);
        }
    }

    /// Rebuilds a map from a [`save_state`](Self::save_state) image,
    /// delegating value decoding to `get`.
    pub fn load_state<'a>(
        r: &mut uvm_types::codec::ByteReader<'a>,
        mut get: impl FnMut(
            &mut uvm_types::codec::ByteReader<'a>,
        ) -> Result<T, uvm_types::codec::CodecError>,
    ) -> Result<Self, uvm_types::codec::CodecError> {
        let n = r.get_usize()?;
        let mut map = DensePageMap::new();
        for _ in 0..n {
            let page = PageId::new(r.get_u64()?);
            let value = get(r)?;
            map.insert(page, value);
        }
        Ok(map)
    }
}

/// A set of pages backed by a dense bitset.
#[derive(Clone, Debug, Default)]
pub struct DensePageSet {
    words: Vec<u64>,
    len: usize,
}

impl DensePageSet {
    /// An empty set.
    pub fn new() -> Self {
        DensePageSet {
            words: Vec::new(),
            len: 0,
        }
    }

    fn split(page: PageId) -> (usize, u64) {
        let i = page.index();
        ((i / 64) as usize, 1u64 << (i % 64))
    }

    /// `true` if `page` is a member.
    #[inline]
    pub fn contains(&self, page: PageId) -> bool {
        let (w, bit) = Self::split(page);
        self.words.get(w).is_some_and(|&word| word & bit != 0)
    }

    /// Inserts `page`; returns `true` if it was newly added.
    pub fn insert(&mut self, page: PageId) -> bool {
        let (w, bit) = Self::split(page);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & bit == 0;
        self.words[w] |= bit;
        if fresh {
            self.len += 1;
        }
        fresh
    }

    /// Removes `page`; returns `true` if it was a member.
    pub fn remove(&mut self, page: PageId) -> bool {
        let (w, bit) = Self::split(page);
        let Some(word) = self.words.get_mut(w) else {
            return false;
        };
        let present = *word & bit != 0;
        *word &= !bit;
        if present {
            self.len -= 1;
        }
        present
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Serializes the set for a checkpoint (ascending member order —
    /// the bitmap has no other observable order).
    pub fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        w.put_usize(self.len);
        for page in self.iter_ascending() {
            w.put_u64(page.index());
        }
    }

    /// Rebuilds a set from a [`save_state`](Self::save_state) image.
    pub fn load_state(
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<Self, uvm_types::codec::CodecError> {
        let n = r.get_usize()?;
        let mut set = DensePageSet::new();
        for _ in 0..n {
            set.insert(PageId::new(r.get_u64()?));
        }
        Ok(set)
    }

    /// Members in ascending page order: a word scan over the bitmap,
    /// skipping empty 64-page words in one comparison.
    pub fn iter_ascending(&self) -> impl Iterator<Item = PageId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as u64;
                bits &= bits - 1;
                Some(PageId::new(w as u64 * 64 + b))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_get_remove() {
        let mut m: DensePageMap<u64> = DensePageMap::new();
        assert_eq!(m.get(PageId::new(1000)), None);
        assert_eq!(m.insert(PageId::new(5), 50), None);
        assert_eq!(m.insert(PageId::new(5), 51), Some(50));
        assert_eq!(m.len(), 1);
        assert!(m.contains(PageId::new(5)));
        assert_eq!(m.remove(PageId::new(5)), Some(51));
        assert_eq!(m.remove(PageId::new(5)), None);
        assert!(m.is_empty());
        // Removing beyond the grown range is a no-op.
        assert_eq!(m.remove(PageId::new(1 << 20)), None);
    }

    #[test]
    fn map_grows_sparsely() {
        let mut m: DensePageMap<u8> = DensePageMap::new();
        m.insert(PageId::new(0), 1);
        m.insert(PageId::new(4096), 2);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(PageId::new(0)), Some(1));
        assert_eq!(m.get(PageId::new(4096)), Some(2));
        assert_eq!(m.get(PageId::new(2048)), None);
    }

    #[test]
    fn set_insert_remove_contains() {
        let mut s = DensePageSet::new();
        assert!(!s.contains(PageId::new(63)));
        assert!(s.insert(PageId::new(63)));
        assert!(!s.insert(PageId::new(63)));
        assert!(s.insert(PageId::new(64)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(PageId::new(63)));
        assert!(!s.remove(PageId::new(63)));
        assert!(!s.remove(PageId::new(1 << 30)), "out of range is absent");
        assert_eq!(s.len(), 1);
        assert!(s.contains(PageId::new(64)));
    }

    #[test]
    fn set_iter_ascending_scans_words() {
        let mut s = DensePageSet::new();
        for p in [200u64, 0, 63, 64, 65, 511] {
            s.insert(PageId::new(p));
        }
        s.remove(PageId::new(64));
        let got: Vec<u64> = s.iter_ascending().map(|p| p.index()).collect();
        assert_eq!(got, vec![0, 63, 65, 200, 511]);
        assert_eq!(DensePageSet::new().iter_ascending().count(), 0);
    }

    #[test]
    fn set_matches_reference_model() {
        use std::collections::HashSet;
        use uvm_types::rng::{Rng, SmallRng};
        let mut rng = SmallRng::seed_from_u64(0xd5e);
        let mut s = DensePageSet::new();
        let mut model: HashSet<u64> = HashSet::new();
        for _ in 0..2000 {
            let p = rng.gen_range(0u64..512);
            if rng.gen_bool(0.5) {
                assert_eq!(s.insert(PageId::new(p)), model.insert(p));
            } else {
                assert_eq!(s.remove(PageId::new(p)), model.remove(&p));
            }
            assert_eq!(s.len(), model.len());
        }
    }
}
