//! Driver-side statistics: the counters behind Figs. 5, 7, 10, 16.

/// Counters maintained by the GMMU driver model.
///
/// Interconnect-side statistics (bytes, busy time, per-size transfer
/// histogram — Figs. 4 and 7) live on the PCI-e channels; these are the
/// page-level counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UvmStats {
    /// Completed memory accesses across all kernels (the denominator of
    /// the faults-per-kilo-access metric used by the huge-page
    /// ablation).
    pub accesses: u64,
    /// Distinct far-faults serviced by the driver (Fig. 5). Duplicate
    /// faults merged in the MSHRs do not count.
    pub far_faults: u64,
    /// Pages migrated host→device for any reason.
    pub pages_migrated: u64,
    /// Of those, pages brought in by the prefetcher rather than by the
    /// faulting access itself.
    pub pages_prefetched: u64,
    /// Pages evicted device→host (Fig. 10).
    pub pages_evicted: u64,
    /// Eviction operations (one per victim selection, possibly bulk).
    pub evictions: u64,
    /// Pages migrated again after having been evicted at least once —
    /// the thrashing measure of Fig. 16.
    pub pages_thrashed: u64,
    /// Prefetched pages that were accessed at least once while
    /// resident — the prefetcher's useful work.
    pub prefetched_used: u64,
    /// Prefetched pages evicted without ever being accessed — the
    /// "unused prefetched pages" of Sec. 5 that motivate pre-eviction.
    pub prefetched_wasted: u64,
    /// Evicted pages that were clean (never written); bulk write-back
    /// moves them anyway, trading write traffic for bandwidth
    /// (Sec. 5.1's design choice).
    pub clean_pages_written_back: u64,
    /// Per-category retry/giveup counters for injected faults. All
    /// zero unless the config carries a non-trivial `FaultPlan`.
    pub fault_injection: FaultInjectionStats,
    /// Huge-page coalesce/splinter/fragmentation counters. All zero
    /// unless a huge-page policy (MOSp/MOSe) is active.
    pub huge_pages: HugePageStats,
}

/// Counters for the huge-page mechanism: 2 MB coalesce/splinter
/// transitions driven by the policy hooks, plus the frame allocator's
/// buddy split/merge and soft-region fragmentation activity (mirrored
/// from [`FrameAllocStats`](uvm_mem::FrameAllocStats) by the GMMU).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HugePageStats {
    /// Large pages promoted to a single huge mapping (full residency on
    /// physically contiguous, aligned frames, policy-approved).
    pub coalesces: u64,
    /// Huge mappings splintered back to 4 KB mappings at the evictor's
    /// request under memory pressure.
    pub splinters: u64,
    /// Huge mappings the mechanism force-splintered because eviction
    /// reached into a still-coalesced large page.
    pub forced_splinters: u64,
    /// Buddy blocks split by the frame allocator.
    pub alloc_splits: u64,
    /// Buddy pairs merged by the frame allocator.
    pub alloc_merges: u64,
    /// Soft 2 MB regions reserved for contiguous placement.
    pub regions_reserved: u64,
    /// Fragmentation events: frames stolen out of a soft-reserved
    /// region by ordinary demand allocation.
    pub region_steals: u64,
}

impl HugePageStats {
    /// `true` if the huge-page machinery never engaged.
    pub fn is_clean(&self) -> bool {
        *self == HugePageStats::default()
    }
}

/// Counters for the deterministic fault-injection layer, split by
/// injection category so an ablation can attribute slowdown.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultInjectionStats {
    /// PCI-e transfer replays paid across both link directions.
    pub transfer_retries: u64,
    /// Transfers whose replay budget ran out (completed degraded).
    pub transfer_giveups: u64,
    /// Page migrations that transiently failed and re-entered the
    /// far-fault pipeline as replayable faults.
    pub migration_retries: u64,
    /// Migrations whose replay budget ran out.
    pub migration_giveups: u64,
    /// Pages evicted by the oversubscription pressure mode on top of
    /// ordinary demand/pre-eviction.
    pub emergency_evictions: u64,
    /// Total extra far-fault latency injected as jitter, in cycles.
    pub jitter_cycles: u64,
}

impl FaultInjectionStats {
    /// `true` if no injected fault ever fired.
    pub fn is_clean(&self) -> bool {
        *self == FaultInjectionStats::default()
    }
}

impl UvmStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of migrated pages that were prefetched, in `0..=1`.
    pub fn prefetch_fraction(&self) -> f64 {
        if self.pages_migrated == 0 {
            0.0
        } else {
            self.pages_prefetched as f64 / self.pages_migrated as f64
        }
    }

    /// Prefetch accuracy: of the prefetched pages whose fate is known
    /// (used, or evicted unused), the fraction that were used. Returns
    /// 1.0 when nothing has been resolved yet.
    pub fn prefetch_accuracy(&self) -> f64 {
        let resolved = self.prefetched_used + self.prefetched_wasted;
        if resolved == 0 {
            1.0
        } else {
            self.prefetched_used as f64 / resolved as f64
        }
    }

    /// Serializes all counters for a checkpoint.
    pub fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        for v in [
            self.accesses,
            self.far_faults,
            self.pages_migrated,
            self.pages_prefetched,
            self.pages_evicted,
            self.evictions,
            self.pages_thrashed,
            self.prefetched_used,
            self.prefetched_wasted,
            self.clean_pages_written_back,
            self.fault_injection.transfer_retries,
            self.fault_injection.transfer_giveups,
            self.fault_injection.migration_retries,
            self.fault_injection.migration_giveups,
            self.fault_injection.emergency_evictions,
            self.fault_injection.jitter_cycles,
            self.huge_pages.coalesces,
            self.huge_pages.splinters,
            self.huge_pages.forced_splinters,
            self.huge_pages.alloc_splits,
            self.huge_pages.alloc_merges,
            self.huge_pages.regions_reserved,
            self.huge_pages.region_steals,
        ] {
            w.put_u64(v);
        }
    }

    /// Rebuilds counters from a [`save_state`](Self::save_state) image.
    pub fn load_state(
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<Self, uvm_types::codec::CodecError> {
        Ok(UvmStats {
            accesses: r.get_u64()?,
            far_faults: r.get_u64()?,
            pages_migrated: r.get_u64()?,
            pages_prefetched: r.get_u64()?,
            pages_evicted: r.get_u64()?,
            evictions: r.get_u64()?,
            pages_thrashed: r.get_u64()?,
            prefetched_used: r.get_u64()?,
            prefetched_wasted: r.get_u64()?,
            clean_pages_written_back: r.get_u64()?,
            fault_injection: FaultInjectionStats {
                transfer_retries: r.get_u64()?,
                transfer_giveups: r.get_u64()?,
                migration_retries: r.get_u64()?,
                migration_giveups: r.get_u64()?,
                emergency_evictions: r.get_u64()?,
                jitter_cycles: r.get_u64()?,
            },
            huge_pages: HugePageStats {
                coalesces: r.get_u64()?,
                splinters: r.get_u64()?,
                forced_splinters: r.get_u64()?,
                alloc_splits: r.get_u64()?,
                alloc_merges: r.get_u64()?,
                regions_reserved: r.get_u64()?,
                region_steals: r.get_u64()?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_by_default() {
        let s = UvmStats::new();
        assert_eq!(s, UvmStats::default());
        assert_eq!(s.far_faults, 0);
        assert_eq!(s.prefetch_fraction(), 0.0);
    }

    #[test]
    fn prefetch_fraction_computed() {
        let s = UvmStats {
            pages_migrated: 100,
            pages_prefetched: 75,
            ..UvmStats::default()
        };
        assert!((s.prefetch_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn prefetch_accuracy_computed() {
        assert_eq!(UvmStats::default().prefetch_accuracy(), 1.0);
        let s = UvmStats {
            prefetched_used: 30,
            prefetched_wasted: 10,
            ..UvmStats::default()
        };
        assert!((s.prefetch_accuracy() - 0.75).abs() < 1e-12);
    }
}
