//! Deterministic fault-injection plans for the UVM stack.
//!
//! The paper's UVM pipeline is built on a *recoverable* fault path —
//! replayable far-faults, 45 µs handling, batched PCI-e migrations —
//! but the baseline simulator assumes every transfer and migration
//! succeeds on the first try. A [`FaultPlan`] turns that assumption
//! into a dial: it seeds deterministic failure injection at the two
//! boundaries where real systems degrade,
//!
//! * the **interconnect** — PCI-e transfer drops recovered by
//!   replay-and-backoff retries (see
//!   [`uvm_interconnect::TransferFaultConfig`]), and
//! * the **GMMU** — jittered far-fault latency, transient migration
//!   failures that re-enter the fault pipeline as replayable faults,
//!   and an oversubscription pressure mode that forces emergency
//!   eviction.
//!
//! # Determinism contract
//!
//! Every injection draws from an RNG seeded purely by
//! [`FaultPlan::seed`] (channel streams are split per direction), so a
//! fixed `(workload, config, plan)` triple yields byte-identical
//! statistics on every run, at any `--jobs` level. Parameters set to
//! zero never draw at all, which makes [`FaultPlan::none`]
//! byte-identical to a build without the fault layer — the golden
//! fixtures pin this down. The plan is hashed into the executor's
//! `RunKey` ([`FaultPlan::hash_into`]) so the spill cache can never
//! serve a result computed under a different failure model.

use std::error::Error;
use std::fmt;

use uvm_interconnect::TransferFaultConfig;
use uvm_types::hash::StableHasher;
use uvm_types::Duration;

/// Channel-stream tag for host→device (read/migration) traffic.
pub const READ_CHANNEL_TAG: u64 = 1;
/// Channel-stream tag for device→host (write-back) traffic.
pub const WRITE_CHANNEL_TAG: u64 = 2;

/// A seeded, deterministic description of which failures to inject.
///
/// All-zero probabilities (the [`FaultPlan::none`] default) disable
/// injection entirely without perturbing any RNG stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for every injection stream derived from this plan.
    pub seed: u64,
    /// Probability a PCI-e transfer is dropped and replayed.
    pub transfer_drop_prob: f64,
    /// Replay budget per transfer before the channel gives up.
    pub transfer_max_retries: u32,
    /// Base backoff before a transfer replay (doubles per retry).
    pub transfer_backoff: Duration,
    /// Far-fault handling latency jitter as a fraction of the base
    /// `fault_latency` (0.5 = up to +50 % per fault).
    pub latency_jitter_frac: f64,
    /// Probability a page migration transiently fails and re-enters
    /// the fault pipeline as a replayable fault.
    pub migration_fail_prob: f64,
    /// Replay budget per migration before the GMMU gives up and lets
    /// the migration proceed.
    pub migration_max_retries: u32,
    /// Probability a far-fault triggers the oversubscription pressure
    /// mode (emergency eviction down to `pressure_free_frac`).
    pub pressure_prob: f64,
    /// Fraction of device frames the pressure mode forcibly frees.
    pub pressure_free_frac: f64,
}

impl FaultPlan {
    /// The inert plan: nothing is injected, no RNG is ever drawn.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            transfer_drop_prob: 0.0,
            transfer_max_retries: 0,
            transfer_backoff: Duration::ZERO,
            latency_jitter_frac: 0.0,
            migration_fail_prob: 0.0,
            migration_max_retries: 0,
            pressure_prob: 0.0,
            pressure_free_frac: 0.0,
        }
    }

    /// `true` if this plan injects nothing (seed is irrelevant then).
    pub fn is_none(&self) -> bool {
        self.transfer_drop_prob <= 0.0
            && self.latency_jitter_frac <= 0.0
            && self.migration_fail_prob <= 0.0
            && self.pressure_prob <= 0.0
    }

    /// A flaky PCI-e link: 5 % transfer drops, 4 replays, 5 µs backoff.
    pub fn pcie_flaky() -> Self {
        FaultPlan {
            transfer_drop_prob: 0.05,
            transfer_max_retries: 4,
            transfer_backoff: Duration::from_micros(5.0),
            ..FaultPlan::none()
        }
    }

    /// Far-fault handling latency jitters by up to +50 %.
    pub fn latency_jitter() -> Self {
        FaultPlan {
            latency_jitter_frac: 0.5,
            ..FaultPlan::none()
        }
    }

    /// 15 % of migrations transiently fail and are replayed.
    pub fn migration_storm() -> Self {
        FaultPlan {
            migration_fail_prob: 0.15,
            migration_max_retries: 3,
            ..FaultPlan::none()
        }
    }

    /// 10 % of far-faults force emergency eviction down to 5 % free.
    pub fn pressure() -> Self {
        FaultPlan {
            pressure_prob: 0.10,
            pressure_free_frac: 0.05,
            ..FaultPlan::none()
        }
    }

    /// Everything at once, each dialed down so smoke runs stay fast.
    pub fn chaos() -> Self {
        FaultPlan {
            transfer_drop_prob: 0.02,
            transfer_max_retries: 4,
            transfer_backoff: Duration::from_micros(5.0),
            latency_jitter_frac: 0.25,
            migration_fail_prob: 0.05,
            migration_max_retries: 3,
            pressure_prob: 0.02,
            pressure_free_frac: 0.03,
            ..FaultPlan::none()
        }
    }

    /// Every named profile, as accepted by [`FaultPlan::from_name`].
    pub const PROFILE_NAMES: [&'static str; 6] = [
        "none",
        "pcie-flaky",
        "latency-jitter",
        "migration-storm",
        "pressure",
        "chaos",
    ];

    /// Resolves a named profile (`--fault-profile` on the CLIs).
    pub fn from_name(name: &str) -> Result<Self, ParseFaultProfileError> {
        match name {
            "none" => Ok(FaultPlan::none()),
            "pcie-flaky" => Ok(FaultPlan::pcie_flaky()),
            "latency-jitter" => Ok(FaultPlan::latency_jitter()),
            "migration-storm" => Ok(FaultPlan::migration_storm()),
            "pressure" => Ok(FaultPlan::pressure()),
            "chaos" => Ok(FaultPlan::chaos()),
            other => Err(ParseFaultProfileError {
                name: other.to_string(),
            }),
        }
    }

    /// Sets the seed of every derived injection stream.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Configures PCI-e transfer drops.
    pub fn with_transfer_faults(
        mut self,
        drop_prob: f64,
        max_retries: u32,
        backoff: Duration,
    ) -> Self {
        assert!((0.0..=1.0).contains(&drop_prob), "drop_prob in [0, 1]");
        self.transfer_drop_prob = drop_prob;
        self.transfer_max_retries = max_retries;
        self.transfer_backoff = backoff;
        self
    }

    /// Configures far-fault latency jitter.
    pub fn with_latency_jitter(mut self, frac: f64) -> Self {
        assert!(frac >= 0.0, "jitter fraction must be non-negative");
        self.latency_jitter_frac = frac;
        self
    }

    /// Configures transient migration failures.
    pub fn with_migration_faults(mut self, fail_prob: f64, max_retries: u32) -> Self {
        assert!((0.0..=1.0).contains(&fail_prob), "fail_prob in [0, 1]");
        self.migration_fail_prob = fail_prob;
        self.migration_max_retries = max_retries;
        self
    }

    /// Configures the oversubscription pressure mode.
    pub fn with_pressure(mut self, prob: f64, free_frac: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "pressure prob in [0, 1]");
        assert!(
            (0.0..=1.0).contains(&free_frac),
            "pressure free fraction in [0, 1]"
        );
        self.pressure_prob = prob;
        self.pressure_free_frac = free_frac;
        self
    }

    /// Folds every field into `h` for run-key derivation. Ordering and
    /// encodings are part of the spill-cache format: change them only
    /// together with a run-key version bump.
    pub fn hash_into(&self, h: &mut StableHasher) {
        h.write_str("fault-plan-v1");
        h.write_u64(self.seed);
        h.write_f64(self.transfer_drop_prob);
        h.write_u64(self.transfer_max_retries as u64);
        h.write_u64(self.transfer_backoff.cycles());
        h.write_f64(self.latency_jitter_frac);
        h.write_f64(self.migration_fail_prob);
        h.write_u64(self.migration_max_retries as u64);
        h.write_f64(self.pressure_prob);
        h.write_f64(self.pressure_free_frac);
    }

    /// The transfer-fault config for one PCI-e channel direction, or
    /// `None` when transfer faults are disabled. `tag` splits the
    /// plan's seed into independent per-channel streams.
    pub fn channel_faults(&self, tag: u64) -> Option<TransferFaultConfig> {
        if self.transfer_drop_prob <= 0.0 {
            return None;
        }
        Some(TransferFaultConfig {
            seed: self
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(tag),
            drop_prob: self.transfer_drop_prob,
            max_retries: self.transfer_max_retries,
            backoff: self.transfer_backoff,
        })
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// An unknown `--fault-profile` name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseFaultProfileError {
    name: String,
}

impl fmt::Display for ParseFaultProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown fault profile '{}' (expected one of: {})",
            self.name,
            FaultPlan::PROFILE_NAMES.join(", ")
        )
    }
}

impl Error for ParseFaultProfileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert_and_default() {
        assert!(FaultPlan::none().is_none());
        assert_eq!(FaultPlan::default(), FaultPlan::none());
        assert!(FaultPlan::none().channel_faults(READ_CHANNEL_TAG).is_none());
        // Seed alone injects nothing.
        assert!(FaultPlan::none().with_seed(42).is_none());
    }

    #[test]
    fn every_named_profile_resolves() {
        for name in FaultPlan::PROFILE_NAMES {
            let plan = FaultPlan::from_name(name).unwrap();
            if name == "none" {
                assert!(plan.is_none(), "{name}");
            } else {
                assert!(!plan.is_none(), "{name}");
            }
        }
        let err = FaultPlan::from_name("bogus").unwrap_err();
        assert!(err.to_string().contains("bogus"));
        assert!(err.to_string().contains("chaos"));
    }

    #[test]
    fn channel_streams_are_split_per_direction() {
        let plan = FaultPlan::pcie_flaky().with_seed(7);
        let read = plan.channel_faults(READ_CHANNEL_TAG).unwrap();
        let write = plan.channel_faults(WRITE_CHANNEL_TAG).unwrap();
        assert_ne!(read.seed, write.seed);
        assert_eq!(read.drop_prob, write.drop_prob);
        // Same plan, same tag: identical stream.
        assert_eq!(plan.channel_faults(READ_CHANNEL_TAG).unwrap(), read);
    }

    #[test]
    fn hash_is_stable_and_field_sensitive() {
        let digest = |p: &FaultPlan| {
            let mut h = StableHasher::new();
            p.hash_into(&mut h);
            h.finish()
        };
        let base = FaultPlan::chaos().with_seed(1);
        assert_eq!(digest(&base), digest(&base.clone()));
        let variants = [
            base.with_seed(2),
            base.with_transfer_faults(0.5, 4, Duration::from_micros(5.0)),
            base.with_transfer_faults(0.02, 9, Duration::from_micros(5.0)),
            base.with_transfer_faults(0.02, 4, Duration::from_micros(50.0)),
            base.with_latency_jitter(0.9),
            base.with_migration_faults(0.5, 3),
            base.with_migration_faults(0.05, 9),
            base.with_pressure(0.5, 0.03),
            base.with_pressure(0.02, 0.5),
            FaultPlan::none(),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(digest(&base), digest(v), "variant {i} must change the key");
        }
    }

    #[test]
    #[should_panic(expected = "drop_prob in [0, 1]")]
    fn transfer_prob_out_of_range_panics() {
        let _ = FaultPlan::none().with_transfer_faults(1.5, 1, Duration::ZERO);
    }
}
