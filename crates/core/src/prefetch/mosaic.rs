//! MOSp: the Mosaic-style coalescing prefetcher.

use uvm_types::rng::SmallRng;
use uvm_types::{LargePageId, PageId, PAGES_PER_BASIC_BLOCK, PAGES_PER_LARGE_PAGE};

use crate::alloc::AllocId;
use crate::tree::group_contiguous;
use crate::view::ResidencyView;

use super::Prefetcher;

/// Once a faulting large page's residency reaches this fraction, MOSp
/// plans the whole remainder so the page can coalesce.
const FINISH_THRESHOLD: u64 = PAGES_PER_LARGE_PAGE / 2;

/// MOSp: tree-based neighborhood prefetch plus "finish the large page".
///
/// Mosaic's observation is that application-transparent huge pages pay
/// off only when the OS/driver *completes* large pages instead of
/// leaving them fractured. MOSp therefore plans exactly like TBNp on a
/// fault, and additionally, once the faulting large page is at least
/// half resident, appends the rest of that 2 MB range so it reaches
/// full residency and can be promoted to one huge mapping. It is the
/// only built-in prefetcher that requests contiguous frame placement
/// ([`wants_contiguous_placement`](Prefetcher::wants_contiguous_placement))
/// and approves coalescing ([`should_coalesce`](Prefetcher::should_coalesce)).
///
/// The mechanism still trims every plan to the free-frame budget, so
/// the finish-the-page groups are dropped first under pressure (they
/// are appended after the tree plan).
#[derive(Clone, Copy, Debug, Default)]
pub struct MosaicPrefetcher;

impl MosaicPrefetcher {
    /// A stateless MOSp instance.
    pub fn new() -> Self {
        Self
    }
}

impl Prefetcher for MosaicPrefetcher {
    fn name(&self) -> &'static str {
        "MOSp"
    }

    fn plan(
        &mut self,
        view: &ResidencyView<'_>,
        _rng: &mut SmallRng,
        page: PageId,
        alloc: AllocId,
    ) -> Vec<Vec<PageId>> {
        let fault_block = page.basic_block();
        let alloc = view.alloc(alloc);
        let tree = alloc
            .tree_for_block(fault_block)
            .expect("fault block inside allocation has a tree");
        let planned = tree.plan_prefetch(fault_block);

        let mut blocks = planned;
        blocks.push(fault_block);
        blocks.sort_unstable_by_key(|b| b.index());
        let runs = group_contiguous(&blocks);

        let mut groups = Vec::with_capacity(runs.len() + 1);
        let mut in_plan = vec![false; PAGES_PER_LARGE_PAGE as usize];
        let lp = page.large_page();
        for (start, len) in runs {
            let mut pages: Vec<PageId> = Vec::with_capacity((len * PAGES_PER_BASIC_BLOCK) as usize);
            pages.extend(
                (0..len)
                    .flat_map(|i| start.add(i).pages())
                    .filter(|&p| p != page && !view.is_valid(p)),
            );
            for &p in &pages {
                if p.large_page() == lp {
                    in_plan[(p.index() - lp.first_page().index()) as usize] = true;
                }
            }
            if !pages.is_empty() {
                groups.push(pages);
            }
        }

        // Finish the faulting large page once it is half resident: the
        // planned pages above count toward the target, so the remainder
        // is whatever neither the tree plan nor residency covers.
        let planned_in_lp = in_plan.iter().filter(|&&b| b).count() as u64;
        if view.large_page_residency(lp) + planned_in_lp + 1 >= FINISH_THRESHOLD {
            let first = lp.first_page();
            let remainder: Vec<PageId> = (0..PAGES_PER_LARGE_PAGE)
                .map(|k| first.add(k))
                .filter(|&p| {
                    p != page
                        && alloc.contains_page(p)
                        && !in_plan[(p.index() - first.index()) as usize]
                        && !view.is_valid(p)
                })
                .collect();
            if !remainder.is_empty() {
                groups.push(remainder);
            }
        }
        groups
    }

    fn wants_contiguous_placement(&self) -> bool {
        true
    }

    fn should_coalesce(&self, _view: &ResidencyView<'_>, _lp: LargePageId) -> bool {
        true
    }

    fn box_clone(&self) -> Box<dyn Prefetcher> {
        Box::new(*self)
    }
}
