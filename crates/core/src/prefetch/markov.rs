//! `markov`: an online delta-correlation (Markov-table) prefetcher
//! over the fault-page stream.
//!
//! The paper's prefetchers are stateless spatial heuristics; this one
//! is the history-driven counterpoint motivated by Long et al. (*Deep
//! Learning based Data Prefetching in CPU-GPU Unified Virtual
//! Memory*). It keeps a bounded table mapping the last `depth`
//! fault-page deltas (the *context*) to the frequencies of the delta
//! that followed, learning online with no training pass. On each
//! fault it predicts forward: every ranked next-delta from the
//! current context, then a greedy chain following the top prediction,
//! up to `degree` pages.
//!
//! Everything is deterministic — ranking ties break toward the
//! smaller delta, aging halves counts in place — so runs reproduce
//! bit-for-bit regardless of worker count, and snapshots (plain
//! clones) fork mid-run without divergence. Registered purely through
//! the policy registry; `gmmu.rs` is untouched.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use uvm_types::rng::SmallRng;
use uvm_types::PageId;

use crate::alloc::AllocId;
use crate::registry::{ParamSpec, PolicyError};
use crate::spec::PolicySpec;
use crate::view::ResidencyView;

use super::{parse_param, Prefetcher};

/// Default context length (fault deltas remembered).
const DEFAULT_DEPTH: usize = 2;
/// Default cap on distinct contexts in the table.
const DEFAULT_TABLE: usize = 4096;
/// Default cap on pages predicted per fault.
const DEFAULT_DEGREE: usize = 16;

/// `markov`: online delta-correlation prefetcher with a bounded
/// frequency table.
#[derive(Clone, Debug)]
pub struct MarkovPrefetcher {
    depth: usize,
    max_contexts: usize,
    degree: usize,
    /// Last `depth` fault deltas, oldest first.
    history: VecDeque<i64>,
    /// Previous fault's page index.
    last_fault: Option<u64>,
    /// context → next-delta → observation count. BTreeMaps keep
    /// iteration (and thus aging and ranking) fully deterministic.
    table: BTreeMap<Vec<i64>, BTreeMap<i64, u32>>,
}

impl MarkovPrefetcher {
    /// The parameters `markov:key=val,...` accepts.
    pub const PARAMS: &'static [ParamSpec] = &[
        ParamSpec {
            key: "depth",
            summary: "context length in fault deltas",
            default: "2",
        },
        ParamSpec {
            key: "table",
            summary: "max distinct contexts kept (aged when full)",
            default: "4096",
        },
        ParamSpec {
            key: "degree",
            summary: "max pages predicted per fault",
            default: "16",
        },
    ];

    /// A prefetcher with the default parameters.
    pub fn new() -> Self {
        Self::with_params(DEFAULT_DEPTH, DEFAULT_TABLE, DEFAULT_DEGREE)
    }

    /// A prefetcher with explicit parameters (each clamped to ≥ 1).
    pub fn with_params(depth: usize, max_contexts: usize, degree: usize) -> Self {
        MarkovPrefetcher {
            depth: depth.max(1),
            max_contexts: max_contexts.max(1),
            degree: degree.max(1),
            history: VecDeque::new(),
            last_fault: None,
            table: BTreeMap::new(),
        }
    }

    /// Builds from a validated spec (`markov:depth=2,table=512,...`).
    pub fn from_spec(spec: &PolicySpec) -> Result<Self, PolicyError> {
        let depth = parse_param(spec, "depth", DEFAULT_DEPTH, 1..=16)?;
        let table = parse_param(spec, "table", DEFAULT_TABLE, 1..=1 << 20)?;
        let degree = parse_param(spec, "degree", DEFAULT_DEGREE, 1..=512)?;
        Ok(Self::with_params(depth, table, degree))
    }

    /// Records the observed transition `context → delta`, aging the
    /// table when the context cap is hit.
    fn learn(&mut self, delta: i64) {
        if self.history.len() == self.depth {
            let context: Vec<i64> = self.history.iter().copied().collect();
            let is_new = !self.table.contains_key(&context);
            if is_new && self.table.len() >= self.max_contexts {
                self.age();
            }
            if !is_new || self.table.len() < self.max_contexts {
                *self
                    .table
                    .entry(context)
                    .or_default()
                    .entry(delta)
                    .or_insert(0) += 1;
            }
        }
        self.history.push_back(delta);
        if self.history.len() > self.depth {
            self.history.pop_front();
        }
    }

    /// Halves every count and drops zeroed entries — cheap exponential
    /// decay that sheds cold contexts deterministically.
    fn age(&mut self) {
        self.table.retain(|_, nexts| {
            nexts.retain(|_, c| {
                *c /= 2;
                *c > 0
            });
            !nexts.is_empty()
        });
    }

    /// Ranked next-deltas for the current context: count descending,
    /// ties toward the smaller delta.
    fn ranked(&self, context: &[i64]) -> Vec<i64> {
        let Some(nexts) = self.table.get(context) else {
            return Vec::new();
        };
        let mut ranked: Vec<(i64, u32)> = nexts.iter().map(|(&d, &c)| (d, c)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.into_iter().map(|(d, _)| d).collect()
    }
}

impl Default for MarkovPrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for MarkovPrefetcher {
    fn name(&self) -> &'static str {
        "markov"
    }

    fn plan(
        &mut self,
        view: &ResidencyView<'_>,
        _rng: &mut SmallRng,
        page: PageId,
        alloc: AllocId,
    ) -> Vec<Vec<PageId>> {
        if let Some(last) = self.last_fault {
            let delta = page.index() as i64 - last as i64;
            if delta != 0 {
                self.learn(delta);
            }
        }
        self.last_fault = Some(page.index());

        if self.history.len() < self.depth {
            return Vec::new();
        }
        let context: Vec<i64> = self.history.iter().copied().collect();
        let (candidates, _, _) =
            predict_chain(|ctx| self.ranked(ctx), &context, page.index(), self.degree);
        groups_from_candidates(view, page, alloc, candidates)
    }

    fn box_clone(&self) -> Box<dyn Prefetcher> {
        Box::new(self.clone())
    }

    fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        w.put_usize(self.history.len());
        for &d in &self.history {
            w.put_i64(d);
        }
        match self.last_fault {
            Some(p) => {
                w.put_bool(true);
                w.put_u64(p);
            }
            None => w.put_bool(false),
        }
        w.put_usize(self.table.len());
        for (context, nexts) in &self.table {
            w.put_usize(context.len());
            for &d in context {
                w.put_i64(d);
            }
            w.put_usize(nexts.len());
            for (&d, &c) in nexts {
                w.put_i64(d);
                w.put_u32(c);
            }
        }
    }

    fn load_state(
        &mut self,
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<(), uvm_types::codec::CodecError> {
        let n = r.get_usize()?;
        self.history.clear();
        for _ in 0..n {
            self.history.push_back(r.get_i64()?);
        }
        self.last_fault = if r.get_bool()? {
            Some(r.get_u64()?)
        } else {
            None
        };
        self.table.clear();
        let contexts = r.get_usize()?;
        for _ in 0..contexts {
            let len = r.get_usize()?;
            let mut context = Vec::with_capacity(len);
            for _ in 0..len {
                context.push(r.get_i64()?);
            }
            let mut nexts = BTreeMap::new();
            let entries = r.get_usize()?;
            for _ in 0..entries {
                let d = r.get_i64()?;
                nexts.insert(d, r.get_u32()?);
            }
            self.table.insert(context, nexts);
        }
        Ok(())
    }
}

/// Expands a delta predictor into up to `degree` candidate page
/// indices from `page`: first the full ranked breadth of the current
/// context, then a greedy chain following each step's top prediction.
/// Shared by `markov` (online table) and `learned` (offline table).
/// Besides the candidates, returns the greedy-chain deltas actually
/// followed and the page index the chain ended on, so a caller can
/// advance its modeled fault stream through its own predictions.
pub(super) fn predict_chain(
    ranked: impl Fn(&[i64]) -> Vec<i64>,
    context: &[i64],
    page: u64,
    degree: usize,
) -> (Vec<u64>, Vec<i64>, u64) {
    let mut out: Vec<u64> = Vec::with_capacity(degree);
    let push = |out: &mut Vec<u64>, base: u64, delta: i64| -> Option<u64> {
        let target = base.checked_add_signed(delta)?;
        if !out.contains(&target) {
            out.push(target);
        }
        Some(target)
    };

    // Breadth: every ranked prediction one step out.
    let first = ranked(context);
    for &d in first.iter().take(degree) {
        push(&mut out, page, d);
    }

    // Depth: greedily follow the top prediction. The walk is capped at
    // `degree` steps: an online table can learn a cycle with zero net
    // displacement (a ping-pong fault stream p, p+N, p, p+N trains
    // [N,-N]→N and [-N,N]→-N), where every target is already in `out`
    // and an unbounded walk would spin forever. `degree` steps lose no
    // productive chain — each non-growing step retraces one of the
    // ≤ degree breadth candidates, and growing steps stop at `degree`
    // candidates anyway.
    let mut ctx: Vec<i64> = context.to_vec();
    let mut chain: Vec<i64> = Vec::new();
    let mut at = page;
    let mut steps = first.first().copied();
    for _ in 0..degree {
        if out.len() >= degree {
            break;
        }
        let Some(d) = steps else { break };
        let Some(next) = push(&mut out, at, d) else {
            break;
        };
        chain.push(d);
        at = next;
        ctx.rotate_left(1);
        *ctx.last_mut().expect("depth >= 1") = d;
        steps = ranked(&ctx).first().copied();
    }
    out.truncate(degree);
    (out, chain, at)
}

/// Filters candidate page indices to invalid pages inside the faulty
/// allocation and groups contiguous runs into single transfers.
pub(super) fn groups_from_candidates(
    view: &ResidencyView<'_>,
    page: PageId,
    alloc: AllocId,
    mut candidates: Vec<u64>,
) -> Vec<Vec<PageId>> {
    let a = view.alloc(alloc);
    let (lo, hi) = (a.first_page().index(), a.end_page().index());
    candidates.retain(|&c| c >= lo && c < hi && c != page.index());
    candidates.sort_unstable();
    candidates.dedup();

    let mut groups: Vec<Vec<PageId>> = Vec::new();
    let mut prev: Option<u64> = None;
    for c in candidates {
        let p = PageId::new(c);
        if view.is_valid(p) {
            continue;
        }
        match prev {
            Some(q) if c == q + 1 => groups.last_mut().expect("run open").push(p),
            _ => groups.push(vec![p]),
        }
        prev = Some(c);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_and_ranks_transitions() {
        let mut m = MarkovPrefetcher::with_params(1, 16, 4);
        // Delta stream: 1,1,1,2 — context [1] sees next 1 twice, 2 once.
        for d in [1i64, 1, 1, 2] {
            m.learn(d);
        }
        assert_eq!(m.ranked(&[1]), vec![1, 2]);
        assert_eq!(m.ranked(&[2]), Vec::<i64>::new());
    }

    #[test]
    fn aging_bounds_the_table() {
        let mut m = MarkovPrefetcher::with_params(1, 4, 4);
        // 8 distinct contexts: aging must keep the table at the cap.
        for i in 0..8i64 {
            m.history.clear();
            m.history.push_back(i * 10);
            m.learn(1);
        }
        assert!(m.table.len() <= 4, "table has {} contexts", m.table.len());
    }

    #[test]
    fn chain_prediction_extends_sequential_runs() {
        // A pure stride-1 predictor chains to the full degree.
        let (got, chain, end) = predict_chain(|_| vec![1], &[1, 1], 100, 5);
        assert_eq!(got, vec![101, 102, 103, 104, 105]);
        // The chain's first step retraces the breadth candidate at
        // 101, so it walks all five hops 100 → 105.
        assert_eq!(chain, vec![1, 1, 1, 1, 1]);
        assert_eq!(end, 105);
    }

    #[test]
    fn chain_prediction_mixes_breadth_then_depth() {
        // Context predicts deltas 1 and 8; breadth gives 101 and 108,
        // the chain then follows the top prediction (1) onward.
        let (got, _, _) = predict_chain(|_| vec![1, 8], &[1], 100, 4);
        assert_eq!(got, vec![101, 108, 102, 103]);
    }

    #[test]
    fn cyclic_predictions_terminate() {
        // A ping-pong table (… ,5 → -5 and …,-5 → 5) predicts a cycle
        // with zero net displacement: after the first two hops every
        // target is already a candidate, so an unbounded greedy walk
        // would never grow `out` again and spin forever.
        let ranked = |ctx: &[i64]| vec![if ctx.last() == Some(&5) { -5 } else { 5 }];
        let (got, chain, _) = predict_chain(ranked, &[5, 5], 100, 8);
        assert_eq!(got, vec![95, 100]);
        assert!(chain.len() <= 8, "chain bounded at degree");
    }

    #[test]
    fn markov_plan_terminates_on_ping_pong_fault_stream() {
        // End-to-end: the online table trained by an eviction-thrashing
        // ping-pong stream (p, p+N, p, p+N, …) must not hang `plan`.
        let mut m = MarkovPrefetcher::with_params(2, 64, 8);
        for d in [50i64, -50, 50, -50, 50, -50] {
            m.learn(d);
        }
        let (got, _, _) = predict_chain(|ctx| m.ranked(ctx), &[50, -50], 1000, m.degree);
        assert!(got.len() <= m.degree);
    }

    #[test]
    fn negative_deltas_stay_in_range() {
        let (got, _, _) = predict_chain(|_| vec![-5], &[-5], 7, 3);
        // 7-5=2, then 2-5 would underflow: chain stops.
        assert_eq!(got, vec![2]);
    }

    #[test]
    fn spec_params_are_parsed_and_validated() {
        let m = MarkovPrefetcher::from_spec(&"markov:degree=4,depth=3,table=64".parse().unwrap())
            .unwrap();
        assert_eq!((m.depth, m.max_contexts, m.degree), (3, 64, 4));

        let err = MarkovPrefetcher::from_spec(&"markov:depth=zero".parse().unwrap()).unwrap_err();
        assert!(matches!(err, PolicyError::BadParam { .. }), "{err:?}");
        let err = MarkovPrefetcher::from_spec(&"markov:depth=0".parse().unwrap()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }
}
