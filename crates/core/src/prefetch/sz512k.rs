//! SZp: the 512 KB locality-aware prefetcher of Zheng et al. [26].

use uvm_types::rng::SmallRng;
use uvm_types::PageId;

use crate::alloc::AllocId;
use crate::view::ResidencyView;

use super::Prefetcher;

/// SZp: 128 consecutive 4 KB pages starting from the faulty page,
/// clipped to the allocation extent, moved as one transfer. Crosses
/// 64 KB block boundaries (and potentially 2 MB boundaries), which is
/// exactly the coordination cost the paper's SLp avoids.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sz512kPrefetcher;

impl Prefetcher for Sz512kPrefetcher {
    fn name(&self) -> &'static str {
        "SZp"
    }

    fn plan(
        &mut self,
        view: &ResidencyView<'_>,
        _rng: &mut SmallRng,
        page: PageId,
        alloc: AllocId,
    ) -> Vec<Vec<PageId>> {
        let end = view.alloc(alloc).end_page().index();
        let mut group: Vec<PageId> = Vec::with_capacity(128);
        group.extend(
            (page.index() + 1..(page.index() + 128).min(end))
                .map(PageId::new)
                .filter(|&p| !view.is_valid(p)),
        );
        if group.is_empty() {
            Vec::new()
        } else {
            vec![group]
        }
    }

    fn box_clone(&self) -> Box<dyn Prefetcher> {
        Box::new(*self)
    }
}
