//! S256p: a 256 KB fixed-stride prefetcher, the out-of-core policy
//! proving the registry seam.
//!
//! Inspired by the fixed-granularity baselines in Long et al. (*Deep
//! Learning based Data Prefetching in CPU-GPU Unified Virtual
//! Memory*): on every fault, pull a fixed 256 KB window of consecutive
//! pages following the faulty page. Half SZp's window — a middle point
//! between SLp's 64 KB block locality and SZp's aggressive 512 KB
//! sweep. Registered purely through the policy registry: the `Gmmu`
//! mechanism has no knowledge of it.

use uvm_types::rng::SmallRng;
use uvm_types::PageId;

use crate::alloc::AllocId;
use crate::view::ResidencyView;

use super::Prefetcher;

/// Pages covered by the 256 KB window, including the faulty page.
const WINDOW_PAGES: u64 = 64;

/// S256p: 64 consecutive 4 KB pages (256 KB) starting from the faulty
/// page, clipped to the allocation extent, moved as one transfer.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stride256kPrefetcher;

impl Prefetcher for Stride256kPrefetcher {
    fn name(&self) -> &'static str {
        "S256p"
    }

    fn plan(
        &mut self,
        view: &ResidencyView<'_>,
        _rng: &mut SmallRng,
        page: PageId,
        alloc: AllocId,
    ) -> Vec<Vec<PageId>> {
        let end = view.alloc(alloc).end_page().index();
        let mut group: Vec<PageId> = Vec::with_capacity(WINDOW_PAGES as usize);
        group.extend(
            (page.index() + 1..(page.index() + WINDOW_PAGES).min(end))
                .map(PageId::new)
                .filter(|&p| !view.is_valid(p)),
        );
        if group.is_empty() {
            Vec::new()
        } else {
            vec![group]
        }
    }

    fn box_clone(&self) -> Box<dyn Prefetcher> {
        Box::new(*self)
    }
}
