//! Rp: the random prefetcher of paper Sec. 3.1.

use uvm_types::rng::{Rng, SmallRng};
use uvm_types::{PageId, PAGES_PER_LARGE_PAGE};

use crate::alloc::AllocId;
use crate::view::ResidencyView;

use super::Prefetcher;

/// Rp: one random invalid 4 KB page from the faulty page's 2 MB large
/// page, clipped to the allocation extent.
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomPrefetcher;

impl Prefetcher for RandomPrefetcher {
    fn name(&self) -> &'static str {
        "Rp"
    }

    fn plan(
        &mut self,
        view: &ResidencyView<'_>,
        rng: &mut SmallRng,
        page: PageId,
        alloc: AllocId,
    ) -> Vec<Vec<PageId>> {
        let alloc = view.alloc(alloc);
        let lp_first = page.large_page().first_page();
        let start = lp_first.index().max(alloc.first_page().index());
        let end = (lp_first.index() + PAGES_PER_LARGE_PAGE).min(alloc.end_page().index());
        let mut candidates: Vec<PageId> = Vec::with_capacity((end.saturating_sub(start)) as usize);
        candidates.extend(
            (start..end)
                .map(PageId::new)
                .filter(|&p| p != page && !view.is_valid(p)),
        );
        if candidates.is_empty() {
            return Vec::new();
        }
        let pick = candidates[rng.gen_range(0..candidates.len())];
        vec![vec![pick]]
    }

    fn box_clone(&self) -> Box<dyn Prefetcher> {
        Box::new(*self)
    }
}
