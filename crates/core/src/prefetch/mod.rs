//! The pluggable hardware-prefetcher layer (paper Sec. 3).
//!
//! Each prefetcher lives in its own module and implements
//! [`Prefetcher`]; the `Gmmu` mechanism asks it for transfer groups on
//! every far-fault and handles everything else (budget trimming,
//! congestion throttling, the kill-switch, PCI-e scheduling,
//! validation). Policies observe driver state only through the
//! read-only [`ResidencyView`].

mod learned;
mod markov;
mod mosaic;
mod none;
mod random;
mod sl;
mod stride256k;
mod sz512k;
mod tbn;

pub use learned::LearnedPrefetcher;
pub use markov::MarkovPrefetcher;
pub use mosaic::MosaicPrefetcher;
pub use none::NonePrefetcher;
pub use random::RandomPrefetcher;
pub use sl::SlPrefetcher;
pub use stride256k::Stride256kPrefetcher;
pub use sz512k::Sz512kPrefetcher;
pub use tbn::TbnPrefetcher;

use std::fmt;
use std::ops::RangeInclusive;

use uvm_types::rng::SmallRng;
use uvm_types::{LargePageId, PageId};

use crate::alloc::AllocId;
use crate::registry::PolicyError;
use crate::spec::PolicySpec;
use crate::view::ResidencyView;

/// Parses an optional numeric policy parameter, range-checking it.
/// Spec keys are pre-validated by the registry, so the only failures
/// here are value-level ([`PolicyError::BadParam`]).
pub(crate) fn parse_param(
    spec: &PolicySpec,
    key: &str,
    default: usize,
    range: RangeInclusive<usize>,
) -> Result<usize, PolicyError> {
    let Some(raw) = spec.param(key) else {
        return Ok(default);
    };
    let value: usize = raw
        .parse()
        .map_err(|e| PolicyError::bad_param(spec.name(), key, raw, e))?;
    if !range.contains(&value) {
        return Err(PolicyError::bad_param(
            spec.name(),
            key,
            raw,
            format!("out of range {}..={}", range.start(), range.end()),
        ));
    }
    Ok(value)
}

/// A hardware prefetcher: given a far-fault, plans which extra pages
/// to migrate along with it.
///
/// Contract:
///
/// * [`plan`](Self::plan) returns *transfer groups*: each inner `Vec`
///   is moved as one PCI-e transfer. The faulty page itself must NOT
///   appear — it travels as its own 4 KB fault-group transfer.
/// * Planned pages must be invalid (`!view.is_valid(p)`) and lie
///   inside a managed allocation; the mechanism debug-asserts this
///   and trims groups to the free-frame budget, so over-planning is
///   wasted work, not a correctness bug.
/// * All randomness must come from the supplied `rng` — it is the
///   driver's single seeded stream, which keeps whole simulations
///   reproducible and lets policies share it deterministically.
/// * Policies observe state only through `view`; per-policy learning
///   state (history tables, counters) belongs in the implementing
///   struct itself.
/// * Implementations must be `Send + Sync` plain data: engine
///   snapshots holding a policy are shared across sweep workers, and
///   [`snapshot_box`](Self::snapshot_box) must produce an independent
///   deep copy (no shared interior mutability).
pub trait Prefetcher: fmt::Debug + Send + Sync {
    /// The registry's canonical (display) name for this prefetcher.
    fn name(&self) -> &'static str;

    /// Plans the prefetch transfer groups for a fault on `page` inside
    /// allocation `alloc`.
    fn plan(
        &mut self,
        view: &ResidencyView<'_>,
        rng: &mut SmallRng,
        page: PageId,
        alloc: AllocId,
    ) -> Vec<Vec<PageId>>;

    /// Huge-page placement hook: `true` asks the mechanism to
    /// soft-reserve a contiguous, aligned 2 MB frame region on the
    /// first touch of each large page's range and place that large
    /// page's frames at `region_base + page_offset` — the physical
    /// contiguity a later coalesce requires. Default `false`: every
    /// pre-existing policy keeps the legacy single-frame allocation
    /// path (and its exact frame sequence) untouched.
    fn wants_contiguous_placement(&self) -> bool {
        false
    }

    /// Huge-page coalesce hook: consulted by the mechanism when `lp`
    /// has just become fully resident on physically contiguous frames.
    /// Return `true` to promote it to a single huge mapping (one TLB
    /// entry, one shootdown generation). Default: never coalesce.
    fn should_coalesce(&self, view: &ResidencyView<'_>, lp: LargePageId) -> bool {
        let _ = (view, lp);
        false
    }

    /// Clones the prefetcher behind a fresh box (trait objects cannot
    /// derive `Clone`).
    fn box_clone(&self) -> Box<dyn Prefetcher>;

    /// The snapshot seam for engine forking: a deep copy whose learning
    /// state round-trips — the copy must plan identically to the
    /// original given identical inputs, and the two must never share
    /// mutable state afterwards. Defaults to [`box_clone`]; override
    /// only when snapshotting differs from plain cloning (e.g. to drop
    /// a non-clonable side channel).
    ///
    /// [`box_clone`]: Self::box_clone
    fn snapshot_box(&self) -> Box<dyn Prefetcher> {
        self.box_clone()
    }

    /// The durable-checkpoint seam, mirroring [`snapshot_box`]: writes
    /// the policy's *mutable* learning state (configuration knobs come
    /// back for free when the policy is rebuilt from its spec). After
    /// [`load_state`] on a freshly built policy of the same spec, plans
    /// must be identical to the original's. Stateless policies keep the
    /// no-op default.
    ///
    /// [`snapshot_box`]: Self::snapshot_box
    /// [`load_state`]: Self::load_state
    fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        let _ = w;
    }

    /// Restores the state written by [`save_state`](Self::save_state)
    /// into a freshly built policy of the same spec.
    fn load_state(
        &mut self,
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<(), uvm_types::codec::CodecError> {
        let _ = r;
        Ok(())
    }
}

impl Clone for Box<dyn Prefetcher> {
    fn clone(&self) -> Self {
        // Cloning a driver (and thus an engine snapshot) goes through
        // the snapshot seam so third-party policies keep control over
        // how their state round-trips.
        self.snapshot_box()
    }
}
