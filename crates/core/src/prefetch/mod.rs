//! The pluggable hardware-prefetcher layer (paper Sec. 3).
//!
//! Each prefetcher lives in its own module and implements
//! [`Prefetcher`]; the `Gmmu` mechanism asks it for transfer groups on
//! every far-fault and handles everything else (budget trimming,
//! congestion throttling, the kill-switch, PCI-e scheduling,
//! validation). Policies observe driver state only through the
//! read-only [`ResidencyView`].

mod none;
mod random;
mod sl;
mod stride256k;
mod sz512k;
mod tbn;

pub use none::NonePrefetcher;
pub use random::RandomPrefetcher;
pub use sl::SlPrefetcher;
pub use stride256k::Stride256kPrefetcher;
pub use sz512k::Sz512kPrefetcher;
pub use tbn::TbnPrefetcher;

use std::fmt;

use uvm_types::rng::SmallRng;
use uvm_types::PageId;

use crate::alloc::AllocId;
use crate::view::ResidencyView;

/// A hardware prefetcher: given a far-fault, plans which extra pages
/// to migrate along with it.
///
/// Contract:
///
/// * [`plan`](Self::plan) returns *transfer groups*: each inner `Vec`
///   is moved as one PCI-e transfer. The faulty page itself must NOT
///   appear — it travels as its own 4 KB fault-group transfer.
/// * Planned pages must be invalid (`!view.is_valid(p)`) and lie
///   inside a managed allocation; the mechanism debug-asserts this
///   and trims groups to the free-frame budget, so over-planning is
///   wasted work, not a correctness bug.
/// * All randomness must come from the supplied `rng` — it is the
///   driver's single seeded stream, which keeps whole simulations
///   reproducible and lets policies share it deterministically.
/// * Policies observe state only through `view`; per-policy learning
///   state (history tables, counters) belongs in the implementing
///   struct itself.
pub trait Prefetcher: fmt::Debug {
    /// The registry's canonical (display) name for this prefetcher.
    fn name(&self) -> &'static str;

    /// Plans the prefetch transfer groups for a fault on `page` inside
    /// allocation `alloc`.
    fn plan(
        &mut self,
        view: &ResidencyView<'_>,
        rng: &mut SmallRng,
        page: PageId,
        alloc: AllocId,
    ) -> Vec<Vec<PageId>>;

    /// Clones the prefetcher behind a fresh box (trait objects cannot
    /// derive `Clone`).
    fn box_clone(&self) -> Box<dyn Prefetcher>;
}

impl Clone for Box<dyn Prefetcher> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}
