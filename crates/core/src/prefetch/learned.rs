//! `learned`: a table-driven prefetcher whose delta table is trained
//! offline from exported `UVMT` traces.
//!
//! The runtime half of the train→evaluate workflow from Long et al.:
//! `train_prefetcher` distills a recorded fault stream into a `UVML`
//! delta table ([`LearnedTable`]), and `learned:table=PATH` loads it
//! at policy-build time. At run time the policy is pure lookup — it
//! tracks the last `depth` fault deltas (the table fixes `depth`) and
//! predicts forward exactly like `markov`, but with frozen,
//! whole-trace statistics instead of an online table still warming
//! up. A bare `learned` (no table) predicts nothing: it degenerates
//! to the no-op prefetcher, which keeps the name buildable from every
//! CLI without a file in hand.

use std::collections::VecDeque;

use uvm_types::rng::SmallRng;
use uvm_types::PageId;

use crate::alloc::AllocId;
use crate::registry::{ParamSpec, PolicyError};
use crate::spec::PolicySpec;
use crate::trace::LearnedTable;
use crate::view::ResidencyView;

use super::markov::{groups_from_candidates, predict_chain};
use super::{parse_param, Prefetcher};

/// Default cap on pages predicted per fault.
const DEFAULT_DEGREE: usize = 16;

/// `learned`: offline-trained delta-table prefetcher.
#[derive(Clone, Debug)]
pub struct LearnedPrefetcher {
    table: LearnedTable,
    degree: usize,
    /// Last `table.depth()` fault deltas, oldest first.
    history: VecDeque<i64>,
    /// Previous fault's page index.
    last_fault: Option<u64>,
}

impl LearnedPrefetcher {
    /// The parameters `learned:key=val,...` accepts.
    pub const PARAMS: &'static [ParamSpec] = &[
        ParamSpec {
            key: "table",
            summary: "path to a UVML delta table from train_prefetcher",
            default: "(none: predict nothing)",
        },
        ParamSpec {
            key: "degree",
            summary: "max pages predicted per fault",
            default: "16",
        },
    ];

    /// A prefetcher serving the given trained table.
    pub fn with_table(table: LearnedTable, degree: usize) -> Self {
        LearnedPrefetcher {
            table,
            degree: degree.max(1),
            history: VecDeque::new(),
            last_fault: None,
        }
    }

    /// Builds from a validated spec, loading the table file if one is
    /// named (`learned:table=results/trained/bp.tbl`).
    pub fn from_spec(spec: &PolicySpec) -> Result<Self, PolicyError> {
        let table = match spec.param("table") {
            Some(path) => LearnedTable::load(std::path::Path::new(path))
                .map_err(|reason| PolicyError::bad_param("learned", "table", path, reason))?,
            None => LearnedTable::empty(1),
        };
        let degree = parse_param(spec, "degree", DEFAULT_DEGREE, 1..=512)?;
        Ok(Self::with_table(table, degree))
    }

    /// The loaded table (empty for a bare `learned`).
    pub fn table(&self) -> &LearnedTable {
        &self.table
    }
}

impl Prefetcher for LearnedPrefetcher {
    fn name(&self) -> &'static str {
        "learned"
    }

    fn plan(
        &mut self,
        view: &ResidencyView<'_>,
        _rng: &mut SmallRng,
        page: PageId,
        alloc: AllocId,
    ) -> Vec<Vec<PageId>> {
        if let Some(last) = self.last_fault {
            let delta = page.index() as i64 - last as i64;
            if delta != 0 {
                self.history.push_back(delta);
                if self.history.len() > self.table.depth() {
                    self.history.pop_front();
                }
            }
        }
        self.last_fault = Some(page.index());

        if self.table.is_empty() || self.history.len() < self.table.depth() {
            return Vec::new();
        }
        let context: Vec<i64> = self.history.iter().copied().collect();
        let (candidates, chain, chain_end) = predict_chain(
            |ctx| self.table.predict(ctx).to_vec(),
            &context,
            page.index(),
            self.degree,
        );
        // Advance the modeled fault stream through the issued chain:
        // when the predictions land, the next real fault continues
        // from the end of the prefetched run, so its delta (and the
        // resulting context) stays inside the training distribution.
        // Anchoring on the real fault instead would measure a one-shot
        // +N jump over the prefetched pages — a delta the no-prefetch
        // training trace never contains — and the table would go
        // silent right after its first hit. The table is frozen, so a
        // wrong chain costs one out-of-distribution lookup, the same
        // as before the advance.
        if !chain.is_empty() {
            for &d in &chain {
                self.history.push_back(d);
                if self.history.len() > self.table.depth() {
                    self.history.pop_front();
                }
            }
            self.last_fault = Some(chain_end);
        }
        groups_from_candidates(view, page, alloc, candidates)
    }

    fn box_clone(&self) -> Box<dyn Prefetcher> {
        Box::new(self.clone())
    }

    fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        // The table is frozen (rebuilt from the spec's path); only the
        // modeled fault stream is mutable state.
        w.put_usize(self.history.len());
        for &d in &self.history {
            w.put_i64(d);
        }
        match self.last_fault {
            Some(p) => {
                w.put_bool(true);
                w.put_u64(p);
            }
            None => w.put_bool(false),
        }
    }

    fn load_state(
        &mut self,
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<(), uvm_types::codec::CodecError> {
        let n = r.get_usize()?;
        self.history.clear();
        for _ in 0..n {
            self.history.push_back(r.get_i64()?);
        }
        self.last_fault = if r.get_bool()? {
            Some(r.get_u64()?)
        } else {
            None
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{train_table, TraceKind, TraceRecord};

    #[test]
    fn bare_learned_predicts_nothing() {
        let p = LearnedPrefetcher::from_spec(&"learned".parse().unwrap()).unwrap();
        assert!(p.table().is_empty());
        assert_eq!(p.name(), "learned");
    }

    #[test]
    fn missing_table_file_is_a_bad_param() {
        let err =
            LearnedPrefetcher::from_spec(&"learned:table=/nonexistent/x.tbl".parse().unwrap())
                .unwrap_err();
        let PolicyError::BadParam { policy, param, .. } = &err else {
            panic!("expected BadParam, got {err:?}");
        };
        assert_eq!((policy.as_str(), param.as_str()), ("learned", "table"));
    }

    #[test]
    fn trained_table_round_trips_through_the_spec_path() {
        // Train on a stride-1 fault stream, save, load via from_spec.
        let records: Vec<TraceRecord> = (0..64u64)
            .map(|i| TraceRecord {
                kind: TraceKind::Fault,
                cycle: i,
                page: 1000 + i,
            })
            .collect();
        let table = train_table(&records, 2, 4);
        let dir = std::env::temp_dir().join("uvm-learned-test");
        let path = dir.join("stride.tbl");
        table.save(&path).unwrap();

        let spec: PolicySpec = format!("learned:table={}", path.display()).parse().unwrap();
        let p = LearnedPrefetcher::from_spec(&spec).unwrap();
        assert_eq!(p.table(), &table);
        assert_eq!(p.table().predict(&[1, 1]), &[1]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
