//! No prefetching: pure 4 KB on-demand migration.

use uvm_types::rng::SmallRng;
use uvm_types::PageId;

use crate::alloc::AllocId;
use crate::view::ResidencyView;

use super::Prefetcher;

/// The on-demand baseline — never prefetches anything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NonePrefetcher;

impl Prefetcher for NonePrefetcher {
    fn name(&self) -> &'static str {
        "none"
    }

    fn plan(
        &mut self,
        _view: &ResidencyView<'_>,
        _rng: &mut SmallRng,
        _page: PageId,
        _alloc: AllocId,
    ) -> Vec<Vec<PageId>> {
        Vec::new()
    }

    fn box_clone(&self) -> Box<dyn Prefetcher> {
        Box::new(*self)
    }
}
