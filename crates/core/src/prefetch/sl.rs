//! SLp: the sequential-local prefetcher of paper Sec. 3.2.

use uvm_types::rng::SmallRng;
use uvm_types::{PageId, PAGES_PER_BASIC_BLOCK};

use crate::alloc::AllocId;
use crate::view::ResidencyView;

use super::Prefetcher;

/// SLp: the remaining invalid pages of the faulty page's 64 KB basic
/// block, as one prefetch-group transfer.
#[derive(Clone, Copy, Debug, Default)]
pub struct SlPrefetcher;

impl Prefetcher for SlPrefetcher {
    fn name(&self) -> &'static str {
        "SLp"
    }

    fn plan(
        &mut self,
        view: &ResidencyView<'_>,
        _rng: &mut SmallRng,
        page: PageId,
        _alloc: AllocId,
    ) -> Vec<Vec<PageId>> {
        let mut group: Vec<PageId> = Vec::with_capacity(PAGES_PER_BASIC_BLOCK as usize);
        group.extend(
            page.basic_block()
                .pages()
                .filter(|&p| p != page && !view.is_valid(p)),
        );
        if group.is_empty() {
            Vec::new()
        } else {
            vec![group]
        }
    }

    fn box_clone(&self) -> Box<dyn Prefetcher> {
        Box::new(*self)
    }
}
