//! TBNp: the tree-based neighborhood prefetcher of paper Sec. 3.3.

use uvm_types::rng::SmallRng;
use uvm_types::{PageId, PAGES_PER_BASIC_BLOCK};

use crate::alloc::AllocId;
use crate::tree::group_contiguous;
use crate::view::ResidencyView;

use super::Prefetcher;

/// TBNp: tree-balancing prefetch reverse-engineered from the NVIDIA
/// driver. Contiguous candidate blocks are grouped into single
/// transfers; the run containing the faulty page contributes its
/// remaining pages as one group.
///
/// The per-allocation trees the plan reads are *shared* residency
/// metadata — TBNe reads the same trees — so they live with the
/// allocations (maintained by the mechanism on admit/expel) and are
/// reached read-only through the view.
#[derive(Clone, Copy, Debug, Default)]
pub struct TbnPrefetcher;

impl Prefetcher for TbnPrefetcher {
    fn name(&self) -> &'static str {
        "TBNp"
    }

    fn plan(
        &mut self,
        view: &ResidencyView<'_>,
        _rng: &mut SmallRng,
        page: PageId,
        alloc: AllocId,
    ) -> Vec<Vec<PageId>> {
        let fault_block = page.basic_block();
        let alloc = view.alloc(alloc);
        let tree = alloc
            .tree_for_block(fault_block)
            .expect("fault block inside allocation has a tree");
        let planned = tree.plan_prefetch(fault_block);

        let mut blocks = planned;
        blocks.push(fault_block);
        blocks.sort_unstable_by_key(|b| b.index());
        let runs = group_contiguous(&blocks);

        let mut groups = Vec::with_capacity(runs.len());
        for (start, len) in runs {
            let mut pages: Vec<PageId> = Vec::with_capacity((len * PAGES_PER_BASIC_BLOCK) as usize);
            for i in 0..len {
                let block = start.add(i);
                // The tree's per-leaf counts mirror page-table validity
                // exactly (maintained on admit/expel), so the common
                // all-invalid and all-valid leaves resolve without the
                // per-page PTE probes that used to dominate planning.
                match tree.block_valid_pages(block) {
                    0 => pages.extend(block.pages().filter(|&p| p != page)),
                    v if v == PAGES_PER_BASIC_BLOCK as u32 => {}
                    _ => pages.extend(block.pages().filter(|&p| p != page && !view.is_valid(p))),
                }
            }
            if !pages.is_empty() {
                groups.push(pages);
            }
        }
        groups
    }

    fn box_clone(&self) -> Box<dyn Prefetcher> {
        Box::new(*self)
    }
}
