//! An O(1) indexable page set, used by the random eviction policy to
//! pick a uniformly random resident page and by the driver for
//! resident-page scans.
//!
//! The membership and position tables are dense, page-indexed
//! structures (a u64-word bitmap plus a position vector) rather than a
//! `HashMap`: the bump allocator hands out a small dense page range,
//! so membership is one bit test and ordered scans skip 64 absent
//! pages per word. The `items` vector is kept in insertion/swap order
//! — [`sample`](IndexedPageSet::sample) indexes into it, and that
//! order is behaviour-observable through the random evictor, so the
//! bitmap only ever *adds* an access path ([`iter_ascending`]), never
//! changes an existing one.
//!
//! [`iter_ascending`]: IndexedPageSet::iter_ascending

use uvm_types::rng::Rng;
use uvm_types::PageId;

use crate::dense::DensePageSet;

/// Sentinel for "page not present" in the dense position table.
const ABSENT: u32 = u32::MAX;

/// A set of pages supporting O(1) insert, remove, membership, uniform
/// random sampling, and word-scan ordered iteration.
///
/// # Examples
///
/// ```
/// use uvm_core::IndexedPageSet;
/// use uvm_types::PageId;
///
/// let mut set = IndexedPageSet::new();
/// set.insert(PageId::new(7));
/// set.insert(PageId::new(3));
/// assert!(set.contains(PageId::new(7)));
/// assert_eq!(set.len(), 2);
/// let ordered: Vec<u64> = set.iter_ascending().map(|p| p.index()).collect();
/// assert_eq!(ordered, vec![3, 7]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct IndexedPageSet {
    /// Members in insertion/swap order — the sampling order.
    items: Vec<PageId>,
    /// Page index → position in `items` (`ABSENT` when not a member).
    pos: Vec<u32>,
    /// Membership bitmap; also drives [`iter_ascending`](Self::iter_ascending).
    bits: DensePageSet,
}

impl IndexedPageSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    fn position(&self, page: PageId) -> Option<usize> {
        match self.pos.get(page.index() as usize) {
            Some(&p) if p != ABSENT => Some(p as usize),
            _ => None,
        }
    }

    fn set_position(&mut self, page: PageId, position: u32) {
        let i = page.index() as usize;
        if i >= self.pos.len() {
            self.pos.resize(i + 1, ABSENT);
        }
        self.pos[i] = position;
    }

    /// Inserts `page`; returns `true` if it was newly added.
    pub fn insert(&mut self, page: PageId) -> bool {
        if !self.bits.insert(page) {
            return false;
        }
        assert!(
            self.items.len() < ABSENT as usize,
            "IndexedPageSet position table overflow"
        );
        self.set_position(page, self.items.len() as u32);
        self.items.push(page);
        true
    }

    /// Removes `page` (swap-remove); returns `true` if it was present.
    pub fn remove(&mut self, page: PageId) -> bool {
        if !self.bits.remove(page) {
            return false;
        }
        let pos = self
            .position(page)
            .expect("bitmap and position table agree");
        self.pos[page.index() as usize] = ABSENT;
        let last = self.items.pop().expect("bitmap implies non-empty");
        if pos < self.items.len() {
            self.items[pos] = last;
            self.set_position(last, pos as u32);
        }
        true
    }

    /// `true` if `page` is in the set — one bit test.
    #[inline]
    pub fn contains(&self, page: PageId) -> bool {
        self.bits.contains(page)
    }

    /// Number of pages in the set.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// A uniformly random member, or `None` if empty. Draws exactly
    /// one `gen_range` over the insertion/swap order, so the sampled
    /// sequence is independent of the membership representation.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Option<PageId> {
        if self.items.is_empty() {
            None
        } else {
            Some(self.items[rng.gen_range(0..self.items.len())])
        }
    }

    /// Iterates over members in unspecified (insertion/swap) order.
    pub fn iter(&self) -> impl Iterator<Item = PageId> + '_ {
        self.items.iter().copied()
    }

    /// Iterates over members in ascending page order: a word scan of
    /// the membership bitmap, skipping 64 absent pages per comparison.
    /// This order is deterministic given the member set alone —
    /// independent of insertion history — which is what the
    /// policy-swap reseeding of forked sweeps relies on.
    pub fn iter_ascending(&self) -> impl Iterator<Item = PageId> + '_ {
        self.bits.iter_ascending()
    }

    /// Serializes the set for a checkpoint. The `items` vector is
    /// written *verbatim* — its insertion/swap order is what
    /// [`sample`](Self::sample) indexes into, so it is
    /// schedule-observable and must round-trip exactly.
    pub fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        w.put_usize(self.items.len());
        for page in &self.items {
            w.put_u64(page.index());
        }
    }

    /// Rebuilds a set from a [`save_state`](Self::save_state) image by
    /// replaying inserts in the recorded order (insert appends, so the
    /// items vector — and with it the sampling order — is reproduced
    /// exactly, and the position table and bitmap follow).
    pub fn load_state(
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<Self, uvm_types::codec::CodecError> {
        let n = r.get_usize()?;
        let mut set = IndexedPageSet::new();
        for _ in 0..n {
            let page = PageId::new(r.get_u64()?);
            if !set.insert(page) {
                return Err(uvm_types::codec::CodecError::BadTag {
                    what: "duplicate page in indexed set",
                    value: page.index(),
                });
            }
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_types::rng::SmallRng;

    #[test]
    fn insert_remove_contains() {
        let mut s = IndexedPageSet::new();
        assert!(s.insert(PageId::new(1)));
        assert!(!s.insert(PageId::new(1)), "duplicate insert rejected");
        assert!(s.contains(PageId::new(1)));
        assert!(s.remove(PageId::new(1)));
        assert!(!s.remove(PageId::new(1)));
        assert!(s.is_empty());
    }

    #[test]
    fn swap_remove_keeps_index_consistent() {
        let mut s = IndexedPageSet::new();
        for i in 0..10 {
            s.insert(PageId::new(i));
        }
        s.remove(PageId::new(0)); // forces a swap with the last element
        for i in 1..10 {
            assert!(s.contains(PageId::new(i)), "page {i} lost after swap");
        }
        assert_eq!(s.len(), 9);
        // Remove everything; the set must empty cleanly.
        for i in 1..10 {
            assert!(s.remove(PageId::new(i)));
        }
        assert!(s.is_empty());
    }

    #[test]
    fn sample_is_uniformish_and_member() {
        let mut s = IndexedPageSet::new();
        for i in 0..100 {
            s.insert(PageId::new(i));
        }
        let mut rng = SmallRng::seed_from_u64(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let p = s.sample(&mut rng).unwrap();
            assert!(s.contains(p));
            seen.insert(p.index());
        }
        // With 1000 draws over 100 items, nearly all items appear.
        assert!(seen.len() > 90, "only {} distinct samples", seen.len());
    }

    #[test]
    fn sample_order_matches_the_historical_hashmap_layout() {
        // The sampled sequence is a pure function of the insertion /
        // swap-remove history and the RNG stream: re-deriving it from
        // a reference implementation that keeps the same items vector
        // must agree draw for draw. This pins the bitmap refactor to
        // the behaviour the golden fixtures were generated under.
        struct Reference {
            items: Vec<PageId>,
            index: std::collections::HashMap<PageId, usize>,
        }
        impl Reference {
            fn insert(&mut self, page: PageId) -> bool {
                if self.index.contains_key(&page) {
                    return false;
                }
                self.index.insert(page, self.items.len());
                self.items.push(page);
                true
            }
            fn remove(&mut self, page: PageId) -> bool {
                let Some(pos) = self.index.remove(&page) else {
                    return false;
                };
                let last = self.items.pop().expect("non-empty");
                if pos < self.items.len() {
                    self.items[pos] = last;
                    self.index.insert(last, pos);
                }
                true
            }
        }

        let mut s = IndexedPageSet::new();
        let mut r = Reference {
            items: Vec::new(),
            index: std::collections::HashMap::new(),
        };
        let mut churn = SmallRng::seed_from_u64(0xc0de);
        for _ in 0..4000 {
            let p = PageId::new(churn.gen_range(0u64..300));
            if churn.gen_bool(0.6) {
                assert_eq!(s.insert(p), r.insert(p));
            } else {
                assert_eq!(s.remove(p), r.remove(p));
            }
            assert_eq!(s.items, r.items, "sampling order diverged");
        }
        let mut rng_a = SmallRng::seed_from_u64(7);
        let mut rng_b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let expect = if r.items.is_empty() {
                None
            } else {
                Some(r.items[rng_b.gen_range(0..r.items.len())])
            };
            assert_eq!(s.sample(&mut rng_a), expect);
        }
    }

    #[test]
    fn sample_empty_is_none() {
        let s = IndexedPageSet::new();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(s.sample(&mut rng), None);
    }

    #[test]
    fn iter_yields_all() {
        let mut s = IndexedPageSet::new();
        for i in [3u64, 1, 4] {
            s.insert(PageId::new(i));
        }
        let mut got: Vec<_> = s.iter().map(|p| p.index()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 3, 4]);
    }

    #[test]
    fn iter_ascending_is_sorted_regardless_of_history() {
        let mut s = IndexedPageSet::new();
        for i in [300u64, 3, 64, 1, 128, 65] {
            s.insert(PageId::new(i));
        }
        s.remove(PageId::new(64));
        let got: Vec<_> = s.iter_ascending().map(|p| p.index()).collect();
        assert_eq!(got, vec![1, 3, 65, 128, 300]);
    }
}
