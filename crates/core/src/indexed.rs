//! An O(1) indexable page set, used by the random eviction policy to
//! pick a uniformly random resident page.

use std::collections::HashMap;

use uvm_types::rng::Rng;
use uvm_types::PageId;

/// A set of pages supporting O(1) insert, remove, membership, and
/// uniform random sampling.
///
/// # Examples
///
/// ```
/// use uvm_core::IndexedPageSet;
/// use uvm_types::PageId;
///
/// let mut set = IndexedPageSet::new();
/// set.insert(PageId::new(7));
/// assert!(set.contains(PageId::new(7)));
/// assert_eq!(set.len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct IndexedPageSet {
    items: Vec<PageId>,
    index: HashMap<PageId, usize>,
}

impl IndexedPageSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `page`; returns `true` if it was newly added.
    pub fn insert(&mut self, page: PageId) -> bool {
        if self.index.contains_key(&page) {
            return false;
        }
        self.index.insert(page, self.items.len());
        self.items.push(page);
        true
    }

    /// Removes `page` (swap-remove); returns `true` if it was present.
    pub fn remove(&mut self, page: PageId) -> bool {
        let Some(pos) = self.index.remove(&page) else {
            return false;
        };
        let last = self.items.pop().expect("index implies non-empty");
        if pos < self.items.len() {
            self.items[pos] = last;
            self.index.insert(last, pos);
        }
        true
    }

    /// `true` if `page` is in the set.
    pub fn contains(&self, page: PageId) -> bool {
        self.index.contains_key(&page)
    }

    /// Number of pages in the set.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// A uniformly random member, or `None` if empty.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Option<PageId> {
        if self.items.is_empty() {
            None
        } else {
            Some(self.items[rng.gen_range(0..self.items.len())])
        }
    }

    /// Iterates over members in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = PageId> + '_ {
        self.items.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_types::rng::SmallRng;

    #[test]
    fn insert_remove_contains() {
        let mut s = IndexedPageSet::new();
        assert!(s.insert(PageId::new(1)));
        assert!(!s.insert(PageId::new(1)), "duplicate insert rejected");
        assert!(s.contains(PageId::new(1)));
        assert!(s.remove(PageId::new(1)));
        assert!(!s.remove(PageId::new(1)));
        assert!(s.is_empty());
    }

    #[test]
    fn swap_remove_keeps_index_consistent() {
        let mut s = IndexedPageSet::new();
        for i in 0..10 {
            s.insert(PageId::new(i));
        }
        s.remove(PageId::new(0)); // forces a swap with the last element
        for i in 1..10 {
            assert!(s.contains(PageId::new(i)), "page {i} lost after swap");
        }
        assert_eq!(s.len(), 9);
        // Remove everything; the set must empty cleanly.
        for i in 1..10 {
            assert!(s.remove(PageId::new(i)));
        }
        assert!(s.is_empty());
    }

    #[test]
    fn sample_is_uniformish_and_member() {
        let mut s = IndexedPageSet::new();
        for i in 0..100 {
            s.insert(PageId::new(i));
        }
        let mut rng = SmallRng::seed_from_u64(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let p = s.sample(&mut rng).unwrap();
            assert!(s.contains(p));
            seen.insert(p.index());
        }
        // With 1000 draws over 100 items, nearly all items appear.
        assert!(seen.len() > 90, "only {} distinct samples", seen.len());
    }

    #[test]
    fn sample_empty_is_none() {
        let s = IndexedPageSet::new();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(s.sample(&mut rng), None);
    }

    #[test]
    fn iter_yields_all() {
        let mut s = IndexedPageSet::new();
        for i in [3u64, 1, 4] {
            s.insert(PageId::new(i));
        }
        let mut got: Vec<_> = s.iter().map(|p| p.index()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 3, 4]);
    }
}
