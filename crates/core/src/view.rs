//! Read-only residency state exposed to the pluggable policies.
//!
//! A [`ResidencyView`] is the *only* window a [`Prefetcher`] or
//! [`Evictor`] gets onto the driver: page-table validity, allocation
//! geometry (including the TBN trees), the resident-page set, in-flight
//! data-arrival times, and the pin rules derived from them. Policies
//! may observe freely but never mutate — every `&self` borrow here is
//! shared, so the invariant is enforced by the type system, not by
//! convention. All residency mutation (validate/invalidate, frame
//! accounting, tree counter updates) stays in the `Gmmu` mechanism.
//!
//! [`Prefetcher`]: crate::Prefetcher
//! [`Evictor`]: crate::Evictor

use std::collections::{BTreeSet, HashMap};

use uvm_mem::PageTable;
use uvm_types::hash::FxBuildHasher;
use uvm_types::rng::Rng;
use uvm_types::{BasicBlockId, Cycle, Duration, LargePageId, PageId, PAGES_PER_LARGE_PAGE};

use crate::alloc::{AllocId, Allocation, Allocations};
use crate::dense::{DensePageMap, DensePageSet};
use crate::indexed::IndexedPageSet;

/// No pin: freely evictable.
pub const PIN_NONE: u8 = 0;
/// Soft pin: the page's migration is still in flight (or just landed);
/// evictable only when nothing unpinned exists.
pub const PIN_SOFT: u8 = 1;
/// Hard pin: a demand page whose faulting warp has not replayed yet.
/// Never evictable — this bounds far-faults by accesses.
pub const PIN_HARD: u8 = 2;

/// Grace window (core cycles) during which a just-arrived page is
/// still protected from eviction: it covers the faulting warp's replay
/// (TLB miss + page walk + memory access), preventing the pathological
/// migrate→evict→refault livelock.
pub const PIN_GRACE: Duration = Duration::from_cycles(2_000);

/// A read-only snapshot of the driver's residency state, lent to the
/// policies for the duration of one planning or selection call.
#[derive(Clone, Copy)]
pub struct ResidencyView<'a> {
    page_table: &'a PageTable,
    allocs: &'a Allocations,
    resident: &'a IndexedPageSet,
    ready_at: &'a DensePageMap<Cycle>,
    unaccessed_demand: &'a DensePageSet,
    reserve_frac: f64,
    /// Large pages currently coalesced into a single huge mapping.
    huge_mapped: &'a BTreeSet<LargePageId>,
    /// Per-large-page resident counts, maintained by the mechanism only
    /// while a huge-page policy is active (`lp_tracking`).
    lp_resident: &'a HashMap<LargePageId, u32, FxBuildHasher>,
    lp_tracking: bool,
}

impl<'a> ResidencyView<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        page_table: &'a PageTable,
        allocs: &'a Allocations,
        resident: &'a IndexedPageSet,
        ready_at: &'a DensePageMap<Cycle>,
        unaccessed_demand: &'a DensePageSet,
        reserve_frac: f64,
        huge_mapped: &'a BTreeSet<LargePageId>,
        lp_resident: &'a HashMap<LargePageId, u32, FxBuildHasher>,
        lp_tracking: bool,
    ) -> Self {
        ResidencyView {
            page_table,
            allocs,
            resident,
            ready_at,
            unaccessed_demand,
            reserve_frac,
            huge_mapped,
            lp_resident,
            lp_tracking,
        }
    }

    /// `true` if `page` has a valid PTE.
    pub fn is_valid(&self, page: PageId) -> bool {
        self.page_table.is_valid(page)
    }

    /// The allocation registry (geometry + TBN trees, read-only).
    pub fn allocations(&self) -> &'a Allocations {
        self.allocs
    }

    /// The allocation with the given id.
    pub fn alloc(&self, id: AllocId) -> &'a Allocation {
        self.allocs.get(id)
    }

    /// Number of resident pages.
    pub fn resident_len(&self) -> usize {
        self.resident.len()
    }

    /// Resident pages, unspecified order (eviction fallback scans).
    pub fn resident_iter(&self) -> impl Iterator<Item = PageId> + 'a {
        self.resident.iter()
    }

    /// Resident pages in ascending page order — a u64-word bitmap
    /// scan, 64 absent pages skipped per comparison. The order depends
    /// only on the resident set itself (not on migration history), so
    /// policies scanning it stay deterministic across snapshot/fork
    /// boundaries.
    pub fn resident_iter_ascending(&self) -> impl Iterator<Item = PageId> + 'a {
        self.resident.iter_ascending()
    }

    /// A uniformly random resident page, or `None` if nothing is
    /// resident.
    pub fn sample_resident<R: Rng>(&self, rng: &mut R) -> Option<PageId> {
        self.resident.sample(rng)
    }

    /// Fraction of the LRU top protected from eviction (Sec. 5.3's
    /// reservation optimisation); policies apply it to their own
    /// recency structures.
    pub fn reserve_frac(&self) -> f64 {
        self.reserve_frac
    }

    /// `true` if `lp` is currently coalesced into a single huge
    /// mapping. Evicting any of its pages forces a splinter first, so
    /// splinter-aware evictors check this before selecting victims.
    pub fn is_huge_mapped(&self, lp: LargePageId) -> bool {
        self.huge_mapped.contains(&lp)
    }

    /// Number of currently huge-mapped large pages.
    pub fn huge_mapped_len(&self) -> usize {
        self.huge_mapped.len()
    }

    /// Currently huge-mapped large pages in ascending order
    /// (deterministic for policy scans).
    pub fn huge_mapped_iter(&self) -> impl Iterator<Item = LargePageId> + 'a {
        self.huge_mapped.iter().copied()
    }

    /// Resident pages within `lp`'s 512-page range. O(1) while a
    /// huge-page policy is active (the mechanism maintains per-large-
    /// page counts); a 512-entry page-table scan otherwise.
    pub fn large_page_residency(&self, lp: LargePageId) -> u64 {
        if self.lp_tracking {
            u64::from(self.lp_resident.get(&lp).copied().unwrap_or(0))
        } else {
            let first = lp.first_page();
            (0..PAGES_PER_LARGE_PAGE)
                .filter(|&k| self.page_table.is_valid(first.add(k)))
                .count() as u64
        }
    }

    /// The pin level of `page` at time `t`: [`PIN_HARD`] for demand
    /// pages awaiting their faulting warp, [`PIN_SOFT`] while the
    /// migration is in flight (plus the [`PIN_GRACE`] replay window),
    /// [`PIN_NONE`] otherwise.
    pub fn pin_level(&self, page: PageId, t: Cycle) -> u8 {
        if self.unaccessed_demand.contains(page) {
            return PIN_HARD;
        }
        if self.ready_at.get(page).is_some_and(|r| r + PIN_GRACE > t) {
            return PIN_SOFT;
        }
        PIN_NONE
    }

    /// `true` if `block` holds at least one resident page with pin
    /// level at most `max_pin` — eviction takes that subset.
    pub fn block_evictable(&self, block: BasicBlockId, t: Cycle, max_pin: u8) -> bool {
        block
            .pages()
            .any(|p| self.is_valid(p) && self.pin_level(p, t) <= max_pin)
    }

    /// The resident pages of `block` with pin level at most `max_pin`.
    pub fn evictable_pages_of_block(
        &self,
        block: BasicBlockId,
        t: Cycle,
        max_pin: u8,
    ) -> Vec<PageId> {
        block
            .pages()
            .filter(|&p| self.is_valid(p) && self.pin_level(p, t) <= max_pin)
            .collect()
    }
}

impl std::fmt::Debug for ResidencyView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidencyView")
            .field("resident", &self.resident.len())
            .field("reserve_frac", &self.reserve_frac)
            .finish_non_exhaustive()
    }
}
