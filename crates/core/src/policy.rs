//! Policy selectors: which hardware prefetcher and which eviction
//! policy the GMMU runs.
//!
//! The enums are stable *selectors* — hashable, copyable identities
//! used by configs, run keys, and CSV output. The implementations
//! behind them live in [`crate::prefetch`] and [`crate::evict`], and
//! both `Display` and `FromStr` resolve through the
//! [`PolicyRegistry`](crate::PolicyRegistry), so the registry is the
//! single source of truth for names and aliases.

use std::fmt;
use std::str::FromStr;

use crate::registry::PolicyRegistry;

/// The hardware prefetcher in force (paper Sec. 3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PrefetchPolicy {
    /// No prefetching: pure 4 KB on-demand migration.
    #[default]
    None,
    /// Rp: one random 4 KB page from the faulty page's 2 MB large page
    /// is migrated alongside the faulty page (Sec. 3.1).
    Random,
    /// SLp: the faulty page's whole 64 KB basic block is migrated,
    /// split into a page-fault group and a prefetch group (Sec. 3.2).
    SequentialLocal,
    /// The locality-aware prefetcher of Zheng et al. [26], which the
    /// paper contrasts with SLp: 128 consecutive 4 KB pages (512 KB)
    /// starting from the faulty page, crossing 64 KB block boundaries
    /// (and potentially 2 MB boundaries, requiring the cross-large-page
    /// coordination the paper's SLp avoids).
    Sequential512K,
    /// S256p: a fixed 256 KB stride window past the faulty page, the
    /// fixed-granularity baseline of Long et al. — an out-of-core
    /// policy plugged in purely through the registry.
    Stride256K,
    /// TBNp: the tree-based neighborhood prefetcher reverse-engineered
    /// from the NVIDIA driver (Sec. 3.3).
    TreeBasedNeighborhood,
    /// MOSp: Mosaic-style coalescing prefetcher — TBN neighborhood plan
    /// plus "finish the 2 MB large page" once half resident, with
    /// contiguous frame placement and huge-page promotion on full
    /// residency. Cooperates with [`EvictPolicy::MosaicSplinter`].
    MosaicCoalesce,
}

impl PrefetchPolicy {
    /// The prefetchers the paper's figures compare, in figure order
    /// (the Zheng et al. 512 KB variant and the 256 KB stride variant
    /// are ablations, not figure series).
    pub const ALL: [PrefetchPolicy; 4] = [
        PrefetchPolicy::None,
        PrefetchPolicy::Random,
        PrefetchPolicy::SequentialLocal,
        PrefetchPolicy::TreeBasedNeighborhood,
    ];

    /// Every implemented prefetcher, including ablation variants.
    pub const ALL_WITH_ABLATIONS: [PrefetchPolicy; 7] = [
        PrefetchPolicy::None,
        PrefetchPolicy::Random,
        PrefetchPolicy::SequentialLocal,
        PrefetchPolicy::Sequential512K,
        PrefetchPolicy::Stride256K,
        PrefetchPolicy::TreeBasedNeighborhood,
        PrefetchPolicy::MosaicCoalesce,
    ];
}

impl fmt::Display for PrefetchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let entry = PolicyRegistry::global()
            .prefetcher_for(*self)
            .expect("every PrefetchPolicy variant is registered");
        f.write_str(entry.name)
    }
}

impl FromStr for PrefetchPolicy {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PolicyRegistry::global()
            .prefetcher(s)
            .and_then(|e| e.selector)
            .ok_or_else(|| ParsePolicyError {
                input: s.to_owned(),
                kind: PolicyKind::Prefetch,
            })
    }
}

/// The eviction / pre-eviction policy in force (paper Secs. 4.2, 5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EvictPolicy {
    /// LRU 4 KB eviction — the CUDA-driver baseline (Sec. 4.2).
    #[default]
    LruPage,
    /// Re: a uniformly random resident 4 KB page (Sec. 4.2).
    RandomPage,
    /// SLe: evict the whole 64 KB basic block of the LRU candidate as a
    /// single write-back unit (Sec. 5.1).
    SequentialLocal,
    /// TBNe: tree-based neighborhood pre-eviction, the adaptive scheme
    /// whose granularity floats between 64 KB and 1 MB (Sec. 5.2).
    TreeBasedNeighborhood,
    /// Static 2 MB large-page LRU eviction, as real NVIDIA hardware
    /// does (Sec. 7.5).
    LruLargePage,
    /// AFe: evict the least-frequently-accessed resident page (LFU) —
    /// an out-of-core policy plugged in purely through the registry.
    AccessFrequency,
    /// MOSe: Mosaic-style splinter-then-evict — demote the coldest
    /// huge-mapped 2 MB page under pressure, then evict only its LRU
    /// 64 KB blocks. Cooperates with [`PrefetchPolicy::MosaicCoalesce`].
    MosaicSplinter,
}

impl EvictPolicy {
    /// `true` for the bulk pre-eviction policies whose write-backs do
    /// not stall the demand migration (Sec. 5: "the kernel execution is
    /// not stalled for writing back pages anymore").
    pub fn is_pre_eviction(self) -> bool {
        matches!(
            self,
            EvictPolicy::SequentialLocal
                | EvictPolicy::TreeBasedNeighborhood
                | EvictPolicy::LruLargePage
                | EvictPolicy::MosaicSplinter
        )
    }

    /// The eviction policies the paper's figures compare, figure order.
    pub const ALL: [EvictPolicy; 5] = [
        EvictPolicy::LruPage,
        EvictPolicy::RandomPage,
        EvictPolicy::SequentialLocal,
        EvictPolicy::TreeBasedNeighborhood,
        EvictPolicy::LruLargePage,
    ];

    /// Every implemented eviction policy, including ablation variants.
    pub const ALL_WITH_ABLATIONS: [EvictPolicy; 7] = [
        EvictPolicy::LruPage,
        EvictPolicy::RandomPage,
        EvictPolicy::SequentialLocal,
        EvictPolicy::TreeBasedNeighborhood,
        EvictPolicy::LruLargePage,
        EvictPolicy::AccessFrequency,
        EvictPolicy::MosaicSplinter,
    ];
}

impl fmt::Display for EvictPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let entry = PolicyRegistry::global()
            .evictor_for(*self)
            .expect("every EvictPolicy variant is registered");
        f.write_str(entry.name)
    }
}

impl FromStr for EvictPolicy {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PolicyRegistry::global()
            .evictor(s)
            .and_then(|e| e.selector)
            .ok_or_else(|| ParsePolicyError {
                input: s.to_owned(),
                kind: PolicyKind::Evict,
            })
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PolicyKind {
    Prefetch,
    Evict,
}

/// Error parsing a policy name. Its `Display` lists the registered
/// names, so CLI layers can surface it verbatim.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePolicyError {
    input: String,
    kind: PolicyKind,
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let registry = PolicyRegistry::global();
        let (kind, known) = match self.kind {
            PolicyKind::Prefetch => ("prefetch policy", registry.prefetcher_names()),
            PolicyKind::Evict => ("eviction policy", registry.evictor_names()),
        };
        write!(
            f,
            "unknown {kind}: {:?} (known: {})",
            self.input,
            known.join(", ")
        )
    }
}

impl std::error::Error for ParsePolicyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_through_from_str() {
        for p in PrefetchPolicy::ALL_WITH_ABLATIONS {
            assert_eq!(p.to_string().parse::<PrefetchPolicy>().unwrap(), p);
        }
        for e in EvictPolicy::ALL_WITH_ABLATIONS {
            assert_eq!(e.to_string().parse::<EvictPolicy>().unwrap(), e);
        }
    }

    #[test]
    fn every_registered_name_and_alias_parses_to_its_selector() {
        // The property the registry guarantees: each registered
        // spelling — canonical names *and* aliases, including the
        // easy-to-miss Sequential512K ablation — parses to the entry's
        // selector, and the selector displays back as the canonical
        // name. Name-only registrations (the history-based
        // prefetchers) have no selector: the enums must *reject* them
        // while the spec grammar still reaches them.
        let registry = PolicyRegistry::global();
        for entry in registry.prefetchers() {
            match entry.selector {
                Some(selector) => {
                    for name in entry.names() {
                        assert_eq!(
                            name.parse::<PrefetchPolicy>().unwrap(),
                            selector,
                            "prefetcher name {name:?}"
                        );
                    }
                    assert_eq!(selector.to_string(), entry.name);
                }
                None => {
                    for name in entry.names() {
                        assert!(
                            name.parse::<PrefetchPolicy>().is_err(),
                            "selector-less {name:?} must not parse to an enum"
                        );
                    }
                }
            }
        }
        for entry in registry.evictors() {
            let selector = entry.selector.expect("built-in evictors carry selectors");
            for name in entry.names() {
                assert_eq!(
                    name.parse::<EvictPolicy>().unwrap(),
                    selector,
                    "evictor name {name:?}"
                );
            }
            assert_eq!(selector.to_string(), entry.name);
        }
    }

    #[test]
    fn sequential_512k_round_trips_even_outside_all() {
        assert!(!PrefetchPolicy::ALL.contains(&PrefetchPolicy::Sequential512K));
        assert_eq!(PrefetchPolicy::Sequential512K.to_string(), "SZp");
        for spelling in ["SZp", "zheng", "sequential-512k"] {
            assert_eq!(
                spelling.parse::<PrefetchPolicy>().unwrap(),
                PrefetchPolicy::Sequential512K
            );
        }
    }

    #[test]
    fn unknown_names_error_and_list_known_policies() {
        let err = "bogus".parse::<PrefetchPolicy>().unwrap_err();
        assert!(err.to_string().contains("bogus"));
        for name in PolicyRegistry::global().prefetcher_names() {
            assert!(err.to_string().contains(name), "error lists {name}");
        }
        let err = "bogus".parse::<EvictPolicy>().unwrap_err();
        for name in PolicyRegistry::global().evictor_names() {
            assert!(err.to_string().contains(name), "error lists {name}");
        }
    }

    #[test]
    fn pre_eviction_classification() {
        assert!(!EvictPolicy::LruPage.is_pre_eviction());
        assert!(!EvictPolicy::RandomPage.is_pre_eviction());
        assert!(!EvictPolicy::AccessFrequency.is_pre_eviction());
        assert!(EvictPolicy::SequentialLocal.is_pre_eviction());
        assert!(EvictPolicy::TreeBasedNeighborhood.is_pre_eviction());
        assert!(EvictPolicy::LruLargePage.is_pre_eviction());
        assert!(EvictPolicy::MosaicSplinter.is_pre_eviction());
    }

    #[test]
    fn legacy_display_names_are_stable() {
        // RunKey hashing and every CSV header depend on these exact
        // strings: changing one silently invalidates result caches.
        let display: Vec<String> = PrefetchPolicy::ALL_WITH_ABLATIONS
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(
            display,
            ["none", "Rp", "SLp", "SZp", "S256p", "TBNp", "MOSp"]
        );
        let display: Vec<String> = EvictPolicy::ALL_WITH_ABLATIONS
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(
            display,
            ["LRU-4KB", "Re", "SLe", "TBNe", "LRU-2MB", "AFe", "MOSe"]
        );
    }
}
