//! Policy selectors: which hardware prefetcher and which eviction
//! policy the GMMU runs.

use std::fmt;
use std::str::FromStr;

/// The hardware prefetcher in force (paper Sec. 3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PrefetchPolicy {
    /// No prefetching: pure 4 KB on-demand migration.
    #[default]
    None,
    /// Rp: one random 4 KB page from the faulty page's 2 MB large page
    /// is migrated alongside the faulty page (Sec. 3.1).
    Random,
    /// SLp: the faulty page's whole 64 KB basic block is migrated,
    /// split into a page-fault group and a prefetch group (Sec. 3.2).
    SequentialLocal,
    /// The locality-aware prefetcher of Zheng et al. [26], which the
    /// paper contrasts with SLp: 128 consecutive 4 KB pages (512 KB)
    /// starting from the faulty page, crossing 64 KB block boundaries
    /// (and potentially 2 MB boundaries, requiring the cross-large-page
    /// coordination the paper's SLp avoids).
    Sequential512K,
    /// TBNp: the tree-based neighborhood prefetcher reverse-engineered
    /// from the NVIDIA driver (Sec. 3.3).
    TreeBasedNeighborhood,
}

impl PrefetchPolicy {
    /// The prefetchers the paper's figures compare, in figure order
    /// (the Zheng et al. 512 KB variant is an ablation, not a figure
    /// series).
    pub const ALL: [PrefetchPolicy; 4] = [
        PrefetchPolicy::None,
        PrefetchPolicy::Random,
        PrefetchPolicy::SequentialLocal,
        PrefetchPolicy::TreeBasedNeighborhood,
    ];

    /// Every implemented prefetcher, including ablation variants.
    pub const ALL_WITH_ABLATIONS: [PrefetchPolicy; 5] = [
        PrefetchPolicy::None,
        PrefetchPolicy::Random,
        PrefetchPolicy::SequentialLocal,
        PrefetchPolicy::Sequential512K,
        PrefetchPolicy::TreeBasedNeighborhood,
    ];
}

impl fmt::Display for PrefetchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PrefetchPolicy::None => "none",
            PrefetchPolicy::Random => "Rp",
            PrefetchPolicy::SequentialLocal => "SLp",
            PrefetchPolicy::Sequential512K => "SZp",
            PrefetchPolicy::TreeBasedNeighborhood => "TBNp",
        })
    }
}

impl FromStr for PrefetchPolicy {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(PrefetchPolicy::None),
            "Rp" | "random" => Ok(PrefetchPolicy::Random),
            "SLp" | "sequential-local" => Ok(PrefetchPolicy::SequentialLocal),
            "SZp" | "zheng" | "sequential-512k" => Ok(PrefetchPolicy::Sequential512K),
            "TBNp" | "tree" => Ok(PrefetchPolicy::TreeBasedNeighborhood),
            _ => Err(ParsePolicyError {
                input: s.to_owned(),
                kind: "prefetch policy",
            }),
        }
    }
}

/// The eviction / pre-eviction policy in force (paper Secs. 4.2, 5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EvictPolicy {
    /// LRU 4 KB eviction — the CUDA-driver baseline (Sec. 4.2).
    #[default]
    LruPage,
    /// Re: a uniformly random resident 4 KB page (Sec. 4.2).
    RandomPage,
    /// SLe: evict the whole 64 KB basic block of the LRU candidate as a
    /// single write-back unit (Sec. 5.1).
    SequentialLocal,
    /// TBNe: tree-based neighborhood pre-eviction, the adaptive scheme
    /// whose granularity floats between 64 KB and 1 MB (Sec. 5.2).
    TreeBasedNeighborhood,
    /// Static 2 MB large-page LRU eviction, as real NVIDIA hardware
    /// does (Sec. 7.5).
    LruLargePage,
}

impl EvictPolicy {
    /// `true` for the bulk pre-eviction policies whose write-backs do
    /// not stall the demand migration (Sec. 5: "the kernel execution is
    /// not stalled for writing back pages anymore").
    pub fn is_pre_eviction(self) -> bool {
        matches!(
            self,
            EvictPolicy::SequentialLocal
                | EvictPolicy::TreeBasedNeighborhood
                | EvictPolicy::LruLargePage
        )
    }

    /// All eviction policies, figure order.
    pub const ALL: [EvictPolicy; 5] = [
        EvictPolicy::LruPage,
        EvictPolicy::RandomPage,
        EvictPolicy::SequentialLocal,
        EvictPolicy::TreeBasedNeighborhood,
        EvictPolicy::LruLargePage,
    ];
}

impl fmt::Display for EvictPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EvictPolicy::LruPage => "LRU-4KB",
            EvictPolicy::RandomPage => "Re",
            EvictPolicy::SequentialLocal => "SLe",
            EvictPolicy::TreeBasedNeighborhood => "TBNe",
            EvictPolicy::LruLargePage => "LRU-2MB",
        })
    }
}

impl FromStr for EvictPolicy {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "LRU-4KB" | "lru" => Ok(EvictPolicy::LruPage),
            "Re" | "random" => Ok(EvictPolicy::RandomPage),
            "SLe" | "sequential-local" => Ok(EvictPolicy::SequentialLocal),
            "TBNe" | "tree" => Ok(EvictPolicy::TreeBasedNeighborhood),
            "LRU-2MB" | "lru-2mb" => Ok(EvictPolicy::LruLargePage),
            _ => Err(ParsePolicyError {
                input: s.to_owned(),
                kind: "eviction policy",
            }),
        }
    }
}

/// Error parsing a policy name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePolicyError {
    input: String,
    kind: &'static str,
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown {}: {:?}", self.kind, self.input)
    }
}

impl std::error::Error for ParsePolicyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_through_from_str() {
        for p in PrefetchPolicy::ALL_WITH_ABLATIONS {
            assert_eq!(p.to_string().parse::<PrefetchPolicy>().unwrap(), p);
        }
        for e in EvictPolicy::ALL {
            assert_eq!(e.to_string().parse::<EvictPolicy>().unwrap(), e);
        }
    }

    #[test]
    fn unknown_names_error() {
        let err = "bogus".parse::<PrefetchPolicy>().unwrap_err();
        assert!(err.to_string().contains("bogus"));
        assert!("bogus".parse::<EvictPolicy>().is_err());
    }

    #[test]
    fn pre_eviction_classification() {
        assert!(!EvictPolicy::LruPage.is_pre_eviction());
        assert!(!EvictPolicy::RandomPage.is_pre_eviction());
        assert!(EvictPolicy::SequentialLocal.is_pre_eviction());
        assert!(EvictPolicy::TreeBasedNeighborhood.is_pre_eviction());
        assert!(EvictPolicy::LruLargePage.is_pre_eviction());
    }
}
