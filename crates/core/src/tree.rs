//! The full binary tree maintained per allocation chunk (paper Sec. 3.3).
//!
//! Every `cudaMallocManaged` allocation is carved into full binary
//! trees: one 32-leaf tree per whole 2 MB large page plus one smaller
//! power-of-two tree for the remainder. Leaves are 64 KB basic blocks;
//! each node tracks the *valid size* — the number of resident 4 KB
//! pages among the leaves beneath it.
//!
//! The same tree drives both directions of the paper's contribution:
//!
//! * **TBNp** (prefetch): when a far-fault makes a node's to-be-valid
//!   size strictly exceed 50 % of its capacity, the GMMU balances the
//!   node's children — raising the lesser child to the greater —
//!   recursively pushing the fill down to leaves, which become prefetch
//!   candidates ([`AllocTree::plan_prefetch`]).
//! * **TBNe** (pre-eviction): when an eviction makes a node's valid
//!   size strictly *drop below* 50 %, the GMMU lowers the greater child
//!   to the lesser, recursively pushing the drain down to leaves, which
//!   become pre-eviction candidates ([`AllocTree::plan_eviction`]).
//!
//! Both worked examples of the paper (Fig. 2a, Fig. 2b) and the
//! eviction example (Fig. 8) are unit tests in this module.

use uvm_types::{BasicBlockId, TreeExtent, PAGES_PER_BASIC_BLOCK};

/// Pages per leaf (16 4-KB pages in a 64 KB basic block).
const LEAF_PAGES: u32 = PAGES_PER_BASIC_BLOCK as u32;

/// A full binary tree over the basic blocks of one allocation chunk,
/// tracking per-node valid-page counts.
///
/// # Examples
///
/// ```
/// use uvm_core::AllocTree;
/// use uvm_types::{BasicBlockId, TreeExtent};
///
/// // An 8-leaf (512 KB) tree, as in the paper's Fig. 2 examples.
/// let mut tree = AllocTree::new(TreeExtent {
///     first_block: BasicBlockId::new(0),
///     num_blocks: 8,
/// });
/// // Faults on blocks 1, 3, 5, 7 trigger no prefetch...
/// for b in [1u64, 3, 5, 7] {
///     let plan = tree.plan_prefetch(BasicBlockId::new(b));
///     assert!(plan.is_empty());
///     tree.fill_block(BasicBlockId::new(b));
/// }
/// // ...but the fifth fault, on block 0, cascades (Fig. 2a).
/// let plan = tree.plan_prefetch(BasicBlockId::new(0));
/// assert_eq!(plan, vec![BasicBlockId::new(2), BasicBlockId::new(4), BasicBlockId::new(6)]);
/// ```
#[derive(Clone, Debug)]
pub struct AllocTree {
    extent: TreeExtent,
    /// Valid 4 KB pages per node; 1-indexed implicit binary heap with
    /// `num_blocks` leaves at indices `num_blocks..2*num_blocks`.
    valid: Vec<u32>,
}

impl AllocTree {
    /// Creates an all-invalid tree over `extent`.
    ///
    /// # Panics
    ///
    /// Panics if `extent.num_blocks` is not a power of two or is zero.
    pub fn new(extent: TreeExtent) -> Self {
        assert!(
            extent.num_blocks > 0 && extent.num_blocks.is_power_of_two(),
            "a full binary tree needs a power-of-two leaf count"
        );
        AllocTree {
            extent,
            valid: vec![0; 2 * extent.num_blocks as usize],
        }
    }

    /// The extent this tree covers.
    pub fn extent(&self) -> TreeExtent {
        self.extent
    }

    /// Serializes the per-node valid counts for a checkpoint. The
    /// extent is *not* stored — it is derivable from the allocation's
    /// requested size, which the checkpoint records separately.
    pub fn save_state(&self, w: &mut uvm_types::codec::ByteWriter) {
        w.put_usize(self.valid.len());
        for &v in &self.valid {
            w.put_u32(v);
        }
    }

    /// Restores valid counts saved by [`save_state`](Self::save_state)
    /// into this (freshly rebuilt) tree. Rejects a node-count mismatch
    /// — that means the checkpoint belongs to a different allocation
    /// layout.
    pub fn load_state(
        &mut self,
        r: &mut uvm_types::codec::ByteReader<'_>,
    ) -> Result<(), uvm_types::codec::CodecError> {
        let n = r.get_usize()?;
        if n != self.valid.len() {
            return Err(uvm_types::codec::CodecError::BadTag {
                what: "alloc tree node count",
                value: n as u64,
            });
        }
        for v in &mut self.valid {
            *v = r.get_u32()?;
        }
        Ok(())
    }

    /// Total resident pages under the root.
    pub fn root_valid_pages(&self) -> u32 {
        self.valid[1]
    }

    /// Maximum page capacity of the whole tree.
    pub fn capacity_pages(&self) -> u32 {
        self.extent.num_blocks as u32 * LEAF_PAGES
    }

    fn leaf_index(&self, block: BasicBlockId) -> usize {
        assert!(
            self.extent.contains(block),
            "{block} outside tree extent {:?}",
            self.extent
        );
        (block.index() - self.extent.first_block.index()) as usize + self.extent.num_blocks as usize
    }

    fn block_of_leaf(&self, leaf: usize) -> BasicBlockId {
        self.extent
            .first_block
            .add((leaf - self.extent.num_blocks as usize) as u64)
    }

    /// Capacity in pages of node `i`.
    fn node_capacity(&self, i: usize) -> u32 {
        let leaves = self.valid.len() / 2;
        // Node at depth d spans leaves/2^d ... compute via index magnitude:
        // node i spans `leaves / 2^floor(log2(i))` leaves.
        let span = leaves >> i.ilog2();
        span as u32 * LEAF_PAGES
    }

    /// Valid pages currently resident in `block`.
    pub fn block_valid_pages(&self, block: BasicBlockId) -> u32 {
        self.valid[self.leaf_index(block)]
    }

    /// `true` if every page of `block` is resident.
    pub fn block_full(&self, block: BasicBlockId) -> bool {
        self.block_valid_pages(block) == LEAF_PAGES
    }

    /// Records `count` pages of `block` becoming resident.
    ///
    /// # Panics
    ///
    /// Panics if the block would exceed 16 valid pages.
    pub fn add_pages(&mut self, block: BasicBlockId, count: u32) {
        let leaf = self.leaf_index(block);
        assert!(
            self.valid[leaf] + count <= LEAF_PAGES,
            "block {block} would exceed capacity"
        );
        let mut i = leaf;
        loop {
            self.valid[i] += count;
            if i == 1 {
                break;
            }
            i /= 2;
        }
    }

    /// Records `count` pages of `block` becoming non-resident.
    ///
    /// # Panics
    ///
    /// Panics if the block has fewer than `count` valid pages.
    pub fn remove_pages(&mut self, block: BasicBlockId, count: u32) {
        let leaf = self.leaf_index(block);
        assert!(
            self.valid[leaf] >= count,
            "block {block} has fewer than {count} valid pages"
        );
        let mut i = leaf;
        loop {
            self.valid[i] -= count;
            if i == 1 {
                break;
            }
            i /= 2;
        }
    }

    /// Marks every page of `block` resident (the effect of migrating
    /// the full basic block).
    pub fn fill_block(&mut self, block: BasicBlockId) {
        let cur = self.block_valid_pages(block);
        self.add_pages(block, LEAF_PAGES - cur);
    }

    /// Marks every page of `block` non-resident (the effect of evicting
    /// the basic block).
    pub fn clear_block(&mut self, block: BasicBlockId) {
        let cur = self.block_valid_pages(block);
        self.remove_pages(block, cur);
    }

    /// TBNp: given a far-fault on a page of `fault_block`, returns the
    /// additional basic blocks the tree-based neighborhood prefetcher
    /// migrates, in ascending block order.
    ///
    /// The returned plan assumes `fault_block` itself will be migrated
    /// in full (the caller applies that and the plan via
    /// [`fill_block`](Self::fill_block)); this method does **not**
    /// mutate the tree.
    ///
    /// Semantics (Sec. 3.3): with the fault block counted as to-be
    /// valid, walk from the fault leaf to the root; at every ancestor
    /// whose to-be-valid size strictly exceeds 50 % of its capacity,
    /// balance its two children by raising the lesser to the greater,
    /// pushing the fill recursively down to leaves that have spare
    /// quota. Newly-filled leaves are the prefetch candidates.
    pub fn plan_prefetch(&self, fault_block: BasicBlockId) -> Vec<BasicBlockId> {
        let mut scratch = self.valid.clone();
        let leaf = self.leaf_index(fault_block);
        // The fault block becomes fully valid.
        let gain = LEAF_PAGES - scratch[leaf];
        let mut i = leaf;
        loop {
            scratch[i] += gain;
            if i == 1 {
                break;
            }
            i /= 2;
        }

        let mut picked = Vec::new();
        // Ascend from the fault leaf's parent to the root, balancing
        // every ancestor that trips the >50% rule.
        let mut node = leaf / 2;
        while node >= 1 {
            if scratch[node] * 2 > self.node_capacity(node) {
                self.balance_up(&mut scratch, node, &mut picked);
            }
            if node == 1 {
                break;
            }
            node /= 2;
        }
        // Multi-phase water-filling can touch the same leaf more than
        // once; candidates are whole basic blocks, so dedupe.
        picked.sort_unstable_by_key(|b| b.index());
        picked.dedup();
        picked
    }

    /// Equalize the children of `node` by raising the lesser child to
    /// the greater, recording newly-filled leaves in `picked`.
    fn balance_up(&self, scratch: &mut [u32], node: usize, picked: &mut Vec<BasicBlockId>) {
        let leaves_start = self.valid.len() / 2;
        if node >= leaves_start {
            return; // leaf: nothing to balance
        }
        let (l, r) = (2 * node, 2 * node + 1);
        let (vl, vr) = (scratch[l], scratch[r]);
        let (lesser, delta) = if vl < vr {
            (l, vr - vl)
        } else if vr < vl {
            (r, vl - vr)
        } else {
            return;
        };
        let added = self.fill_down(scratch, lesser, delta, picked);
        // Propagate the addition to `node`; ancestors are updated by
        // the caller's ascent because it re-reads scratch... they are
        // not: fix them here so the ascent sees correct totals.
        let mut i = node;
        loop {
            scratch[i] += added;
            if i == 1 {
                break;
            }
            i /= 2;
        }
    }

    /// Adds up to `amount` valid pages under `node`, keeping children
    /// balanced (fill the lesser child first, then split evenly).
    /// Returns the number of pages actually added. Leaves that go from
    /// partial/empty to fuller are recorded as prefetch candidates.
    fn fill_down(
        &self,
        scratch: &mut [u32],
        node: usize,
        amount: u32,
        picked: &mut Vec<BasicBlockId>,
    ) -> u32 {
        if amount == 0 {
            return 0;
        }
        let leaves_start = self.valid.len() / 2;
        if node >= leaves_start {
            let take = amount.min(LEAF_PAGES - scratch[node]);
            if take > 0 {
                scratch[node] += take;
                picked.push(self.block_of_leaf(node));
            }
            return take;
        }
        let (l, r) = (2 * node, 2 * node + 1);
        let mut remaining = amount;
        let mut added = 0;
        // Phase 1: raise the lesser child to the greater.
        let (vl, vr) = (scratch[l], scratch[r]);
        if vl < vr {
            let d = remaining.min(vr - vl);
            let a = self.fill_down(scratch, l, d, picked);
            added += a;
            remaining -= a;
        } else if vr < vl {
            let d = remaining.min(vl - vr);
            let a = self.fill_down(scratch, r, d, picked);
            added += a;
            remaining -= a;
        }
        // Phase 2: split the remainder evenly (left gets the ceil).
        if remaining > 0 {
            let half = remaining.div_ceil(2);
            let a = self.fill_down(scratch, l, half, picked);
            let b = self.fill_down(scratch, r, remaining - a, picked);
            // Any slack the right child could not absorb goes back left.
            let slack = remaining - a - b;
            let c = if slack > 0 {
                self.fill_down(scratch, l, slack, picked)
            } else {
                0
            };
            added += a + b + c;
        }
        scratch[node] = scratch[l] + scratch[r];
        added
    }

    /// TBNe: given the pre-eviction of `victim_block`, returns the
    /// additional basic blocks the tree-based neighborhood pre-eviction
    /// policy evicts, in ascending block order.
    ///
    /// The plan assumes `victim_block` itself is evicted in full (the
    /// caller applies that and the plan via
    /// [`clear_block`](Self::clear_block)); this method does **not**
    /// mutate the tree.
    ///
    /// Semantics (Sec. 5.2): with the victim block removed, walk from
    /// the victim leaf to the root; at every ancestor whose valid size
    /// strictly drops below 50 % of its capacity, balance its children
    /// by lowering the greater to the lesser, pushing the drain down to
    /// leaves. Newly-emptied leaves are the pre-eviction candidates.
    pub fn plan_eviction(&self, victim_block: BasicBlockId) -> Vec<BasicBlockId> {
        let mut scratch = self.valid.clone();
        let leaf = self.leaf_index(victim_block);
        let loss = scratch[leaf];
        let mut i = leaf;
        loop {
            scratch[i] -= loss;
            if i == 1 {
                break;
            }
            i /= 2;
        }

        let mut picked = Vec::new();
        let mut node = leaf / 2;
        while node >= 1 {
            if scratch[node] * 2 < self.node_capacity(node) {
                self.balance_down(&mut scratch, node, &mut picked);
            }
            if node == 1 {
                break;
            }
            node /= 2;
        }
        picked.sort_unstable_by_key(|b| b.index());
        picked.dedup();
        picked
    }

    /// Equalize the children of `node` by lowering the greater child to
    /// the lesser, recording newly-emptied leaves in `picked`.
    fn balance_down(&self, scratch: &mut [u32], node: usize, picked: &mut Vec<BasicBlockId>) {
        let leaves_start = self.valid.len() / 2;
        if node >= leaves_start {
            return;
        }
        let (l, r) = (2 * node, 2 * node + 1);
        let (vl, vr) = (scratch[l], scratch[r]);
        let (greater, delta) = if vl > vr {
            (l, vl - vr)
        } else if vr > vl {
            (r, vr - vl)
        } else {
            return;
        };
        let removed = self.drain_down(scratch, greater, delta, picked);
        let mut i = node;
        loop {
            scratch[i] -= removed;
            if i == 1 {
                break;
            }
            i /= 2;
        }
    }

    /// Removes up to `amount` valid pages under `node`, keeping children
    /// balanced (drain the greater child first, then split evenly).
    /// Returns the number of pages actually removed. Leaves drained of
    /// pages are recorded as eviction candidates.
    fn drain_down(
        &self,
        scratch: &mut [u32],
        node: usize,
        amount: u32,
        picked: &mut Vec<BasicBlockId>,
    ) -> u32 {
        if amount == 0 {
            return 0;
        }
        let leaves_start = self.valid.len() / 2;
        if node >= leaves_start {
            let take = amount.min(scratch[node]);
            if take > 0 {
                scratch[node] -= take;
                picked.push(self.block_of_leaf(node));
            }
            return take;
        }
        let (l, r) = (2 * node, 2 * node + 1);
        let mut remaining = amount;
        let mut removed = 0;
        let (vl, vr) = (scratch[l], scratch[r]);
        if vl > vr {
            let d = remaining.min(vl - vr);
            let a = self.drain_down(scratch, l, d, picked);
            removed += a;
            remaining -= a;
        } else if vr > vl {
            let d = remaining.min(vr - vl);
            let a = self.drain_down(scratch, r, d, picked);
            removed += a;
            remaining -= a;
        }
        if remaining > 0 {
            let half = remaining.div_ceil(2);
            let a = self.drain_down(scratch, l, half, picked);
            let b = self.drain_down(scratch, r, remaining - a, picked);
            let slack = remaining - a - b;
            let c = if slack > 0 {
                self.drain_down(scratch, l, slack, picked)
            } else {
                0
            };
            removed += a + b + c;
        }
        scratch[node] = scratch[l] + scratch[r];
        removed
    }

    /// Checks the structural invariant: every internal node's valid
    /// count equals the sum of its children's, and no leaf exceeds its
    /// 16-page capacity.
    ///
    /// # Panics
    ///
    /// Panics if the invariant is violated (a bug in this crate).
    pub fn check_invariants(&self) {
        let leaves_start = self.valid.len() / 2;
        for i in 1..leaves_start {
            assert_eq!(
                self.valid[i],
                self.valid[2 * i] + self.valid[2 * i + 1],
                "node {i} out of sync"
            );
        }
        for i in leaves_start..self.valid.len() {
            assert!(self.valid[i] <= LEAF_PAGES, "leaf {i} over capacity");
        }
    }
}

/// Groups a sorted list of basic blocks into maximal runs of contiguous
/// blocks — the paper's GMMU "groups them together to take advantage of
/// higher bandwidth" (Fig. 2b discussion).
///
/// # Examples
///
/// ```
/// use uvm_core::group_contiguous;
/// use uvm_types::BasicBlockId;
///
/// let blocks: Vec<_> = [0u64, 1, 2, 5, 7, 8].iter().map(|&i| BasicBlockId::new(i)).collect();
/// let runs = group_contiguous(&blocks);
/// assert_eq!(runs.len(), 3);
/// assert_eq!(runs[0], (BasicBlockId::new(0), 3));
/// assert_eq!(runs[1], (BasicBlockId::new(5), 1));
/// assert_eq!(runs[2], (BasicBlockId::new(7), 2));
/// ```
pub fn group_contiguous(sorted_blocks: &[BasicBlockId]) -> Vec<(BasicBlockId, u64)> {
    let mut runs: Vec<(BasicBlockId, u64)> = Vec::new();
    for &b in sorted_blocks {
        match runs.last_mut() {
            Some((start, len)) if start.index() + *len == b.index() => *len += 1,
            _ => runs.push((b, 1)),
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree8() -> AllocTree {
        AllocTree::new(TreeExtent {
            first_block: BasicBlockId::new(0),
            num_blocks: 8,
        })
    }

    fn bb(i: u64) -> BasicBlockId {
        BasicBlockId::new(i)
    }

    /// Paper Fig. 2(a): faults on blocks 1,3,5,7 then block 0.
    #[test]
    fn tbnp_figure2a() {
        let mut t = tree8();
        for b in [1, 3, 5, 7] {
            assert!(
                t.plan_prefetch(bb(b)).is_empty(),
                "fault {b} must not prefetch"
            );
            t.fill_block(bb(b));
            t.check_invariants();
        }
        // Fifth access: block 0. Paper: prefetch N0^2, then N0^4 and N0^6.
        let plan = t.plan_prefetch(bb(0));
        assert_eq!(plan, vec![bb(2), bb(4), bb(6)]);
        // Applying the plan fills the whole 512 KB chunk.
        t.fill_block(bb(0));
        for b in plan {
            t.fill_block(b);
        }
        assert_eq!(t.root_valid_pages(), t.capacity_pages());
        t.check_invariants();
    }

    /// Paper Fig. 2(b): faults on blocks 1, 3, 0, then 4.
    #[test]
    fn tbnp_figure2b() {
        let mut t = tree8();
        assert!(t.plan_prefetch(bb(1)).is_empty());
        t.fill_block(bb(1));
        assert!(t.plan_prefetch(bb(3)).is_empty());
        t.fill_block(bb(3));
        // Third access, block 0: N2^0 to-be 192KB > 128KB -> prefetch block 2.
        let plan = t.plan_prefetch(bb(0));
        assert_eq!(plan, vec![bb(2)]);
        t.fill_block(bb(0));
        t.fill_block(bb(2));
        // Fourth access, block 4: root to-be 320KB > 256KB -> blocks 5,6,7.
        let plan = t.plan_prefetch(bb(4));
        assert_eq!(plan, vec![bb(5), bb(6), bb(7)]);
        // Contiguity grouping: blocks 4(fault),5,6,7 group into one run.
        let mut all = vec![bb(4)];
        all.extend(plan);
        let runs = group_contiguous(&all);
        assert_eq!(runs, vec![(bb(4), 4)]);
    }

    /// Paper Fig. 8: TBNe on a fully valid 512 KB chunk; LRU evicts
    /// blocks 1, 3, 4, then block 0 cascades.
    #[test]
    fn tbne_figure8() {
        let mut t = tree8();
        for b in 0..8 {
            t.fill_block(bb(b));
        }
        for b in [1, 3, 4] {
            assert!(
                t.plan_eviction(bb(b)).is_empty(),
                "evicting {b} must not cascade"
            );
            t.clear_block(bb(b));
            t.check_invariants();
        }
        // Fourth eviction: block 0. Paper: pre-evict N0^2, then N0^5, N0^6, N0^7.
        let plan = t.plan_eviction(bb(0));
        assert_eq!(plan, vec![bb(2), bb(5), bb(6), bb(7)]);
        t.clear_block(bb(0));
        for b in plan {
            t.clear_block(b);
        }
        assert_eq!(t.root_valid_pages(), 0);
        t.check_invariants();
    }

    #[test]
    fn prefetch_max_is_1020kb_on_2mb_tree() {
        // The paper notes TBNp can prefetch at most 1020 KB at once on a
        // 2 MB tree (Fig. 2b-style pattern scaled up): fill the first
        // half minus nothing... reproduce by touching blocks so that one
        // fault trips the root. Blocks 0..16 valid except fault target
        // brings root beyond 50%.
        let mut t = AllocTree::new(TreeExtent {
            first_block: BasicBlockId::new(0),
            num_blocks: 32,
        });
        for b in 0..16 {
            t.fill_block(bb(b));
        }
        // Root at exactly 50%. Fault on block 16: root to-be = 17/32 > 1/2
        // -> fill to 32 blocks: prefetch 17..32 except fault = 15 blocks
        // = 960 KB; plus 60 KB of the fault block's prefetch group = 1020 KB.
        let plan = t.plan_prefetch(bb(16));
        let expect: Vec<_> = (17..32).map(bb).collect();
        assert_eq!(plan, expect);
    }

    #[test]
    fn prefetch_plan_does_not_mutate() {
        let mut t = tree8();
        t.fill_block(bb(1));
        let before = t.root_valid_pages();
        let _ = t.plan_prefetch(bb(0));
        assert_eq!(t.root_valid_pages(), before);
        let _ = t.plan_eviction(bb(1));
        assert_eq!(t.root_valid_pages(), before);
    }

    #[test]
    fn partial_blocks_counted() {
        let mut t = tree8();
        t.add_pages(bb(0), 4);
        assert_eq!(t.block_valid_pages(bb(0)), 4);
        assert!(!t.block_full(bb(0)));
        t.add_pages(bb(0), 12);
        assert!(t.block_full(bb(0)));
        t.remove_pages(bb(0), 16);
        assert_eq!(t.root_valid_pages(), 0);
        t.check_invariants();
    }

    #[test]
    #[should_panic(expected = "exceed capacity")]
    fn overfill_panics() {
        let mut t = tree8();
        t.add_pages(bb(0), 17);
    }

    #[test]
    #[should_panic(expected = "fewer than")]
    fn overdrain_panics() {
        let mut t = tree8();
        t.remove_pages(bb(0), 1);
    }

    #[test]
    #[should_panic(expected = "outside tree extent")]
    fn out_of_extent_block_panics() {
        let t = tree8();
        let _ = t.block_valid_pages(bb(8));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_pow2_extent_rejected() {
        let _ = AllocTree::new(TreeExtent {
            first_block: BasicBlockId::new(0),
            num_blocks: 6,
        });
    }

    #[test]
    fn single_leaf_tree_never_cascades() {
        let mut t = AllocTree::new(TreeExtent {
            first_block: BasicBlockId::new(5),
            num_blocks: 1,
        });
        assert!(t.plan_prefetch(bb(5)).is_empty());
        t.fill_block(bb(5));
        assert!(t.plan_eviction(bb(5)).is_empty());
    }

    #[test]
    fn eviction_on_partial_tree_respects_balance() {
        // Valid: blocks 0..4 full (256 KB). Evict block 0: root drops to
        // 192 < 256 (50% of 512) -> lower greater child (left, 192) to
        // lesser (right, 0): drain everything.
        let mut t = tree8();
        for b in 0..4 {
            t.fill_block(bb(b));
        }
        let plan = t.plan_eviction(bb(0));
        assert_eq!(plan, vec![bb(1), bb(2), bb(3)]);
    }

    #[test]
    fn sequential_fill_prefetches_forward() {
        // Sequential faults 0,1,2,... on an 8-leaf tree: fault on block 1
        // trips N1^0 (100%) and N2^0 (128/256 = 50%, no). Fault 2 trips
        // N2^0 (192>128): prefetch 3. Fault 4 trips root: prefetch 5,6,7.
        let mut t = tree8();
        assert!(t.plan_prefetch(bb(0)).is_empty());
        t.fill_block(bb(0));
        assert!(t.plan_prefetch(bb(1)).is_empty());
        t.fill_block(bb(1));
        assert_eq!(t.plan_prefetch(bb(2)), vec![bb(3)]);
        t.fill_block(bb(2));
        t.fill_block(bb(3));
        assert_eq!(t.plan_prefetch(bb(4)), vec![bb(5), bb(6), bb(7)]);
    }

    #[test]
    fn group_contiguous_edge_cases() {
        assert!(group_contiguous(&[]).is_empty());
        assert_eq!(group_contiguous(&[bb(3)]), vec![(bb(3), 1)]);
        let runs = group_contiguous(&[bb(1), bb(2), bb(4)]);
        assert_eq!(runs, vec![(bb(1), 2), (bb(4), 1)]);
    }
}
