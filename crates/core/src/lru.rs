//! LRU bookkeeping: a generic recency queue plus the hierarchical
//! (large-page → basic-block) ordering used by the pre-eviction
//! policies (paper Sec. 5.3).

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// A recency-ordered set with O(log n) touch/insert/remove and ordered
/// traversal from least- to most-recently used.
///
/// # Examples
///
/// ```
/// use uvm_core::LruQueue;
///
/// let mut lru = LruQueue::new();
/// lru.touch("a");
/// lru.touch("b");
/// lru.touch("a"); // refresh
/// assert_eq!(lru.peek_lru(), Some(&"b"));
/// ```
#[derive(Clone, Debug)]
pub struct LruQueue<K> {
    /// Monotonic access stamp, incremented on every touch.
    clock: u64,
    /// stamp -> key, ordered; the smallest stamp is the LRU element.
    by_stamp: BTreeMap<u64, K>,
    /// key -> its current stamp.
    stamps: HashMap<K, u64>,
}

impl<K: Clone + Eq + Hash> Default for LruQueue<K> {
    fn default() -> Self {
        LruQueue {
            clock: 0,
            by_stamp: BTreeMap::new(),
            stamps: HashMap::new(),
        }
    }
}

impl<K: Clone + Eq + Hash> LruQueue<K> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `key` at the MRU end, or refreshes it if present.
    pub fn touch(&mut self, key: K) {
        if let Some(old) = self.stamps.get(&key) {
            self.by_stamp.remove(old);
        }
        self.clock += 1;
        self.by_stamp.insert(self.clock, key.clone());
        self.stamps.insert(key, self.clock);
    }

    /// Inserts `key` at the MRU end only if absent (used for pages that
    /// become valid without being accessed — Sec. 5.3's design choice).
    pub fn insert_if_absent(&mut self, key: K) {
        if !self.stamps.contains_key(&key) {
            self.touch(key);
        }
    }

    /// Removes `key`, returning `true` if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.stamps.remove(key) {
            Some(stamp) => {
                self.by_stamp.remove(&stamp);
                true
            }
            None => false,
        }
    }

    /// `true` if `key` is in the queue.
    pub fn contains(&self, key: &K) -> bool {
        self.stamps.contains_key(key)
    }

    /// The least-recently-used element.
    pub fn peek_lru(&self) -> Option<&K> {
        self.by_stamp.values().next()
    }

    /// Removes and returns the least-recently-used element.
    pub fn pop_lru(&mut self) -> Option<K> {
        let (&stamp, _) = self.by_stamp.iter().next()?;
        let key = self.by_stamp.remove(&stamp).expect("stamp exists");
        self.stamps.remove(&key);
        Some(key)
    }

    /// Iterates from least- to most-recently used.
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.by_stamp.values()
    }

    /// The `skip`-th least-recently-used element (0 = the LRU), used to
    /// implement reservation of the top of the LRU list.
    pub fn peek_nth(&self, skip: usize) -> Option<&K> {
        self.by_stamp.values().nth(skip)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.by_stamp.len()
    }

    /// `true` if the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.by_stamp.is_empty()
    }

    /// Serializes the queue for a checkpoint: elements in LRU→MRU
    /// order, key encoding delegated to `put`. Raw stamp values are
    /// *not* stored — only their order is observable — so restore
    /// replays [`touch`](Self::touch) and gets re-normalized stamps
    /// with identical recency order.
    pub fn save_state(
        &self,
        w: &mut uvm_types::codec::ByteWriter,
        mut put: impl FnMut(&mut uvm_types::codec::ByteWriter, &K),
    ) {
        w.put_usize(self.by_stamp.len());
        for key in self.by_stamp.values() {
            put(w, key);
        }
    }

    /// Rebuilds a queue from a [`save_state`](Self::save_state) image,
    /// key decoding delegated to `get`.
    pub fn load_state<'a>(
        r: &mut uvm_types::codec::ByteReader<'a>,
        mut get: impl FnMut(
            &mut uvm_types::codec::ByteReader<'a>,
        ) -> Result<K, uvm_types::codec::CodecError>,
    ) -> Result<Self, uvm_types::codec::CodecError> {
        let n = r.get_usize()?;
        let mut q = LruQueue::new();
        for _ in 0..n {
            q.touch(get(r)?);
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_orders_by_recency() {
        let mut q = LruQueue::new();
        q.touch(1);
        q.touch(2);
        q.touch(3);
        assert_eq!(q.peek_lru(), Some(&1));
        q.touch(1);
        assert_eq!(q.peek_lru(), Some(&2));
        assert_eq!(q.pop_lru(), Some(2));
        assert_eq!(q.pop_lru(), Some(3));
        assert_eq!(q.pop_lru(), Some(1));
        assert_eq!(q.pop_lru(), None);
    }

    #[test]
    fn insert_if_absent_preserves_position() {
        let mut q = LruQueue::new();
        q.touch("x");
        q.touch("y");
        q.insert_if_absent("x"); // must NOT refresh x
        assert_eq!(q.peek_lru(), Some(&"x"));
        q.insert_if_absent("z");
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn remove_and_contains() {
        let mut q = LruQueue::new();
        q.touch(10);
        q.touch(20);
        assert!(q.contains(&10));
        assert!(q.remove(&10));
        assert!(!q.contains(&10));
        assert!(!q.remove(&10));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn iteration_order_lru_to_mru() {
        let mut q = LruQueue::new();
        for i in [5, 3, 9, 3] {
            q.touch(i);
        }
        let order: Vec<_> = q.iter().copied().collect();
        assert_eq!(order, vec![5, 9, 3]);
    }

    #[test]
    fn peek_nth_skips_reserved_prefix() {
        let mut q = LruQueue::new();
        for i in 0..10 {
            q.touch(i);
        }
        assert_eq!(q.peek_nth(0), Some(&0));
        assert_eq!(q.peek_nth(3), Some(&3));
        assert_eq!(q.peek_nth(10), None);
    }
}
