//! LRU bookkeeping: a generic recency queue plus the hierarchical
//! (large-page → basic-block) ordering used by the pre-eviction
//! policies (paper Sec. 5.3).

use std::collections::HashMap;
use std::hash::Hash;

/// Sentinel slot index for "no neighbour".
const NIL: u32 = u32::MAX;

/// One element of the intrusive recency list.
#[derive(Clone, Debug)]
struct Slot<K> {
    key: K,
    prev: u32,
    next: u32,
}

/// A recency-ordered set with O(1) touch/insert/remove and ordered
/// traversal from least- to most-recently used.
///
/// Internally an intrusive doubly-linked list over a slab of slots,
/// indexed by a `key -> slot` hash map — the same layout as the
/// per-SM TLB. Every simulated memory access touches an evictor
/// recency list (often two, for the hierarchical policies), so the
/// earlier `BTreeMap`-by-stamp representation's O(log n) touch with
/// its node allocations was one of the largest line items of the
/// engine hot path. Recency order is the only observable: iteration,
/// `peek_*`, and the checkpoint encoding are all defined purely by
/// list position, so the two representations are drop-in
/// schedule-identical.
///
/// # Examples
///
/// ```
/// use uvm_core::LruQueue;
///
/// let mut lru = LruQueue::new();
/// lru.touch("a");
/// lru.touch("b");
/// lru.touch("a"); // refresh
/// assert_eq!(lru.peek_lru(), Some(&"b"));
/// ```
#[derive(Clone, Debug)]
pub struct LruQueue<K> {
    /// Slab of list nodes; freed slots are recycled via `free`.
    slots: Vec<Slot<K>>,
    /// Indices of vacant slots in `slots`.
    free: Vec<u32>,
    /// key -> its slot index.
    index: HashMap<K, u32>,
    /// LRU end of the list (`NIL` when empty).
    head: u32,
    /// MRU end of the list (`NIL` when empty).
    tail: u32,
}

impl<K: Clone + Eq + Hash> Default for LruQueue<K> {
    fn default() -> Self {
        LruQueue {
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
        }
    }
}

impl<K: Clone + Eq + Hash> LruQueue<K> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `key` at the MRU end, or refreshes it if present.
    pub fn touch(&mut self, key: K) {
        if let Some(&slot) = self.index.get(&key) {
            self.unlink(slot);
            self.link_tail(slot);
            return;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Slot {
                    key: key.clone(),
                    prev: NIL,
                    next: NIL,
                };
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("LruQueue slot overflow");
                self.slots.push(Slot {
                    key: key.clone(),
                    prev: NIL,
                    next: NIL,
                });
                s
            }
        };
        self.index.insert(key, slot);
        self.link_tail(slot);
    }

    /// Inserts `key` at the MRU end only if absent (used for pages that
    /// become valid without being accessed — Sec. 5.3's design choice).
    pub fn insert_if_absent(&mut self, key: K) {
        if !self.index.contains_key(&key) {
            self.touch(key);
        }
    }

    /// Removes `key`, returning `true` if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.index.remove(key) {
            Some(slot) => {
                self.unlink(slot);
                self.free.push(slot);
                true
            }
            None => false,
        }
    }

    /// `true` if `key` is in the queue.
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// The least-recently-used element.
    pub fn peek_lru(&self) -> Option<&K> {
        (self.head != NIL).then(|| &self.slots[self.head as usize].key)
    }

    /// Removes and returns the least-recently-used element.
    pub fn pop_lru(&mut self) -> Option<K> {
        if self.head == NIL {
            return None;
        }
        let slot = self.head;
        let key = self.slots[slot as usize].key.clone();
        self.unlink(slot);
        self.free.push(slot);
        self.index.remove(&key);
        Some(key)
    }

    /// Iterates from least- to most-recently used.
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let slot = &self.slots[cur as usize];
            cur = slot.next;
            Some(&slot.key)
        })
    }

    /// The `skip`-th least-recently-used element (0 = the LRU), used to
    /// implement reservation of the top of the LRU list.
    pub fn peek_nth(&self, skip: usize) -> Option<&K> {
        self.iter().nth(skip)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` if the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Serializes the queue for a checkpoint: elements in LRU→MRU
    /// order, key encoding delegated to `put`. Slot indices are *not*
    /// stored — only recency order is observable — so restore replays
    /// [`touch`](Self::touch) and gets a freshly packed slab with
    /// identical recency order.
    pub fn save_state(
        &self,
        w: &mut uvm_types::codec::ByteWriter,
        mut put: impl FnMut(&mut uvm_types::codec::ByteWriter, &K),
    ) {
        w.put_usize(self.len());
        for key in self.iter() {
            put(w, key);
        }
    }

    /// Rebuilds a queue from a [`save_state`](Self::save_state) image,
    /// key decoding delegated to `get`.
    pub fn load_state<'a>(
        r: &mut uvm_types::codec::ByteReader<'a>,
        mut get: impl FnMut(
            &mut uvm_types::codec::ByteReader<'a>,
        ) -> Result<K, uvm_types::codec::CodecError>,
    ) -> Result<Self, uvm_types::codec::CodecError> {
        let n = r.get_usize()?;
        let mut q = LruQueue::new();
        for _ in 0..n {
            q.touch(get(r)?);
        }
        Ok(q)
    }

    /// Detaches `slot` from the list, fixing up its neighbours.
    fn unlink(&mut self, slot: u32) {
        let Slot { prev, next, .. } = self.slots[slot as usize];
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Appends `slot` at the MRU end.
    fn link_tail(&mut self, slot: u32) {
        self.slots[slot as usize].prev = self.tail;
        self.slots[slot as usize].next = NIL;
        if self.tail != NIL {
            self.slots[self.tail as usize].next = slot;
        } else {
            self.head = slot;
        }
        self.tail = slot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_orders_by_recency() {
        let mut q = LruQueue::new();
        q.touch(1);
        q.touch(2);
        q.touch(3);
        assert_eq!(q.peek_lru(), Some(&1));
        q.touch(1);
        assert_eq!(q.peek_lru(), Some(&2));
        assert_eq!(q.pop_lru(), Some(2));
        assert_eq!(q.pop_lru(), Some(3));
        assert_eq!(q.pop_lru(), Some(1));
        assert_eq!(q.pop_lru(), None);
    }

    #[test]
    fn insert_if_absent_preserves_position() {
        let mut q = LruQueue::new();
        q.touch("x");
        q.touch("y");
        q.insert_if_absent("x"); // must NOT refresh x
        assert_eq!(q.peek_lru(), Some(&"x"));
        q.insert_if_absent("z");
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn remove_and_contains() {
        let mut q = LruQueue::new();
        q.touch(10);
        q.touch(20);
        assert!(q.contains(&10));
        assert!(q.remove(&10));
        assert!(!q.contains(&10));
        assert!(!q.remove(&10));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn iteration_order_lru_to_mru() {
        let mut q = LruQueue::new();
        for i in [5, 3, 9, 3] {
            q.touch(i);
        }
        let order: Vec<_> = q.iter().copied().collect();
        assert_eq!(order, vec![5, 9, 3]);
    }

    #[test]
    fn peek_nth_skips_reserved_prefix() {
        let mut q = LruQueue::new();
        for i in 0..10 {
            q.touch(i);
        }
        assert_eq!(q.peek_nth(0), Some(&0));
        assert_eq!(q.peek_nth(3), Some(&3));
        assert_eq!(q.peek_nth(10), None);
    }

    #[test]
    fn slot_recycling_keeps_order_through_churn() {
        // Interleaved removes and touches force slab reuse; order must
        // stay exactly recency order throughout.
        let mut q = LruQueue::new();
        for i in 0..8 {
            q.touch(i);
        }
        assert!(q.remove(&3));
        assert!(q.remove(&0));
        q.touch(9);
        q.touch(1); // refresh
        assert!(q.remove(&7));
        q.touch(10);
        let order: Vec<_> = q.iter().copied().collect();
        assert_eq!(order, vec![2, 4, 5, 6, 9, 1, 10]);
        assert_eq!(q.len(), 7);
        // Drain fully via pop_lru in the same order.
        let mut drained = Vec::new();
        while let Some(k) = q.pop_lru() {
            drained.push(k);
        }
        assert_eq!(drained, order);
        assert!(q.is_empty());
    }
}
