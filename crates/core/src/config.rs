//! GMMU / UVM driver configuration (the paper's Table 2 constants plus
//! the experiment knobs).

use uvm_types::{Bytes, Duration};

use crate::fault::FaultPlan;
use crate::spec::PolicySpec;

/// Configuration of the UVM driver model.
///
/// Defaults follow the paper's simulator setup (Table 2): 45 µs
/// far-fault handling latency, 100-cycle page-table walk, TBNp
/// prefetching, LRU 4 KB eviction, unlimited memory (no
/// over-subscription), no free-page buffer, no LRU reservation.
///
/// # Examples
///
/// ```
/// use uvm_core::{EvictPolicy, PrefetchPolicy, UvmConfig};
/// use uvm_types::Bytes;
///
/// let cfg = UvmConfig::default()
///     .with_capacity(Bytes::mib(16))
///     .with_prefetch(PrefetchPolicy::TreeBasedNeighborhood)
///     .with_evict(EvictPolicy::TreeBasedNeighborhood);
/// assert_eq!(cfg.capacity, Some(Bytes::mib(16)));
/// ```
#[derive(Clone, Debug)]
pub struct UvmConfig {
    /// Device memory budget; `None` means effectively unlimited (the
    /// no-over-subscription experiments of Sec. 4.1).
    pub capacity: Option<Bytes>,
    /// Hardware prefetcher spec, resolved through the policy
    /// registry ([`PrefetchPolicy`](crate::PrefetchPolicy) selectors
    /// convert via `Into<PolicySpec>`).
    pub prefetch: PolicySpec,
    /// Eviction / pre-eviction policy spec, resolved through the
    /// policy registry.
    pub evict: PolicySpec,
    /// Far-fault handling latency paid per fault by the host runtime
    /// (45 µs measured on the GTX 1080ti, Sec. 6.1).
    pub fault_latency: Duration,
    /// GPU page-table walk latency (100 core cycles, Table 2).
    pub walk_latency: Duration,
    /// If `true`, the hardware prefetcher is disabled permanently the
    /// first time device memory fills (the Fig. 6 / Fig. 9 setup:
    /// "upon over-subscription, hardware prefetcher is disabled").
    pub disable_prefetch_on_oversubscription: bool,
    /// Free-page-buffer fraction for memory-threshold pre-eviction
    /// (Sec. 4.2): the driver pre-evicts to keep this fraction of
    /// frames free, and disables the prefetcher once occupancy reaches
    /// `1 - free_buffer_frac`. `0.0` disables the buffer.
    pub free_buffer_frac: f64,
    /// Fraction of the LRU list (in pages), counted from the LRU end,
    /// protected from eviction (the Sec. 5.3 / Fig. 14 reservation).
    pub reserve_frac: f64,
    /// RNG seed for the random prefetcher / evictor.
    pub rng_seed: u64,
    /// Write back only dirty pages on eviction, as separate transfers
    /// per contiguous dirty run, instead of the paper's design choice
    /// of writing back whole victim groups as a single unit
    /// irrespective of clean/dirty (Sec. 5.1). `false` (the paper's
    /// choice) trades extra write traffic for fewer, larger transfers.
    pub writeback_dirty_only: bool,
    /// Prefetch congestion cap: when the PCI-e read channel's backlog
    /// exceeds this duration, the prefetcher is skipped for the fault
    /// (demand migration only). Prefetching is opportunistic — it must
    /// never push demand-migration latency unboundedly; without this
    /// throttle a saturated link lets eviction decisions race
    /// arbitrarily far ahead of data arrival.
    pub prefetch_congestion_cap: Duration,
    /// Number of far-faults the host runtime can handle concurrently.
    /// The CUDA driver drains its fault buffer in batches and walks
    /// faults with multiple threads (the paper adopts the
    /// multi-threaded walk model of Ausavarungnirun et al.), so fault
    /// handling windows overlap; each fault still pays the full 45 µs
    /// latency. `1` models a fully serialized host runtime.
    pub fault_lanes: usize,
    /// Deterministic fault-injection plan. [`FaultPlan::none`] (the
    /// default) injects nothing and draws from no RNG, so baseline
    /// behaviour is bit-exact with or without the fault layer.
    pub fault_plan: FaultPlan,
}

impl Default for UvmConfig {
    fn default() -> Self {
        UvmConfig {
            capacity: None,
            prefetch: PolicySpec::new("TBNp"),
            evict: PolicySpec::new("LRU-4KB"),
            fault_latency: Duration::from_micros(45.0),
            walk_latency: Duration::from_cycles(100),
            disable_prefetch_on_oversubscription: false,
            free_buffer_frac: 0.0,
            reserve_frac: 0.0,
            rng_seed: 0x5eed_cafe,
            writeback_dirty_only: false,
            prefetch_congestion_cap: Duration::from_micros(90.0),
            fault_lanes: 8,
            fault_plan: FaultPlan::none(),
        }
    }
}

impl UvmConfig {
    /// Sets the device-memory budget.
    pub fn with_capacity(mut self, capacity: Bytes) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Sets the hardware prefetcher — an enum selector, a
    /// [`PolicySpec`], or anything else converting into one.
    pub fn with_prefetch(mut self, prefetch: impl Into<PolicySpec>) -> Self {
        self.prefetch = prefetch.into();
        self
    }

    /// Sets the eviction policy — an enum selector, a [`PolicySpec`],
    /// or anything else converting into one.
    pub fn with_evict(mut self, evict: impl Into<PolicySpec>) -> Self {
        self.evict = evict.into();
        self
    }

    /// Sets the sticky prefetcher-disable-on-full behaviour.
    pub fn with_disable_prefetch_on_oversubscription(mut self, disable: bool) -> Self {
        self.disable_prefetch_on_oversubscription = disable;
        self
    }

    /// Sets the free-page-buffer fraction.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is not in `0.0..1.0`.
    pub fn with_free_buffer_frac(mut self, frac: f64) -> Self {
        assert!((0.0..1.0).contains(&frac), "buffer fraction out of range");
        self.free_buffer_frac = frac;
        self
    }

    /// Sets the LRU reservation fraction.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is not in `0.0..1.0`.
    pub fn with_reserve_frac(mut self, frac: f64) -> Self {
        assert!((0.0..1.0).contains(&frac), "reserve fraction out of range");
        self.reserve_frac = frac;
        self
    }

    /// Sets the RNG seed.
    pub fn with_rng_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// Selects dirty-only write-back (see the field docs).
    pub fn with_writeback_dirty_only(mut self, dirty_only: bool) -> Self {
        self.writeback_dirty_only = dirty_only;
        self
    }

    /// Sets the prefetch congestion cap (see the field docs).
    pub fn with_prefetch_congestion_cap(mut self, cap: Duration) -> Self {
        self.prefetch_congestion_cap = cap;
        self
    }

    /// Sets the number of concurrent fault-handling lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn with_fault_lanes(mut self, lanes: usize) -> Self {
        assert!(lanes > 0, "need at least one fault lane");
        self.fault_lanes = lanes;
        self
    }

    /// Sets the fault-injection plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{EvictPolicy, PrefetchPolicy};

    #[test]
    fn defaults_match_table2() {
        let cfg = UvmConfig::default();
        assert!((cfg.fault_latency.as_micros() - 45.0).abs() < 0.01);
        assert_eq!(cfg.walk_latency, Duration::from_cycles(100));
        assert_eq!(cfg.capacity, None);
        assert_eq!(cfg.free_buffer_frac, 0.0);
        assert_eq!(cfg.reserve_frac, 0.0);
        assert!(cfg.fault_plan.is_none());
    }

    #[test]
    fn fault_plan_builder() {
        let cfg = UvmConfig::default().with_fault_plan(FaultPlan::chaos().with_seed(3));
        assert_eq!(cfg.fault_plan, FaultPlan::chaos().with_seed(3));
        assert!(!cfg.fault_plan.is_none());
    }

    #[test]
    fn builder_chains() {
        let cfg = UvmConfig::default()
            .with_capacity(Bytes::mib(8))
            .with_prefetch(PrefetchPolicy::SequentialLocal)
            .with_evict(EvictPolicy::SequentialLocal)
            .with_disable_prefetch_on_oversubscription(true)
            .with_free_buffer_frac(0.05)
            .with_reserve_frac(0.1)
            .with_rng_seed(7);
        assert_eq!(cfg.capacity, Some(Bytes::mib(8)));
        assert_eq!(cfg.prefetch, PolicySpec::new("SLp"));
        assert_eq!(cfg.evict, PolicySpec::new("SLe"));
        assert!(cfg.disable_prefetch_on_oversubscription);
        assert_eq!(cfg.free_buffer_frac, 0.05);
        assert_eq!(cfg.reserve_frac, 0.1);
        assert_eq!(cfg.rng_seed, 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn buffer_fraction_validated() {
        let _ = UvmConfig::default().with_free_buffer_frac(1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reserve_fraction_validated() {
        let _ = UvmConfig::default().with_reserve_frac(-0.1);
    }
}
